//! The InfiniteHBD **control plane** (§5.2 of the paper).
//!
//! The paper's prototype includes two control components that the evaluation
//! sections rely on but do not describe in depth:
//!
//! * a **node fabric manager** on every server, which configures the node's
//!   OCSTrx bundles and executes topology-switch commands, and
//! * a **cluster manager**, which coordinates global control: it observes node
//!   faults and repairs, recomputes the ring plan for the K-Hop Ring, and
//!   issues the minimal set of reconfiguration commands to the affected fabric
//!   managers.
//!
//! This crate implements both, together with the *failover planner* that turns
//! a fault pattern into per-node bundle directives, and an event timeline that
//! records every control action with its latency so recovery time can be
//! studied quantitatively (fault detected → plan computed → OCSTrx
//! reconfigured → ring restored).
//!
//! The crate builds directly on [`ocstrx`] (bundle/path state machines and
//! their 60–80 µs reconfiguration latency) and on [`topology::KHopRing`] (which
//! healthy segments survive a fault pattern), so a property test can assert
//! that the control plane's ring plans realise exactly the segments the
//! topology layer predicts.
//!
//! The [`sim`] module closes the loop: a seeded, mock-time discrete-event
//! simulator drives the planner and the fabric managers through adversarial
//! schedules (message delay, reordering, duplication, loss, faults landing
//! mid-recovery) and checks that the deployed configuration always converges
//! to exactly the plan a reliable synchronous control plane would produce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod failover;
pub mod manager;
pub mod plan;
pub mod sim;
pub mod timeline;
pub mod wiring;

pub use fabric::{CommandOutcome, FabricManager};
pub use failover::FailoverPlanner;
pub use manager::{ClusterManager, ControlLatencies, RecoveryReport};
pub use plan::{BundleAction, NodeDirective, PortDirective, RingPlan};
pub use sim::{MessageFaults, SimConfig, SimReport};
pub use timeline::{ControlEvent, ControlEventKind, Timeline};
pub use wiring::{FabricPort, Wiring};
