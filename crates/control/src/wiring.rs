//! The physical wiring convention between OCSTrx fabric ports and K-Hop Ring
//! neighbours.
//!
//! §4.2: a node with `R` GPUs carries `R` OCSTrx bundles; `K ≤ R` of them are
//! used for the inter-node fabric, the rest stay in intra-node loopback (or are
//! replaced by DAC links in the cost-reduced variant). Each fabric bundle has
//! two external paths, so the `K` bundles expose the `2K` fibers reaching the
//! nodes at deployment distance `±1 .. ±K`.
//!
//! Because a bundle can select only **one** path at a time (the full GPU
//! bandwidth rides on the active path), the assignment of distances to bundles
//! matters: an interior ring node always needs one *forward* and one *backward*
//! link active simultaneously, so those two must land on different bundles.
//! The convention used here mirrors Figure 2 of the paper and keeps every
//! bundle direction-pure whenever `K` is even:
//!
//! | bundle | `External1` (Path 1) | `External2` (Path 2) |
//! |---|---|---|
//! | 0 | `+1` | `+2` |
//! | 1 | `−1` | `−2` |
//! | 2 | `+3` | `+4` |
//! | 3 | `−3` | `−4` |
//! | ... | ... | ... |
//!
//! For odd `K` the last bundle necessarily mixes directions; it is given the
//! pair `(+K, −K)`, the pair least likely to be needed simultaneously (that
//! requires `K − 1` consecutive faults on *both* sides of a node).

use hbd_types::{HbdError, NodeId, Result};
use ocstrx::PathId;
use serde::{Deserialize, Serialize};

/// One selectable external attachment point of a node: a fabric bundle plus
/// the external path on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FabricPort {
    /// Zero-based fabric bundle index.
    pub bundle: usize,
    /// Which external path of the bundle. Never `Loopback`.
    pub path: PathId,
}

/// The wiring of a whole K-Hop Ring (or line) deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Wiring {
    nodes: usize,
    k: usize,
    closed: bool,
}

impl Wiring {
    /// Creates the wiring for `nodes` nodes with `k` fabric bundles each.
    ///
    /// `k` must be at least 2: with a single bundle a node cannot keep a
    /// forward and a backward link active at the same time, so it could never
    /// sit in the interior of a ring. A closed ring additionally needs
    /// `nodes ≥ 2k + 1` so that the forward and backward neighbours at every
    /// distance are distinct nodes.
    pub fn new(nodes: usize, k: usize, closed: bool) -> Result<Self> {
        if nodes == 0 {
            return Err(HbdError::invalid_config("wiring needs at least one node"));
        }
        if k < 2 {
            return Err(HbdError::invalid_config(
                "wiring needs at least two fabric bundles (K >= 2)",
            ));
        }
        if closed && nodes < 2 * k + 1 {
            return Err(HbdError::invalid_config(format!(
                "a closed {k}-hop ring needs at least {} nodes, got {nodes}",
                2 * k + 1
            )));
        }
        Ok(Wiring { nodes, k, closed })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Fabric bundles per node.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether the deployment closes into a ring.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// The signed deployment-order offset a port's fiber spans: `+d` means the
    /// fiber runs to the node `d` positions later in deployment order, `−d`
    /// to the node `d` positions earlier. `None` if the bundle index is not a
    /// fabric bundle of this wiring.
    pub fn port_offset(&self, port: FabricPort) -> Option<isize> {
        if port.bundle >= self.k || port.path == PathId::Loopback {
            return None;
        }
        let b = port.bundle as isize;
        let k = self.k as isize;
        let offset = if b % 2 == 0 {
            // Forward bundle: +(b+1) on Path 1, +(b+2) on Path 2 — except the
            // shared last bundle of an odd-K wiring, whose Path 2 turns around.
            match port.path {
                PathId::External1 => b + 1,
                PathId::External2 => {
                    if b + 2 <= k {
                        b + 2
                    } else {
                        -(b + 1)
                    }
                }
                PathId::Loopback => unreachable!(),
            }
        } else {
            // Backward bundle: −b on Path 1, −(b+1) on Path 2.
            match port.path {
                PathId::External1 => -b,
                PathId::External2 => -(b + 1),
                PathId::Loopback => unreachable!(),
            }
        };
        if offset.unsigned_abs() > self.k {
            None
        } else {
            Some(offset)
        }
    }

    /// The port whose fiber spans the given signed offset, if any.
    pub fn port_for_offset(&self, offset: isize) -> Option<FabricPort> {
        let d = offset.unsigned_abs();
        if d == 0 || d > self.k {
            return None;
        }
        for bundle in 0..self.k {
            for path in [PathId::External1, PathId::External2] {
                let port = FabricPort { bundle, path };
                if self.port_offset(port) == Some(offset) {
                    return Some(port);
                }
            }
        }
        None
    }

    /// The node reached by the given port of `node`, or `None` if the fiber
    /// would fall off the end of a line deployment.
    pub fn neighbour(&self, node: NodeId, port: FabricPort) -> Option<NodeId> {
        if node.index() >= self.nodes {
            return None;
        }
        let offset = self.port_offset(port)?;
        let n = self.nodes as isize;
        let target = node.index() as isize + offset;
        if self.closed {
            Some(NodeId(target.rem_euclid(n) as usize))
        } else if (0..n).contains(&target) {
            Some(NodeId(target as usize))
        } else {
            None
        }
    }

    /// The port of `from` whose fiber lands on `to`, or `None` if the two
    /// nodes are further apart than `K` hops.
    pub fn port_towards(&self, from: NodeId, to: NodeId) -> Option<FabricPort> {
        if from.index() >= self.nodes || to.index() >= self.nodes || from == to {
            return None;
        }
        for bundle in 0..self.k {
            for path in [PathId::External1, PathId::External2] {
                let port = FabricPort { bundle, path };
                if self.neighbour(from, port) == Some(to) {
                    return Some(port);
                }
            }
        }
        None
    }

    /// All ports of a node together with the neighbour they reach (ports whose
    /// fiber falls off the end of a line are omitted).
    pub fn ports(&self, node: NodeId) -> Vec<(FabricPort, NodeId)> {
        let mut out = Vec::with_capacity(2 * self.k);
        for bundle in 0..self.k {
            for path in [PathId::External1, PathId::External2] {
                let port = FabricPort { bundle, path };
                if let Some(peer) = self.neighbour(node, port) {
                    out.push((port, peer));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(Wiring::new(0, 2, true).is_err());
        assert!(Wiring::new(10, 1, true).is_err());
        assert!(Wiring::new(4, 2, true).is_err());
        assert!(Wiring::new(5, 2, true).is_ok());
        assert!(Wiring::new(4, 2, false).is_ok());
    }

    #[test]
    fn k2_port_map_matches_figure_2() {
        let wiring = Wiring::new(10, 2, true).unwrap();
        let port = |bundle, path| FabricPort { bundle, path };
        assert_eq!(wiring.port_offset(port(0, PathId::External1)), Some(1));
        assert_eq!(wiring.port_offset(port(0, PathId::External2)), Some(2));
        assert_eq!(wiring.port_offset(port(1, PathId::External1)), Some(-1));
        assert_eq!(wiring.port_offset(port(1, PathId::External2)), Some(-2));
        assert_eq!(wiring.port_offset(port(2, PathId::External1)), None);
        assert_eq!(wiring.port_offset(port(0, PathId::Loopback)), None);
    }

    #[test]
    fn odd_k_shares_the_last_bundle_between_directions() {
        let wiring = Wiring::new(16, 3, true).unwrap();
        let port = |bundle, path| FabricPort { bundle, path };
        assert_eq!(wiring.port_offset(port(2, PathId::External1)), Some(3));
        assert_eq!(wiring.port_offset(port(2, PathId::External2)), Some(-3));
        // All 2K offsets are covered exactly once.
        let wiring_ref = &wiring;
        let mut offsets: Vec<isize> = (0..3)
            .flat_map(|b| {
                [PathId::External1, PathId::External2]
                    .into_iter()
                    .filter_map(move |p| wiring_ref.port_offset(FabricPort { bundle: b, path: p }))
            })
            .collect();
        offsets.sort();
        assert_eq!(offsets, vec![-3, -2, -1, 1, 2, 3]);
    }

    #[test]
    fn even_k_bundles_are_direction_pure() {
        let wiring = Wiring::new(20, 4, true).unwrap();
        for bundle in 0..4usize {
            let signs: Vec<bool> = [PathId::External1, PathId::External2]
                .into_iter()
                .map(|p| wiring.port_offset(FabricPort { bundle, path: p }).unwrap() > 0)
                .collect();
            assert_eq!(signs[0], signs[1], "bundle {bundle} mixes directions");
        }
    }

    #[test]
    fn port_for_offset_inverts_port_offset() {
        for k in [2usize, 3, 4, 5] {
            let wiring = Wiring::new(32, k, true).unwrap();
            for d in 1..=k as isize {
                for offset in [d, -d] {
                    let port = wiring.port_for_offset(offset).expect("covered offset");
                    assert_eq!(
                        wiring.port_offset(port),
                        Some(offset),
                        "K={k} offset={offset}"
                    );
                }
            }
            assert!(wiring.port_for_offset(0).is_none());
            assert!(wiring.port_for_offset(k as isize + 1).is_none());
        }
    }

    #[test]
    fn closed_ring_neighbours_wrap_around() {
        let wiring = Wiring::new(10, 2, true).unwrap();
        let fwd2 = FabricPort {
            bundle: 0,
            path: PathId::External2,
        };
        let bwd2 = FabricPort {
            bundle: 1,
            path: PathId::External2,
        };
        assert_eq!(wiring.neighbour(NodeId(4), fwd2), Some(NodeId(6)));
        assert_eq!(wiring.neighbour(NodeId(4), bwd2), Some(NodeId(2)));
        assert_eq!(wiring.neighbour(NodeId(9), fwd2), Some(NodeId(1)));
        assert_eq!(wiring.neighbour(NodeId(0), bwd2), Some(NodeId(8)));
    }

    #[test]
    fn line_wiring_drops_ports_at_the_ends() {
        let wiring = Wiring::new(10, 2, false).unwrap();
        let fwd1 = FabricPort {
            bundle: 0,
            path: PathId::External1,
        };
        let bwd2 = FabricPort {
            bundle: 1,
            path: PathId::External2,
        };
        assert_eq!(wiring.neighbour(NodeId(9), fwd1), None);
        assert_eq!(wiring.neighbour(NodeId(1), bwd2), None);
        assert_eq!(wiring.ports(NodeId(0)).len(), 2);
        assert_eq!(wiring.ports(NodeId(5)).len(), 4);
    }

    #[test]
    fn port_towards_inverts_neighbour() {
        let wiring = Wiring::new(16, 3, true).unwrap();
        for from in 0..16usize {
            for (port, peer) in wiring.ports(NodeId(from)) {
                let back = wiring.port_towards(NodeId(from), peer).expect("reachable");
                assert_eq!(wiring.neighbour(NodeId(from), back), Some(peer));
                assert_eq!(
                    wiring.port_offset(back).unwrap().abs(),
                    wiring.port_offset(port).unwrap().abs()
                );
            }
        }
    }

    #[test]
    fn port_towards_rejects_far_nodes_and_self() {
        let wiring = Wiring::new(16, 2, true).unwrap();
        assert!(wiring.port_towards(NodeId(0), NodeId(5)).is_none());
        assert!(wiring.port_towards(NodeId(3), NodeId(3)).is_none());
    }

    #[test]
    fn every_port_reaches_a_distinct_node_when_large_enough() {
        let wiring = Wiring::new(9, 4, true).unwrap();
        let peers: Vec<NodeId> = wiring
            .ports(NodeId(0))
            .into_iter()
            .map(|(_, n)| n)
            .collect();
        let mut dedup = peers.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), peers.len());
        assert_eq!(peers.len(), 8);
    }
}
