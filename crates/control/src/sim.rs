//! Deterministic fault-injection simulation of the whole control plane.
//!
//! The unit tests of this crate exercise the cluster manager through a
//! *reliable, synchronous* command path: `inject_fault` returns only after
//! every fabric manager applied its directive. Production control planes do
//! not get that luxury — commands to per-node fabric managers cross a lossy
//! management network where messages are delayed, reordered, duplicated and
//! dropped, and new faults land while the previous recovery is still in
//! flight. This module simulates exactly that regime, FoundationDB-style:
//!
//! * **Mock time.** A [`SimClock`] driven by an [`EventQueue`] whose pop
//!   order is a pure function of the push sequence — no wall clock, no
//!   threads, no nondeterminism.
//! * **One master seed.** Every random decision draws from a per-channel
//!   `StdRng` derived with [`stream_seed`]: channel 0 seeds the fault/repair
//!   arrival schedule, 1 the message delays, 2 the reorder bursts, 3 the
//!   drops, 4 the duplications. Two runs with the same config and seed are
//!   bit-identical; a failing seed is a permanent regression test.
//! * **An at-least-once command protocol.** The manager assigns globally
//!   monotone command ids and retransmits unacknowledged commands after
//!   `ack_timeout`, up to `max_retries` retransmissions; fabric managers
//!   discard deliveries whose id is not newer than the last id executed on
//!   that bundle ([`FabricManager::apply_versioned`]), making duplicates and
//!   overtaking retransmissions harmless. The *final* permitted attempt is
//!   modelled as reliable (delivery and acknowledgement both arrive), the
//!   discrete-event stand-in for "the operator escalates until the command
//!   lands" — so every run quiesces.
//!
//! The safety property checked continuously: whenever the manager has no
//! unacknowledged commands outstanding, the fabric state of every node in
//! the intended plan equals that plan; and once the event queue drains, the
//! intended plan itself equals a freshly computed
//! [`FailoverPlanner::plan`] for the final fault set — i.e. the deployed
//! configuration converges to exactly what a reliable synchronous control
//! plane would have produced, under *any* schedule of message faults.

use crate::fabric::{CommandOutcome, FabricManager};
use crate::failover::FailoverPlanner;
use crate::manager::ControlLatencies;
use crate::plan::{BundleAction, PortDirective, RingPlan};
use crate::timeline::{ControlEventKind, Timeline};
use fault::{generate_events, GeneratorConfig, NodeEvent, NodeEventKind};
use hbd_types::{stream_seed, EventQueue, HbdError, NodeId, Result, Seconds, SimClock};
use ocstrx::BundleState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use topology::{FaultSet, KHopRing};

/// RNG stream indices, one per independent randomness channel.
const CH_ARRIVALS: u64 = 0;
const CH_DELAY: u64 = 1;
const CH_REORDER: u64 = 2;
const CH_DROP: u64 = 3;
const CH_DUPLICATE: u64 = 4;

/// Fault model of the manager → fabric-manager message channel.
///
/// Every command (and every acknowledgement) experiences an independent
/// uniform delay in `[delay_min, delay_max]`; with probability `reorder` a
/// command additionally incurs a full `delay_max` penalty, guaranteeing a
/// window in which later messages overtake it; with probability `drop` it is
/// lost, and with probability `duplicate` a second independent copy is
/// delivered. Lost commands are retransmitted after `ack_timeout`, at most
/// `max_retries` times; the final attempt is reliable (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageFaults {
    /// Lower bound of the one-way message delay.
    pub delay_min: Seconds,
    /// Upper bound of the one-way message delay.
    pub delay_max: Seconds,
    /// Probability that a command suffers an extra `delay_max` reorder burst.
    pub reorder: f64,
    /// Probability that a command (or an acknowledgement) is dropped.
    pub drop: f64,
    /// Probability that a command is delivered twice.
    pub duplicate: f64,
    /// How long the manager waits for an acknowledgement before resending.
    pub ack_timeout: Seconds,
    /// Maximum number of retransmissions per command (0 = send exactly once).
    pub max_retries: u32,
}

impl MessageFaults {
    /// A well-behaved channel: small fixed delay, no loss, no duplication.
    pub fn reliable() -> Self {
        MessageFaults {
            delay_min: Seconds(0.001),
            delay_max: Seconds(0.001),
            reorder: 0.0,
            drop: 0.0,
            duplicate: 0.0,
            ack_timeout: Seconds(1.0),
            max_retries: 2,
        }
    }

    /// A hostile channel exercising every fault class at once.
    pub fn adversarial() -> Self {
        MessageFaults {
            delay_min: Seconds(0.05),
            delay_max: Seconds(0.5),
            reorder: 0.25,
            drop: 0.2,
            duplicate: 0.2,
            ack_timeout: Seconds(1.0),
            max_retries: 4,
        }
    }

    /// Checks the parameters are usable (delays ordered and non-negative,
    /// probabilities in `[0, 1]`, positive acknowledgement timeout).
    pub fn validate(&self) -> Result<()> {
        // `is_finite` + ordered comparisons so NaN parameters are rejected.
        if !self.delay_min.value().is_finite() || self.delay_min.value() < 0.0 {
            return Err(HbdError::invalid_config("delay_min must be >= 0"));
        }
        if !self.delay_max.value().is_finite() || self.delay_max.value() < self.delay_min.value() {
            return Err(HbdError::invalid_config("delay_max must be >= delay_min"));
        }
        for (name, p) in [
            ("reorder", self.reorder),
            ("drop", self.drop),
            ("duplicate", self.duplicate),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(HbdError::invalid_config(format!(
                    "{name} probability must be in [0, 1], got {p}"
                )));
            }
        }
        if !self.ack_timeout.value().is_finite() || self.ack_timeout.value() <= 0.0 {
            return Err(HbdError::invalid_config("ack_timeout must be positive"));
        }
        Ok(())
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Nodes in the K-Hop Ring deployment.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Reach of the ring (bundles per node).
    pub k: usize,
    /// Steady-state fraction of nodes down in the arrival process.
    pub fault_ratio: f64,
    /// Mean node repair time of the arrival process.
    pub mean_time_to_repair: Seconds,
    /// Length of the generated fault/repair schedule.
    pub horizon: Seconds,
    /// Detection / planning / dispatch latencies of the control software.
    pub latencies: ControlLatencies,
    /// Fault model of the command channel.
    pub message_faults: MessageFaults,
}

impl SimConfig {
    /// The renewal-process generator configuration for the arrival channel.
    pub fn generator(&self) -> GeneratorConfig {
        GeneratorConfig {
            nodes: self.nodes,
            duration: self.horizon,
            steady_state_fault_ratio: self.fault_ratio,
            mean_time_to_repair: self.mean_time_to_repair,
        }
    }

    /// Checks the control latencies and the message-fault model. Topology and
    /// arrival-process parameters are validated by their own constructors
    /// when the run starts.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("detection", self.latencies.detection),
            ("planning", self.latencies.planning),
            ("dispatch", self.latencies.dispatch),
        ] {
            if !v.value().is_finite() || v.value() < 0.0 {
                return Err(HbdError::invalid_config(format!(
                    "{name} latency must be >= 0"
                )));
            }
        }
        self.message_faults.validate()
    }
}

/// Deterministic counters and artifacts of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Fault/repair edges injected from the arrival schedule.
    pub arrivals: usize,
    /// Ring plans computed (one per processed detection).
    pub plans_computed: usize,
    /// Distinct reconfiguration commands issued (excluding retransmissions).
    pub commands_issued: usize,
    /// Send attempts, including retransmissions.
    pub sends: usize,
    /// Retransmissions triggered by acknowledgement timeouts.
    pub retries: usize,
    /// Deliveries that executed (id newer than the bundle's last).
    pub delivered_fresh: usize,
    /// Deliveries discarded by the fabric managers' version gate.
    pub delivered_stale: usize,
    /// Commands lost in the channel.
    pub commands_dropped: usize,
    /// Commands delivered twice by the channel.
    pub duplicates_injected: usize,
    /// Commands that suffered an extra reorder-burst delay.
    pub reorder_bursts: usize,
    /// Acknowledgements lost in the channel.
    pub acks_dropped: usize,
    /// Commands obsoleted by a newer plan before being acknowledged.
    pub superseded: usize,
    /// Commands cancelled because their target node failed first.
    pub cancelled: usize,
    /// Deliveries discarded at the node: the node was down, or the copy was
    /// issued before the node's latest reboot (incarnation mismatch).
    pub dead_letters: usize,
    /// Commands force-reissued to a rebooted node whose directives survived
    /// unchanged in the plan (a repair detected inside the preceding fault's
    /// planning window), so the plan diff alone would never re-arm it.
    pub reissued: usize,
    /// Times the convergence invariant was checked.
    pub convergence_checks: usize,
    /// Times the deployed fabric state disagreed with the intended plan (or,
    /// at the end of the run, with a freshly computed plan). Always 0 unless
    /// the control plane is buggy.
    pub invariant_violations: usize,
    /// Whether the run ended converged: no outstanding commands, intended
    /// plan equal to a fresh plan of the final fault set, fabric state equal
    /// to that plan.
    pub final_converged: bool,
    /// Clock rewind attempts clamped by the mock clock. Always 0: the event
    /// queue pops in timestamp order.
    pub clock_rewinds: u64,
    /// Simulation time when the last event was processed.
    pub end_time: Seconds,
    /// The full control-plane event log (monotone by construction).
    pub timeline: Timeline,
}

/// A scheduled simulation event.
enum SimEvent {
    /// The manager's telemetry notices a node changed availability.
    Detected { node: NodeId, fault: bool },
    /// The planner finished recomputing the ring plan.
    PlanReady,
    /// The manager hands one command (attempt `attempt`) to the channel.
    CommandSend { id: u64, attempt: u32 },
    /// One copy of a command reaches its fabric manager.
    CommandDeliver { id: u64 },
    /// The fabric manager's acknowledgement reaches the cluster manager.
    AckDeliver { id: u64 },
    /// The manager checks whether command `id` (sent as attempt `attempt`)
    /// was acknowledged in time.
    RetryCheck { id: u64, attempt: u32 },
}

/// Manager-side bookkeeping for one issued command.
struct PendingCommand {
    node: NodeId,
    bundle: usize,
    action: BundleAction,
    /// Latest attempt number handed to the channel (1-based).
    attempt: u32,
    /// The target node's incarnation when the command was issued. A fabric
    /// manager only accepts commands addressed to its current incarnation,
    /// so copies surviving a fault/repair cycle in the channel cannot
    /// corrupt the rebooted node.
    epoch: u64,
    acked: bool,
    /// A newer plan issued a fresher command for the same bundle, or the
    /// target node failed: the manager stops retransmitting.
    superseded: bool,
}

/// Runs one simulation: the arrival schedule is generated from channel 0 of
/// `master_seed`, the message-fault channels from channels 1–4. Identical
/// `(config, master_seed)` pairs produce bit-identical [`SimReport`]s.
pub fn run(config: &SimConfig, master_seed: u64) -> Result<SimReport> {
    let arrivals = generate_events(&config.generator(), stream_seed(master_seed, CH_ARRIVALS))?;
    run_with_events(config, master_seed, &arrivals)
}

/// Runs one simulation over an explicit fault/repair edge stream (e.g. a
/// replayed production trace via [`fault::trace_events`]), with the message
/// faults still seeded from channels 1–4 of `master_seed`. The edges must
/// alternate fault/repair per node in time order, as both adapters in
/// [`fault::sim_events`] guarantee.
pub fn run_with_events(
    config: &SimConfig,
    master_seed: u64,
    arrivals: &[NodeEvent],
) -> Result<SimReport> {
    config.validate()?;
    let ring = KHopRing::new(config.nodes, config.gpus_per_node, config.k)?;
    let planner = FailoverPlanner::new(ring)?;
    let fabrics = (0..config.nodes)
        .map(|n| FabricManager::new(NodeId(n), config.k))
        .collect::<Result<Vec<_>>>()?;

    let mut sim = Sim {
        config: *config,
        planner,
        fabrics,
        faults: FaultSet::new(),
        intended: RingPlan::empty(),
        queue: EventQueue::new(),
        clock: SimClock::new(),
        timeline: Timeline::new(),
        pending: BTreeMap::new(),
        latest_cmd: BTreeMap::new(),
        node_epoch: vec![0; config.nodes],
        rebooted_dirty: BTreeSet::new(),
        next_cmd_id: 1,
        unacked: 0,
        delay_rng: StdRng::seed_from_u64(stream_seed(master_seed, CH_DELAY)),
        reorder_rng: StdRng::seed_from_u64(stream_seed(master_seed, CH_REORDER)),
        drop_rng: StdRng::seed_from_u64(stream_seed(master_seed, CH_DROP)),
        dup_rng: StdRng::seed_from_u64(stream_seed(master_seed, CH_DUPLICATE)),
        report: SimReport {
            arrivals: arrivals.len(),
            plans_computed: 0,
            commands_issued: 0,
            sends: 0,
            retries: 0,
            delivered_fresh: 0,
            delivered_stale: 0,
            commands_dropped: 0,
            duplicates_injected: 0,
            reorder_bursts: 0,
            acks_dropped: 0,
            superseded: 0,
            cancelled: 0,
            dead_letters: 0,
            reissued: 0,
            convergence_checks: 0,
            invariant_violations: 0,
            final_converged: false,
            clock_rewinds: 0,
            end_time: Seconds::ZERO,
            timeline: Timeline::new(),
        },
    };
    sim.bootstrap()?;
    for edge in arrivals {
        sim.queue.push(
            edge.at + config.latencies.detection,
            SimEvent::Detected {
                node: edge.node,
                fault: edge.kind == NodeEventKind::Fault,
            },
        );
    }
    sim.drain()?;
    Ok(sim.finish())
}

/// The simulation state machine. One instance per run; single-threaded.
struct Sim {
    config: SimConfig,
    planner: FailoverPlanner,
    fabrics: Vec<FabricManager>,
    /// The manager's view of which nodes are down (detection-delayed).
    faults: FaultSet,
    /// The plan the manager is currently converging the fabric towards.
    intended: RingPlan,
    queue: EventQueue<SimEvent>,
    clock: SimClock,
    timeline: Timeline,
    pending: BTreeMap<u64, PendingCommand>,
    /// Newest command id issued per (node, bundle), for supersede tracking.
    latest_cmd: BTreeMap<(NodeId, usize), u64>,
    /// Per-node incarnation counter, bumped on every detected repair.
    node_epoch: Vec<u64>,
    /// Rebooted nodes not yet reconciled by a plan. A node repaired inside
    /// the preceding fault's planning window never leaves the intended plan,
    /// so the plan diff sees no change for it even though its fabric reset
    /// to idle; the next [`Sim::on_plan_ready`] force-reissues its
    /// directives and clears the flag.
    rebooted_dirty: BTreeSet<NodeId>,
    next_cmd_id: u64,
    /// Commands neither acknowledged nor superseded.
    unacked: usize,
    delay_rng: StdRng,
    reorder_rng: StdRng,
    drop_rng: StdRng,
    dup_rng: StdRng,
    report: SimReport,
}

impl Sim {
    /// Deploys the initial (fully healthy) plan synchronously. Initial
    /// bring-up happens over the out-of-band management network before the
    /// faulty channel is armed, so it bypasses the message-fault model.
    fn bootstrap(&mut self) -> Result<()> {
        let plan = self.planner.plan(&self.faults)?;
        let directives = plan.directives();
        self.timeline.push(
            Seconds::ZERO,
            ControlEventKind::PlanComputed {
                commands: directives.len(),
            },
        );
        for d in directives {
            self.fabrics[d.node.index()].apply(d.bundle, d.action)?;
        }
        let segments = self.planner.segments(&self.faults).len();
        self.timeline
            .push(Seconds::ZERO, ControlEventKind::RingRestored { segments });
        self.intended = plan;
        Ok(())
    }

    /// Pops events until the queue is empty.
    fn drain(&mut self) -> Result<()> {
        while let Some((at, event)) = self.queue.pop() {
            let now = self.clock.advance_to(at);
            match event {
                SimEvent::Detected { node, fault } => self.on_detected(now, node, fault)?,
                SimEvent::PlanReady => self.on_plan_ready(now)?,
                SimEvent::CommandSend { id, attempt } => self.on_command_send(now, id, attempt),
                SimEvent::CommandDeliver { id } => self.on_command_deliver(now, id)?,
                SimEvent::AckDeliver { id } => self.on_ack_deliver(now, id),
                SimEvent::RetryCheck { id, attempt } => self.on_retry_check(now, id, attempt),
            }
        }
        Ok(())
    }

    fn on_detected(&mut self, now: Seconds, node: NodeId, fault: bool) -> Result<()> {
        let changed = if fault {
            self.faults.add(node)
        } else {
            self.faults.remove(node)
        };
        // The edge streams alternate strictly per node and detection adds a
        // constant latency, so redundant edges cannot occur.
        debug_assert!(changed, "redundant availability edge for {node}");
        if fault {
            // Stop retransmitting to a dead node: every outstanding command
            // targeting it is cancelled. Copies already in the channel are
            // discarded on delivery (the node is down, and after a repair
            // the incarnation gate rejects them).
            for p in self.pending.values_mut() {
                if p.node == node && !p.acked && !p.superseded {
                    p.superseded = true;
                    self.unacked -= 1;
                    self.report.cancelled += 1;
                }
            }
        } else {
            // A repaired node reboots: all bundles come back in the idle
            // power-on state and a new incarnation starts, so the planner's
            // next diff (computed against an all-idle baseline for nodes
            // absent from the intended plan) is exactly the command set that
            // converges the rebooted hardware.
            self.node_epoch[node.index()] += 1;
            self.fabrics[node.index()] = FabricManager::new(node, self.config.k)?;
            self.rebooted_dirty.insert(node);
        }
        let kind = if fault {
            ControlEventKind::FaultDetected { node }
        } else {
            ControlEventKind::RepairDetected { node }
        };
        self.timeline.push(now, kind);
        self.queue
            .push(now + self.config.latencies.planning, SimEvent::PlanReady);
        Ok(())
    }

    fn on_plan_ready(&mut self, now: Seconds) -> Result<()> {
        self.report.plans_computed += 1;
        let target = self.planner.plan(&self.faults)?;
        let mut commands = self.intended.diff(&target);
        // Reconcile rebooted nodes the diff cannot see: a node whose repair
        // was detected before the preceding fault's plan landed never left
        // the intended plan, so if the target keeps its directives unchanged
        // the diff issues nothing for it — yet its fabric reset to idle on
        // reboot. Force-reissue its non-idle target directives (the rebooted
        // state already matches the idle ones).
        if !self.rebooted_dirty.is_empty() {
            let covered: BTreeSet<(NodeId, usize)> =
                commands.iter().map(|c| (c.node, c.bundle)).collect();
            let mut reconciled = Vec::new();
            for &node in &self.rebooted_dirty {
                if self.faults.is_faulty(node) {
                    // Failed again before this plan: stays dirty and is
                    // re-marked on its next repair anyway.
                    continue;
                }
                for (bundle, action) in target.node(node).iter() {
                    if action != BundleAction::Idle && !covered.contains(&(node, bundle)) {
                        commands.push(PortDirective {
                            node,
                            bundle,
                            action,
                        });
                        self.report.reissued += 1;
                    }
                }
                reconciled.push(node);
            }
            for node in reconciled {
                self.rebooted_dirty.remove(&node);
            }
        }
        self.timeline.push(
            now,
            ControlEventKind::PlanComputed {
                commands: commands.len(),
            },
        );
        let had_commands = !commands.is_empty();
        for cmd in commands {
            let id = self.next_cmd_id;
            self.next_cmd_id += 1;
            // A fresher command for the same bundle obsoletes any unacked
            // predecessor: the manager stops retransmitting it and the
            // fabric's version gate neutralises copies still in flight.
            if let Some(&prev) = self.latest_cmd.get(&(cmd.node, cmd.bundle)) {
                if let Some(p) = self.pending.get_mut(&prev) {
                    if !p.acked && !p.superseded {
                        p.superseded = true;
                        self.unacked -= 1;
                        self.report.superseded += 1;
                    }
                }
            }
            self.latest_cmd.insert((cmd.node, cmd.bundle), id);
            self.pending.insert(
                id,
                PendingCommand {
                    node: cmd.node,
                    bundle: cmd.bundle,
                    action: cmd.action,
                    attempt: 0,
                    epoch: self.node_epoch[cmd.node.index()],
                    acked: false,
                    superseded: false,
                },
            );
            self.unacked += 1;
            self.report.commands_issued += 1;
            self.queue.push(
                now + self.config.latencies.dispatch,
                SimEvent::CommandSend { id, attempt: 1 },
            );
        }
        self.intended = target;
        if !had_commands && self.unacked == 0 {
            // Zero-command plan (e.g. an already-isolated node failed) with
            // nothing outstanding: converged on the spot. Mirrors the
            // synchronous manager, which reports no RingRestored event for
            // zero-command recoveries.
            self.check_convergence(now, false);
        }
        Ok(())
    }

    fn is_final(&self, attempt: u32) -> bool {
        attempt > self.config.message_faults.max_retries
    }

    fn draw_delay(rng: &mut StdRng, mf: &MessageFaults) -> Seconds {
        let span = mf.delay_max.value() - mf.delay_min.value();
        Seconds(mf.delay_min.value() + rng.gen::<f64>() * span)
    }

    fn on_command_send(&mut self, now: Seconds, id: u64, attempt: u32) {
        let Some(p) = self.pending.get_mut(&id) else {
            return;
        };
        if p.acked || p.superseded {
            return;
        }
        p.attempt = attempt;
        self.report.sends += 1;
        let mf = self.config.message_faults;
        let final_attempt = self.is_final(attempt);
        // Every send draws from all four channels in a fixed order, so the
        // per-channel streams stay aligned across runs regardless of which
        // faults actually fire.
        let delay = Self::draw_delay(&mut self.delay_rng, &mf);
        let burst = self.reorder_rng.gen_bool(mf.reorder);
        let dropped = self.drop_rng.gen_bool(mf.drop);
        let duplicated = self.dup_rng.gen_bool(mf.duplicate);
        let mut deliver_at = now + delay;
        if burst {
            self.report.reorder_bursts += 1;
            deliver_at += mf.delay_max;
        }
        if dropped && !final_attempt {
            self.report.commands_dropped += 1;
        } else {
            self.queue.push(deliver_at, SimEvent::CommandDeliver { id });
        }
        if duplicated && !final_attempt {
            self.report.duplicates_injected += 1;
            let second = Self::draw_delay(&mut self.delay_rng, &mf);
            self.queue
                .push(now + second, SimEvent::CommandDeliver { id });
        }
        self.queue
            .push(now + mf.ack_timeout, SimEvent::RetryCheck { id, attempt });
    }

    fn on_command_deliver(&mut self, now: Seconds, id: u64) -> Result<()> {
        let Some(p) = self.pending.get(&id) else {
            return Ok(());
        };
        let (node, bundle, action) = (p.node, p.bundle, p.action);
        let reliable = self.is_final(p.attempt);
        if self.faults.is_faulty(node) || p.epoch != self.node_epoch[node.index()] {
            // The node is down, or this copy was addressed to an earlier
            // incarnation: discarded without an acknowledgement.
            self.report.dead_letters += 1;
            return Ok(());
        }
        let outcome = self.fabrics[node.index()].apply_versioned(id, bundle, action)?;
        let ack_base = match outcome {
            CommandOutcome::Applied(hw) => {
                self.report.delivered_fresh += 1;
                self.timeline.push(
                    now,
                    ControlEventKind::CommandApplied {
                        node,
                        bundle,
                        action,
                        latency: hw,
                    },
                );
                now + hw.to_seconds()
            }
            CommandOutcome::Stale => {
                // A duplicate or an overtaken retransmission: the fabric
                // manager re-acknowledges without touching hardware, so the
                // manager stops retransmitting.
                self.report.delivered_stale += 1;
                now
            }
        };
        let mf = self.config.message_faults;
        let ack_dropped = self.drop_rng.gen_bool(mf.drop);
        let ack_delay = Self::draw_delay(&mut self.delay_rng, &mf);
        if ack_dropped && !reliable {
            self.report.acks_dropped += 1;
        } else {
            self.queue
                .push(ack_base + ack_delay, SimEvent::AckDeliver { id });
        }
        Ok(())
    }

    fn on_ack_deliver(&mut self, now: Seconds, id: u64) {
        let Some(p) = self.pending.get_mut(&id) else {
            return;
        };
        if p.acked {
            return;
        }
        p.acked = true;
        if !p.superseded {
            self.unacked -= 1;
            if self.unacked == 0 {
                self.check_convergence(now, true);
            }
        }
    }

    fn on_retry_check(&mut self, now: Seconds, id: u64, attempt: u32) {
        let Some(p) = self.pending.get(&id) else {
            return;
        };
        if p.acked || p.superseded || p.attempt != attempt {
            return;
        }
        if self.is_final(attempt) {
            // The final attempt's delivery and acknowledgement are reliable
            // and already en route; nothing to resend.
            return;
        }
        self.report.retries += 1;
        self.queue.push(
            now,
            SimEvent::CommandSend {
                id,
                attempt: attempt + 1,
            },
        );
    }

    /// Verifies the quiescence invariant: every (node, bundle) the intended
    /// plan mentions is in exactly the planned state. Runs whenever the
    /// outstanding-command count returns to zero; a `true` `restored` also
    /// records the [`ControlEventKind::RingRestored`] milestone.
    ///
    /// Note the comparison is against the *intended* plan, not an
    /// instantaneously fresh one: a detection whose re-planning is still in
    /// the planning window may already have updated the fault set. The
    /// end-of-run check in [`Sim::finish`] closes that gap.
    fn check_convergence(&mut self, now: Seconds, restored: bool) {
        self.report.convergence_checks += 1;
        let plan = std::mem::take(&mut self.intended);
        let ok = self.fabric_matches(&plan);
        self.intended = plan;
        if !ok {
            self.report.invariant_violations += 1;
        }
        if restored {
            let segments = self.planner.segments(&self.faults).len();
            self.timeline
                .push(now, ControlEventKind::RingRestored { segments });
        }
    }

    fn fabric_matches(&self, plan: &RingPlan) -> bool {
        plan.directives().iter().all(|d| {
            if self.faults.is_faulty(d.node) {
                // Known-dead node whose removal is still in the planning
                // window: its hardware is unreachable, its commands were
                // cancelled on detection, and the pending plan drops it.
                // (Never hit by the end-of-run check: fresh plans exclude
                // faulty nodes.)
                return true;
            }
            if self.rebooted_dirty.contains(&d.node) {
                // Rebooted but not yet re-planned: the idle fabric is the
                // expected transient, reconciled by the pending plan.
                return true;
            }
            let Ok(state) = self.fabrics[d.node.index()].bundle_state(d.bundle) else {
                return false;
            };
            matches!(
                (state, d.action),
                (BundleState::ActivePrimary, BundleAction::ActivatePrimary)
                    | (BundleState::ActiveBackup, BundleAction::ActivateBackup)
                    | (BundleState::Loopback, BundleAction::Loopback)
                    | (BundleState::Idle, BundleAction::Idle)
            )
        })
    }

    /// Runs the end-of-run checks and packages the report.
    fn finish(mut self) -> SimReport {
        // With the queue drained, every arrival has been detected and
        // re-planned, so the intended plan must equal a fresh plan of the
        // final fault set — and the fabric must realise it.
        let fresh = self.planner.plan(&self.faults);
        let converged = match fresh {
            Ok(fresh) => self.unacked == 0 && self.intended == fresh && self.fabric_matches(&fresh),
            Err(_) => false,
        };
        if !converged {
            self.report.invariant_violations += 1;
        }
        self.report.final_converged = converged;
        self.report.clock_rewinds = self.clock.rewinds_clamped();
        self.report.end_time = self.clock.now();
        self.report.timeline = self.timeline;
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(message_faults: MessageFaults) -> SimConfig {
        SimConfig {
            nodes: 24,
            gpus_per_node: 4,
            k: 2,
            fault_ratio: 0.15,
            mean_time_to_repair: Seconds(150.0),
            horizon: Seconds(600.0),
            latencies: ControlLatencies {
                detection: Seconds(0.5),
                planning: Seconds(0.05),
                dispatch: Seconds(0.02),
            },
            message_faults,
        }
    }

    #[test]
    fn message_faults_serde_shape_is_pinned() {
        let mf = MessageFaults {
            delay_min: Seconds(0.05),
            delay_max: Seconds(0.5),
            reorder: 0.25,
            drop: 0.2,
            duplicate: 0.1,
            ack_timeout: Seconds(1.5),
            max_retries: 3,
        };
        let json = serde_json::to_string(&mf).unwrap();
        // Keys serialise in alphabetical order (the serde shim's map layout).
        assert_eq!(
            json,
            r#"{"ack_timeout":1.5,"delay_max":0.5,"delay_min":0.05,"drop":0.2,"duplicate":0.1,"max_retries":3,"reorder":0.25}"#
        );
        let back: MessageFaults = serde_json::from_str(&json).unwrap();
        assert_eq!(back, mf);
    }

    #[test]
    fn sim_config_round_trips_through_json() {
        let config = test_config(MessageFaults::adversarial());
        let json = serde_json::to_string(&config).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut mf = MessageFaults::reliable();
        mf.drop = 1.5;
        assert!(mf.validate().is_err());
        mf.drop = 0.0;
        mf.delay_max = Seconds(-1.0);
        assert!(mf.validate().is_err());
        let mut config = test_config(MessageFaults::reliable());
        config.latencies.detection = Seconds(-1.0);
        assert!(config.validate().is_err());
        config.latencies.detection = Seconds(f64::NAN);
        assert!(config.validate().is_err());
    }

    #[test]
    fn reliable_channel_converges_to_the_planner_plan() {
        let report = run(&test_config(MessageFaults::reliable()), 42).unwrap();
        assert!(report.arrivals > 0, "schedule must exercise faults");
        assert!(report.final_converged);
        assert_eq!(report.invariant_violations, 0);
        assert_eq!(report.clock_rewinds, 0);
        assert!(report.timeline.is_monotone());
        // A clean channel never drops, duplicates or retries.
        assert_eq!(report.commands_dropped, 0);
        assert_eq!(report.duplicates_injected, 0);
        assert_eq!(report.retries, 0);
        assert_eq!(report.sends, report.commands_issued);
    }

    #[test]
    fn adversarial_channel_still_converges() {
        let report = run(&test_config(MessageFaults::adversarial()), 42).unwrap();
        assert!(report.final_converged);
        assert_eq!(report.invariant_violations, 0);
        assert!(report.timeline.is_monotone());
        // The hostile profile must actually exercise every fault class.
        assert!(report.commands_dropped > 0, "{report:?}");
        assert!(report.duplicates_injected > 0);
        assert!(report.reorder_bursts > 0);
        assert!(report.retries > 0);
        assert!(report.delivered_stale > 0);
        assert!(report.sends > report.commands_issued);
    }

    #[test]
    fn runs_are_bit_identical_per_seed() {
        let config = test_config(MessageFaults::adversarial());
        let a = run(&config, 7).unwrap();
        let b = run(&config, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a.timeline).unwrap(),
            serde_json::to_string(&b.timeline).unwrap()
        );
        let c = run(&config, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn message_faults_do_not_change_the_converged_state() {
        // Same arrival schedule, four very different channels: each run must
        // converge to the same (planner-defined) final configuration.
        let config = test_config(MessageFaults::reliable());
        let arrivals = generate_events(&config.generator(), stream_seed(5, 0)).unwrap();
        let profiles = [
            MessageFaults::reliable(),
            MessageFaults::adversarial(),
            MessageFaults {
                drop: 0.5,
                ..MessageFaults::adversarial()
            },
            MessageFaults {
                duplicate: 0.6,
                reorder: 0.5,
                ..MessageFaults::adversarial()
            },
        ];
        for (i, profile) in profiles.iter().enumerate() {
            let mut config = config;
            config.message_faults = *profile;
            for master in [5, 6, 7] {
                let report = run_with_events(&config, master, &arrivals).unwrap();
                assert!(report.final_converged, "profile {i} seed {master}");
                assert_eq!(report.invariant_violations, 0, "profile {i} seed {master}");
                assert!(report.timeline.is_monotone());
            }
        }
    }

    #[test]
    fn single_attempt_channel_is_reliable_by_construction() {
        // max_retries = 0 makes every first attempt the final one, which the
        // model treats as reliable: a 90 % drop probability cannot bite.
        let mut mf = MessageFaults::adversarial();
        mf.drop = 0.9;
        mf.max_retries = 0;
        let report = run(&test_config(mf), 11).unwrap();
        assert!(report.final_converged);
        assert_eq!(report.commands_dropped, 0);
        assert_eq!(report.acks_dropped, 0);
        assert_eq!(report.retries, 0);
        assert_eq!(report.sends, report.commands_issued);
    }

    #[test]
    fn overlapping_recoveries_supersede_stale_commands() {
        // A long-delay channel with a short horizon and fast arrivals forces
        // plans to change while older commands are still in flight.
        let mut config = test_config(MessageFaults {
            delay_min: Seconds(0.5),
            delay_max: Seconds(5.0),
            reorder: 0.3,
            drop: 0.3,
            duplicate: 0.3,
            ack_timeout: Seconds(2.0),
            max_retries: 3,
        });
        config.mean_time_to_repair = Seconds(20.0);
        config.horizon = Seconds(200.0);
        let mut superseded_seen = false;
        for seed in 0..10 {
            let report = run(&config, seed).unwrap();
            assert!(report.final_converged, "seed {seed}");
            assert_eq!(report.invariant_violations, 0, "seed {seed}");
            superseded_seen |= report.superseded > 0;
        }
        assert!(
            superseded_seen,
            "the overlap regime must exercise supersede tracking"
        );
    }

    /// The experiment-scale deployment of the `sim_seeds` sweep (larger ring,
    /// K=3), where the two regression seeds below were originally found.
    fn sweep_config(message_faults: MessageFaults) -> SimConfig {
        SimConfig {
            nodes: 48,
            gpus_per_node: 4,
            ..test_config(message_faults)
        }
    }

    #[test]
    fn regression_repair_inside_planning_window_reconverges() {
        // Found by the seeded sweep: a node whose repair is detected before
        // the preceding fault's plan lands never leaves the intended plan,
        // so the plan diff alone issues nothing for it even though it
        // rebooted to idle. The run used to end with the node stuck idle
        // (converged = false, 19 violations).
        let mut config = sweep_config(MessageFaults::reliable());
        config.k = 3;
        let report = run(&config, 260778234563238397).unwrap();
        assert!(report.final_converged);
        assert_eq!(report.invariant_violations, 0);
        assert!(
            report.reissued > 0,
            "the rapid fault/repair cycle must exercise reboot reconciliation"
        );
    }

    #[test]
    fn regression_faulty_node_exempt_from_mid_run_checks() {
        // Found by the seeded sweep on the reorder profile: an ack drove the
        // outstanding count to zero inside a fault's planning window, and the
        // check demanded the dead node's cancelled command had been applied
        // (1 transient violation). Known-dead nodes are exempt until the
        // pending plan drops them.
        let mut config = sweep_config(MessageFaults {
            delay_min: Seconds(0.05),
            delay_max: Seconds(0.5),
            reorder: 0.3,
            drop: 0.0,
            duplicate: 0.0,
            ack_timeout: Seconds(1.0),
            max_retries: 4,
        });
        config.k = 3;
        let report = run(&config, 1495124568307875091).unwrap();
        assert!(report.final_converged);
        assert_eq!(report.invariant_violations, 0);
    }
}
