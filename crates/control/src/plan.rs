//! Ring plans — the desired per-node OCSTrx configuration for a given fault
//! pattern.
//!
//! A [`RingPlan`] assigns every fabric bundle of every healthy node one of four
//! actions (primary, backup, loopback, idle). The plan realises the healthy
//! segments reported by [`topology::KHopRing::healthy_segments`]: consecutive
//! healthy nodes of a segment are joined by activating the port pair that spans
//! the gap between them, the two segment ends close the GPU-level ring with a
//! cross-lane loopback, and everything else goes idle.

use crate::wiring::{FabricPort, Wiring};
use hbd_types::{HbdError, NodeId, Result};
use ocstrx::PathId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use topology::RingSegment;

/// What a fabric bundle should be doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BundleAction {
    /// Carry ring traffic on the primary external path (distance `+d`).
    ActivatePrimary,
    /// Carry ring traffic on the backup external path (distance `−d`),
    /// typically to bypass a faulty neighbour.
    ActivateBackup,
    /// Close the intra-node cross-lane loopback (segment endpoint).
    Loopback,
    /// Carry no traffic.
    Idle,
}

impl BundleAction {
    /// Whether the action makes the bundle part of the active ring.
    pub fn is_active(self) -> bool {
        !matches!(self, BundleAction::Idle)
    }
}

/// A single (node, bundle) directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortDirective {
    /// The node whose fabric manager must execute the directive.
    pub node: NodeId,
    /// The fabric bundle index on that node.
    pub bundle: usize,
    /// The action to apply.
    pub action: BundleAction,
}

/// All directives for one node, indexed by bundle.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeDirective {
    actions: BTreeMap<usize, BundleAction>,
}

impl NodeDirective {
    /// The action assigned to `bundle` (idle if the plan never mentions it).
    pub fn action(&self, bundle: usize) -> BundleAction {
        self.actions
            .get(&bundle)
            .copied()
            .unwrap_or(BundleAction::Idle)
    }

    /// Iterates over (bundle, action) pairs in bundle order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, BundleAction)> + '_ {
        self.actions.iter().map(|(&b, &a)| (b, a))
    }

    /// Number of bundles that carry ring traffic under this directive.
    pub fn active_bundles(&self) -> usize {
        self.actions.values().filter(|a| a.is_active()).count()
    }

    fn set(&mut self, bundle: usize, action: BundleAction) {
        self.actions.insert(bundle, action);
    }
}

/// The desired configuration of the whole fabric.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RingPlan {
    nodes: BTreeMap<NodeId, NodeDirective>,
}

impl RingPlan {
    /// An empty plan (every bundle idle).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds the plan that realises the given healthy segments on the given
    /// wiring. Faulty nodes receive no directives.
    ///
    /// Each segment becomes one GPU-level ring: its interior edges activate the
    /// matching external ports on both ends, and the two boundary nodes close
    /// the ring via loopback on their outward-facing bundle. A segment that
    /// covers the entire closed deployment is realised as a cycle (no loopback
    /// needed). Single-node segments simply loop back on bundle 0.
    pub fn for_segments(wiring: &Wiring, segments: &[RingSegment]) -> Result<Self> {
        let mut plan = RingPlan::empty();
        for segment in segments {
            plan.add_segment(wiring, segment)?;
        }
        // Every fabric bundle not claimed by a segment goes idle explicitly, so
        // diffs against older plans release stale activations.
        for node in plan.nodes.values_mut() {
            for bundle in 0..wiring.k() {
                node.actions.entry(bundle).or_insert(BundleAction::Idle);
            }
        }
        Ok(plan)
    }

    fn add_segment(&mut self, wiring: &Wiring, segment: &RingSegment) -> Result<()> {
        let nodes = &segment.nodes;
        if nodes.is_empty() {
            return Ok(());
        }
        let full_cycle = wiring.is_closed() && nodes.len() == wiring.nodes();
        if full_cycle {
            // A fully-healthy closed deployment runs as one physical cycle: no
            // loopback endpoints are needed.
            for i in 0..nodes.len() {
                self.connect(wiring, nodes[i], nodes[(i + 1) % nodes.len()])?;
            }
            return Ok(());
        }
        // A chain node in the interior needs one backward and one forward link
        // active at the same time. For odd K the wiring shares one bundle
        // between the +K and −K fibers, so a node squeezed between K−1
        // consecutive faults on *both* sides cannot hold both links: the chain
        // is cut at that node (it becomes a ring endpoint instead), trading a
        // little capacity for a realisable plan.
        let mut chains: Vec<Vec<NodeId>> = Vec::new();
        let mut start = 0usize;
        let mut i = 1usize;
        while i + 1 < nodes.len() {
            let back = wiring.port_towards(nodes[i], nodes[i - 1]);
            let forward = wiring.port_towards(nodes[i], nodes[i + 1]);
            match (back, forward) {
                (Some(b), Some(f)) if b.bundle == f.bundle && i > start => {
                    chains.push(nodes[start..=i].to_vec());
                    start = i + 1;
                    i = start + 1;
                }
                _ => i += 1,
            }
        }
        chains.push(nodes[start..].to_vec());

        for chain in chains {
            if chain.len() == 1 {
                let bundle = self.free_bundle(chain[0], wiring.k());
                self.set(chain[0], bundle, BundleAction::Loopback)?;
                continue;
            }
            for pair in chain.windows(2) {
                self.connect(wiring, pair[0], pair[1])?;
            }
            // The ring is closed inside the two boundary nodes: their bundle
            // facing *away* from the chain switches to loopback.
            let head = chain[0];
            let tail = chain[chain.len() - 1];
            let head_loop = self.free_bundle(head, wiring.k());
            self.set(head, head_loop, BundleAction::Loopback)?;
            let tail_loop = self.free_bundle(tail, wiring.k());
            self.set(tail, tail_loop, BundleAction::Loopback)?;
        }
        Ok(())
    }

    /// Activates the port pair joining two adjacent chain members.
    fn connect(&mut self, wiring: &Wiring, a: NodeId, b: NodeId) -> Result<()> {
        let port_a = wiring.port_towards(a, b).ok_or_else(|| {
            HbdError::infeasible(format!(
                "segment edge {a} -> {b} exceeds the {}-hop reach of the wiring",
                wiring.k()
            ))
        })?;
        let port_b = wiring
            .port_towards(b, a)
            .expect("reverse port exists whenever the forward port does");
        self.set(a, port_a.bundle, action_for(port_a))?;
        self.set(b, port_b.bundle, action_for(port_b))?;
        Ok(())
    }

    /// The lowest-indexed bundle of `node` not yet claimed by this plan.
    fn free_bundle(&self, node: NodeId, k: usize) -> usize {
        let directive = self.nodes.get(&node);
        (0..k)
            .find(|b| {
                directive
                    .map(|d| !d.actions.contains_key(b))
                    .unwrap_or(true)
            })
            .unwrap_or(0)
    }

    fn set(&mut self, node: NodeId, bundle: usize, action: BundleAction) -> Result<()> {
        let directive = self.nodes.entry(node).or_default();
        if let Some(existing) = directive.actions.get(&bundle) {
            if *existing != action && existing.is_active() && action.is_active() {
                return Err(HbdError::invalid_operation(format!(
                    "bundle {bundle} of {node} assigned two conflicting active roles"
                )));
            }
        }
        directive.set(bundle, action);
        Ok(())
    }

    /// Directive for one node (empty directive if the node is unused).
    pub fn node(&self, node: NodeId) -> NodeDirective {
        self.nodes.get(&node).cloned().unwrap_or_default()
    }

    /// Nodes that have at least one non-idle bundle.
    pub fn active_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|(_, d)| d.active_bundles() > 0)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Number of nodes mentioned by the plan.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan mentions no node at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Flattens the plan into individual directives (node order, bundle order).
    pub fn directives(&self) -> Vec<PortDirective> {
        self.nodes
            .iter()
            .flat_map(|(&node, directive)| {
                directive.iter().map(move |(bundle, action)| PortDirective {
                    node,
                    bundle,
                    action,
                })
            })
            .collect()
    }

    /// The directives of `new` that differ from `self` — the minimal command
    /// set the cluster manager must push to converge the fabric.
    pub fn diff(&self, new: &RingPlan) -> Vec<PortDirective> {
        let mut commands = Vec::new();
        for (&node, directive) in &new.nodes {
            let old = self.node(node);
            for (bundle, action) in directive.iter() {
                if old.action(bundle) != action {
                    commands.push(PortDirective {
                        node,
                        bundle,
                        action,
                    });
                }
            }
        }
        // Nodes dropped from the plan entirely (e.g. newly faulty) do not get
        // commands: their hardware is unreachable anyway.
        commands
    }
}

fn action_for(port: FabricPort) -> BundleAction {
    match port.path {
        PathId::External1 => BundleAction::ActivatePrimary,
        PathId::External2 => BundleAction::ActivateBackup,
        PathId::Loopback => BundleAction::Loopback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{FaultSet, KHopRing};

    fn plan_for(nodes: usize, k: usize, faults: &[usize]) -> (KHopRing, RingPlan) {
        let ring = KHopRing::new(nodes, 4, k).unwrap();
        let wiring = Wiring::new(nodes, k, true).unwrap();
        let fault_set = FaultSet::from_nodes(faults.iter().map(|&n| NodeId(n)));
        let segments = ring.healthy_segments(&fault_set);
        let plan = RingPlan::for_segments(&wiring, &segments).unwrap();
        (ring, plan)
    }

    #[test]
    fn healthy_closed_ring_is_a_cycle_without_loopbacks() {
        let (_, plan) = plan_for(12, 2, &[]);
        assert_eq!(plan.len(), 12);
        for n in 0..12 {
            let d = plan.node(NodeId(n));
            // The forward distance-1 port (bundle 0, Path 1) and the backward
            // distance-1 port (bundle 1, Path 1) are both active: "only two
            // OCSTrx bundles per node are utilized" (§4.2).
            assert_eq!(d.action(0), BundleAction::ActivatePrimary);
            assert_eq!(d.action(1), BundleAction::ActivatePrimary);
            assert!(d.iter().all(|(_, a)| a != BundleAction::Loopback));
        }
    }

    #[test]
    fn single_fault_bypass_uses_backup_ports_on_the_neighbours() {
        let (_, plan) = plan_for(12, 2, &[5]);
        // Node 4 bypasses the fault by selecting the +2 backup path of its
        // forward bundle; node 6 selects the −2 backup path of its backward
        // bundle — exactly the Figure-2 failover.
        let d4 = plan.node(NodeId(4));
        assert_eq!(d4.action(0), BundleAction::ActivateBackup);
        assert_eq!(d4.action(1), BundleAction::ActivatePrimary);
        let d6 = plan.node(NodeId(6));
        assert_eq!(d6.action(1), BundleAction::ActivateBackup);
        assert_eq!(d6.action(0), BundleAction::ActivatePrimary);
        // The faulty node receives no directives.
        assert_eq!(plan.node(NodeId(5)).active_bundles(), 0);
        // The surviving 11 nodes form one chain closed by loopback at its two
        // ends.
        let loopbacks: usize = (0..12)
            .map(|n| {
                plan.node(NodeId(n))
                    .iter()
                    .filter(|(_, a)| *a == BundleAction::Loopback)
                    .count()
            })
            .sum();
        assert_eq!(loopbacks, 2);
    }

    #[test]
    fn two_spread_faults_make_two_segments_with_four_loopbacks() {
        let (ring, plan) = plan_for(20, 2, &[3, 4, 12, 13]);
        let segments = ring.healthy_segments(&FaultSet::from_nodes([
            NodeId(3),
            NodeId(4),
            NodeId(12),
            NodeId(13),
        ]));
        assert_eq!(segments.len(), 2);
        let loopbacks: usize = (0..20)
            .map(|n| {
                plan.node(NodeId(n))
                    .iter()
                    .filter(|(_, a)| *a == BundleAction::Loopback)
                    .count()
            })
            .sum();
        assert_eq!(loopbacks, 4);
    }

    #[test]
    fn plan_diff_only_touches_changed_bundles() {
        let (_, before) = plan_for(16, 3, &[]);
        let (_, after) = plan_for(16, 3, &[7]);
        let commands = before.diff(&after);
        assert!(!commands.is_empty());
        // Only the fault's bypassing neighbours and the new segment endpoints
        // change — a handful of nodes, not the whole fabric.
        let touched: std::collections::BTreeSet<NodeId> = commands.iter().map(|c| c.node).collect();
        assert!(touched.len() <= 4, "touched {touched:?}");
        assert!(
            !touched.contains(&NodeId(7)),
            "faulty node must not be commanded"
        );
        // Every command matches the target plan.
        for cmd in &commands {
            assert_eq!(after.node(cmd.node).action(cmd.bundle), cmd.action);
        }
    }

    #[test]
    fn singleton_segment_loops_back_on_bundle_zero() {
        let wiring = Wiring::new(9, 2, true).unwrap();
        let segment = RingSegment {
            nodes: vec![NodeId(4)],
            wraps: false,
        };
        let plan = RingPlan::for_segments(&wiring, &[segment]).unwrap();
        assert_eq!(plan.node(NodeId(4)).action(0), BundleAction::Loopback);
    }

    #[test]
    fn edge_beyond_reach_is_rejected() {
        let wiring = Wiring::new(12, 2, true).unwrap();
        let segment = RingSegment {
            nodes: vec![NodeId(0), NodeId(5)],
            wraps: false,
        };
        assert!(RingPlan::for_segments(&wiring, &[segment]).is_err());
    }

    #[test]
    fn directives_cover_every_fabric_bundle_of_every_healthy_node() {
        let (_, plan) = plan_for(16, 3, &[2, 9]);
        for n in 0..16usize {
            if n == 2 || n == 9 {
                continue;
            }
            let directive = plan.node(NodeId(n));
            assert_eq!(directive.iter().count(), 3, "node {n}");
        }
        assert_eq!(plan.directives().len(), 14 * 3);
    }
}
