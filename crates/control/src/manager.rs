//! The **cluster manager**: the stateful controller that keeps the deployed
//! fabric converged with the failover planner's target plan.
//!
//! §5.2: "At the system level, \[the\] cluster manager coordinates global
//! control across the cluster." Here it
//!
//! 1. tracks the current fault set,
//! 2. recomputes the target [`RingPlan`] whenever a fault or repair is
//!    observed,
//! 3. diffs the target against the currently-deployed plan to obtain the
//!    minimal command set,
//! 4. pushes those commands to the per-node [`FabricManager`]s (which model the
//!    60–80 µs OCSTrx switching latency), and
//! 5. reports the end-to-end recovery latency
//!    (detection + planning + dispatch + the slowest hardware switch — commands
//!    to different nodes execute in parallel).

use crate::fabric::FabricManager;
use crate::failover::FailoverPlanner;
use crate::plan::RingPlan;
use crate::timeline::{ControlEventKind, Timeline};
use hbd_types::{HbdError, Microseconds, NodeId, Result, Seconds};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use topology::{FaultSet, HbdArchitecture, KHopRing};

/// Fixed software latencies of the control loop.
///
/// The hardware switching latency comes from the OCSTrx model; these three
/// cover everything the paper's measurement explicitly excludes ("software
/// level delays such as reconnection at the network protocol layer").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlLatencies {
    /// Time from the fault occurring to the cluster manager learning about it
    /// (health-check / telemetry interval).
    pub detection: Seconds,
    /// Time to recompute the ring plan and diff it.
    pub planning: Seconds,
    /// Time to dispatch commands to the fabric managers (RPC fan-out).
    pub dispatch: Seconds,
}

impl ControlLatencies {
    /// Defaults representative of a production control plane: 1 s detection,
    /// 10 ms planning, 5 ms dispatch.
    pub fn production_defaults() -> Self {
        ControlLatencies {
            detection: Seconds(1.0),
            planning: Seconds(0.010),
            dispatch: Seconds(0.005),
        }
    }

    /// Zero software latency — isolates the hardware switching time.
    pub fn hardware_only() -> Self {
        ControlLatencies {
            detection: Seconds::ZERO,
            planning: Seconds::ZERO,
            dispatch: Seconds::ZERO,
        }
    }

    /// Sum of the software components.
    pub fn software_total(&self) -> Seconds {
        self.detection + self.planning + self.dispatch
    }
}

impl Default for ControlLatencies {
    fn default() -> Self {
        Self::production_defaults()
    }
}

/// What one fault (or repair) cost to recover from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Simulation time at which the triggering event occurred.
    pub event_at: Seconds,
    /// Number of reconfiguration commands issued.
    pub commands: usize,
    /// Number of distinct nodes that had to reconfigure at least one bundle.
    pub nodes_reconfigured: usize,
    /// The slowest hardware switch among the issued commands (they run in
    /// parallel across nodes and bundles).
    pub hardware_latency: Microseconds,
    /// End-to-end recovery time: software latencies plus the hardware switch.
    pub total_recovery: Seconds,
    /// Healthy segments after recovery.
    pub segments: usize,
    /// Faulty nodes after the event.
    pub faulty_nodes: usize,
}

/// The stateful cluster manager.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterManager {
    planner: FailoverPlanner,
    fabric: BTreeMap<NodeId, FabricManager>,
    faults: FaultSet,
    deployed: RingPlan,
    latencies: ControlLatencies,
    timeline: Timeline,
    clock: Seconds,
}

impl ClusterManager {
    /// Creates a cluster manager for the given ring and applies the initial
    /// (fault-free) ring plan at time zero.
    pub fn new(ring: KHopRing, latencies: ControlLatencies) -> Result<Self> {
        let nodes = ring.nodes();
        let k = ring.k();
        let planner = FailoverPlanner::new(ring)?;
        let mut fabric = BTreeMap::new();
        for n in 0..nodes {
            fabric.insert(NodeId(n), FabricManager::new(NodeId(n), k)?);
        }
        let mut manager = ClusterManager {
            planner,
            fabric,
            faults: FaultSet::new(),
            deployed: RingPlan::empty(),
            latencies,
            timeline: Timeline::new(),
            clock: Seconds::ZERO,
        };
        manager.converge(Seconds::ZERO)?;
        Ok(manager)
    }

    /// The failover planner in use.
    pub fn planner(&self) -> &FailoverPlanner {
        &self.planner
    }

    /// The currently-deployed ring plan.
    pub fn deployed_plan(&self) -> &RingPlan {
        &self.deployed
    }

    /// The current fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The control-plane event log.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The fabric manager of one node.
    pub fn fabric(&self, node: NodeId) -> Result<&FabricManager> {
        self.fabric
            .get(&node)
            .ok_or_else(|| HbdError::unknown_entity(format!("{node}")))
    }

    /// Current simulation time.
    pub fn now(&self) -> Seconds {
        self.clock
    }

    /// Usable GPUs for TP groups of `tp_size` under the current fault set.
    pub fn usable_gpus(&self, tp_size: usize) -> usize {
        self.planner.usable_gpus(&self.faults, tp_size)
    }

    /// Handles a node fault observed at time `at`.
    ///
    /// Event times must be non-decreasing; a stale `at` (earlier than
    /// [`ClusterManager::now`]) is clamped to the current clock and the clamp
    /// is recorded on the timeline as [`ControlEventKind::EventTimeClamped`].
    pub fn inject_fault(&mut self, node: NodeId, at: Seconds) -> Result<RecoveryReport> {
        self.check_node(node)?;
        if !self.faults.add(node) {
            return Err(HbdError::invalid_operation(format!(
                "{node} is already faulty"
            )));
        }
        let at = self.observe_event_time(at);
        self.timeline.push(
            at + self.latencies.detection,
            ControlEventKind::FaultDetected { node },
        );
        self.recover(at)
    }

    /// Handles a node repair observed at time `at` (stale times are clamped
    /// like [`ClusterManager::inject_fault`]).
    pub fn repair_node(&mut self, node: NodeId, at: Seconds) -> Result<RecoveryReport> {
        self.check_node(node)?;
        if !self.faults.remove(node) {
            return Err(HbdError::invalid_operation(format!("{node} is not faulty")));
        }
        let at = self.observe_event_time(at);
        self.timeline.push(
            at + self.latencies.detection,
            ControlEventKind::RepairDetected { node },
        );
        self.recover(at)
    }

    fn check_node(&self, node: NodeId) -> Result<()> {
        if node.index() >= self.planner.ring().nodes() {
            return Err(HbdError::unknown_entity(format!("{node}")));
        }
        Ok(())
    }

    /// Clamps an observed event time to the current clock.
    ///
    /// The manager processes observations strictly in arrival order, so an
    /// event stamped earlier than `now()` (telemetry batches routinely deliver
    /// several events with one timestamp, and monitoring pipelines reorder)
    /// must not rewind the clock or emit a backwards timeline. Policy chosen:
    /// **clamp and record** rather than reject — rejecting would make
    /// legitimate same-sweep batches (see the trace-replay integration test)
    /// hard errors, while clamping keeps the timeline monotone and leaves an
    /// auditable [`ControlEventKind::EventTimeClamped`] record.
    fn observe_event_time(&mut self, at: Seconds) -> Seconds {
        if at.value() < self.clock.value() {
            self.timeline.push(
                self.clock,
                ControlEventKind::EventTimeClamped { requested: at },
            );
            self.clock
        } else {
            at
        }
    }

    fn recover(&mut self, event_at: Seconds) -> Result<RecoveryReport> {
        let plan_at = event_at + self.latencies.detection + self.latencies.planning;
        let (commands, nodes_reconfigured, hardware_latency) = self.converge(plan_at)?;
        // A zero-command diff means the fabric was already converged (e.g. an
        // isolated node going faulty changes the plan's node set but no
        // surviving directive): nothing is dispatched and no hardware
        // switches, so recovery ends when the plan is computed — detection +
        // planning only, no dispatch fan-out, no `RingRestored` event.
        let total_recovery = if commands == 0 {
            self.latencies.detection + self.latencies.planning
        } else {
            self.latencies.software_total() + hardware_latency.to_seconds()
        };
        let segments = self.planner.segments(&self.faults).len();
        let report = RecoveryReport {
            event_at,
            commands,
            nodes_reconfigured,
            hardware_latency,
            total_recovery,
            segments,
            faulty_nodes: self.faults.len(),
        };
        self.clock = event_at + total_recovery;
        if commands > 0 {
            self.timeline
                .push(self.clock, ControlEventKind::RingRestored { segments });
        }
        Ok(report)
    }

    /// Computes the target plan, diffs it against the deployed plan, pushes the
    /// commands and returns `(commands, nodes touched, slowest switch)`.
    fn converge(&mut self, at: Seconds) -> Result<(usize, usize, Microseconds)> {
        let target = self.planner.plan(&self.faults)?;
        let commands = self.deployed.diff(&target);
        self.timeline.push(
            at,
            ControlEventKind::PlanComputed {
                commands: commands.len(),
            },
        );
        let mut touched = std::collections::BTreeSet::new();
        let mut slowest = Microseconds::ZERO;
        let dispatch_at = at + self.latencies.dispatch;
        for command in &commands {
            let fm = self
                .fabric
                .get_mut(&command.node)
                .ok_or_else(|| HbdError::unknown_entity(format!("{}", command.node)))?;
            let latency = fm.apply(command.bundle, command.action)?;
            if latency > Microseconds::ZERO {
                touched.insert(command.node);
                slowest = slowest.max(latency);
            }
            self.timeline.push(
                dispatch_at,
                ControlEventKind::CommandApplied {
                    node: command.node,
                    bundle: command.bundle,
                    action: command.action,
                    latency,
                },
            );
        }
        self.deployed = target;
        Ok((commands.len(), touched.len(), slowest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(nodes: usize, k: usize) -> ClusterManager {
        let ring = KHopRing::new(nodes, 4, k).unwrap();
        ClusterManager::new(ring, ControlLatencies::hardware_only()).unwrap()
    }

    #[test]
    fn initial_convergence_deploys_the_full_cycle() {
        let mgr = manager(24, 2);
        assert_eq!(mgr.deployed_plan().len(), 24);
        assert_eq!(mgr.usable_gpus(16), 96);
        assert!(mgr.timeline().commands_applied() > 0);
    }

    #[test]
    fn single_fault_recovery_touches_only_the_neighbourhood() {
        let mut mgr = manager(64, 2);
        let report = mgr.inject_fault(NodeId(20), Seconds(100.0)).unwrap();
        assert_eq!(report.faulty_nodes, 1);
        assert_eq!(report.segments, 1);
        // Bypass + the two new chain endpoints: a handful of nodes, not the
        // whole cluster.
        assert!(report.nodes_reconfigured <= 4, "{report:?}");
        assert!(report.commands <= 8, "{report:?}");
        // Hardware-only latencies: recovery is microseconds, not seconds.
        assert!(report.hardware_latency.value() >= 60.0);
        assert!(report.total_recovery < Seconds(0.001));
        // Usable capacity drops by at most one node plus one fragmented group.
        assert!(mgr.usable_gpus(32) >= 64 * 4 - 4 - 32);
    }

    #[test]
    fn repair_restores_full_capacity() {
        let mut mgr = manager(32, 3);
        let before = mgr.usable_gpus(16);
        mgr.inject_fault(NodeId(5), Seconds(10.0)).unwrap();
        assert!(mgr.usable_gpus(16) < before);
        let report = mgr.repair_node(NodeId(5), Seconds(20.0)).unwrap();
        assert_eq!(report.faulty_nodes, 0);
        assert_eq!(mgr.usable_gpus(16), before);
    }

    #[test]
    fn double_fault_and_invalid_transitions_are_rejected() {
        let mut mgr = manager(16, 2);
        mgr.inject_fault(NodeId(3), Seconds(1.0)).unwrap();
        assert!(mgr.inject_fault(NodeId(3), Seconds(2.0)).is_err());
        assert!(mgr.repair_node(NodeId(9), Seconds(2.0)).is_err());
        assert!(mgr.inject_fault(NodeId(99), Seconds(2.0)).is_err());
    }

    #[test]
    fn software_latencies_dominate_total_recovery() {
        let ring = KHopRing::new(32, 4, 2).unwrap();
        let mut mgr = ClusterManager::new(ring, ControlLatencies::production_defaults()).unwrap();
        let report = mgr.inject_fault(NodeId(10), Seconds(0.0)).unwrap();
        let software = ControlLatencies::production_defaults().software_total();
        assert!(report.total_recovery >= software);
        assert!(report.total_recovery < software + Seconds(0.001));
        assert_eq!(mgr.now(), Seconds(0.0) + report.total_recovery);
    }

    #[test]
    fn consecutive_unbypassable_faults_partition_the_ring() {
        let mut mgr = manager(32, 2);
        mgr.inject_fault(NodeId(10), Seconds(1.0)).unwrap();
        let report = mgr.inject_fault(NodeId(11), Seconds(2.0)).unwrap();
        // Two consecutive faults exceed the K=2 bypass reach, so the ring
        // splits into... the closed ring still re-joins across the deployment
        // boundary, leaving one (wrapping) segment.
        assert_eq!(report.segments, 1);
        assert_eq!(report.faulty_nodes, 2);
        // The wrapping chain has two loopback endpoints now.
        let plan = mgr.deployed_plan();
        let loopbacks: usize = (0..32)
            .map(|n| {
                plan.node(NodeId(n))
                    .iter()
                    .filter(|(_, a)| matches!(a, crate::BundleAction::Loopback))
                    .count()
            })
            .sum();
        assert_eq!(loopbacks, 2);
    }

    #[test]
    fn out_of_order_event_times_are_clamped_and_recorded() {
        let ring = KHopRing::new(48, 4, 2).unwrap();
        let mut mgr = ClusterManager::new(ring, ControlLatencies::production_defaults()).unwrap();
        let first = mgr.inject_fault(NodeId(10), Seconds(100.0)).unwrap();
        let after_first = mgr.now();
        assert_eq!(after_first, Seconds(100.0) + first.total_recovery);

        // Regression: an event stamped before the current clock used to rewind
        // `now()` and emit a backwards timeline. It must clamp instead.
        let second = mgr.inject_fault(NodeId(30), Seconds(50.0)).unwrap();
        assert_eq!(second.event_at, after_first, "stale time not clamped");
        assert!(mgr.now() >= after_first, "clock went backwards");
        assert!(mgr.timeline().is_monotone(), "timeline not monotone");
        let clamps: Vec<Seconds> = mgr
            .timeline()
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                ControlEventKind::EventTimeClamped { requested } => Some(requested),
                _ => None,
            })
            .collect();
        assert_eq!(clamps, vec![Seconds(50.0)], "clamp not recorded");

        // In-order events are untouched (no spurious clamp records).
        let third = mgr.inject_fault(NodeId(40), Seconds(1000.0)).unwrap();
        assert_eq!(third.event_at, Seconds(1000.0));
        assert_eq!(
            mgr.timeline()
                .events()
                .iter()
                .filter(|e| matches!(e.kind, ControlEventKind::EventTimeClamped { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn zero_command_convergence_reports_zero_work() {
        // K = 2: faulting 8, 9, 11, 12 isolates node 10 into a singleton
        // segment (its whole ±2 reach is faulty). Faulting 10 itself then
        // drops the singleton from the plan without changing any surviving
        // node's directives — a genuine zero-command convergence.
        let ring = KHopRing::new(24, 4, 2).unwrap();
        let mut mgr = ClusterManager::new(ring, ControlLatencies::production_defaults()).unwrap();
        for (i, n) in [8usize, 9, 11, 12].iter().enumerate() {
            mgr.inject_fault(NodeId(*n), Seconds(10.0 * (i + 1) as f64))
                .unwrap();
        }
        let restored_before = mgr
            .timeline()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, ControlEventKind::RingRestored { .. }))
            .count();

        let report = mgr.inject_fault(NodeId(10), Seconds(100.0)).unwrap();
        // Regression: the zero-command path used to charge the full software
        // total (including dispatch) and push a phantom `RingRestored`.
        assert_eq!(report.commands, 0);
        assert_eq!(report.nodes_reconfigured, 0);
        assert_eq!(report.hardware_latency, Microseconds::ZERO);
        let latencies = ControlLatencies::production_defaults();
        assert_eq!(
            report.total_recovery,
            latencies.detection + latencies.planning
        );
        assert_eq!(mgr.now(), Seconds(100.0) + report.total_recovery);
        let restored_after = mgr
            .timeline()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, ControlEventKind::RingRestored { .. }))
            .count();
        assert_eq!(restored_after, restored_before, "phantom RingRestored");
        assert!(mgr.timeline().is_monotone());
        // The deployed plan still matches a fresh plan.
        let fresh = mgr.planner().plan(mgr.faults()).unwrap();
        assert_eq!(mgr.deployed_plan(), &fresh);
    }

    #[test]
    fn fault_storm_keeps_fabric_consistent_with_planner() {
        let mut mgr = manager(96, 3);
        let mut rng_state = 12345u64;
        let mut faulty: Vec<usize> = Vec::new();
        for step in 0..40 {
            // Simple deterministic LCG so the test needs no rand dependency.
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let n = (rng_state >> 33) as usize % 96;
            let at = Seconds(step as f64);
            if faulty.contains(&n) {
                mgr.repair_node(NodeId(n), at).unwrap();
                faulty.retain(|&x| x != n);
            } else {
                mgr.inject_fault(NodeId(n), at).unwrap();
                faulty.push(n);
            }
            // The deployed plan always matches a fresh plan for the same
            // fault set.
            let fresh = mgr.planner().plan(mgr.faults()).unwrap();
            assert_eq!(mgr.deployed_plan(), &fresh, "diverged at step {step}");
        }
    }
}
