//! The failover planner: from a fault pattern to the ring plan that bypasses
//! it.
//!
//! The planner is the purely-functional core of the cluster manager: it owns a
//! [`topology::KHopRing`] description plus the matching [`Wiring`], and maps a
//! [`FaultSet`] to the [`RingPlan`] that realises every healthy segment the
//! topology can still form. Keeping it separate from the stateful
//! [`crate::ClusterManager`] makes it easy to property-test (plans must always
//! agree with `healthy_segments`) and to reuse from the orchestrator.

use crate::plan::RingPlan;
use crate::wiring::Wiring;
use hbd_types::Result;
use serde::{Deserialize, Serialize};
use topology::{FaultSet, HbdArchitecture, KHopRing, RingSegment};

/// Plans OCSTrx configurations for a fixed K-Hop Ring deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailoverPlanner {
    ring: KHopRing,
    wiring: Wiring,
}

impl FailoverPlanner {
    /// Creates a planner for the given ring.
    pub fn new(ring: KHopRing) -> Result<Self> {
        let wiring = Wiring::new(ring.nodes(), ring.k(), ring.is_closed())?;
        Ok(FailoverPlanner { ring, wiring })
    }

    /// The topology this planner serves.
    pub fn ring(&self) -> &KHopRing {
        &self.ring
    }

    /// The wiring convention this planner assumes.
    pub fn wiring(&self) -> &Wiring {
        &self.wiring
    }

    /// The healthy segments that survive `faults`.
    pub fn segments(&self, faults: &FaultSet) -> Vec<RingSegment> {
        self.ring.healthy_segments(faults)
    }

    /// The ring plan realising every healthy segment under `faults`.
    pub fn plan(&self, faults: &FaultSet) -> Result<RingPlan> {
        RingPlan::for_segments(&self.wiring, &self.segments(faults))
    }

    /// Whether `faults` breaks the deployment into more than one segment
    /// (i.e. some run of consecutive faults is too long to bypass).
    pub fn is_partitioned(&self, faults: &FaultSet) -> bool {
        self.segments(faults).len() > 1
    }

    /// Number of GPUs the planned rings can dedicate to complete TP groups of
    /// `tp_size` GPUs — by construction identical to
    /// [`KHopRing::usable_gpus`].
    pub fn usable_gpus(&self, faults: &FaultSet, tp_size: usize) -> usize {
        self.ring.usable_gpus(faults, tp_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeId;
    use proptest::prelude::*;

    #[test]
    fn planner_mirrors_topology_segments() {
        let ring = KHopRing::new(64, 4, 2).unwrap();
        let planner = FailoverPlanner::new(ring).unwrap();
        let faults = FaultSet::from_nodes([NodeId(3), NodeId(4), NodeId(40)]);
        let segments = planner.segments(&faults);
        let plan = planner.plan(&faults).unwrap();
        // Every healthy node appears in the plan; every faulty node does not.
        for n in 0..64usize {
            let mentioned = plan.node(NodeId(n)).iter().count() > 0;
            assert_eq!(mentioned, !faults.is_faulty(NodeId(n)), "node {n}");
        }
        // Chain segments contribute two loopbacks each.
        let loopbacks: usize = (0..64)
            .map(|n| {
                plan.node(NodeId(n))
                    .iter()
                    .filter(|(_, a)| {
                        a.is_active()
                            && !matches!(
                                a,
                                crate::BundleAction::ActivatePrimary
                                    | crate::BundleAction::ActivateBackup
                            )
                    })
                    .count()
            })
            .sum();
        assert_eq!(loopbacks, 2 * segments.len());
    }

    #[test]
    fn partition_detection_matches_segment_count() {
        let ring = KHopRing::line(32, 4, 2).unwrap();
        let planner = FailoverPlanner::new(ring).unwrap();
        assert!(!planner.is_partitioned(&FaultSet::from_nodes([NodeId(10)])));
        assert!(planner.is_partitioned(&FaultSet::from_nodes([NodeId(10), NodeId(11)])));
    }

    proptest! {
        /// For an even K (direction-pure bundles) the planner must succeed for
        /// *any* fault pattern and its plans must activate a consistent number
        /// of external links: every adjacent pair inside a segment consumes
        /// exactly two external activations (one per end).
        #[test]
        fn plans_realise_segments_for_random_faults(
            faults in proptest::collection::btree_set(0usize..96, 0..24),
            k in prop_oneof![Just(2usize), Just(4usize)],
        ) {
            let ring = KHopRing::new(96, 4, k).unwrap();
            let planner = FailoverPlanner::new(ring).unwrap();
            let fault_set = FaultSet::from_nodes(faults.iter().map(|&n| NodeId(n)));
            let segments = planner.segments(&fault_set);
            let plan = planner.plan(&fault_set).unwrap();

            let healthy = 96 - fault_set.len();
            let full_cycle = segments.len() == 1 && segments[0].len() == 96;
            let expected_edges: usize = if full_cycle {
                96
            } else {
                segments.iter().map(|s| s.len().saturating_sub(1)).sum()
            };
            let external_activations: usize = (0..96)
                .map(|n| {
                    plan.node(NodeId(n))
                        .iter()
                        .filter(|(_, a)| matches!(
                            a,
                            crate::BundleAction::ActivatePrimary | crate::BundleAction::ActivateBackup
                        ))
                        .count()
                })
                .sum();
            prop_assert_eq!(external_activations, 2 * expected_edges);

            // Planned usable GPUs agree with the topology layer.
            prop_assert_eq!(
                planner.usable_gpus(&fault_set, 16) / 4 <= healthy,
                true
            );
        }
    }
}
