//! The control-plane event timeline.
//!
//! Every action the cluster manager takes is recorded with its wall-clock
//! timestamp, so experiments can reconstruct the full fault-handling sequence
//! (fault detected → plan computed → commands applied → ring restored) and
//! measure the end-to-end recovery latency the paper attributes to the 60–80 µs
//! OCSTrx reconfiguration.

use crate::plan::BundleAction;
use hbd_types::{Microseconds, NodeId, Seconds};
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControlEventKind {
    /// The cluster manager learned that a node failed.
    FaultDetected {
        /// The faulty node.
        node: NodeId,
    },
    /// The cluster manager learned that a node came back.
    RepairDetected {
        /// The repaired node.
        node: NodeId,
    },
    /// A new ring plan was computed.
    PlanComputed {
        /// Number of reconfiguration commands the plan diff produced.
        commands: usize,
    },
    /// One command was executed by a fabric manager.
    CommandApplied {
        /// The node whose bundle switched.
        node: NodeId,
        /// The bundle index.
        bundle: usize,
        /// The action applied.
        action: BundleAction,
        /// Hardware switching latency of this command.
        latency: Microseconds,
    },
    /// All commands finished; the surviving segments carry traffic again.
    RingRestored {
        /// Number of healthy segments after recovery.
        segments: usize,
    },
    /// An event was reported with a timestamp earlier than the manager's
    /// clock and was clamped to the current time (the manager's documented
    /// policy for out-of-order observations; the timeline stays monotone).
    EventTimeClamped {
        /// The stale timestamp the caller reported.
        requested: Seconds,
    },
}

/// A timestamped control-plane event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlEvent {
    /// Simulation time at which the event occurred.
    pub at: Seconds,
    /// The event itself.
    pub kind: ControlEventKind,
}

/// An append-only log of control-plane events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    events: Vec<ControlEvent>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, at: Seconds, kind: ControlEventKind) {
        self.events.push(ControlEvent { at, kind });
    }

    /// All events in insertion order.
    pub fn events(&self) -> &[ControlEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of commands applied over the whole timeline.
    pub fn commands_applied(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ControlEventKind::CommandApplied { .. }))
            .count()
    }

    /// Total hardware switching time accumulated over the whole timeline.
    pub fn total_switching_time(&self) -> Microseconds {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                ControlEventKind::CommandApplied { latency, .. } => Some(latency),
                _ => None,
            })
            .fold(Microseconds::ZERO, |a, b| a + b)
    }

    /// The timestamp of the most recent event, if any.
    pub fn last_at(&self) -> Option<Seconds> {
        self.events.last().map(|e| e.at)
    }

    /// Whether timestamps are non-decreasing in insertion order — the
    /// replayability property the cluster manager's clock clamping and the
    /// simulator's event-queue ordering both guarantee.
    pub fn is_monotone(&self) -> bool {
        self.events
            .windows(2)
            .all(|w| w[0].at.value() <= w[1].at.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_accumulates_events_in_order() {
        let mut timeline = Timeline::new();
        assert!(timeline.is_empty());
        timeline.push(
            Seconds(1.0),
            ControlEventKind::FaultDetected { node: NodeId(4) },
        );
        timeline.push(Seconds(1.0), ControlEventKind::PlanComputed { commands: 3 });
        timeline.push(
            Seconds(1.0),
            ControlEventKind::CommandApplied {
                node: NodeId(3),
                bundle: 0,
                action: BundleAction::ActivateBackup,
                latency: Microseconds(70.0),
            },
        );
        timeline.push(Seconds(1.0), ControlEventKind::RingRestored { segments: 1 });
        assert_eq!(timeline.len(), 4);
        assert_eq!(timeline.commands_applied(), 1);
        assert_eq!(timeline.total_switching_time(), Microseconds(70.0));
        assert_eq!(timeline.last_at(), Some(Seconds(1.0)));
        assert!(timeline.is_monotone());
    }

    #[test]
    fn monotonicity_check_catches_backwards_timestamps() {
        let mut timeline = Timeline::new();
        assert!(timeline.is_monotone());
        timeline.push(Seconds(2.0), ControlEventKind::PlanComputed { commands: 0 });
        timeline.push(Seconds(2.0), ControlEventKind::RingRestored { segments: 1 });
        assert!(timeline.is_monotone());
        timeline.push(
            Seconds(1.0),
            ControlEventKind::EventTimeClamped {
                requested: Seconds(1.0),
            },
        );
        assert!(!timeline.is_monotone());
    }

    #[test]
    fn timeline_serialises_to_json() {
        let mut timeline = Timeline::new();
        timeline.push(
            Seconds(0.5),
            ControlEventKind::RepairDetected { node: NodeId(9) },
        );
        let json = serde_json::to_string(&timeline).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back, timeline);
    }
}
