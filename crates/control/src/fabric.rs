//! The per-node **fabric manager**.
//!
//! §5.2: "At the device level, the node fabric manager configures individual
//! OCSTrx modules and handles topology switching." The fabric manager owns the
//! node's fabric bundles (the `K` bundles wired to the inter-node fiber plant)
//! and executes [`BundleAction`]s issued by the cluster manager, tracking how
//! many reconfigurations it performed and how long the hardware spent
//! switching.

use crate::plan::{BundleAction, NodeDirective};
use hbd_types::{HbdError, Microseconds, NodeId, Result};
use ocstrx::{Bundle, BundleState};
use serde::{Deserialize, Serialize};

/// What a versioned command delivery did — see
/// [`FabricManager::apply_versioned`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CommandOutcome {
    /// The command was fresh and was executed; the hardware switching latency
    /// is attached (zero when the bundle was already in the requested state).
    Applied(Microseconds),
    /// The command id was not newer than the last id seen for the bundle — a
    /// duplicate or an out-of-order stale delivery. State untouched.
    Stale,
}

/// Manages the OCSTrx bundles of one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricManager {
    node: NodeId,
    bundles: Vec<Bundle>,
    reconfigurations: u64,
    switching_time: Microseconds,
    /// Per-bundle newest command id executed via
    /// [`FabricManager::apply_versioned`] (0 = none yet; ids start at 1).
    last_command_ids: Vec<u64>,
    /// Deliveries rejected by the version gate (duplicates + stale).
    stale_commands: u64,
}

impl FabricManager {
    /// Creates a fabric manager with `k` single-module fabric bundles.
    ///
    /// Single-module bundles keep large-cluster simulations cheap; use
    /// [`FabricManager::with_modules`] when per-module optics (loss, BER,
    /// power) matter.
    pub fn new(node: NodeId, k: usize) -> Result<Self> {
        Self::with_modules(node, k, 1)
    }

    /// Creates a fabric manager whose bundles hold `modules` OCSTrx each
    /// (the paper's reference node uses 8 × 800 Gbps per bundle).
    pub fn with_modules(node: NodeId, k: usize, modules: usize) -> Result<Self> {
        if k == 0 {
            return Err(HbdError::invalid_config(
                "a fabric manager needs at least one bundle",
            ));
        }
        let mut bundles = Vec::with_capacity(k);
        for _ in 0..k {
            // A freshly powered-on OCSTrx bundle boots into the safe intra-node
            // loopback and carries no fabric traffic until the cluster manager
            // assigns it a role.
            let mut bundle = Bundle::new(modules)?;
            bundle.activate_loopback()?;
            bundle.set_idle();
            bundles.push(bundle);
        }
        let k = bundles.len();
        Ok(FabricManager {
            node,
            bundles,
            reconfigurations: 0,
            switching_time: Microseconds::ZERO,
            last_command_ids: vec![0; k],
            stale_commands: 0,
        })
    }

    /// The node this manager runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of fabric bundles under management.
    pub fn bundle_count(&self) -> usize {
        self.bundles.len()
    }

    /// Current state of a bundle.
    pub fn bundle_state(&self, bundle: usize) -> Result<BundleState> {
        self.bundles
            .get(bundle)
            .map(Bundle::state)
            .ok_or_else(|| HbdError::unknown_entity(format!("bundle {bundle} on {}", self.node)))
    }

    /// Total OCSTrx reconfigurations executed so far.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Cumulative hardware switching time.
    pub fn switching_time(&self) -> Microseconds {
        self.switching_time
    }

    /// Applies one action to one bundle, returning the hardware switching
    /// latency (zero if the bundle was already in the requested state or the
    /// action is `Idle`).
    pub fn apply(&mut self, bundle: usize, action: BundleAction) -> Result<Microseconds> {
        let b = self
            .bundles
            .get_mut(bundle)
            .ok_or_else(|| HbdError::unknown_entity(format!("bundle {bundle} on {}", self.node)))?;
        let already = matches!(
            (b.state(), action),
            (BundleState::ActivePrimary, BundleAction::ActivatePrimary)
                | (BundleState::ActiveBackup, BundleAction::ActivateBackup)
                | (BundleState::Loopback, BundleAction::Loopback)
                | (BundleState::Idle, BundleAction::Idle)
        );
        if already {
            return Ok(Microseconds::ZERO);
        }
        let latency = match action {
            BundleAction::ActivatePrimary => b.activate_primary()?,
            BundleAction::ActivateBackup => b.activate_backup()?,
            BundleAction::Loopback => b.activate_loopback()?,
            BundleAction::Idle => {
                b.set_idle();
                Microseconds::ZERO
            }
        };
        if latency > Microseconds::ZERO {
            self.reconfigurations += 1;
            self.switching_time += latency;
        }
        Ok(latency)
    }

    /// Applies one command through the at-least-once delivery gate the
    /// simulator's faulty command channel requires.
    ///
    /// Commands carry per-cluster monotone ids (assigned in issue order, so a
    /// *newer* directive for the same bundle always has a *larger* id). The
    /// fabric manager executes a delivery only when its id is strictly newer
    /// than the last id executed on that bundle; duplicated or reordered
    /// stale deliveries are counted and ignored — last-writer-wins, which
    /// keeps retransmissions and overtaking messages idempotent.
    pub fn apply_versioned(
        &mut self,
        command_id: u64,
        bundle: usize,
        action: BundleAction,
    ) -> Result<CommandOutcome> {
        let last = *self
            .last_command_ids
            .get(bundle)
            .ok_or_else(|| HbdError::unknown_entity(format!("bundle {bundle} on {}", self.node)))?;
        if command_id <= last {
            self.stale_commands += 1;
            return Ok(CommandOutcome::Stale);
        }
        self.last_command_ids[bundle] = command_id;
        Ok(CommandOutcome::Applied(self.apply(bundle, action)?))
    }

    /// The newest command id executed on `bundle` (0 when no versioned
    /// command has been executed yet).
    pub fn last_command_id(&self, bundle: usize) -> Result<u64> {
        self.last_command_ids
            .get(bundle)
            .copied()
            .ok_or_else(|| HbdError::unknown_entity(format!("bundle {bundle} on {}", self.node)))
    }

    /// Deliveries rejected by the version gate so far.
    pub fn stale_commands(&self) -> u64 {
        self.stale_commands
    }

    /// Applies a whole node directive. The bundles switch concurrently, so the
    /// returned latency is the maximum over the individual switches.
    pub fn apply_directive(&mut self, directive: &NodeDirective) -> Result<Microseconds> {
        let mut slowest = Microseconds::ZERO;
        for (bundle, action) in directive.iter() {
            slowest = slowest.max(self.apply(bundle, action)?);
        }
        Ok(slowest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_requires_at_least_one_bundle() {
        assert!(FabricManager::new(NodeId(0), 0).is_err());
        let fm = FabricManager::new(NodeId(0), 3).unwrap();
        assert_eq!(fm.bundle_count(), 3);
        assert_eq!(fm.node(), NodeId(0));
        for b in 0..3 {
            assert_eq!(fm.bundle_state(b).unwrap(), BundleState::Idle);
        }
    }

    #[test]
    fn apply_switches_state_and_accounts_latency() {
        let mut fm = FabricManager::new(NodeId(7), 2).unwrap();
        let t = fm.apply(0, BundleAction::ActivatePrimary).unwrap();
        assert!(t > Microseconds::ZERO);
        assert_eq!(fm.bundle_state(0).unwrap(), BundleState::ActivePrimary);
        assert_eq!(fm.reconfigurations(), 1);

        // Re-applying the same action is a no-op.
        let t2 = fm.apply(0, BundleAction::ActivatePrimary).unwrap();
        assert_eq!(t2, Microseconds::ZERO);
        assert_eq!(fm.reconfigurations(), 1);

        // Switching to backup is a real reconfiguration again.
        let t3 = fm.apply(0, BundleAction::ActivateBackup).unwrap();
        assert!(t3 > Microseconds::ZERO);
        assert_eq!(fm.bundle_state(0).unwrap(), BundleState::ActiveBackup);
        assert_eq!(fm.reconfigurations(), 2);
        assert!(fm.switching_time() >= t + t3);
    }

    #[test]
    fn idle_action_is_free() {
        let mut fm = FabricManager::new(NodeId(1), 1).unwrap();
        fm.apply(0, BundleAction::Loopback).unwrap();
        let t = fm.apply(0, BundleAction::Idle).unwrap();
        assert_eq!(t, Microseconds::ZERO);
        assert_eq!(fm.bundle_state(0).unwrap(), BundleState::Idle);
    }

    #[test]
    fn unknown_bundle_is_rejected() {
        let mut fm = FabricManager::new(NodeId(1), 2).unwrap();
        assert!(fm.apply(2, BundleAction::Loopback).is_err());
        assert!(fm.bundle_state(5).is_err());
    }

    #[test]
    fn directive_latency_is_the_slowest_bundle() {
        let mut fm = FabricManager::new(NodeId(2), 3).unwrap();
        // Build a directive through the plan API surface: bundle 0 and 1 carry
        // the distance-1 ring links, bundle 2 stays idle.
        let plan = {
            use crate::plan::RingPlan;
            use crate::wiring::Wiring;
            use topology::RingSegment;
            let wiring = Wiring::new(9, 3, true).unwrap();
            let segment = RingSegment {
                nodes: (0..9).map(NodeId).collect(),
                wraps: false,
            };
            RingPlan::for_segments(&wiring, &[segment]).unwrap()
        };
        let directive = plan.node(NodeId(2));
        let slowest = fm.apply_directive(&directive).unwrap();
        assert!(slowest > Microseconds::ZERO);
        assert!(fm.reconfigurations() >= 2);
        assert!(fm.switching_time() >= slowest);
    }

    #[test]
    fn reconfiguration_latency_is_in_the_paper_range() {
        let mut fm = FabricManager::with_modules(NodeId(3), 2, 8).unwrap();
        let t = fm.apply(0, BundleAction::ActivatePrimary).unwrap();
        assert!(t.value() >= 60.0 && t.value() <= 80.0, "latency {t}");
    }
}
