//! Symbolic execution of the collectives.
//!
//! The closed-form cost formulas are easy to get subtly wrong, so this module
//! actually *runs* the algorithms over symbolic data blocks and checks the
//! outcome: after a Ring-AllReduce every rank must hold the sum of every rank's
//! contribution for every chunk, and after an AllToAll every rank `j` must hold
//! exactly the block that every rank `i` addressed to `j`. Property tests in
//! this module and integration tests in the umbrella crate lean on these
//! simulators.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Symbolic Ring-AllReduce over `ranks` participants and `ranks` chunks.
///
/// Each rank starts with its own contribution to every chunk; the simulation
/// tracks, per `(rank, chunk)`, the set of contributions accumulated so far.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RingAllReduceSim {
    ranks: usize,
    /// `holdings[rank][chunk]` = set of source ranks whose contribution has
    /// been reduced into this rank's copy of the chunk.
    holdings: Vec<Vec<BTreeSet<usize>>>,
    steps_executed: usize,
}

impl RingAllReduceSim {
    /// Creates the initial state: every rank holds only its own contribution to
    /// every chunk.
    pub fn new(ranks: usize) -> Self {
        assert!(ranks >= 2, "a ring needs at least two ranks");
        RingAllReduceSim {
            ranks,
            holdings: (0..ranks)
                .map(|r| (0..ranks).map(|_| BTreeSet::from([r])).collect())
                .collect(),
            steps_executed: 0,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Number of steps executed so far.
    pub fn steps_executed(&self) -> usize {
        self.steps_executed
    }

    /// Runs the whole algorithm: `n − 1` reduce-scatter steps followed by
    /// `n − 1` all-gather steps.
    pub fn run(&mut self) {
        let n = self.ranks;
        // Reduce-scatter: in step s, rank r sends chunk (r - s) mod n to rank
        // r+1, which reduces it into its own copy.
        for s in 0..n - 1 {
            let sends: Vec<(usize, usize, BTreeSet<usize>)> = (0..n)
                .map(|r| {
                    let chunk = (r + n - s) % n;
                    (r, chunk, self.holdings[r][chunk].clone())
                })
                .collect();
            for (r, chunk, contribution) in sends {
                let dst = (r + 1) % n;
                self.holdings[dst][chunk].extend(contribution);
            }
            self.steps_executed += 1;
        }
        // All-gather: in step s, rank r sends its (now complete) chunk
        // (r + 1 - s) mod n to rank r+1, which replaces its copy.
        for s in 0..n - 1 {
            let sends: Vec<(usize, usize, BTreeSet<usize>)> = (0..n)
                .map(|r| {
                    let chunk = (r + 1 + n - s) % n;
                    (r, chunk, self.holdings[r][chunk].clone())
                })
                .collect();
            for (r, chunk, contribution) in sends {
                let dst = (r + 1) % n;
                self.holdings[dst][chunk] = contribution;
            }
            self.steps_executed += 1;
        }
    }

    /// Whether every rank holds the fully reduced value of every chunk.
    pub fn is_complete(&self) -> bool {
        let full: BTreeSet<usize> = (0..self.ranks).collect();
        self.holdings
            .iter()
            .all(|rank| rank.iter().all(|chunk| *chunk == full))
    }

    /// The contributions reduced into `(rank, chunk)` so far.
    pub fn holdings(&self, rank: usize, chunk: usize) -> &BTreeSet<usize> {
        &self.holdings[rank][chunk]
    }
}

/// Symbolic Binary Exchange AllToAll (Algorithm 6 of Appendix G).
///
/// Each rank `i` starts with `p` addressed blocks `(i → j)`. The simulation
/// follows the paper's algorithm: in round `k` (1-based), rank `i` exchanges
/// with `r = i ⊕ 2^(log₂ p − k)`, sending every block it currently holds whose
/// destination lies in `r`'s half of the address space for that round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinaryExchangeSim {
    ranks: usize,
    /// `blocks[holder]` = set of `(source, destination)` blocks currently held.
    blocks: Vec<BTreeSet<(usize, usize)>>,
    rounds_executed: usize,
    transfer_count: usize,
}

impl BinaryExchangeSim {
    /// Creates the initial state. `ranks` must be a power of two (the algorithm
    /// exchanges along address bits).
    pub fn new(ranks: usize) -> Self {
        assert!(ranks >= 2, "AllToAll needs at least two ranks");
        assert!(
            ranks.is_power_of_two(),
            "Binary Exchange needs a power-of-two group"
        );
        BinaryExchangeSim {
            ranks,
            blocks: (0..ranks)
                .map(|i| (0..ranks).map(|j| (i, j)).collect())
                .collect(),
            rounds_executed: 0,
            transfer_count: 0,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Rounds executed so far.
    pub fn rounds_executed(&self) -> usize {
        self.rounds_executed
    }

    /// Total blocks transferred so far (the volume the O(p·log p) bound talks
    /// about).
    pub fn blocks_transferred(&self) -> usize {
        self.transfer_count
    }

    /// Runs all `log₂ p` rounds.
    pub fn run(&mut self) {
        let log_p = self.ranks.trailing_zeros() as usize;
        for k in 1..=log_p {
            let bit = 1usize << (log_p - k);
            // Compute every rank's outgoing set first (synchronous round).
            let mut outgoing: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.ranks];
            for (i, out) in outgoing.iter_mut().enumerate() {
                let partner = i ^ bit;
                for &(src, dst) in &self.blocks[i] {
                    // Send the block if its destination lies on the partner's
                    // side of the current address bit.
                    if dst & bit == partner & bit {
                        out.push((src, dst));
                    }
                }
            }
            for (i, out) in outgoing.iter().enumerate() {
                let partner = i ^ bit;
                for &(src, dst) in out {
                    self.blocks[i].remove(&(src, dst));
                    self.blocks[partner].insert((src, dst));
                    self.transfer_count += 1;
                }
            }
            self.rounds_executed += 1;
        }
    }

    /// Whether every rank holds exactly the blocks addressed to it, one from
    /// every source.
    pub fn is_complete(&self) -> bool {
        self.blocks.iter().enumerate().all(|(holder, blocks)| {
            blocks.len() == self.ranks
                && blocks.iter().all(|&(_, dst)| dst == holder)
                && (0..self.ranks).all(|src| blocks.contains(&(src, holder)))
        })
    }

    /// The blocks currently held by `rank`.
    pub fn blocks_at(&self, rank: usize) -> &BTreeSet<(usize, usize)> {
        &self.blocks[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ring_allreduce_completes_for_small_rings() {
        for ranks in 2..=9 {
            let mut sim = RingAllReduceSim::new(ranks);
            assert!(!sim.is_complete() || ranks == 1);
            sim.run();
            assert!(sim.is_complete(), "ring of {ranks} ranks did not complete");
            assert_eq!(sim.steps_executed(), 2 * (ranks - 1));
        }
    }

    #[test]
    fn ring_allreduce_partial_state_is_not_complete() {
        let sim = RingAllReduceSim::new(4);
        assert!(!sim.is_complete());
        assert_eq!(sim.holdings(2, 2).len(), 1);
    }

    #[test]
    fn binary_exchange_completes_for_powers_of_two() {
        for log_p in 1..=6 {
            let p = 1usize << log_p;
            let mut sim = BinaryExchangeSim::new(p);
            sim.run();
            assert!(sim.is_complete(), "group of {p} ranks did not complete");
            assert_eq!(sim.rounds_executed(), log_p);
        }
    }

    #[test]
    fn binary_exchange_volume_matches_the_bound() {
        // Each round every rank sends p/2 blocks: total transfers = p * p/2 * log p.
        for log_p in 1..=5 {
            let p = 1usize << log_p;
            let mut sim = BinaryExchangeSim::new(p);
            sim.run();
            assert_eq!(sim.blocks_transferred(), p * p / 2 * log_p);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn binary_exchange_rejects_non_power_of_two() {
        let _ = BinaryExchangeSim::new(6);
    }

    #[test]
    fn binary_exchange_partner_pattern_is_xor() {
        // After one round of an 8-rank exchange, rank 0 must hold the blocks
        // rank 4 addressed to the lower half (destinations 0..4).
        let mut sim = BinaryExchangeSim::new(8);
        let log_p = 3;
        let bit = 1usize << (log_p - 1);
        // Run only one round by replicating the loop body.
        let mut outgoing: Vec<Vec<(usize, usize)>> = vec![Vec::new(); 8];
        for (i, out) in outgoing.iter_mut().enumerate() {
            let partner = i ^ bit;
            for &(src, dst) in sim.blocks_at(i) {
                if dst & bit == partner & bit {
                    out.push((src, dst));
                }
            }
        }
        // Rank 4 sends to rank 0 exactly its blocks destined to 0..4.
        assert_eq!(outgoing[4].len(), 4);
        assert!(outgoing[4].iter().all(|&(src, dst)| src == 4 && dst < 4));
        sim.run();
        assert!(sim.is_complete());
    }

    proptest! {
        #[test]
        fn ring_allreduce_always_completes(ranks in 2usize..32) {
            let mut sim = RingAllReduceSim::new(ranks);
            sim.run();
            prop_assert!(sim.is_complete());
        }

        #[test]
        fn binary_exchange_always_completes(log_p in 1u32..8) {
            let p = 1usize << log_p;
            let mut sim = BinaryExchangeSim::new(p);
            sim.run();
            prop_assert!(sim.is_complete());
            prop_assert_eq!(sim.rounds_executed(), log_p as usize);
        }
    }
}
