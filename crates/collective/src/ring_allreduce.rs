//! Ring-AllReduce: step structure, timing and bandwidth utilisation.
//!
//! The ring algorithm is bandwidth-optimal for AllReduce (§2.1): for `n` ranks
//! and a message of `S` bytes per rank, it runs `2(n − 1)` steps, each moving
//! `S / n` bytes per rank (a reduce-scatter phase followed by an all-gather
//! phase), for a total of `2S(n − 1)/n` bytes per rank — the TP traffic volume
//! of Table 3.
//!
//! §5.2 of the paper measures the ring on a 32-GPU prototype: large-message
//! AllReduce achieves 77.11 % of ring bandwidth on 16 GPUs and 77.26 % on 32
//! GPUs (essentially flat in ring size), versus 81.77 % on an NVLink-switched
//! 8-GPU node without SHARP. [`RingUtilization`] reproduces that comparison
//! with an efficiency model: the achievable utilisation is limited by a fixed
//! protocol efficiency plus the latency term, which shrinks as messages grow
//! and grows mildly with ring size.

use crate::cost_model::{AlphaBeta, CollectiveCost};
use hbd_types::Bytes;
use serde::{Deserialize, Serialize};

/// The ring AllReduce algorithm on `ranks` participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingAllReduce {
    /// Number of participating ranks.
    pub ranks: usize,
}

impl RingAllReduce {
    /// Creates a ring over `ranks` participants (at least 2).
    pub fn new(ranks: usize) -> Self {
        assert!(ranks >= 2, "a ring AllReduce needs at least two ranks");
        RingAllReduce { ranks }
    }

    /// Number of communication steps (reduce-scatter + all-gather).
    pub fn steps(&self) -> usize {
        2 * (self.ranks - 1)
    }

    /// Bytes sent per rank per step for a `message` of bytes per rank.
    pub fn bytes_per_step(&self, message: Bytes) -> Bytes {
        Bytes(message.value() / self.ranks as f64)
    }

    /// Total bytes sent per rank: `2·S·(n−1)/n` (Table 3's TP AllReduce volume).
    pub fn total_bytes_per_rank(&self, message: Bytes) -> Bytes {
        Bytes(2.0 * message.value() * (self.ranks as f64 - 1.0) / self.ranks as f64)
    }

    /// Cost of the collective on the given link.
    pub fn cost(&self, message: Bytes, link: &AlphaBeta) -> CollectiveCost {
        let steps = self.steps();
        let per_step = self.bytes_per_step(message);
        CollectiveCost {
            steps,
            bytes_per_rank: self.total_bytes_per_rank(message),
            time: link.steps_time(steps, per_step),
        }
    }
}

/// Bandwidth-utilisation model reproducing the §5.2 measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingUtilization {
    /// Protocol/framing efficiency of the direct GPU-to-GPU ring links
    /// (encoding overhead, flow-control credits, kernel launch gaps).
    pub ring_protocol_efficiency: f64,
    /// Protocol efficiency of the NVLink-switch path (slightly higher because
    /// the switch pipeline hides some per-hop overhead; the paper measures
    /// 81.77 % on an 8-GPU H100 node without SHARP).
    pub switch_protocol_efficiency: f64,
    /// Extra per-rank efficiency penalty per doubling of the ring size
    /// (pipeline fill/drain of the 2(n−1) steps).
    pub per_doubling_penalty: f64,
}

impl RingUtilization {
    /// Model calibrated to the §5.2 measurements.
    pub fn paper_calibrated() -> Self {
        RingUtilization {
            ring_protocol_efficiency: 0.778,
            switch_protocol_efficiency: 0.8177,
            per_doubling_penalty: 0.0008,
        }
    }

    /// Large-message AllReduce bandwidth utilisation of a ring of `ranks` GPUs.
    pub fn ring_utilization(&self, ranks: usize) -> f64 {
        assert!(ranks >= 2, "a ring needs at least two ranks");
        let doublings = (ranks as f64 / 16.0).log2().max(0.0);
        (self.ring_protocol_efficiency - self.per_doubling_penalty * doublings).clamp(0.0, 1.0)
    }

    /// Large-message AllReduce bandwidth utilisation of the NVLink-switch node.
    pub fn switch_utilization(&self) -> f64 {
        self.switch_protocol_efficiency
    }

    /// Small-message latency advantage of direct GPU-to-GPU links over the
    /// switched path (§5.2 reports ~13 % lower latency).
    pub fn direct_link_latency_reduction(&self) -> f64 {
        0.13
    }
}

impl Default for RingUtilization {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::{GBps, Seconds};

    #[test]
    fn step_and_volume_formulas() {
        let ring = RingAllReduce::new(8);
        assert_eq!(ring.steps(), 14);
        let msg = Bytes(8e9);
        assert!((ring.bytes_per_step(msg).value() - 1e9).abs() < 1e-3);
        assert!((ring.total_bytes_per_rank(msg).value() - 2.0 * 8e9 * 7.0 / 8.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn single_rank_ring_is_rejected() {
        let _ = RingAllReduce::new(1);
    }

    #[test]
    fn large_message_utilization_approaches_the_bandwidth_bound() {
        // With zero latency the ring achieves the ideal 2(n-1)/n / (2(n-1)/n)
        // = full utilisation of the algorithm's own bound.
        let link = AlphaBeta::new(Seconds(0.0), GBps(100.0));
        let ring = RingAllReduce::new(16);
        let cost = ring.cost(Bytes(1e10), &link);
        assert!((cost.utilization(&link) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_hurts_small_messages_more() {
        let link = AlphaBeta::new(Seconds(5e-6), GBps(100.0));
        let ring = RingAllReduce::new(16);
        let small = ring.cost(Bytes(1e6), &link);
        let large = ring.cost(Bytes(1e10), &link);
        assert!(small.utilization(&link) < large.utilization(&link));
        assert!(large.utilization(&link) > 0.99);
        assert!(small.utilization(&link) < 0.7);
    }

    #[test]
    fn cost_time_grows_linearly_with_message_size_for_large_messages() {
        let link = AlphaBeta::hbd_default();
        let ring = RingAllReduce::new(32);
        let t1 = ring.cost(Bytes(1e9), &link).time.value();
        let t2 = ring.cost(Bytes(2e9), &link).time.value();
        assert!(t2 / t1 > 1.9 && t2 / t1 < 2.1);
    }

    #[test]
    fn utilization_model_matches_section_5_2() {
        let model = RingUtilization::paper_calibrated();
        let u16 = model.ring_utilization(16);
        let u32 = model.ring_utilization(32);
        assert!((u16 - 0.7711).abs() < 0.01, "16-GPU utilisation {u16}");
        assert!((u32 - 0.7726).abs() < 0.01, "32-GPU utilisation {u32}");
        // Minimal degradation with scaling - within a percentage point.
        assert!((u16 - u32).abs() < 0.01);
        assert!((model.switch_utilization() - 0.8177).abs() < 1e-9);
        // The switched node (without SHARP) is a few points higher than the ring.
        assert!(model.switch_utilization() > u32);
        assert!((model.direct_link_latency_reduction() - 0.13).abs() < 1e-9);
    }

    #[test]
    fn ring_utilization_degrades_slowly_with_size() {
        let model = RingUtilization::paper_calibrated();
        let u64 = model.ring_utilization(64);
        let u1024 = model.ring_utilization(1024);
        assert!(u1024 < u64);
        assert!(u64 - u1024 < 0.01, "degradation should stay small");
    }
}
