//! Reduce-Scatter / All-Gather building blocks and the two-level
//! (intra-node + inter-node) hierarchical AllReduce.
//!
//! The flat Ring-AllReduce of [`crate::RingAllReduce`] treats every GPU as one
//! ring member. On InfiniteHBD the ring is *physically* hierarchical: the GPUs
//! inside a node talk over the UBB baseboard, while node-to-node traffic rides
//! the OCSTrx fabric. Decomposing the AllReduce into an intra-node
//! Reduce-Scatter, an inter-node Ring-AllReduce over node representatives and a
//! final intra-node All-Gather shortens the slow inter-node ring by a factor of
//! `R` (GPUs per node) at the price of two extra fast local phases — the
//! standard trick NCCL applies on multi-GPU nodes, included here so the §5.2
//! utilisation comparison can be reproduced for both organisations.

use crate::cost_model::{AlphaBeta, CollectiveCost};
use crate::ring_allreduce::RingAllReduce;
use hbd_types::{Bytes, Seconds};
use serde::{Deserialize, Serialize};

/// Ring Reduce-Scatter over `ranks` participants: `ranks − 1` steps, each
/// moving `1/ranks` of the buffer; every rank ends with one fully-reduced
/// shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReduceScatter {
    ranks: usize,
}

impl ReduceScatter {
    /// Creates a Reduce-Scatter over `ranks` participants (at least 2).
    pub fn new(ranks: usize) -> Self {
        assert!(ranks >= 2, "Reduce-Scatter needs at least two ranks");
        ReduceScatter { ranks }
    }

    /// Number of ring steps.
    pub fn steps(&self) -> usize {
        self.ranks - 1
    }

    /// Bytes sent by each rank over the whole collective for a `message`-byte
    /// buffer.
    pub fn total_bytes_per_rank(&self, message: Bytes) -> Bytes {
        Bytes(message.value() * (self.ranks - 1) as f64 / self.ranks as f64)
    }

    /// α–β cost on a given link.
    pub fn cost(&self, message: Bytes, link: &AlphaBeta) -> CollectiveCost {
        let chunk = Bytes(message.value() / self.ranks as f64);
        CollectiveCost {
            steps: self.steps(),
            bytes_per_rank: self.total_bytes_per_rank(message),
            time: link.steps_time(self.steps(), chunk),
        }
    }
}

/// Ring All-Gather over `ranks` participants — the mirror image of
/// Reduce-Scatter (same step count and volume, no reduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllGather {
    ranks: usize,
}

impl AllGather {
    /// Creates an All-Gather over `ranks` participants (at least 2).
    pub fn new(ranks: usize) -> Self {
        assert!(ranks >= 2, "All-Gather needs at least two ranks");
        AllGather { ranks }
    }

    /// Number of ring steps.
    pub fn steps(&self) -> usize {
        self.ranks - 1
    }

    /// Bytes sent by each rank for a `message`-byte *output* buffer.
    pub fn total_bytes_per_rank(&self, message: Bytes) -> Bytes {
        Bytes(message.value() * (self.ranks - 1) as f64 / self.ranks as f64)
    }

    /// α–β cost on a given link.
    pub fn cost(&self, message: Bytes, link: &AlphaBeta) -> CollectiveCost {
        let chunk = Bytes(message.value() / self.ranks as f64);
        CollectiveCost {
            steps: self.steps(),
            bytes_per_rank: self.total_bytes_per_rank(message),
            time: link.steps_time(self.steps(), chunk),
        }
    }
}

/// The two-level AllReduce: intra-node Reduce-Scatter, inter-node
/// Ring-AllReduce over one representative GPU per node, intra-node All-Gather.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchicalAllReduce {
    /// GPUs per node participating in the local phases.
    pub gpus_per_node: usize,
    /// Nodes participating in the inter-node ring.
    pub nodes: usize,
}

impl HierarchicalAllReduce {
    /// Creates the hierarchical schedule (`gpus_per_node ≥ 1`, `nodes ≥ 2`).
    pub fn new(gpus_per_node: usize, nodes: usize) -> Self {
        assert!(gpus_per_node >= 1, "need at least one GPU per node");
        assert!(nodes >= 2, "need at least two nodes");
        HierarchicalAllReduce {
            gpus_per_node,
            nodes,
        }
    }

    /// Total GPU ranks covered.
    pub fn ranks(&self) -> usize {
        self.gpus_per_node * self.nodes
    }

    /// End-to-end time for a `message`-byte buffer, with the intra-node phases
    /// on `intra` links and the inter-node ring on `inter` links.
    pub fn time(&self, message: Bytes, intra: &AlphaBeta, inter: &AlphaBeta) -> Seconds {
        let mut total = Seconds::ZERO;
        if self.gpus_per_node >= 2 {
            total += ReduceScatter::new(self.gpus_per_node)
                .cost(message, intra)
                .time;
        }
        // After the local Reduce-Scatter each GPU owns 1/R of the buffer; the
        // inter-node ring AllReduces that shard across nodes.
        let shard = Bytes(message.value() / self.gpus_per_node as f64);
        total += RingAllReduce::new(self.nodes).cost(shard, inter).time;
        if self.gpus_per_node >= 2 {
            total += AllGather::new(self.gpus_per_node).cost(message, intra).time;
        }
        total
    }

    /// Time for the *flat* alternative: one Ring-AllReduce over every GPU,
    /// paced by the slower inter-node link.
    pub fn flat_time(&self, message: Bytes, inter: &AlphaBeta) -> Seconds {
        RingAllReduce::new(self.ranks()).cost(message, inter).time
    }

    /// Speed-up of the hierarchical schedule over the flat ring (> 1 means the
    /// hierarchy wins).
    pub fn speedup(&self, message: Bytes, intra: &AlphaBeta, inter: &AlphaBeta) -> f64 {
        let hier = self.time(message, intra, inter);
        let flat = self.flat_time(message, inter);
        if hier.value() <= 0.0 {
            1.0
        } else {
            flat.value() / hier.value()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn intra() -> AlphaBeta {
        // Intra-node (HBD-class) link: the fast tier of the hierarchy.
        AlphaBeta::hbd_default()
    }

    fn inter() -> AlphaBeta {
        // Inter-node tier an order of magnitude slower (DCN-class), which is
        // when the hierarchical decomposition pays off.
        AlphaBeta::dcn_default()
    }

    #[test]
    fn reduce_scatter_and_all_gather_mirror_each_other() {
        let message = Bytes::from_gib(1.0);
        let rs = ReduceScatter::new(8).cost(message, &inter());
        let ag = AllGather::new(8).cost(message, &inter());
        assert_eq!(rs.steps, 7);
        assert_eq!(rs.steps, ag.steps);
        assert_eq!(rs.bytes_per_rank, ag.bytes_per_rank);
        assert_eq!(rs.time, ag.time);
        // Volume is (R-1)/R of the buffer.
        assert!((rs.bytes_per_rank.value() - message.value() * 7.0 / 8.0).abs() < 1.0);
    }

    #[test]
    fn ring_allreduce_volume_is_reduce_scatter_plus_all_gather() {
        let message = Bytes::from_gib(2.0);
        let ranks = 16;
        let rs = ReduceScatter::new(ranks).total_bytes_per_rank(message);
        let ag = AllGather::new(ranks).total_bytes_per_rank(message);
        let ar = RingAllReduce::new(ranks).total_bytes_per_rank(message);
        assert!((rs.value() + ag.value() - ar.value()).abs() < 1.0);
    }

    #[test]
    fn hierarchy_beats_flat_ring_for_large_messages() {
        // 8-GPU nodes, 32 nodes, 4 GiB gradient buffer.
        let sched = HierarchicalAllReduce::new(8, 32);
        assert_eq!(sched.ranks(), 256);
        let message = Bytes::from_gib(4.0);
        let speedup = sched.speedup(message, &intra(), &inter());
        assert!(speedup > 1.0, "speedup {speedup}");
        // The hierarchical time is dominated by the inter-node phase on a
        // buffer R times smaller, so the win is substantial.
        assert!(speedup > 2.0, "speedup {speedup}");
    }

    #[test]
    fn single_gpu_nodes_degenerate_to_the_flat_ring() {
        let sched = HierarchicalAllReduce::new(1, 16);
        let message = Bytes::from_gib(1.0);
        let hier = sched.time(message, &intra(), &inter());
        let flat = sched.flat_time(message, &inter());
        assert!((hier.value() - flat.value()).abs() < 1e-12);
    }

    #[test]
    fn latency_term_grows_with_step_count() {
        // Tiny message: the alpha term dominates, so more total steps
        // (hierarchical = (R-1) + (N-1) + (R-1)) can lose to the flat ring's
        // (RN - 1) only when RN-1 is larger. Check monotonicity of the cost
        // model rather than a specific winner.
        let tiny = Bytes(1024.0);
        let few_steps = ReduceScatter::new(2).cost(tiny, &inter()).time;
        let many_steps = ReduceScatter::new(64).cost(tiny, &inter()).time;
        assert!(many_steps > few_steps);
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn reduce_scatter_rejects_single_rank() {
        let _ = ReduceScatter::new(1);
    }
}
