//! Timing model for Binary Exchange AllToAll with OCSTrx **fast switching**
//! (Appendix G.1/G.2).
//!
//! On the ±2^i Binary-Hop wiring, node `i`'s partner changes every round
//! (`i ⊕ 2^(log₂p − k)`), so the active OCSTrx path must be re-targeted between
//! rounds. The OCSTrx fast-switch mechanism brings that reconfiguration down to
//! 60–80 µs, which the paper argues "can be overlapped with computation". This
//! module prices both variants — reconfiguration fully exposed and
//! reconfiguration hidden behind the per-round compute of the MoE layer — and
//! compares the result against the `O(p²)` ring AllToAll that a plain K-Hop
//! Ring would have to run.

use crate::alltoall::AllToAllAlgorithm;
use crate::cost_model::AlphaBeta;
use hbd_types::{Bytes, Microseconds, Seconds};
use serde::{Deserialize, Serialize};

/// The reconfiguration behaviour assumed between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReconfigOverlap {
    /// Reconfiguration latency is fully exposed on the critical path.
    Exposed,
    /// Reconfiguration is overlapped with per-round computation of at least the
    /// given duration; only the excess (if any) is exposed.
    OverlappedWithCompute {
        /// Computation available to hide each reconfiguration.
        compute_per_round: Seconds,
    },
}

/// Binary Exchange AllToAll timed with OCSTrx fast switching.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FastSwitchAllToAll {
    /// Number of participating ranks (must be a power of two, ≥ 2).
    pub ranks: usize,
    /// Hardware reconfiguration latency of one fast switch.
    pub reconfig: Microseconds,
    /// Overlap assumption.
    pub overlap: ReconfigOverlap,
}

/// Timing breakdown of one AllToAll execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FastSwitchCost {
    /// Communication rounds.
    pub rounds: usize,
    /// Fast switches per rank (rounds − 1: the first round uses the
    /// pre-configured path).
    pub reconfigurations: usize,
    /// Pure communication time (α–β).
    pub communication: Seconds,
    /// Reconfiguration time left exposed after overlap.
    pub exposed_reconfiguration: Seconds,
}

impl FastSwitchCost {
    /// Total critical-path time.
    pub fn total(&self) -> Seconds {
        self.communication + self.exposed_reconfiguration
    }
}

impl FastSwitchAllToAll {
    /// Creates the schedule with the paper's 70 µs mid-range fast-switch
    /// latency and no overlap.
    pub fn new(ranks: usize) -> Self {
        assert!(
            ranks >= 2 && ranks.is_power_of_two(),
            "ranks must be a power of two >= 2"
        );
        FastSwitchAllToAll {
            ranks,
            reconfig: Microseconds(70.0),
            overlap: ReconfigOverlap::Exposed,
        }
    }

    /// Overrides the reconfiguration latency.
    pub fn with_reconfig(mut self, reconfig: Microseconds) -> Self {
        self.reconfig = reconfig;
        self
    }

    /// Assumes each reconfiguration can hide behind `compute_per_round` of
    /// computation.
    pub fn overlapped(mut self, compute_per_round: Seconds) -> Self {
        self.overlap = ReconfigOverlap::OverlappedWithCompute { compute_per_round };
        self
    }

    /// Prices the collective for a per-destination block of `block` bytes on
    /// the given link.
    pub fn cost(&self, block: Bytes, link: &AlphaBeta) -> FastSwitchCost {
        let algorithm = AllToAllAlgorithm::BinaryExchange;
        let rounds = algorithm.rounds(self.ranks);
        let per_round = algorithm.bytes_per_round(self.ranks, block);
        let communication = link.steps_time(rounds, per_round);
        let reconfigurations = rounds.saturating_sub(1);
        let per_switch = self.reconfig.to_seconds();
        let exposed_per_switch = match self.overlap {
            ReconfigOverlap::Exposed => per_switch,
            ReconfigOverlap::OverlappedWithCompute { compute_per_round } => {
                Seconds((per_switch.value() - compute_per_round.value()).max(0.0))
            }
        };
        FastSwitchCost {
            rounds,
            reconfigurations,
            communication,
            exposed_reconfiguration: Seconds(exposed_per_switch.value() * reconfigurations as f64),
        }
    }

    /// Time of the `O(p²)` ring-shift AllToAll a plain K-Hop Ring would run for
    /// the same block size (no reconfiguration needed, the ring never changes).
    pub fn ring_fallback(&self, block: Bytes, link: &AlphaBeta) -> Seconds {
        let algorithm = AllToAllAlgorithm::RingShift;
        let rounds = algorithm.rounds(self.ranks);
        link.steps_time(rounds, algorithm.bytes_per_round(self.ranks, block))
    }

    /// Speed-up of fast-switched Binary Exchange over the ring fallback.
    pub fn speedup_over_ring(&self, block: Bytes, link: &AlphaBeta) -> f64 {
        let fast = self.cost(block, link).total();
        let ring = self.ring_fallback(block, link);
        if fast.value() <= 0.0 {
            1.0
        } else {
            ring.value() / fast.value()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn link() -> AlphaBeta {
        AlphaBeta::hbd_default()
    }

    #[test]
    fn rounds_and_reconfigurations_scale_logarithmically() {
        let cost = FastSwitchAllToAll::new(16).cost(Bytes::from_mb(64.0), &link());
        assert_eq!(cost.rounds, 4);
        assert_eq!(cost.reconfigurations, 3);
        let cost = FastSwitchAllToAll::new(2).cost(Bytes::from_mb(64.0), &link());
        assert_eq!(cost.rounds, 1);
        assert_eq!(cost.reconfigurations, 0);
    }

    #[test]
    fn exposed_reconfiguration_adds_to_the_critical_path() {
        let block = Bytes::from_mb(1.0);
        let exposed = FastSwitchAllToAll::new(64).cost(block, &link());
        let hidden = FastSwitchAllToAll::new(64)
            .overlapped(Seconds(1.0))
            .cost(block, &link());
        assert_eq!(exposed.communication, hidden.communication);
        assert!(exposed.exposed_reconfiguration > Seconds::ZERO);
        assert_eq!(hidden.exposed_reconfiguration, Seconds::ZERO);
        assert!(exposed.total() > hidden.total());
        // 5 reconfigurations of 70 us.
        assert!((exposed.exposed_reconfiguration.value() - 5.0 * 70e-6).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_exposes_only_the_excess() {
        let block = Bytes::from_mb(1.0);
        let cost = FastSwitchAllToAll::new(16)
            .with_reconfig(Microseconds(80.0))
            .overlapped(Seconds(50e-6))
            .cost(block, &link());
        // 30 us exposed per switch, 3 switches.
        assert!((cost.exposed_reconfiguration.value() - 3.0 * 30e-6).abs() < 1e-12);
    }

    #[test]
    fn binary_exchange_beats_the_ring_for_moderate_group_sizes() {
        // For large blocks the O(p log p) volume beats O(p^2) comfortably even
        // with exposed reconfigurations.
        let schedule = FastSwitchAllToAll::new(32);
        let speedup = schedule.speedup_over_ring(Bytes::from_mb(32.0), &link());
        assert!(speedup > 3.0, "speedup {speedup}");
        // For tiny blocks the reconfiguration overhead can eat the win.
        let tiny = schedule.speedup_over_ring(Bytes(512.0), &link());
        assert!(tiny < speedup);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_groups_are_rejected() {
        let _ = FastSwitchAllToAll::new(12);
    }
}
