//! The α–β (latency–bandwidth) cost model used to price collectives.
//!
//! A message of `n` bytes between two endpoints costs `α + n·β`, where `α` is
//! the per-message setup latency (link + protocol latency, and for OCSTrx-based
//! links optionally a path reconfiguration) and `β` is the inverse bandwidth
//! (seconds per byte). This is the model Appendix G uses to compare the ring
//! AllToAll (`O(p²)`) against Binary Exchange (`O(p·log₂ p)`).

use hbd_types::{Bytes, GBps, Seconds};
use serde::{Deserialize, Serialize};

/// An α–β link model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaBeta {
    /// Per-message setup latency.
    pub alpha: Seconds,
    /// Link bandwidth.
    pub bandwidth: GBps,
}

impl AlphaBeta {
    /// Creates a link model from a setup latency and a bandwidth.
    pub fn new(alpha: Seconds, bandwidth: GBps) -> Self {
        assert!(bandwidth.value() > 0.0, "bandwidth must be positive");
        assert!(alpha.value() >= 0.0, "latency cannot be negative");
        AlphaBeta { alpha, bandwidth }
    }

    /// The HBD link of the paper's setup: 800 GBps per GPU (6.4 Tbps) and a
    /// few microseconds of link latency.
    pub fn hbd_default() -> Self {
        AlphaBeta::new(Seconds(3e-6), GBps(800.0))
    }

    /// The DCN link of the paper's setup: 50 GBps per GPU (400 Gbps NIC) with a
    /// slightly larger latency (NIC + one or more switch hops).
    pub fn dcn_default() -> Self {
        AlphaBeta::new(Seconds(10e-6), GBps(50.0))
    }

    /// Inverse bandwidth in seconds per byte.
    pub fn beta(&self) -> f64 {
        1.0 / (self.bandwidth.value() * 1e9)
    }

    /// Time to send one message of `size` bytes.
    pub fn message_time(&self, size: Bytes) -> Seconds {
        Seconds(self.alpha.value() + size.value() * self.beta())
    }

    /// Time for `steps` messages of `size` bytes each, sent back to back.
    pub fn steps_time(&self, steps: usize, size: Bytes) -> Seconds {
        Seconds(steps as f64 * self.message_time(size).value())
    }
}

/// The cost of a collective operation, broken down into latency and bandwidth
/// terms so utilisation can be derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveCost {
    /// Number of communication steps on the critical path.
    pub steps: usize,
    /// Total bytes sent by the busiest participant.
    pub bytes_per_rank: Bytes,
    /// Total wall-clock time of the collective.
    pub time: Seconds,
}

impl CollectiveCost {
    /// Effective per-rank bandwidth achieved by the collective.
    pub fn effective_bandwidth(&self) -> GBps {
        if self.time.value() <= 0.0 {
            return GBps::ZERO;
        }
        GBps(self.bytes_per_rank.value() / self.time.value() / 1e9)
    }

    /// Bandwidth utilisation relative to the raw link bandwidth.
    pub fn utilization(&self, link: &AlphaBeta) -> f64 {
        (self.effective_bandwidth().value() / link.bandwidth.value()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_is_alpha_plus_size_over_bandwidth() {
        let link = AlphaBeta::new(Seconds(1e-6), GBps(100.0));
        let t = link.message_time(Bytes(1e9));
        assert!((t.value() - (1e-6 + 0.01)).abs() < 1e-12);
        let t2 = link.steps_time(3, Bytes(1e9));
        assert!((t2.value() - 3.0 * t.value()).abs() < 1e-12);
    }

    #[test]
    fn defaults_reflect_paper_bandwidths() {
        assert_eq!(AlphaBeta::hbd_default().bandwidth, GBps(800.0));
        assert_eq!(AlphaBeta::dcn_default().bandwidth, GBps(50.0));
        assert!(AlphaBeta::hbd_default().alpha.value() < AlphaBeta::dcn_default().alpha.value());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_is_rejected() {
        let _ = AlphaBeta::new(Seconds(0.0), GBps(0.0));
    }

    #[test]
    fn effective_bandwidth_and_utilization() {
        let link = AlphaBeta::new(Seconds(0.0), GBps(100.0));
        let cost = CollectiveCost {
            steps: 4,
            bytes_per_rank: Bytes(50e9),
            time: Seconds(1.0),
        };
        assert!((cost.effective_bandwidth().value() - 50.0).abs() < 1e-9);
        assert!((cost.utilization(&link) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_time_collective_has_zero_bandwidth() {
        let cost = CollectiveCost {
            steps: 0,
            bytes_per_rank: Bytes(0.0),
            time: Seconds(0.0),
        };
        assert_eq!(cost.effective_bandwidth(), GBps::ZERO);
    }
}
