//! Collective-communication algorithms and cost models.
//!
//! InfiniteHBD is optimised for **Ring-AllReduce** (the bandwidth-optimal
//! AllReduce on a ring, used by TP), and Appendix G explores how the topology
//! could also serve **AllToAll** (used by EP) through the Binary Exchange
//! algorithm enabled by the OCSTrx fast-switch mechanism. This crate provides:
//!
//! * [`cost_model`] — the classic α–β (latency–bandwidth) cost model used to
//!   price every collective,
//! * [`ring_allreduce`] — step structure, timing and bandwidth utilisation of
//!   the ring algorithm (the §5.2 mini-cluster comparison),
//! * [`alltoall`] — the AllToAll family: naive ring exchange (O(p²)), pairwise
//!   exchange, Bruck, and the Binary Exchange algorithm of Appendix G
//!   (O(p·log p) volume, no node-level loopback required),
//! * [`simulate`] — symbolic execution of the collectives (who holds which data
//!   block after every step), so property tests can verify correctness rather
//!   than trusting the closed-form formulas,
//! * [`hierarchical`] — Reduce-Scatter / All-Gather and the two-level
//!   (intra-node + inter-node) AllReduce used on multi-GPU nodes,
//! * [`fast_switch`] — Binary Exchange timed with the OCSTrx fast-switch
//!   reconfiguration (exposed or overlapped with compute).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alltoall;
pub mod cost_model;
pub mod fast_switch;
pub mod hierarchical;
pub mod ring_allreduce;
pub mod simulate;

pub use alltoall::{AllToAllAlgorithm, AllToAllCost};
pub use cost_model::{AlphaBeta, CollectiveCost};
pub use fast_switch::{FastSwitchAllToAll, FastSwitchCost, ReconfigOverlap};
pub use hierarchical::{AllGather, HierarchicalAllReduce, ReduceScatter};
pub use ring_allreduce::{RingAllReduce, RingUtilization};
pub use simulate::{BinaryExchangeSim, RingAllReduceSim};
