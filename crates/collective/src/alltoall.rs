//! The AllToAll algorithm family (Appendix G and §7).
//!
//! On a ring topology without fast switching, AllToAll degenerates to `p − 1`
//! rounds of neighbour exchange in which every block travels `O(p)` hops —
//! `O(p²)` total volume per rank. With the OCSTrx fast-switch mechanism and the
//! `±2ⁱ` backup-link wiring, InfiniteHBD can instead run **Binary Exchange**:
//! `log₂ p` rounds in which rank `i` talks to rank `i ⊕ 2^(log₂ p − k)` and
//! forwards half of its accumulated payload, for `O(p·log₂ p)` volume. The
//! classic Bruck and pairwise-exchange algorithms are included for comparison
//! (they need node-level loopback or all-to-all reachability, which InfiniteHBD
//! does not provide, but they are the standard baselines).

use crate::cost_model::{AlphaBeta, CollectiveCost};
use hbd_types::Bytes;
use serde::{Deserialize, Serialize};

/// The AllToAll algorithms analysed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllToAllAlgorithm {
    /// Neighbour-shift on the ring: `p − 1` rounds, every rank forwards the
    /// full residual payload each round — the `O(p²)` case of §7.
    RingShift,
    /// Pairwise exchange: `p − 1` rounds, each rank exchanges exactly the block
    /// destined for its partner (requires all-to-all reachability).
    PairwiseExchange,
    /// Bruck's algorithm: `⌈log₂ p⌉` rounds of bulk forwarding (requires
    /// node-level loopback).
    Bruck,
    /// Binary Exchange on the `±2ⁱ` wiring with OCSTrx fast switching
    /// (Appendix G.2) — the algorithm InfiniteHBD can actually run.
    BinaryExchange,
}

impl AllToAllAlgorithm {
    /// All algorithms, in the order used by the Appendix-G discussion.
    pub const ALL: [AllToAllAlgorithm; 4] = [
        AllToAllAlgorithm::RingShift,
        AllToAllAlgorithm::PairwiseExchange,
        AllToAllAlgorithm::Bruck,
        AllToAllAlgorithm::BinaryExchange,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AllToAllAlgorithm::RingShift => "Ring shift",
            AllToAllAlgorithm::PairwiseExchange => "Pairwise exchange",
            AllToAllAlgorithm::Bruck => "Bruck",
            AllToAllAlgorithm::BinaryExchange => "Binary Exchange",
        }
    }

    /// Whether InfiniteHBD's topology can execute the algorithm without extra
    /// capabilities (node-level loopback or full-mesh reachability).
    pub fn supported_by_infinitehbd(&self) -> bool {
        matches!(
            self,
            AllToAllAlgorithm::RingShift | AllToAllAlgorithm::BinaryExchange
        )
    }

    /// Number of communication rounds for `p` ranks.
    pub fn rounds(&self, p: usize) -> usize {
        assert!(p >= 2, "AllToAll needs at least two ranks");
        match self {
            AllToAllAlgorithm::RingShift | AllToAllAlgorithm::PairwiseExchange => p - 1,
            AllToAllAlgorithm::Bruck | AllToAllAlgorithm::BinaryExchange => ceil_log2(p),
        }
    }

    /// Bytes sent per rank per round, for a per-destination block of `block`
    /// bytes (each rank holds `p` blocks initially).
    pub fn bytes_per_round(&self, p: usize, block: Bytes) -> Bytes {
        assert!(p >= 2, "AllToAll needs at least two ranks");
        match self {
            // Each round the rank forwards everything it still has to pass on:
            // on average p/2 blocks.
            AllToAllAlgorithm::RingShift => Bytes(block.value() * p as f64 / 2.0),
            // Exactly one block per round.
            AllToAllAlgorithm::PairwiseExchange => block,
            // Half of the total payload per round.
            AllToAllAlgorithm::Bruck | AllToAllAlgorithm::BinaryExchange => {
                Bytes(block.value() * p as f64 / 2.0)
            }
        }
    }

    /// Total bytes sent per rank over the whole collective.
    pub fn total_bytes_per_rank(&self, p: usize, block: Bytes) -> Bytes {
        Bytes(self.rounds(p) as f64 * self.bytes_per_round(p, block).value())
    }

    /// Asymptotic volume class as a human-readable string.
    pub fn complexity(&self) -> &'static str {
        match self {
            AllToAllAlgorithm::RingShift => "O(p^2)",
            AllToAllAlgorithm::PairwiseExchange => "O(p)",
            AllToAllAlgorithm::Bruck | AllToAllAlgorithm::BinaryExchange => "O(p log p)",
        }
    }

    /// α–β cost of the collective, optionally charging a per-round topology
    /// reconfiguration (the OCSTrx fast switch) on top of the link α.
    pub fn cost(
        &self,
        p: usize,
        block: Bytes,
        link: &AlphaBeta,
        reconfig_per_round: hbd_types::Seconds,
    ) -> AllToAllCost {
        let rounds = self.rounds(p);
        let per_round = self.bytes_per_round(p, block);
        let round_time = link.message_time(per_round).value() + reconfig_per_round.value();
        AllToAllCost {
            algorithm: *self,
            ranks: p,
            cost: CollectiveCost {
                steps: rounds,
                bytes_per_rank: self.total_bytes_per_rank(p, block),
                time: hbd_types::Seconds(rounds as f64 * round_time),
            },
        }
    }
}

/// The priced result of an AllToAll run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllToAllCost {
    /// Which algorithm was priced.
    pub algorithm: AllToAllAlgorithm,
    /// Group size.
    pub ranks: usize,
    /// The underlying cost breakdown.
    pub cost: CollectiveCost,
}

fn ceil_log2(p: usize) -> usize {
    assert!(p >= 1);
    (usize::BITS - (p - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::Seconds;

    #[test]
    fn round_counts() {
        assert_eq!(AllToAllAlgorithm::RingShift.rounds(8), 7);
        assert_eq!(AllToAllAlgorithm::PairwiseExchange.rounds(8), 7);
        assert_eq!(AllToAllAlgorithm::Bruck.rounds(8), 3);
        assert_eq!(AllToAllAlgorithm::BinaryExchange.rounds(8), 3);
        assert_eq!(AllToAllAlgorithm::BinaryExchange.rounds(9), 4);
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn single_rank_is_rejected() {
        let _ = AllToAllAlgorithm::Bruck.rounds(1);
    }

    #[test]
    fn binary_exchange_volume_is_p_log_p() {
        let block = Bytes(1e6);
        for &p in &[4usize, 8, 16, 64, 256] {
            let total = AllToAllAlgorithm::BinaryExchange
                .total_bytes_per_rank(p, block)
                .value();
            let expected = (p as f64 / 2.0) * (p as f64).log2() * 1e6;
            assert!(
                (total - expected).abs() / expected < 1e-9,
                "p={p}: {total} vs {expected}"
            );
        }
    }

    #[test]
    fn ring_shift_volume_is_quadratic() {
        let block = Bytes(1e6);
        let v8 = AllToAllAlgorithm::RingShift
            .total_bytes_per_rank(8, block)
            .value();
        let v16 = AllToAllAlgorithm::RingShift
            .total_bytes_per_rank(16, block)
            .value();
        // Doubling p should roughly quadruple the volume (p(p-1)/2 blocks).
        assert!(v16 / v8 > 3.0 && v16 / v8 < 5.0);
    }

    #[test]
    fn binary_exchange_beats_ring_shift_for_large_groups() {
        let link = AlphaBeta::hbd_default();
        let block = Bytes(4e6);
        let reconfig = Seconds(70e-6);
        for &p in &[16usize, 64, 256] {
            let ring = AllToAllAlgorithm::RingShift.cost(p, block, &link, Seconds::ZERO);
            let be = AllToAllAlgorithm::BinaryExchange.cost(p, block, &link, reconfig);
            assert!(
                be.cost.time.value() < ring.cost.time.value(),
                "p={p}: binary exchange should win even paying reconfiguration"
            );
        }
    }

    #[test]
    fn pairwise_sends_the_least_but_needs_full_mesh() {
        let block = Bytes(1e6);
        let p = 32;
        let pairwise = AllToAllAlgorithm::PairwiseExchange.total_bytes_per_rank(p, block);
        let bruck = AllToAllAlgorithm::Bruck.total_bytes_per_rank(p, block);
        assert!(pairwise.value() < bruck.value());
        assert!(!AllToAllAlgorithm::PairwiseExchange.supported_by_infinitehbd());
        assert!(!AllToAllAlgorithm::Bruck.supported_by_infinitehbd());
        assert!(AllToAllAlgorithm::BinaryExchange.supported_by_infinitehbd());
        assert!(AllToAllAlgorithm::RingShift.supported_by_infinitehbd());
    }

    #[test]
    fn complexity_strings_and_names() {
        assert_eq!(AllToAllAlgorithm::RingShift.complexity(), "O(p^2)");
        assert_eq!(AllToAllAlgorithm::BinaryExchange.complexity(), "O(p log p)");
        assert_eq!(AllToAllAlgorithm::ALL.len(), 4);
        for algo in AllToAllAlgorithm::ALL {
            assert!(!algo.name().is_empty());
        }
    }

    #[test]
    fn reconfiguration_overhead_is_charged_per_round() {
        let link = AlphaBeta::hbd_default();
        let block = Bytes(1e6);
        let without = AllToAllAlgorithm::BinaryExchange.cost(16, block, &link, Seconds::ZERO);
        let with = AllToAllAlgorithm::BinaryExchange.cost(16, block, &link, Seconds(70e-6));
        let delta = with.cost.time.value() - without.cost.time.value();
        assert!((delta - 4.0 * 70e-6).abs() < 1e-9);
    }
}
