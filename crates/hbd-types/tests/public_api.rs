//! Black-box tests of the `hbd-types` public API — the surface every other
//! crate in the workspace consumes. Unlike the in-module unit tests these only
//! see what `pub use` actually exports, so they catch accidental visibility or
//! re-export regressions in the crate everything depends on.

use hbd_types::{
    Bytes, ClusterConfig, Dollars, GBps, Gbps, GpuId, GpuSpec, HbdError, LinkId, Microseconds,
    NodeId, NodeSize, Result, Seconds, SwitchId, ToRId, TrxId, Watts,
};
use std::collections::BTreeMap;

#[test]
fn unit_conversions_compose() {
    // 800 Gbps OCSTrx -> 100 GBps payload; 348-day trace; 80 µs fast switch.
    assert!((Gbps(800.0).to_gbytes_per_sec().value() - 100.0).abs() < 1e-12);
    assert!((Seconds::from_days(348.0).value() - 348.0 * 86_400.0).abs() < 1e-6);
    assert!((Seconds::from_hours(24.0).as_days() - 1.0).abs() < 1e-12);
    assert!((Microseconds(80.0).to_seconds().to_micros().value() - 80.0).abs() < 1e-12);
    assert!((Bytes::from_mb(4.0).value() - 4e6).abs() < 1e-9);
    // Transfer timing feeds the alpha-beta cost model: 1 GiB at 100 GBps.
    let t = GBps(100.0).transfer_time(Bytes::from_gib(1.0));
    assert!((t.value() - (1u64 << 30) as f64 / 1e11).abs() < 1e-15);
}

#[test]
fn units_serialize_transparently() {
    // `#[serde(transparent)]`: a unit must serialise as its bare number so
    // traces and reports stay tool-friendly.
    let json = serde_json::to_string(&Seconds(12.5)).unwrap();
    assert_eq!(json, "12.5");
    let back: Seconds = serde_json::from_str(&json).unwrap();
    assert_eq!(back, Seconds(12.5));
    let w: Watts = serde_json::from_str("75.95").unwrap();
    assert_eq!(w, Watts(75.95));
}

#[test]
fn id_newtypes_are_distinct_types_with_shared_behaviour() {
    // Every id kind exposes the same index API...
    assert_eq!(NodeId::new(7).index(), 7);
    assert_eq!(GpuId::new(3).offset(2), GpuId(5));
    assert_eq!(TrxId(0).checked_sub(1), None);
    assert_eq!(ToRId(9).checked_sub(4), Some(ToRId(5)));
    assert_eq!(SwitchId::from(11usize), SwitchId(11));
    assert_eq!(usize::from(LinkId(13)), 13);
    // ...and serialises as a bare index (transparent newtype).
    assert_eq!(serde_json::to_string(&NodeId(42)).unwrap(), "42");
    let back: NodeId = serde_json::from_str("42").unwrap();
    assert_eq!(back, NodeId(42));
}

#[test]
fn ids_work_as_ordered_map_keys() {
    let mut per_node: BTreeMap<NodeId, usize> = BTreeMap::new();
    for raw in [5usize, 1, 3] {
        per_node.insert(NodeId(raw), raw * 10);
    }
    let keys: Vec<NodeId> = per_node.keys().copied().collect();
    assert_eq!(keys, vec![NodeId(1), NodeId(3), NodeId(5)]);
    // Id-keyed maps round-trip through JSON (encoded as [key, value] pairs).
    let json = serde_json::to_string(&per_node).unwrap();
    let back: BTreeMap<NodeId, usize> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, per_node);
}

#[test]
fn gpu_node_arithmetic_is_consistent_for_both_node_sizes() {
    for node_size in [NodeSize::Four, NodeSize::Eight] {
        let r = node_size.gpus();
        let gpu = GpuId(3 * r + (r - 1)); // last GPU of node 3
        assert_eq!(gpu.node(r), NodeId(3));
        assert_eq!(gpu.local_rank(r), r - 1);
        assert_eq!(GpuId::from_node_rank(NodeId(3), r - 1, r), gpu);
        assert_eq!(NodeId(3).gpus(r).count(), r);
    }
}

#[test]
fn config_validation_reports_each_degenerate_parameter() {
    let cases: [(Result<ClusterConfig>, &str); 3] = [
        (ClusterConfig::new(0, NodeSize::Four, 16, 4), "node"),
        (
            ClusterConfig::new(720, NodeSize::Four, 0, 4),
            "nodes_per_tor",
        ),
        (
            ClusterConfig::new(720, NodeSize::Four, 16, 0),
            "tors_per_aggregation_domain",
        ),
    ];
    for (result, expected_fragment) in cases {
        match result {
            Err(HbdError::InvalidConfig { reason }) => assert!(
                reason.contains(expected_fragment),
                "reason {reason:?} should mention {expected_fragment:?}"
            ),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
    let mut config = ClusterConfig::paper_2880_gpu();
    config.gpu.peak_tflops = -1.0;
    assert!(matches!(
        config.validate(),
        Err(HbdError::InvalidConfig { .. })
    ));
}

#[test]
fn node_size_rejects_unsupported_gpu_counts() {
    for gpus in [0usize, 1, 2, 6, 16] {
        let err = NodeSize::from_gpus(gpus).unwrap_err();
        assert!(err.to_string().contains("unsupported node size"));
    }
}

#[test]
fn cluster_config_round_trips_through_json() {
    let config = ClusterConfig::paper_8192_gpu();
    let json = serde_json::to_string_pretty(&config).unwrap();
    let back: ClusterConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, config);
    assert_eq!(back.total_gpus(), 8192);
}

#[test]
fn gpu_spec_defaults_to_the_papers_h100() {
    let spec = GpuSpec::default();
    assert_eq!(spec, GpuSpec::h100());
    assert!((spec.hbd_gbyteps().value() - 800.0).abs() < 1e-9);
    let json = serde_json::to_string(&spec).unwrap();
    let back: GpuSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back, spec);
}

#[test]
fn error_constructors_match_variants_and_display() {
    let err = HbdError::infeasible("job needs 4096 GPUs");
    assert_eq!(err.to_string(), "infeasible request: job needs 4096 GPUs");
    assert!(matches!(err, HbdError::Infeasible { .. }));
    let err = HbdError::unknown_entity("N99");
    assert!(matches!(err, HbdError::UnknownEntity { .. }));
    let err = HbdError::invalid_operation("double activation");
    assert!(matches!(err, HbdError::InvalidOperation { .. }));
    // HbdError satisfies std::error::Error so it can cross ?-boundaries.
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(boxed.to_string().contains("invalid operation"));
}

#[test]
fn dollars_and_watts_normalise_per_gbps() {
    // The Table-6 normalisation: cost / bandwidth and power / bandwidth are
    // plain f64 ratios, not unit types.
    let per_gbps: f64 = Dollars(9000.0) / GBps(900.0);
    assert!((per_gbps - 10.0).abs() < 1e-12);
    let watts_per_gbps: f64 = Watts(90.0) / GBps(900.0);
    assert!((watts_per_gbps - 0.1).abs() < 1e-12);
}
