//! Strongly-typed identifiers for the entities of an AI datacenter.
//!
//! All identifiers are zero-based dense indices. The simulator never uses sparse
//! or universally-unique identifiers: every experiment operates on a fixed-size
//! cluster, so dense indices keep the data structures flat (`Vec`-indexable) and
//! the arithmetic used by the topology and orchestration algorithms (e.g. "node
//! `n` connects to node `n ± r`") straightforward.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Implements the common boilerplate of an index newtype.
macro_rules! index_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub usize);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the raw zero-based index.
            pub const fn index(self) -> usize {
                self.0
            }

            /// Returns the identifier `offset` positions after this one.
            pub const fn offset(self, offset: usize) -> Self {
                Self(self.0 + offset)
            }

            /// Returns the identifier `offset` positions before this one, or
            /// `None` if that would underflow.
            pub fn checked_sub(self, offset: usize) -> Option<Self> {
                self.0.checked_sub(offset).map(Self)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

index_id!(
    /// Identifier of a compute node (a server holding `R` GPUs and `R` OCSTrx
    /// bundles). Node indices follow the physical deployment order in the
    /// datacenter, which is the order used by the K-Hop Ring wiring.
    NodeId,
    "N"
);

index_id!(
    /// Identifier of a single GPU within the whole cluster (not within a node).
    /// GPU `g` lives on node `g / R` at local rank `g % R`.
    GpuId,
    "G"
);

index_id!(
    /// Identifier of an OCSTrx bundle within the whole cluster.
    TrxId,
    "T"
);

index_id!(
    /// Identifier of a Top-of-Rack switch in the DCN.
    ToRId,
    "ToR"
);

index_id!(
    /// Identifier of a switch chip inside an HBD (NVLink switch, centralized OCS
    /// plane, aggregation switch, ...).
    SwitchId,
    "S"
);

index_id!(
    /// Identifier of a physical link (fiber or copper) between two endpoints.
    LinkId,
    "L"
);

impl GpuId {
    /// Returns the node this GPU belongs to, given `gpus_per_node`.
    pub fn node(self, gpus_per_node: usize) -> NodeId {
        assert!(gpus_per_node > 0, "gpus_per_node must be positive");
        NodeId(self.0 / gpus_per_node)
    }

    /// Returns the local rank of this GPU within its node.
    pub fn local_rank(self, gpus_per_node: usize) -> usize {
        assert!(gpus_per_node > 0, "gpus_per_node must be positive");
        self.0 % gpus_per_node
    }

    /// Builds the global GPU id from a node and a local rank.
    pub fn from_node_rank(node: NodeId, local_rank: usize, gpus_per_node: usize) -> Self {
        assert!(
            local_rank < gpus_per_node,
            "local rank {local_rank} out of range for {gpus_per_node}-GPU node"
        );
        GpuId(node.0 * gpus_per_node + local_rank)
    }
}

impl NodeId {
    /// Returns the GPUs hosted on this node, given `gpus_per_node`.
    pub fn gpus(self, gpus_per_node: usize) -> impl Iterator<Item = GpuId> {
        let base = self.0 * gpus_per_node;
        (base..base + gpus_per_node).map(GpuId)
    }

    /// Returns the ToR this node is attached to, given `nodes_per_tor`.
    pub fn tor(self, nodes_per_tor: usize) -> ToRId {
        assert!(nodes_per_tor > 0, "nodes_per_tor must be positive");
        ToRId(self.0 / nodes_per_tor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(NodeId(3).to_string(), "N3");
        assert_eq!(GpuId(0).to_string(), "G0");
        assert_eq!(TrxId(7).to_string(), "T7");
        assert_eq!(ToRId(2).to_string(), "ToR2");
        assert_eq!(SwitchId(9).to_string(), "S9");
        assert_eq!(LinkId(1).to_string(), "L1");
    }

    #[test]
    fn gpu_node_mapping_roundtrips() {
        for gpus_per_node in [1usize, 4, 8] {
            for raw in 0..64usize {
                let gpu = GpuId(raw);
                let node = gpu.node(gpus_per_node);
                let rank = gpu.local_rank(gpus_per_node);
                assert_eq!(GpuId::from_node_rank(node, rank, gpus_per_node), gpu);
            }
        }
    }

    #[test]
    fn node_gpu_enumeration_matches_mapping() {
        let node = NodeId(5);
        let gpus: Vec<GpuId> = node.gpus(4).collect();
        assert_eq!(gpus, vec![GpuId(20), GpuId(21), GpuId(22), GpuId(23)]);
        for gpu in gpus {
            assert_eq!(gpu.node(4), node);
        }
    }

    #[test]
    fn node_to_tor_mapping() {
        assert_eq!(NodeId(0).tor(4), ToRId(0));
        assert_eq!(NodeId(3).tor(4), ToRId(0));
        assert_eq!(NodeId(4).tor(4), ToRId(1));
        assert_eq!(NodeId(15).tor(4), ToRId(3));
    }

    #[test]
    fn offsets_and_checked_sub() {
        assert_eq!(NodeId(3).offset(2), NodeId(5));
        assert_eq!(NodeId(3).checked_sub(2), Some(NodeId(1)));
        assert_eq!(NodeId(1).checked_sub(2), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_node_rank_rejects_out_of_range_rank() {
        let _ = GpuId::from_node_rank(NodeId(0), 4, 4);
    }

    #[test]
    fn conversions_to_and_from_usize() {
        let id: NodeId = 12usize.into();
        assert_eq!(id, NodeId(12));
        let raw: usize = id.into();
        assert_eq!(raw, 12);
    }

    #[test]
    fn serde_roundtrip_is_transparent() {
        let id = NodeId(42);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "42");
        let back: NodeId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
