//! An epoch-swapped cell for read-mostly shared state.
//!
//! The serving layer of the orchestrator answers many concurrent placement
//! queries against one slowly-mutating cluster snapshot. [`EpochCell`] is the
//! primitive behind that pattern: a single slot holding an
//! `Arc<Versioned<T>>` that writers replace wholesale ([`EpochCell::publish`])
//! and readers clone out ([`EpochCell::load`]). Published values are immutable
//! — a reader that loaded epoch `e` keeps a consistent view of epoch `e` for
//! as long as it holds the `Arc`, no matter how many newer epochs are
//! published underneath it. There are no torn reads by construction: the unit
//! of exchange is the whole `Arc`.
//!
//! The workspace forbids `unsafe`, so the slot is a [`RwLock`] rather than a
//! hand-rolled atomic pointer swap; readers hold the read lock only for the
//! duration of one `Arc::clone` (no allocation, no user code), which keeps the
//! read path effectively wait-free for the coarse-grained workloads this cell
//! serves. The epoch counter is additionally mirrored in a lock-free
//! [`AtomicU64`] so cheap staleness probes ([`EpochCell::epoch`]) never touch
//! the lock at all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LockResult, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Unwraps a read-lock result, recovering the guard from a poisoned lock —
/// the slot is always a complete `Arc`, never half-written, so the value
/// under a poisoned lock is still coherent.
fn read_or_recover<T>(result: LockResult<RwLockReadGuard<'_, T>>) -> RwLockReadGuard<'_, T> {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The write-lock counterpart of [`read_or_recover`].
fn read_or_recover_mut<T>(result: LockResult<RwLockWriteGuard<'_, T>>) -> RwLockWriteGuard<'_, T> {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A value paired with the monotonically increasing epoch at which it was
/// published. Epoch 0 is the initial value passed to [`EpochCell::new`].
#[derive(Debug)]
pub struct Versioned<T> {
    /// The publication epoch (0 for the initial value, then 1, 2, ...).
    pub epoch: u64,
    /// The published value. Immutable once published.
    pub value: T,
}

/// A read-mostly cell whose value is replaced wholesale by writers and shared
/// by `Arc` with readers. See the module docs for the protocol.
#[derive(Debug)]
pub struct EpochCell<T> {
    /// Lock-free mirror of the current epoch for staleness probes.
    epoch: AtomicU64,
    /// The slot. Writers serialise on the write lock; readers take the read
    /// lock only long enough to clone the `Arc`.
    slot: RwLock<Arc<Versioned<T>>>,
}

impl<T> EpochCell<T> {
    /// Creates the cell holding `value` at epoch 0.
    pub fn new(value: T) -> Self {
        EpochCell {
            epoch: AtomicU64::new(0),
            slot: RwLock::new(Arc::new(Versioned { epoch: 0, value })),
        }
    }

    /// Returns the currently published value. The returned `Arc` pins that
    /// epoch's value for the caller regardless of later publishes.
    pub fn load(&self) -> Arc<Versioned<T>> {
        // Publishers cannot poison the slot through the cell's own API
        // (`publish_with` catches writer panics), but a reader must stay
        // usable even if a lock is ever poisoned some other way: the slot
        // always holds a complete `Arc`, so recovering the inner value is
        // sound.
        Arc::clone(&read_or_recover(self.slot.read()))
    }

    /// The epoch of the currently published value — a lock-free staleness
    /// probe. `epoch() > snapshot.epoch` means `snapshot` is stale; equality
    /// means it *was* current at the probe (a publish may race immediately
    /// after, as with any such check).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes `value` as the next epoch and returns that epoch. Writers
    /// serialise on the slot's write lock, so epochs are strictly monotone and
    /// every published epoch carries exactly one value.
    pub fn publish(&self, value: T) -> u64 {
        let mut slot = read_or_recover_mut(self.slot.write());
        let epoch = slot.epoch + 1;
        *slot = Arc::new(Versioned { epoch, value });
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// Publishes the value computed by `f` from the currently published one,
    /// atomically with respect to other publishers: the write lock is held
    /// across both the read of the current slot and the swap, so no other
    /// publish can interleave. This is the delta-publish primitive — `f`
    /// typically clones the current value and applies a small edit, making
    /// the publish cost proportional to the delta rather than re-deriving
    /// the whole value outside the cell and racing other writers.
    ///
    /// # Panic safety
    ///
    /// A panic inside `f` is caught while the write lock is held, the lock is
    /// released cleanly (no epoch is published, the current value stays
    /// current) and the panic is then resumed on the caller's thread. The
    /// cell stays fully readable and writable for everyone else — a crashing
    /// writer must not take the whole store down with it. As a second line of
    /// defence, [`load`](Self::load) and the publish paths also recover the
    /// inner value from a poisoned lock (the slot itself is never left
    /// half-written: the swap is a single `Arc` assignment performed only
    /// after `f` returned normally).
    pub fn publish_with<F: FnOnce(&Versioned<T>) -> T>(&self, f: F) -> u64 {
        let mut slot = read_or_recover_mut(self.slot.write());
        let value = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&slot))) {
            Ok(value) => value,
            Err(payload) => {
                // Release the lock un-poisoned, then let the panic continue.
                drop(slot);
                std::panic::resume_unwind(payload);
            }
        };
        let epoch = slot.epoch + 1;
        *slot = Arc::new(Versioned { epoch, value });
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_is_epoch_zero() {
        let cell = EpochCell::new(41);
        assert_eq!(cell.epoch(), 0);
        let v = cell.load();
        assert_eq!((v.epoch, v.value), (0, 41));
    }

    #[test]
    fn publish_bumps_the_epoch_and_swaps_the_value() {
        let cell = EpochCell::new("a".to_string());
        assert_eq!(cell.publish("b".to_string()), 1);
        assert_eq!(cell.publish("c".to_string()), 2);
        assert_eq!(cell.epoch(), 2);
        let v = cell.load();
        assert_eq!((v.epoch, v.value.as_str()), (2, "c"));
    }

    #[test]
    fn publish_with_derives_from_the_current_value_atomically() {
        let cell = EpochCell::new(10u64);
        assert_eq!(cell.publish_with(|cur| cur.value + 5), 1);
        assert_eq!(cell.load().value, 15);
        // Racing derive-publishers never lose an update: the closure reads
        // the slot under the same write lock that installs its result.
        let cell = Arc::new(EpochCell::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    for _ in 0..50 {
                        cell.publish_with(|cur| cur.value + 1);
                    }
                });
            }
        });
        let v = cell.load();
        assert_eq!((v.epoch, v.value), (200, 200));
    }

    #[test]
    fn a_panicking_writer_closure_does_not_brick_the_cell() {
        let cell = Arc::new(EpochCell::new(7u64));
        // The writer panics mid-derive: no epoch must be published and the
        // cell must stay readable and writable afterwards.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cell.publish_with(|_| panic!("writer bug"));
        }));
        assert!(result.is_err(), "the panic must propagate to the publisher");
        assert_eq!(cell.epoch(), 0, "a failed derive publishes nothing");
        let v = cell.load();
        assert_eq!((v.epoch, v.value), (0, 7));
        // Subsequent publishes work, including from another thread.
        assert_eq!(cell.publish_with(|cur| cur.value + 1), 1);
        std::thread::scope(|scope| {
            let cell = Arc::clone(&cell);
            scope.spawn(move || assert_eq!(cell.publish(99), 2));
        });
        let v = cell.load();
        assert_eq!((v.epoch, v.value), (2, 99));
    }

    #[test]
    fn a_loaded_snapshot_survives_later_publishes() {
        let cell = EpochCell::new(vec![1, 2, 3]);
        let old = cell.load();
        cell.publish(vec![9]);
        // The reader's pinned view is untouched by the publish.
        assert_eq!((old.epoch, old.value.as_slice()), (0, &[1, 2, 3][..]));
        let new = cell.load();
        assert_eq!((new.epoch, new.value.as_slice()), (1, &[9][..]));
    }

    #[test]
    fn concurrent_readers_always_see_a_coherent_epoch() {
        // Each published value is (epoch, epoch): a torn read would decouple
        // the pair or pair a value with the wrong epoch tag.
        let cell = Arc::new(EpochCell::new((0u64, 0u64)));
        std::thread::scope(|scope| {
            let writer = Arc::clone(&cell);
            scope.spawn(move || {
                for e in 1..=200u64 {
                    assert_eq!(writer.publish((e, e)), e);
                }
            });
            for _ in 0..2 {
                let reader = Arc::clone(&cell);
                scope.spawn(move || {
                    for _ in 0..500 {
                        let v = reader.load();
                        assert_eq!(v.value, (v.epoch, v.epoch));
                        assert!(reader.epoch() >= v.epoch);
                    }
                });
            }
        });
        assert_eq!(cell.epoch(), 200);
    }
}
