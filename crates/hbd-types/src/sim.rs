//! Deterministic discrete-event primitives: a mock simulation clock and a
//! priority event queue with a total, reproducible ordering.
//!
//! These are the substrate of the control-plane fault-injection simulator
//! (`control::sim`) and of any future online-lifecycle simulator: events are
//! ordered by `(timestamp, insertion sequence)`, so two events scheduled for
//! the same instant pop in the order they were scheduled — no dependence on
//! heap internals, hash iteration order or pointer values. Timestamps are
//! compared with [`f64::total_cmp`], so the ordering is total even in the
//! presence of pathological float values.

use crate::Seconds;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A monotone mock clock for discrete-event simulation.
///
/// The clock only moves forward: [`SimClock::advance_to`] clamps rewinds to
/// the current time and counts them, so a simulation driving the clock from a
/// well-ordered event queue never observes time running backwards, and a
/// mis-ordered caller is detectable through [`SimClock::rewinds_clamped`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimClock {
    now: Seconds,
    rewinds_clamped: u64,
}

impl SimClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulation time.
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Advances the clock to `at`, returning the effective (monotone) time:
    /// `max(at, now)`. A rewind attempt is clamped and counted, never applied.
    pub fn advance_to(&mut self, at: Seconds) -> Seconds {
        if at.value() < self.now.value() {
            self.rewinds_clamped += 1;
        } else {
            self.now = at;
        }
        self.now
    }

    /// How many [`SimClock::advance_to`] calls asked for a time in the past.
    pub fn rewinds_clamped(&self) -> u64 {
        self.rewinds_clamped
    }
}

/// One scheduled entry: ordering key is `(at, seq)`, the payload is opaque.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: Seconds,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap, and we want the earliest
        // (at, seq) on top. `total_cmp` keeps the order total for every f64.
        other
            .at
            .value()
            .total_cmp(&self.at.value())
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events pop in ascending timestamp order; ties break by insertion order
/// (first scheduled, first popped). Determinism is by construction: the pop
/// order is a pure function of the push sequence.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `item` at time `at`.
    pub fn push(&mut self, at: Seconds, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, item });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Seconds, T)> {
        self.heap.pop().map(|e| (e.at, e.item))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Seconds(3.0), "c");
        q.push(Seconds(1.0), "a");
        q.push(Seconds(2.0), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Seconds(1.0)));
        assert_eq!(q.pop(), Some((Seconds(1.0), "a")));
        assert_eq!(q.pop(), Some((Seconds(2.0), "b")));
        assert_eq!(q.pop(), Some((Seconds(3.0), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..50u32 {
            q.push(Seconds(7.0), i);
        }
        // Earlier events at the same instant keep priority over later ones.
        q.push(Seconds(6.9), 999);
        assert_eq!(q.pop(), Some((Seconds(6.9), 999)));
        for i in 0..50u32 {
            assert_eq!(q.pop(), Some((Seconds(7.0), i)));
        }
    }

    #[test]
    fn pop_order_is_a_pure_function_of_the_push_sequence() {
        let schedule = [(2.5, 0u32), (0.5, 1), (2.5, 2), (1.0, 3), (0.5, 4)];
        let drain = |sched: &[(f64, u32)]| {
            let mut q = EventQueue::new();
            for &(at, id) in sched {
                q.push(Seconds(at), id);
            }
            let mut order = Vec::new();
            while let Some((_, id)) = q.pop() {
                order.push(id);
            }
            order
        };
        assert_eq!(drain(&schedule), drain(&schedule));
        assert_eq!(drain(&schedule), vec![1, 4, 3, 0, 2]);
    }

    #[test]
    fn clock_is_monotone_and_counts_rewind_attempts() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), Seconds::ZERO);
        assert_eq!(clock.advance_to(Seconds(5.0)), Seconds(5.0));
        // A rewind is clamped to the current time, not applied.
        assert_eq!(clock.advance_to(Seconds(3.0)), Seconds(5.0));
        assert_eq!(clock.now(), Seconds(5.0));
        assert_eq!(clock.rewinds_clamped(), 1);
        assert_eq!(clock.advance_to(Seconds(5.0)), Seconds(5.0));
        assert_eq!(clock.rewinds_clamped(), 1);
    }
}
