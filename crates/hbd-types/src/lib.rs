//! Common identifiers, physical units, configuration and error types shared by
//! every crate in the InfiniteHBD workspace.
//!
//! The simulator is deliberately *strongly typed*: GPU indices, node indices,
//! transceiver indices and rack (ToR) indices are distinct newtypes so that an
//! orchestration bug cannot silently mix a node id with a GPU id, and physical
//! quantities (bandwidth, power, money, time) carry their unit in the type.
//!
//! Everything here is `Copy`/`Clone`, `serde`-serialisable and has a total order
//! where that makes sense, so the higher-level crates can use these types as map
//! keys and in sorted structures without ceremony.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod epoch;
pub mod error;
pub mod ids;
pub mod par;
pub mod robust;
pub mod sim;
pub mod units;

pub use config::{ClusterConfig, GpuSpec, NodeSize};
pub use epoch::{EpochCell, Versioned};
pub use error::{HbdError, Result};
pub use ids::{GpuId, LinkId, NodeId, SwitchId, ToRId, TrxId};
pub use par::{par_map, par_map_range, par_map_seeded, stream_seed};
pub use robust::{BackoffSchedule, BreakerConfig, BreakerState, CircuitBreaker};
pub use sim::{EventQueue, SimClock};
pub use units::{Bytes, Dollars, GBps, Gbps, Microseconds, Seconds, Watts};
