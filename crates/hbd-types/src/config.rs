//! Cluster-level configuration shared by the topology, fault and cluster crates.

use crate::error::{HbdError, Result};
use crate::units::{Bytes, GBps, Gbps};
use serde::{Deserialize, Serialize};

/// Number of GPUs per node.
///
/// The paper evaluates two node form factors: the 4-GPU node used by GB200
/// NVL-36/72/576 and TPUv4, and the 8-GPU node of DGX H100 / UBB 2.0 servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeSize {
    /// Four GPUs per node (GB200-style compute tray).
    Four,
    /// Eight GPUs per node (DGX / UBB 2.0 baseboard).
    Eight,
}

impl NodeSize {
    /// Number of GPUs on a node of this size.
    pub const fn gpus(self) -> usize {
        match self {
            NodeSize::Four => 4,
            NodeSize::Eight => 8,
        }
    }

    /// Constructs a node size from a GPU count.
    pub fn from_gpus(gpus: usize) -> Result<Self> {
        match gpus {
            4 => Ok(NodeSize::Four),
            8 => Ok(NodeSize::Eight),
            other => Err(HbdError::invalid_config(format!(
                "unsupported node size: {other} GPUs (expected 4 or 8)"
            ))),
        }
    }
}

/// Specification of the GPU model used in the simulation.
///
/// Defaults follow the paper's setup: NVIDIA H100 (989 TFLOPS dense BF16,
/// 80 GiB HBM), 6.4 Tbps of HBD bandwidth (8 × 800 Gbps OCSTrx) and a 400 Gbps
/// ConnectX-7 DCN NIC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Peak dense compute throughput in TFLOPS (BF16 with FP32 accumulate).
    pub peak_tflops: f64,
    /// HBM capacity.
    pub memory: Bytes,
    /// HBD (scale-up) bandwidth available to this GPU.
    pub hbd_bandwidth: Gbps,
    /// DCN (scale-out) bandwidth available to this GPU.
    pub dcn_bandwidth: Gbps,
}

impl GpuSpec {
    /// The H100 configuration used throughout the paper's evaluation (§6.1).
    pub fn h100() -> Self {
        GpuSpec {
            peak_tflops: 989.0,
            memory: Bytes::from_gib(80.0),
            hbd_bandwidth: Gbps(6400.0),
            dcn_bandwidth: Gbps(400.0),
        }
    }

    /// HBD bandwidth expressed in GBps (payload bytes).
    pub fn hbd_gbyteps(&self) -> GBps {
        self.hbd_bandwidth.to_gbytes_per_sec()
    }

    /// DCN bandwidth expressed in GBps (payload bytes).
    pub fn dcn_gbyteps(&self) -> GBps {
        self.dcn_bandwidth.to_gbytes_per_sec()
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::h100()
    }
}

/// Static description of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Total number of nodes in the cluster.
    pub nodes: usize,
    /// GPUs per node.
    pub node_size: NodeSize,
    /// Nodes attached to each ToR switch of the DCN.
    pub nodes_per_tor: usize,
    /// ToRs per aggregation-switch domain of the Fat-Tree DCN.
    pub tors_per_aggregation_domain: usize,
    /// GPU model.
    pub gpu: GpuSpec,
}

impl ClusterConfig {
    /// Creates a validated cluster configuration.
    pub fn new(
        nodes: usize,
        node_size: NodeSize,
        nodes_per_tor: usize,
        tors_per_aggregation_domain: usize,
    ) -> Result<Self> {
        let config = ClusterConfig {
            nodes,
            node_size,
            nodes_per_tor,
            tors_per_aggregation_domain,
            gpu: GpuSpec::h100(),
        };
        config.validate()?;
        Ok(config)
    }

    /// The 2,880-GPU / 4-GPU-node cluster used for the fault-resilience
    /// simulations (§6.2): 720 nodes, 16 nodes per ToR, 4 ToRs per aggregation
    /// domain.
    pub fn paper_2880_gpu() -> Self {
        ClusterConfig {
            nodes: 720,
            node_size: NodeSize::Four,
            nodes_per_tor: 16,
            tors_per_aggregation_domain: 4,
            gpu: GpuSpec::h100(),
        }
    }

    /// The 8,192-GPU cluster used for the orchestration experiments (§6.4),
    /// with 4-GPU nodes (2,048 nodes).
    pub fn paper_8192_gpu() -> Self {
        ClusterConfig {
            nodes: 2048,
            node_size: NodeSize::Four,
            nodes_per_tor: 16,
            tors_per_aggregation_domain: 8,
            gpu: GpuSpec::h100(),
        }
    }

    /// Validates the internal consistency of the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.nodes == 0 {
            return Err(HbdError::invalid_config(
                "cluster must have at least one node",
            ));
        }
        if self.nodes_per_tor == 0 {
            return Err(HbdError::invalid_config("nodes_per_tor must be positive"));
        }
        if self.tors_per_aggregation_domain == 0 {
            return Err(HbdError::invalid_config(
                "tors_per_aggregation_domain must be positive",
            ));
        }
        if self.gpu.peak_tflops <= 0.0 {
            return Err(HbdError::invalid_config("GPU peak TFLOPS must be positive"));
        }
        Ok(())
    }

    /// Total number of GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.node_size.gpus()
    }

    /// Number of ToR switches (rounded up so every node has a ToR).
    pub fn tors(&self) -> usize {
        self.nodes.div_ceil(self.nodes_per_tor)
    }

    /// Number of aggregation-switch domains (rounded up).
    pub fn aggregation_domains(&self) -> usize {
        self.tors().div_ceil(self.tors_per_aggregation_domain)
    }

    /// Number of nodes covered by one aggregation-switch domain.
    pub fn nodes_per_aggregation_domain(&self) -> usize {
        self.nodes_per_tor * self.tors_per_aggregation_domain
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::paper_2880_gpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_size_gpu_counts() {
        assert_eq!(NodeSize::Four.gpus(), 4);
        assert_eq!(NodeSize::Eight.gpus(), 8);
        assert_eq!(NodeSize::from_gpus(4).unwrap(), NodeSize::Four);
        assert_eq!(NodeSize::from_gpus(8).unwrap(), NodeSize::Eight);
        assert!(NodeSize::from_gpus(6).is_err());
    }

    #[test]
    fn h100_spec_matches_paper_setup() {
        let gpu = GpuSpec::h100();
        assert_eq!(gpu.peak_tflops, 989.0);
        assert!((gpu.memory.as_gib() - 80.0).abs() < 1e-9);
        assert_eq!(gpu.hbd_bandwidth, Gbps(6400.0));
        assert_eq!(gpu.dcn_bandwidth, Gbps(400.0));
        assert!((gpu.hbd_gbyteps().value() - 800.0).abs() < 1e-9);
        assert!((gpu.dcn_gbyteps().value() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn paper_cluster_has_2880_gpus() {
        let cfg = ClusterConfig::paper_2880_gpu();
        assert_eq!(cfg.total_gpus(), 2880);
        assert_eq!(cfg.tors(), 45);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn paper_8k_cluster_has_8192_gpus() {
        let cfg = ClusterConfig::paper_8192_gpu();
        assert_eq!(cfg.total_gpus(), 8192);
        assert_eq!(cfg.nodes_per_aggregation_domain(), 128);
        assert_eq!(cfg.aggregation_domains(), 16);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(ClusterConfig::new(0, NodeSize::Four, 16, 4).is_err());
        assert!(ClusterConfig::new(10, NodeSize::Four, 0, 4).is_err());
        assert!(ClusterConfig::new(10, NodeSize::Four, 16, 0).is_err());
        let mut cfg = ClusterConfig::paper_2880_gpu();
        cfg.gpu.peak_tflops = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn tor_and_domain_counts_round_up() {
        let cfg = ClusterConfig::new(17, NodeSize::Eight, 4, 2).unwrap();
        assert_eq!(cfg.tors(), 5);
        assert_eq!(cfg.aggregation_domains(), 3);
    }
}
