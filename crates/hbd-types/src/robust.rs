//! Deterministic robustness primitives: exponential backoff with seeded
//! jitter, bounded retry budgets, and a circuit breaker — all in **modeled
//! time**, never wall-clock.
//!
//! The serving layer sheds load when its modeled queue saturates
//! (`orchestrator::admission`), which makes *callers* responsible for when to
//! come back. Both halves of that contract live here:
//!
//! * [`BackoffSchedule`] — the classic capped exponential backoff with
//!   "decorrelated"-style jitter, except the jitter is a pure SplitMix64
//!   function of `(seed, key, attempt)` rather than a shared RNG stream.
//!   Two callers retrying the same key compute the same delay on any thread,
//!   in any interleaving — which is what lets retry timelines ride the
//!   workspace's seed-stable / thread-count-invariant test net.
//! * [`CircuitBreaker`] — the closed / open / half-open state machine that
//!   guards a flaky dependency. All transitions are driven by explicit
//!   modeled timestamps ([`CircuitBreaker::on_success`] /
//!   [`on_failure`](CircuitBreaker::on_failure) /
//!   [`allow`](CircuitBreaker::allow)), and every transition is recorded in a
//!   monotone log so tests can machine-check re-probe behaviour instead of
//!   eyeballing it.

use crate::par::stream_seed;
use crate::units::Seconds;
use serde::{Deserialize, Serialize};

/// A capped exponential backoff schedule with deterministic seeded jitter.
///
/// `delay(attempt, key)` is `min(cap, base * factor^attempt)` scaled down by
/// up to `jitter` of itself, where the scale factor is a pure hash of
/// `(seed, key, attempt)`. With `jitter == 0.0` the schedule is the plain
/// deterministic exponential; with `jitter > 0.0` distinct keys de-correlate
/// (no retry thundering herd) while staying bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackoffSchedule {
    /// Delay of attempt 0, before jitter.
    pub base: Seconds,
    /// Multiplier applied per attempt (>= 1.0 for a growing schedule).
    pub factor: f64,
    /// Upper bound on the un-jittered delay.
    pub cap: Seconds,
    /// Jitter fraction in `[0, 1)`: the delay is scaled by a deterministic
    /// factor drawn from `[1 - jitter, 1]`.
    pub jitter: f64,
    /// Master seed of the jitter hash; two schedules differing only in seed
    /// produce different (but each fully deterministic) jitter streams.
    pub seed: u64,
}

impl BackoffSchedule {
    /// A conservative default: 1 s base, doubling, 60 s cap, 25 % jitter.
    pub fn standard(seed: u64) -> Self {
        BackoffSchedule {
            base: Seconds(1.0),
            factor: 2.0,
            cap: Seconds(60.0),
            jitter: 0.25,
            seed,
        }
    }

    /// The delay before retry number `attempt` (0-based) of the stream
    /// identified by `key`. Pure in `(self, attempt, key)`: independent of
    /// call order, thread, or any shared RNG state.
    pub fn delay(&self, attempt: u32, key: u64) -> Seconds {
        let raw = (self.base.value() * self.factor.powi(attempt as i32)).min(self.cap.value());
        // One SplitMix64 draw per (seed, key, attempt), mapped to [0, 1).
        let bits = stream_seed(self.seed ^ key, u64::from(attempt));
        let unit = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        Seconds(raw * (1.0 - self.jitter * unit))
    }
}

/// The observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// Requests are refused until the cooldown elapses.
    Open,
    /// Exactly one probe request is allowed through; its outcome decides
    /// whether the breaker closes again or re-opens.
    HalfOpen,
}

/// Configuration of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing a half-open probe.
    pub cooldown: Seconds,
}

impl BreakerConfig {
    /// A small default: trip after 3 consecutive failures, 30 s cooldown.
    pub fn standard() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Seconds(30.0),
        }
    }
}

/// A deterministic, modeled-time circuit breaker.
///
/// The caller reports outcomes with explicit timestamps; the breaker never
/// reads a clock. State machine:
///
/// * **Closed** — [`allow`](Self::allow) always grants. `failure_threshold`
///   *consecutive* failures trip it to **Open** (a success resets the count).
/// * **Open** — requests are refused until `cooldown` has elapsed since the
///   trip; the first `allow` at or after that instant transitions to
///   **HalfOpen** and grants the probe.
/// * **HalfOpen** — exactly one in-flight probe: further `allow` calls are
///   refused until the probe resolves. A success closes the breaker; a
///   failure re-opens it (restarting the cooldown from the failure time).
///
/// Every transition is appended to a log whose timestamps are clamped
/// monotone, so "the breaker never moved backwards in time" is checkable as
/// `transitions()` being sorted — the invariant the proptest suite pins.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Seconds,
    probe_in_flight: bool,
    last_event: Seconds,
    transitions: Vec<(Seconds, BreakerState)>,
}

impl CircuitBreaker {
    /// A closed breaker with the given config.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: Seconds(0.0),
            probe_in_flight: false,
            last_event: Seconds(0.0),
            transitions: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The transition log: `(time, state entered)`, times nondecreasing.
    /// The initial `Closed` state is implicit and not logged.
    pub fn transitions(&self) -> &[(Seconds, BreakerState)] {
        &self.transitions
    }

    /// Number of times the breaker has tripped open.
    pub fn opens(&self) -> usize {
        self.transitions
            .iter()
            .filter(|(_, s)| *s == BreakerState::Open)
            .count()
    }

    fn clamp(&mut self, now: Seconds) -> Seconds {
        let t = Seconds(now.value().max(self.last_event.value()));
        self.last_event = t;
        t
    }

    fn transition(&mut self, at: Seconds, state: BreakerState) {
        self.state = state;
        self.transitions.push((at, state));
    }

    /// Asks whether a request may proceed at modeled time `now`. In the open
    /// state this is also the re-probe gate: the first call at or past the
    /// cooldown deadline flips to half-open and grants the probe.
    pub fn allow(&mut self, now: Seconds) -> bool {
        let now = self.clamp(now);
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now.value() >= self.opened_at.value() + self.config.cooldown.value() {
                    self.transition(now, BreakerState::HalfOpen);
                    self.probe_in_flight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    false
                } else {
                    self.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Earliest modeled time at which [`allow`](Self::allow) could next grant
    /// a request (now, if it already would).
    pub fn retry_at(&self, now: Seconds) -> Seconds {
        match self.state {
            BreakerState::Open => Seconds(
                now.value()
                    .max(self.opened_at.value() + self.config.cooldown.value()),
            ),
            _ => now,
        }
    }

    /// Reports a successful request that completed at `now`.
    pub fn on_success(&mut self, now: Seconds) {
        let now = self.clamp(now);
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.probe_in_flight = false;
            self.transition(now, BreakerState::Closed);
        }
    }

    /// Reports a failed (shed / refused / errored) request at `now`.
    pub fn on_failure(&mut self, now: Seconds) {
        let now = self.clamp(now);
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.opened_at = now;
                    self.transition(now, BreakerState::Open);
                }
            }
            BreakerState::HalfOpen => {
                self.probe_in_flight = false;
                self.consecutive_failures = self.config.failure_threshold;
                self.opened_at = now;
                self.transition(now, BreakerState::Open);
            }
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_capped_and_is_deterministic() {
        let sched = BackoffSchedule {
            base: Seconds(1.0),
            factor: 2.0,
            cap: Seconds(10.0),
            jitter: 0.0,
            seed: 7,
        };
        assert_eq!(sched.delay(0, 1).value(), 1.0);
        assert_eq!(sched.delay(1, 1).value(), 2.0);
        assert_eq!(sched.delay(2, 1).value(), 4.0);
        // Capped.
        assert_eq!(sched.delay(9, 1).value(), 10.0);
        // Pure: same inputs, same output.
        assert_eq!(sched.delay(3, 42), sched.delay(3, 42));
    }

    #[test]
    fn jitter_scales_within_bounds_and_decorrelates_keys() {
        let sched = BackoffSchedule {
            jitter: 0.5,
            ..BackoffSchedule::standard(11)
        };
        let mut distinct = std::collections::BTreeSet::new();
        for key in 0..32u64 {
            let d = sched.delay(0, key).value();
            assert!(d <= sched.base.value() && d >= sched.base.value() * 0.5);
            distinct.insert(d.to_bits());
        }
        // Practically all keys draw different jitter.
        assert!(distinct.len() > 16);
    }

    #[test]
    fn breaker_trips_after_threshold_and_reprobes_after_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Seconds(10.0),
        });
        assert!(b.allow(Seconds(0.0)));
        b.on_failure(Seconds(1.0));
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(Seconds(2.0));
        assert_eq!(b.state(), BreakerState::Open);
        // Refused during cooldown; retry_at names the re-probe instant.
        assert!(!b.allow(Seconds(5.0)));
        assert_eq!(b.retry_at(Seconds(5.0)).value(), 12.0);
        // First allow at the deadline is the half-open probe...
        assert!(b.allow(Seconds(12.0)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // ...and exactly one: a second concurrent request is refused.
        assert!(!b.allow(Seconds(12.5)));
        b.on_success(Seconds(13.0));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(
            b.transitions(),
            &[
                (Seconds(2.0), BreakerState::Open),
                (Seconds(12.0), BreakerState::HalfOpen),
                (Seconds(13.0), BreakerState::Closed),
            ]
        );
    }

    #[test]
    fn failed_probe_reopens_with_a_fresh_cooldown() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Seconds(4.0),
        });
        b.on_failure(Seconds(0.0));
        assert!(b.allow(Seconds(4.0)));
        b.on_failure(Seconds(5.0));
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown restarts at the probe failure, not the original trip.
        assert!(!b.allow(Seconds(8.0)));
        assert!(b.allow(Seconds(9.0)));
        b.on_success(Seconds(9.5));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 2);
    }

    #[test]
    fn a_success_resets_the_consecutive_failure_count() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Seconds(1.0),
        });
        b.on_failure(Seconds(1.0));
        b.on_success(Seconds(2.0));
        b.on_failure(Seconds(3.0));
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(Seconds(4.0));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn transition_times_are_clamped_monotone() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Seconds(0.0),
        });
        b.on_failure(Seconds(10.0));
        // An out-of-order report cannot move the log backwards.
        assert!(b.allow(Seconds(3.0)));
        b.on_success(Seconds(4.0));
        let times: Vec<f64> = b.transitions().iter().map(|(t, _)| t.value()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }
}
