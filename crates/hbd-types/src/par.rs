//! A hand-rolled scoped fan-out pool for the embarrassingly parallel hot
//! loops of the workspace (Monte-Carlo fault sweeps, trace sampling, the
//! orchestrator's constraint search).
//!
//! The build environment is offline, so rayon is not available; this module
//! provides the small slice of it the simulators need on plain
//! [`std::thread::scope`]:
//!
//! * [`par_map`] — order-preserving parallel map over a slice, work-stealing
//!   via a shared atomic cursor;
//! * [`par_map_seeded`] — the same, but every item additionally receives its
//!   own deterministic RNG seed derived from a master seed, so results are
//!   **identical for every thread count** (the property the workspace-level
//!   determinism suite asserts).
//!
//! Seeds for per-item streams come from [`stream_seed`], a SplitMix64 mix of
//! `(master seed, item index)` — statistically independent streams without any
//! cross-item sequencing, which is what makes the fan-out order-free.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Derives the seed of per-item RNG stream `index` from a `master` seed.
///
/// SplitMix64 applied to `master ^ golden_gamma * (index + 1)`: cheap, well
/// mixed, and stable across platforms — the contract is that `(master, index)`
/// uniquely and deterministically identifies the stream, independent of which
/// thread processes the item.
pub fn stream_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Clamps a requested thread count to something sane: at least 1, at most the
/// number of work items.
fn effective_threads(threads: usize, items: usize) -> usize {
    threads.max(1).min(items.max(1))
}

/// Order-preserving parallel map: applies `f(index, &item)` to every item of
/// `items` on up to `threads` scoped worker threads and returns the results in
/// input order.
///
/// With `threads <= 1` (or a single item) this degenerates to a plain
/// sequential loop with no thread or lock overhead, so callers can thread a
/// `--threads` flag straight through. `f` must be deterministic in
/// `(index, item)` for the output to be thread-count-invariant; closures that
/// share a mutable RNG should use [`par_map_seeded`] instead.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Shared cursor hands out item indices; each worker stores its results as
    // (index, value) pairs and the merge step restores input order. The
    // per-item Mutex push is negligible next to the coarse work items this
    // pool is used for.
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let value = f(i, item);
                results
                    .lock()
                    .expect("no worker panicked while holding the results lock")
                    .push((i, value));
            });
        }
    });
    let mut pairs = results
        .into_inner()
        .expect("all workers joined before the scope ended");
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// [`par_map`] with a deterministic per-item RNG seed: `f` receives
/// `(index, &item, seed)` where `seed = stream_seed(master, index)`.
///
/// Because every item owns an independent stream, the result is byte-identical
/// for any thread count — the backbone of the workspace's "`--threads 1` ==
/// `--threads 4`" determinism guarantee.
pub fn par_map_seeded<T, U, F>(threads: usize, master: u64, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T, u64) -> U + Sync,
{
    par_map(threads, items, |i, item| {
        f(i, item, stream_seed(master, i as u64))
    })
}

/// [`par_map`] for fallible work: applies `f(index, &item)` on up to
/// `threads` workers and collects into `Result<Vec<U>, E>`.
///
/// Every item is evaluated (no mid-flight cancellation — the work items this
/// pool serves are coarse and effect-free), and on failure the error of the
/// **lowest-indexed** failing item is returned, so the outcome is
/// deterministic and thread-count-invariant like [`par_map`] itself.
pub fn par_try_map<T, U, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    par_map(threads, items, f).into_iter().collect()
}

/// Parallel map over an index range `0..count` (for loops that have no input
/// slice, e.g. "run `count` Monte-Carlo trials").
pub fn par_map_range<U, F>(threads: usize, count: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    par_map(threads, &indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let a = stream_seed(42, 0);
        let b = stream_seed(42, 1);
        let c = stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, stream_seed(42, 0));
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = par_map(4, &items, |_, &x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_is_thread_count_invariant() {
        let items: Vec<u64> = (0..37).collect();
        let f = |i: usize, x: &u64| stream_seed(*x, i as u64);
        let seq = par_map(1, &items, f);
        let par = par_map(4, &items, f);
        let wide = par_map(16, &items, f);
        assert_eq!(seq, par);
        assert_eq!(seq, wide);
    }

    #[test]
    fn par_map_seeded_matches_sequential_seeds() {
        let items = vec![(); 20];
        let seeds = par_map_seeded(3, 7, &items, |_, _, seed| seed);
        for (i, seed) in seeds.iter().enumerate() {
            assert_eq!(*seed, stream_seed(7, i as u64));
        }
    }

    #[test]
    fn par_try_map_surfaces_the_lowest_indexed_error() {
        let items: Vec<i32> = (0..40).collect();
        let ok: Result<Vec<i32>, String> = par_try_map(4, &items, |_, &x| Ok(x + 1));
        assert_eq!(ok.unwrap(), (1..=40).collect::<Vec<_>>());
        let f = |_: usize, &x: &i32| {
            if x % 10 == 7 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        };
        let seq: Result<Vec<i32>, String> = par_try_map(1, &items, f);
        let par: Result<Vec<i32>, String> = par_try_map(4, &items, f);
        assert_eq!(seq.unwrap_err(), "bad 7");
        assert_eq!(par.unwrap_err(), "bad 7");
    }

    #[test]
    fn par_map_range_covers_the_whole_range() {
        let squares = par_map_range(4, 10, |i| i * i);
        assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_degenerate_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(0, &[5u32], |_, &x| x), vec![5]);
    }
}
