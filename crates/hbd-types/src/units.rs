//! Physical units used throughout the simulator.
//!
//! Each unit is a thin newtype over `f64` with arithmetic restricted to the
//! operations that make dimensional sense (adding two bandwidths, scaling a cost
//! by a count, dividing bytes by bandwidth to obtain time, ...). The goal is not
//! a full dimensional-analysis system but to make the most common unit mistakes
//! (Gbps vs GBps, dollars vs watts) impossible to compile.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared arithmetic of a scalar unit newtype.
macro_rules! scalar_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a raw value.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of two quantities.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.4} ", $suffix), self.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

scalar_unit!(
    /// Bandwidth in gigabits per second (the unit used for link and transceiver
    /// line rates, e.g. an 800 Gbps QSFP-DD OCSTrx).
    Gbps,
    "Gbps"
);

scalar_unit!(
    /// Bandwidth in gigabytes per second (the unit used for per-GPU HBD
    /// bandwidth in the paper's cost normalisation, e.g. 900 GBps for NVL-72).
    GBps,
    "GBps"
);

scalar_unit!(
    /// Data size in bytes.
    Bytes,
    "B"
);

scalar_unit!(
    /// Electrical power in watts.
    Watts,
    "W"
);

scalar_unit!(
    /// Cost in US dollars.
    Dollars,
    "$"
);

scalar_unit!(
    /// Time in seconds.
    Seconds,
    "s"
);

scalar_unit!(
    /// Time in microseconds (the natural unit for OCSTrx reconfiguration
    /// latency, 60-80 µs).
    Microseconds,
    "us"
);

impl Gbps {
    /// Converts a line rate to the equivalent payload bandwidth in GBps.
    pub fn to_gbytes_per_sec(self) -> GBps {
        GBps(self.0 / 8.0)
    }
}

impl GBps {
    /// Converts to gigabits per second.
    pub fn to_gbits_per_sec(self) -> Gbps {
        Gbps(self.0 * 8.0)
    }

    /// Time to transfer `bytes` at this bandwidth.
    pub fn transfer_time(self, bytes: Bytes) -> Seconds {
        assert!(self.0 > 0.0, "cannot transfer data over zero bandwidth");
        Seconds(bytes.0 / (self.0 * 1e9))
    }
}

impl Bytes {
    /// Constructs a size from gibibytes (2^30 bytes).
    pub fn from_gib(gib: f64) -> Self {
        Bytes(gib * (1u64 << 30) as f64)
    }

    /// Constructs a size from megabytes (10^6 bytes).
    pub fn from_mb(mb: f64) -> Self {
        Bytes(mb * 1e6)
    }

    /// Returns the size in gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 / (1u64 << 30) as f64
    }
}

impl Seconds {
    /// Converts to microseconds.
    pub fn to_micros(self) -> Microseconds {
        Microseconds(self.0 * 1e6)
    }

    /// Constructs a duration from hours.
    pub fn from_hours(hours: f64) -> Self {
        Seconds(hours * 3600.0)
    }

    /// Constructs a duration from days.
    pub fn from_days(days: f64) -> Self {
        Seconds(days * 86_400.0)
    }

    /// Returns the duration in days.
    pub fn as_days(self) -> f64 {
        self.0 / 86_400.0
    }
}

impl Microseconds {
    /// Converts to seconds.
    pub fn to_seconds(self) -> Seconds {
        Seconds(self.0 / 1e6)
    }
}

impl Mul<usize> for Dollars {
    type Output = Dollars;
    fn mul(self, rhs: usize) -> Dollars {
        Dollars(self.0 * rhs as f64)
    }
}

impl Mul<usize> for Watts {
    type Output = Watts;
    fn mul(self, rhs: usize) -> Watts {
        Watts(self.0 * rhs as f64)
    }
}

impl Div<GBps> for Dollars {
    /// Cost per GBps of bandwidth: the normalisation used in Table 6.
    type Output = f64;
    fn div(self, rhs: GBps) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<GBps> for Watts {
    /// Power per GBps of bandwidth: the normalisation used in Table 6.
    type Output = f64;
    fn div(self, rhs: GBps) -> f64 {
        self.0 / rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_gbyteps_roundtrip() {
        let rate = Gbps(800.0);
        let bytes_rate = rate.to_gbytes_per_sec();
        assert!((bytes_rate.value() - 100.0).abs() < 1e-12);
        assert!((bytes_rate.to_gbits_per_sec().value() - 800.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_is_size_over_bandwidth() {
        let bw = GBps(100.0);
        let t = bw.transfer_time(Bytes(1e9));
        assert!((t.value() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn transfer_over_zero_bandwidth_panics() {
        let _ = GBps::ZERO.transfer_time(Bytes(1.0));
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Dollars(10.0);
        let b = Dollars(2.5);
        assert_eq!((a + b).value(), 12.5);
        assert_eq!((a - b).value(), 7.5);
        assert_eq!((a * 2.0).value(), 20.0);
        assert_eq!((a / 4.0).value(), 2.5);
        assert_eq!(a / b, 4.0);
        assert_eq!((a * 3usize).value(), 30.0);
        let total: Dollars = [a, b, Dollars(0.5)].into_iter().sum();
        assert_eq!(total.value(), 13.0);
    }

    #[test]
    fn time_conversions() {
        assert!((Seconds(1.5).to_micros().value() - 1_500_000.0).abs() < 1e-6);
        assert!((Microseconds(80.0).to_seconds().value() - 8e-5).abs() < 1e-12);
        assert!((Seconds::from_days(348.0).as_days() - 348.0).abs() < 1e-9);
        assert!((Seconds::from_hours(2.0).value() - 7200.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_constructors() {
        assert!((Bytes::from_gib(80.0).as_gib() - 80.0).abs() < 1e-9);
        assert!((Bytes::from_mb(1.0).value() - 1e6).abs() < 1e-9);
    }

    #[test]
    fn per_gbps_normalisation() {
        let cost = Dollars(9563.20);
        let bw = GBps(900.0);
        assert!((cost / bw - 10.6258) < 1e-3);
        let power = Watts(75.95);
        assert!((power / bw - 0.0844) < 1e-3);
    }

    #[test]
    fn display_includes_suffix() {
        assert_eq!(format!("{}", Watts(3.2)), "3.2000 W");
        assert_eq!(format!("{}", Gbps(800.0)), "800.0000 Gbps");
    }

    #[test]
    fn min_max_and_neg() {
        assert_eq!(Watts(3.0).max(Watts(5.0)), Watts(5.0));
        assert_eq!(Watts(3.0).min(Watts(5.0)), Watts(3.0));
        assert_eq!((-Dollars(2.0)).value(), -2.0);
        assert!(Watts(1.0).is_finite());
        assert!(!Watts(f64::NAN).is_finite());
    }
}
