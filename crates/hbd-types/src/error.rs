//! Error type shared across the workspace.
//!
//! The simulator is a library first: errors are returned, not printed, so that
//! the experiment harness and downstream users decide how to report them.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, HbdError>;

/// Errors produced by the InfiniteHBD simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum HbdError {
    /// A configuration value is invalid (zero-sized cluster, TP size that does
    /// not divide into whole nodes, K larger than the node radix, ...).
    InvalidConfig {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// A requested placement cannot be satisfied with the currently healthy
    /// resources (e.g. the job needs more GPUs than the cluster can offer under
    /// the present fault pattern).
    Infeasible {
        /// Human-readable description of the unsatisfiable requirement.
        reason: String,
    },
    /// An entity identifier is out of range for the cluster it is used with.
    UnknownEntity {
        /// Description of the entity kind and index.
        entity: String,
    },
    /// A hardware operation was requested in a state that does not allow it
    /// (e.g. activating two external paths of one OCSTrx simultaneously).
    InvalidOperation {
        /// Human-readable description of the violated device constraint.
        reason: String,
    },
}

impl HbdError {
    /// Shorthand constructor for [`HbdError::InvalidConfig`].
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        HbdError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`HbdError::Infeasible`].
    pub fn infeasible(reason: impl Into<String>) -> Self {
        HbdError::Infeasible {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`HbdError::UnknownEntity`].
    pub fn unknown_entity(entity: impl Into<String>) -> Self {
        HbdError::UnknownEntity {
            entity: entity.into(),
        }
    }

    /// Shorthand constructor for [`HbdError::InvalidOperation`].
    pub fn invalid_operation(reason: impl Into<String>) -> Self {
        HbdError::InvalidOperation {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for HbdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HbdError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            HbdError::Infeasible { reason } => write!(f, "infeasible request: {reason}"),
            HbdError::UnknownEntity { entity } => write!(f, "unknown entity: {entity}"),
            HbdError::InvalidOperation { reason } => write!(f, "invalid operation: {reason}"),
        }
    }
}

impl std::error::Error for HbdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = HbdError::invalid_config("TP size 0");
        assert_eq!(err.to_string(), "invalid configuration: TP size 0");
        let err = HbdError::infeasible("job needs 4096 GPUs, 2880 available");
        assert!(err.to_string().contains("infeasible"));
        let err = HbdError::unknown_entity("NodeId(99) in 10-node cluster");
        assert!(err.to_string().contains("unknown entity"));
        let err = HbdError::invalid_operation("both external paths active");
        assert!(err.to_string().contains("invalid operation"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&HbdError::invalid_config("x"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            HbdError::invalid_config("a"),
            HbdError::InvalidConfig {
                reason: "a".to_string()
            }
        );
        assert_ne!(HbdError::invalid_config("a"), HbdError::infeasible("a"));
    }
}
