//! The unit of experiment output: a titled table.
//!
//! Experiments return `Vec<Table>`; the harness renders tables as aligned
//! plain text (the historical binary output), JSON documents (the `--json`
//! path and `bench_results.json`) or GitHub-flavoured markdown
//! (`EXPERIMENTS.md`).

use crate::print_series;

/// One titled table of experiment results. Cells are pre-formatted strings so
/// that text, JSON and markdown renderings are guaranteed to agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (the paper's figure/table caption).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows; every row has one cell per header column.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from borrowed headers.
    pub fn new(title: impl Into<String>, header: &[&str], rows: Vec<Vec<String>>) -> Self {
        let table = Table {
            title: title.into(),
            header: header.iter().map(|h| h.to_string()).collect(),
            rows,
        };
        debug_assert!(
            table.rows.iter().all(|r| r.len() == table.header.len()),
            "every row of '{}' must match the header width",
            table.title
        );
        table
    }

    /// The JSON document for this table — the same shape the harness binaries
    /// have always printed with `--json`: the title under `"experiment"` and
    /// one string-valued object per row.
    pub fn to_json(&self) -> serde_json::Value {
        let records: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let map: serde_json::Map<String, serde_json::Value> = self
                    .header
                    .iter()
                    .zip(row.iter())
                    .map(|(k, v)| (k.clone(), serde_json::Value::String(v.clone())))
                    .collect();
                serde_json::Value::Object(map)
            })
            .collect();
        serde_json::json!({ "experiment": self.title.clone(), "rows": records })
    }

    /// Renders the table as GitHub-flavoured markdown (title as bold text,
    /// pipe-escaped cells).
    pub fn to_markdown(&self) -> String {
        let escape = |cell: &str| cell.replace('|', "\\|");
        let mut out = String::new();
        out.push_str(&format!("**{}**\n\n", escape(&self.title)));
        out.push_str(&format!(
            "| {} |\n",
            self.header
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(" | ")
        ));
        out.push_str(&format!("|{}\n", " --- |".repeat(self.header.len().max(1))));
        for row in &self.rows {
            out.push_str(&format!(
                "| {} |\n",
                row.iter()
                    .map(|c| escape(c))
                    .collect::<Vec<_>>()
                    .join(" | ")
            ));
        }
        out
    }

    /// Prints the table as aligned plain-text columns.
    pub fn print_text(&self) {
        let header_refs: Vec<&str> = self.header.iter().map(|s| s.as_str()).collect();
        print_series(&self.title, &header_refs, &self.rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            "Demo",
            &["name", "value"],
            vec![
                vec!["a".to_string(), "1".to_string()],
                vec!["b|c".to_string(), "2".to_string()],
            ],
        )
    }

    #[test]
    fn json_matches_the_legacy_shape() {
        let json = serde_json::to_string(&sample().to_json()).unwrap();
        assert!(json.contains("\"experiment\""));
        assert!(json.contains("\"rows\""));
        assert!(json.contains("\"name\""));
    }

    #[test]
    fn markdown_escapes_pipes_and_has_a_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("**Demo**"));
        assert!(md.contains("| name | value |"));
        assert!(md.contains("| --- | --- |"));
        assert!(md.contains("b\\|c"));
    }
}
