//! Table 2: optimal parallelism strategy and MFU for Llama 3.1-405B as the
//! cluster grows, against the TP-8-capped baseline.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let search = StrategySearch::paper_defaults();
    let model = ModelConfig::llama31_405b();
    let header = ["GPUs", "TP", "PP", "DP", "MFU", "MFU_TP-8", "Improve"];
    let mut rows = Vec::new();
    for &gpus in ctx.select(&[1024usize, 4096, 8192, 16384, 32768, 65536, 131072]) {
        let free = search.optimal(&model, gpus).expect("feasible strategy");
        let capped = search
            .optimal_with_tp_cap(&model, gpus, 8)
            .expect("feasible TP-8 strategy");
        rows.push(vec![
            gpus.to_string(),
            free.strategy.tp.to_string(),
            free.strategy.pp.to_string(),
            free.strategy.dp.to_string(),
            fmt(free.mfu, 4),
            fmt(capped.mfu, 4),
            fmt(free.mfu / capped.mfu, 4),
        ]);
    }
    vec![Table::new(
        "Table 2: Llama 3.1-405B optimal parallelism vs TP-8",
        &header,
        rows,
    )]
}
