//! Figs 14 and 22: GPU waste ratio versus node fault ratio (i.i.d. fault
//! model), for TP-8/16/32/64 on the 2,880-GPU / 4-GPU-node cluster.
//!
//! The Monte-Carlo grid (fault ratio × trial) fans out over the scoped thread
//! pool with one RNG stream per shard, so the curves depend only on the master
//! seed — never on `--threads`.

use crate::par::stream_seed;
use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let nodes = 720;
    let ratios = [0.0, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12];
    let trials = ctx.count(10);
    let mut tables = Vec::new();
    for (tp_index, tp) in [8usize, 16, 32, 64].into_iter().enumerate() {
        let archs = paper_architectures(nodes, 4, tp);
        let mut header: Vec<String> = vec!["fault ratio (%)".to_string()];
        header.extend(archs.iter().map(|a| a.name().to_string()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut columns: Vec<Vec<f64>> = Vec::new();
        for (arch_index, arch) in archs.iter().enumerate() {
            // One master stream per (TP, architecture) sweep, derived from the
            // grid position so the layout — not the loop schedule — fixes it.
            let master = stream_seed(ctx.seed, (tp_index * archs.len() + arch_index) as u64);
            let points =
                waste_vs_fault_ratio_par(arch.as_ref(), tp, &ratios, trials, master, ctx.threads);
            columns.push(points.iter().map(|p| p.waste_ratio).collect());
        }
        let mut rows = Vec::new();
        for (i, ratio) in ratios.iter().enumerate() {
            let mut row = vec![fmt(ratio * 100.0, 0)];
            for column in &columns {
                row.push(fmt(column[i] * 100.0, 2));
            }
            rows.push(row);
        }
        tables.push(Table::new(
            format!("Fig 14/22: waste ratio (%) vs node fault ratio, TP-{tp}"),
            &header_refs,
            rows,
        ));
    }
    tables
}
