//! Table 4: MFU of TP-sharded vs EP-routed experts for GPT-MoE under growing
//! expert-imbalance coefficients.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::llmsim::ExpertImbalance;
use infinitehbd::prelude::*;

pub fn run(_ctx: &RunCtx) -> Vec<Table> {
    let model = ModelConfig::gpt_moe_1t();
    let mut sim = TrainingSimulator::paper_defaults();
    let tp_strategy = ParallelismStrategy::new(16, 8, 8);
    let ep_strategy = ParallelismStrategy::new(8, 8, 16).with_ep(8);
    let header = ["imbalance coef", "TP MFU (%)", "EP MFU (%)"];
    let mut rows = Vec::new();
    for coefficient in [0.0, 0.1, 0.2, 0.3] {
        sim.imbalance = ExpertImbalance::new(coefficient);
        let tp = sim.estimate(&model, &tp_strategy).expect("TP fits").mfu;
        let ep = sim.estimate(&model, &ep_strategy).expect("EP fits").mfu;
        rows.push(vec![
            fmt(coefficient * 100.0, 0) + "%",
            fmt(tp * 100.0, 1),
            fmt(ep * 100.0, 1),
        ]);
    }
    vec![Table::new(
        "Table 4: TP vs EP for GPT-MoE under expert imbalance (1,024 GPUs)",
        &header,
        rows,
    )]
}
