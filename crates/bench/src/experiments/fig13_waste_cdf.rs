//! Figs 13 and 21: CDF of the GPU waste ratio of every architecture over the
//! production-calibrated fault trace (2,880 GPUs, 4-GPU nodes), for
//! TP-8/16/32/64. The per-instant trace replay fans out over the thread pool.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::cluster::waste::waste_cdf;
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let config = ClusterConfig::paper_2880_gpu();
    let days = ctx.days(348.0);
    let samples = ctx.count(348);
    let mut tables = Vec::new();
    for tp in [8usize, 16, 32, 64] {
        let study = ClusterStudy::new(config.clone(), tp, Seconds::from_days(days), ctx.seed)
            .expect("valid study");
        let header = [
            "architecture",
            "p50 waste (%)",
            "p90 waste (%)",
            "p99 waste (%)",
            "mean (%)",
        ];
        let mut rows = Vec::new();
        for arch in paper_architectures(config.nodes, config.node_size.gpus(), tp) {
            let points =
                waste_over_trace_par(arch.as_ref(), study.trace(), tp, samples, ctx.threads);
            let cdf = waste_cdf(&points);
            let pick = |q: f64| cdf[(q * (cdf.len() - 1) as f64) as usize].0;
            let mean = points.iter().map(|p| p.waste_ratio).sum::<f64>() / points.len() as f64;
            rows.push(vec![
                arch.name().to_string(),
                fmt(pick(0.50) * 100.0, 2),
                fmt(pick(0.90) * 100.0, 2),
                fmt(pick(0.99) * 100.0, 2),
                fmt(mean * 100.0, 2),
            ]);
        }
        tables.push(Table::new(
            format!("Fig 13/21: GPU waste ratio CDF summary, TP-{tp}"),
            &header,
            rows,
        ));
    }
    tables
}
