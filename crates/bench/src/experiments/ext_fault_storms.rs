//! Extension experiment: correlated fault-storm survival of the retrying,
//! breaker-guarded placement client (`orchestrator::client` +
//! `fault::storm`).
//!
//! A steady query stream runs against a 256-node snapshot while seeded
//! **correlated fault storms** ([`generate_storms`]) tear through it: each
//! burst blasts a contiguous run of ToRs inside one aggregation domain, and
//! every availability edge lands on the snapshot store as an
//! [`ExclusionLedger`] delta at its modeled instant. Every node a burst
//! knocks out also fires a **re-placement query** a few modeled µs later —
//! the displaced job asking for a new home — so a wider blast radius means
//! a taller correlated load spike landing exactly while the snapshot is
//! churning. The storm-size sweep widens the blast radius from one ToR to
//! a whole aggregation domain and reports how the client rides the spike
//! out: answered / degraded / exhausted outcome fractions, retries,
//! circuit-breaker transitions, and the modeled recovery time from each
//! burst (burst instant until the breaker is closed again with an empty,
//! idle admission queue).
//!
//! Degraded answers — `MaxJob` / `WhatIf` served client-side from the last
//! healthy epoch while the breaker is open — carry an explicit staleness
//! label; the sweep reports the worst staleness seen so the cost of
//! degraded mode is visible next to its benefit.
//!
//! Deterministic in the seed, invariant in `--threads`: storms, arrivals,
//! backoff jitter and breaker transitions all live in modeled time.

use crate::experiments::ext_service_throughput::{build_stream, mean_interarrival_us};
use crate::par::stream_seed;
use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::dcn::jobmix::ExclusionLedger;
use infinitehbd::fault::storm::{generate_storms, StormConfig};
use infinitehbd::fault::NodeEventKind;
use infinitehbd::hbd_types::{BackoffSchedule, BreakerConfig, Seconds};
use infinitehbd::orchestrator::admission::{AdmissionConfig, ShedPolicy};
use infinitehbd::orchestrator::client::{
    ClientConfig, ClientOutcome, ClientQuery, RetryPolicy, RetryingClient, StorePublish,
};
use infinitehbd::orchestrator::service::{
    ModeledLatency, PlacementQuery, PlacementService, SnapshotStore,
};
use infinitehbd::orchestrator::{FatTreeOrchestrator, OrchestrationRequest};
use infinitehbd::topology::{FatTree, FaultSet};
use std::sync::Arc;

/// Cluster size of the sweep (16 nodes per ToR, 8 ToRs per aggregation
/// domain — two domains).
pub const NODES: usize = 256;

/// Blast radii of the storm-size sweep, in ToRs per burst; the last value is
/// a whole aggregation domain.
pub const BLAST_TORS: [usize; 4] = [1, 2, 4, 8];

/// Queue capacity of the client's admission controller.
const CAPACITY: usize = 16;

/// Batch cap of the client's admission controller.
const BATCH_CAP: usize = 8;

/// Per-attempt deadline budget, modeled µs.
const DEADLINE_US: f64 = 2_000.0;

/// The client configuration of the sweep: a tight queue and deadline so
/// storm-induced slowdowns surface as sheds, a breaker that opens after
/// three consecutive sheds and re-probes after 5 modeled ms, and a capped
/// exponential backoff starting at 1 modeled ms.
fn client_config() -> ClientConfig {
    ClientConfig {
        admission: AdmissionConfig {
            capacity: CAPACITY,
            batch_cap: BATCH_CAP,
            policy: ShedPolicy::DeadlineAware,
        },
        retry: RetryPolicy {
            backoff: BackoffSchedule {
                base: Seconds(0.001),
                factor: 2.0,
                cap: Seconds(0.016),
                jitter: 0.25,
                seed: 0xb0ff,
            },
            max_attempts: 4,
        },
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown: Seconds(0.005),
        },
        deadline_us: DEADLINE_US,
    }
}

/// The storm schedule of one sweep row: bursts arriving over the query
/// window, blast radius `blast_tors`, 75 % of each blasted ToR's nodes down
/// for ~a quarter of the window each.
fn storm_config(blast_tors: usize, window_us: f64) -> StormConfig {
    let window = Seconds(window_us / 1_000_000.0);
    StormConfig {
        nodes: NODES,
        nodes_per_tor: 16,
        tors_per_domain: 8,
        duration: window,
        mean_interarrival: Seconds(window.value() / 3.0),
        blast_tors,
        hit_fraction: 0.75,
        mean_outage: Seconds(window.value() / 4.0),
        stagger: Seconds(window.value() / 500.0),
    }
}

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let orchestrator = Arc::new(
        FatTreeOrchestrator::new(FatTree::new(NODES, 16, 8).expect("valid fat-tree"))
            .expect("orchestrator"),
    );
    let queries_per_stream = ctx.count(224);
    let radii = ctx.select(&BLAST_TORS);

    let mut rows = Vec::new();
    for (idx, &blast) in radii.iter().enumerate() {
        // A fresh service per row: storms mutate the store.
        let service = PlacementService::new(Arc::new(SnapshotStore::new(
            Arc::clone(&orchestrator),
            FaultSet::new(),
        )));
        let (stream, arrivals) = build_stream(
            NODES,
            queries_per_stream,
            stream_seed(ctx.seed, idx as u64),
            // Slightly inside saturation so storms, not base load, cause
            // the sheds.
            mean_interarrival_us(NODES) * 1.25,
        );
        let window_us = arrivals.last().copied().unwrap_or(1.0).max(1.0);
        let schedule = generate_storms(
            &storm_config(blast, window_us),
            stream_seed(ctx.seed, 100 + idx as u64),
        )
        .expect("storm schedule");

        // Every availability edge lands as one ledger delta publish at its
        // modeled instant; the recovery marks sit at the burst instants.
        let mut ledger = ExclusionLedger::new();
        let mut publishes = Vec::with_capacity(schedule.events.len());
        for event in &schedule.events {
            let down = event.kind == NodeEventKind::Fault;
            ledger.apply_availability_burst([(event.node, down)]);
            let delta = ledger.take_pending_delta();
            if !delta.is_empty() {
                publishes.push(StorePublish {
                    at_us: event.at.value() * 1_000_000.0,
                    delta,
                });
            }
        }
        // Recovery stopwatches start once each burst's re-placement wave has
        // fully landed (the wave spans `2 * nodes` µs from the burst
        // instant) — measuring from the burst instant itself would observe a
        // still-healthy queue and read zero.
        let marks: Vec<f64> = schedule
            .bursts
            .iter()
            .map(|b| b.at.value() * 1_000_000.0 + 2.0 * b.nodes.len() as f64)
            .collect();

        let mut queries: Vec<ClientQuery> = stream
            .iter()
            .enumerate()
            .map(|(i, query)| ClientQuery {
                id: i as u64,
                query: query.clone(),
                arrival_us: arrivals[i],
                class: (i % 4) as u8,
            })
            .collect();
        // The recovery wave: every node a burst knocks out re-submits its
        // displaced job as a fresh `Place` query a few modeled µs after the
        // burst instant. The wave is what makes wide storms dangerous — a
        // correlated arrival spike against a churning snapshot.
        for burst in &schedule.bursts {
            for (i, _) in burst.nodes.iter().enumerate() {
                queries.push(ClientQuery {
                    id: queries.len() as u64,
                    query: PlacementQuery::Place(OrchestrationRequest {
                        job_nodes: 16,
                        nodes_per_group: 16,
                        k: 2,
                    }),
                    arrival_us: burst.at.value() * 1_000_000.0 + 1.0 + i as f64 * 2.0,
                    class: (i % 4) as u8,
                });
            }
        }
        let offered = queries.len();

        let client = RetryingClient::new(client_config());
        let report = client.run_session(
            &service,
            ModeledLatency::for_cluster(NODES),
            &queries,
            &publishes,
            &marks,
            ctx.threads,
        );

        let (answered, degraded, exhausted) = report.outcome_counts();
        let max_staleness = report
            .outcomes
            .values()
            .filter_map(|o| match o {
                ClientOutcome::Degraded {
                    staleness_epochs, ..
                } => Some(*staleness_epochs),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let opens = report
            .breaker_transitions
            .iter()
            .filter(|(_, s)| *s == infinitehbd::hbd_types::BreakerState::Open)
            .count();
        let recovered: Vec<f64> = report.recovery_us.iter().flatten().copied().collect();
        let mean_recovery_ms = if recovered.is_empty() {
            0.0
        } else {
            recovered.iter().sum::<f64>() / recovered.len() as f64 / 1_000.0
        };
        let unrecovered = report.recovery_us.iter().filter(|r| r.is_none()).count();

        rows.push(vec![
            blast.to_string(),
            schedule.bursts.len().to_string(),
            schedule.distinct_nodes_hit().to_string(),
            offered.to_string(),
            answered.to_string(),
            degraded.to_string(),
            fmt(100.0 * degraded as f64 / offered.max(1) as f64, 1),
            exhausted.to_string(),
            report.retries.to_string(),
            opens.to_string(),
            max_staleness.to_string(),
            fmt(mean_recovery_ms, 3),
            unrecovered.to_string(),
        ]);
    }

    vec![Table::new(
        format!(
            "Correlated fault-storm sweep on the {NODES}-node snapshot \
             (blast radius in ToRs, 8 ToRs per aggregation domain, modeled time)"
        ),
        &[
            "blast ToRs",
            "bursts",
            "nodes hit",
            "offered",
            "answered",
            "degraded",
            "degraded %",
            "exhausted",
            "retries",
            "breaker opens",
            "max staleness",
            "mean recovery (ms)",
            "unrecovered marks",
        ],
        rows,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A storm that faults an entire aggregation domain must degrade the
    /// service (smaller answers, possibly degraded/exhausted outcomes) —
    /// never panic, and every query must still reach a terminal outcome.
    #[test]
    fn a_whole_domain_storm_degrades_but_terminates_every_query() {
        let ctx = RunCtx {
            seed: 7,
            threads: 1,
            scale: 1.0,
        };
        let tables = run(&ctx);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), BLAST_TORS.len());
        let mut storms_bit = false;
        for row in &tables[0].rows {
            let offered: usize = row[3].parse().unwrap();
            let answered: usize = row[4].parse().unwrap();
            let degraded: usize = row[5].parse().unwrap();
            let exhausted: usize = row[7].parse().unwrap();
            assert!(offered >= ctx.count(224), "base stream plus the wave");
            assert_eq!(
                answered + degraded + exhausted,
                offered,
                "every query reaches exactly one terminal outcome"
            );
            let retries: u64 = row[8].parse().unwrap();
            let opens: usize = row[9].parse().unwrap();
            storms_bit |= retries > 0 || opens > 0 || degraded > 0;
        }
        // The whole-domain row (at least) must actually stress the client:
        // retries, breaker opens or degraded answers somewhere in the sweep.
        assert!(storms_bit, "the storm sweep never stressed the client");
    }
}
