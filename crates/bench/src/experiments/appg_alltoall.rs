//! Appendix G: AllToAll on InfiniteHBD — volume and time of the naive ring
//! exchange versus Binary Exchange (with the OCSTrx fast-switch overhead),
//! plus the standard Bruck/pairwise baselines for context.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::prelude::*;

pub fn run(_ctx: &RunCtx) -> Vec<Table> {
    let link = AlphaBeta::hbd_default();
    let block = Bytes(4e6);
    let reconfig = Seconds(70e-6);
    let header = [
        "group p",
        "algorithm",
        "rounds",
        "MB/rank",
        "time (ms)",
        "runnable on InfiniteHBD",
    ];
    let mut rows = Vec::new();
    for p in [8usize, 16, 64, 256, 1024] {
        for algo in AllToAllAlgorithm::ALL {
            let overhead = if algo == AllToAllAlgorithm::BinaryExchange {
                reconfig
            } else {
                Seconds::ZERO
            };
            let cost = algo.cost(p, block, &link, overhead);
            rows.push(vec![
                p.to_string(),
                algo.name().to_string(),
                cost.cost.steps.to_string(),
                fmt(cost.cost.bytes_per_rank.value() / 1e6, 1),
                fmt(cost.cost.time.value() * 1e3, 3),
                algo.supported_by_infinitehbd().to_string(),
            ]);
        }
    }
    vec![Table::new(
        "Appendix G: AllToAll algorithm comparison",
        &header,
        rows,
    )]
}
