//! Table 5: optimal parallelism strategy and MFU for GPT-MoE (1.1T) as the
//! cluster grows, with the production 20% expert-imbalance coefficient.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let search = StrategySearch::paper_defaults();
    let model = ModelConfig::gpt_moe_1t();
    let header = ["GPUs", "TP", "DP", "PP", "EP", "MFU"];
    let mut rows = Vec::new();
    for &gpus in ctx.select(&[1024usize, 2048, 4096, 8192, 16384]) {
        let best = search.optimal(&model, gpus).expect("feasible strategy");
        rows.push(vec![
            gpus.to_string(),
            best.strategy.tp.to_string(),
            best.strategy.dp.to_string(),
            best.strategy.pp.to_string(),
            best.strategy.ep.to_string(),
            fmt(best.mfu, 4),
        ]);
    }
    vec![Table::new(
        "Table 5: GPT-MoE optimal parallelism (20% expert imbalance)",
        &header,
        rows,
    )]
}
