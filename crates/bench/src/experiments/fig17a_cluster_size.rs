//! Fig 17a: cross-ToR traffic rate versus cluster size, baseline (greedy) vs
//! optimized (HBD-DCN orchestration), TP-32 at an 85% job-scale ratio with 5%
//! node faults. The orchestrator's constraint search fans its probes out over
//! the thread pool.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let header = ["cluster (GPUs)", "baseline (%)", "optimized (%)"];
    let mut rows = Vec::new();
    for &nodes in ctx.select(&[512usize, 1024, 2048, 4096]) {
        let tree = FatTree::new(nodes, 16, 8).expect("valid fat-tree");
        let orch = FatTreeOrchestrator::new(tree.clone()).expect("valid orchestrator");
        let mut rng = ctx.rng();
        let faults = FaultSet::from_nodes(IidFaultModel::new(nodes, 0.05).sample_exact(&mut rng));
        let request = OrchestrationRequest {
            job_nodes: nodes * 85 / 100 / 8 * 8,
            nodes_per_group: 8,
            k: 2,
        };
        let model = TrafficModel::paper_tp32();
        let baseline = greedy_placement(nodes, &faults, 8, request.job_nodes, &mut rng);
        let optimized = orch
            .orchestrate_par(&request, &faults, ctx.threads)
            .expect("job fits");
        rows.push(vec![
            (nodes * 4).to_string(),
            fmt(cross_tor_rate(&baseline, &tree, &model) * 100.0, 2),
            fmt(cross_tor_rate(&optimized, &tree, &model) * 100.0, 2),
        ]);
    }
    vec![Table::new(
        "Fig 17a: cross-ToR rate vs cluster size (TP-32, 85% job, 5% faults)",
        &header,
        rows,
    )]
}
