//! Table 7 (Appendix C): closed-form upper bound on InfiniteHBD's expected GPU
//! waste ratio for a TP-32 job, by node size R and hop count K.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::cluster::theory::{paper_node_failure_probability, WasteBoundInput};
use infinitehbd::cluster::waste_ratio_upper_bound;

pub fn run(_ctx: &RunCtx) -> Vec<Table> {
    let header = ["R", "K=2", "K=3", "K=4"];
    let mut rows = Vec::new();
    for r in [4usize, 8] {
        let mut row = vec![r.to_string()];
        for k in [2u32, 3, 4] {
            let bound = waste_ratio_upper_bound(&WasteBoundInput {
                gpus_per_node: r,
                k,
                tp_size: 32,
                node_failure_probability: paper_node_failure_probability(r),
            });
            row.push(format!("{}%", fmt(bound * 100.0, 4)));
        }
        rows.push(row);
    }
    vec![Table::new(
        "Table 7: waste-ratio upper bound (TP-32)",
        &header,
        rows,
    )]
}
