//! Fig 12: bit-error rate of the OCSTrx under varying optical modulation
//! amplitude and ambient temperature.

use crate::registry::RunCtx;
use crate::Table;
use infinitehbd::ocstrx::optics::OmaSweep;
use infinitehbd::ocstrx::{BerModel, OpticalConditions};

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let mut rng = ctx.rng();
    let model = BerModel::paper_calibrated();
    let sweep = OmaSweep::paper_sweep();
    let bits = ctx.count(10_000_000_000) as u64;
    let header = ["OMA (mW)", "-5C", "25C", "50C", "75C"];
    let mut rows = Vec::new();
    for oma in sweep.values() {
        let mut row = vec![format!("{oma:.2}")];
        for temp in [-5.0, 25.0, 50.0, 75.0] {
            let ber = model.measure(
                OpticalConditions {
                    temperature_c: temp,
                    oma_mw: oma,
                },
                bits,
                &mut rng,
            );
            row.push(if ber == 0.0 {
                "0".to_string()
            } else {
                format!("{ber:.1e}")
            });
        }
        rows.push(row);
    }
    vec![Table::new(
        "Fig 12: OCSTrx BER vs OMA and temperature",
        &header,
        rows,
    )]
}
