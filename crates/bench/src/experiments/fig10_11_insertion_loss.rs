//! Figs 10a and 11: insertion-loss statistics and distribution of the OCSTrx
//! core module across ambient temperatures.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::ocstrx::InsertionLossModel;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let mut rng = ctx.rng();
    let model = InsertionLossModel::paper_calibrated();
    let population = ctx.count(400);
    let header = [
        "temp (C)",
        "avg loss (dB)",
        "min (dB)",
        "max (dB)",
        "units sampled",
    ];
    let mut rows = Vec::new();
    for temp in [0.0, 25.0, 50.0, 85.0] {
        let samples = model.sample_population(temp, population, &mut rng);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0, f64::max);
        rows.push(vec![
            fmt(temp, 0),
            fmt(mean, 2),
            fmt(min, 2),
            fmt(max, 2),
            samples.len().to_string(),
        ]);
    }
    let mut tables = vec![Table::new(
        "Fig 10a/11: OCSTrx insertion loss vs temperature",
        &header,
        rows,
    )];

    // Histogram for the Fig-11 distributions at 25C.
    let samples = model.sample_population(25.0, population, &mut rng);
    let header = ["bin (dB)", "count"];
    let mut rows = Vec::new();
    for bin in 0..8 {
        let lo = 2.0 + bin as f64 * 0.25;
        let hi = lo + 0.25;
        let count = samples.iter().filter(|&&s| s >= lo && s < hi).count();
        rows.push(vec![format!("{lo:.2}-{hi:.2}"), count.to_string()]);
    }
    tables.push(Table::new(
        "Fig 11b: insertion-loss distribution at 25C",
        &header,
        rows,
    ));
    tables
}
