//! Fig 20: GPU waste ratio over time (trace replay) for every architecture,
//! TP-32 on the 2,880-GPU / 4-GPU-node cluster. The replay fans out over the
//! thread pool.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let config = ClusterConfig::paper_2880_gpu();
    let tp = 32;
    let days = ctx.days(348.0);
    let samples = ctx.count(58);
    let study = ClusterStudy::new(config.clone(), tp, Seconds::from_days(days), ctx.seed)
        .expect("valid study");
    let archs = paper_architectures(config.nodes, config.node_size.gpus(), tp);
    let series: Vec<(String, Vec<f64>)> = archs
        .iter()
        .map(|arch| {
            let points =
                waste_over_trace_par(arch.as_ref(), study.trace(), tp, samples, ctx.threads);
            (
                arch.name().to_string(),
                points.iter().map(|p| p.waste_ratio).collect(),
            )
        })
        .collect();
    let mut header: Vec<&str> = vec!["day"];
    let names: Vec<String> = series.iter().map(|(n, _)| n.clone()).collect();
    header.extend(names.iter().map(|s| s.as_str()));
    let mut rows = Vec::new();
    for i in 0..samples {
        let mut row = vec![fmt(i as f64 * days / samples as f64, 0)];
        for (_, values) in &series {
            row.push(fmt(values[i] * 100.0, 2));
        }
        rows.push(row);
    }
    vec![Table::new(
        "Fig 20: waste ratio (%) over the trace, TP-32",
        &header,
        rows,
    )]
}
