//! Extension experiment: control-plane recovery cost of a single node fault as
//! a function of the ring degree K.
//!
//! The paper reports the OCSTrx hardware switching latency (60–80 µs, §5.1) and
//! argues that the fault explosion radius is node-level (§4.2); this harness
//! measures the *control path* of that claim: how many OCSTrx bundles must be
//! reconfigured, on how many nodes, and how long recovery takes end-to-end,
//! both with hardware-only latencies and with production software latencies.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::control::{ClusterManager, ControlLatencies};
use infinitehbd::prelude::*;

pub fn run(_ctx: &RunCtx) -> Vec<Table> {
    let header = [
        "K",
        "commands",
        "nodes reconfig",
        "hw latency (us)",
        "recovery hw-only (us)",
        "recovery production (s)",
    ];
    let mut rows = Vec::new();
    for k in [2usize, 3, 4] {
        let ring = KHopRing::new(720, 4, k).expect("valid ring");
        let mut hw =
            ClusterManager::new(ring.clone(), ControlLatencies::hardware_only()).expect("manager");
        let hw_report = hw.inject_fault(NodeId(360), Seconds(10.0)).expect("fault");

        let mut prod =
            ClusterManager::new(ring, ControlLatencies::production_defaults()).expect("manager");
        let prod_report = prod
            .inject_fault(NodeId(360), Seconds(10.0))
            .expect("fault");

        rows.push(vec![
            k.to_string(),
            hw_report.commands.to_string(),
            hw_report.nodes_reconfigured.to_string(),
            fmt(hw_report.hardware_latency.value(), 1),
            fmt(hw_report.total_recovery.value() * 1e6, 1),
            fmt(prod_report.total_recovery.value(), 3),
        ]);
    }
    vec![Table::new(
        "Extension: single-fault recovery cost vs K (720 nodes, 2,880 GPUs)",
        &header,
        rows,
    )]
}
