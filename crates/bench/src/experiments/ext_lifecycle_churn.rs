//! Extension experiment: lifecycle SLOs vs offered load.
//!
//! Sweeps the Poisson arrival rate of the lifecycle workload from a quarter
//! of the reference load to four times it (same templates, same horizon, no
//! faults — queueing behaviour in isolation) under the backfill policy. As
//! the load crosses the cluster's capacity, the queueing-delay tail and the
//! left-queued backlog take off while goodput saturates — the classic
//! saturation knee, here produced by the real placement kernel rather than a
//! closed-form queue.

use crate::par::stream_seed;
use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::cluster::lifecycle::simulate;
use infinitehbd::cluster::Workload;
use infinitehbd::hbd_types::Seconds;
use infinitehbd::orchestrator::FatTreeOrchestrator;
use infinitehbd::topology::FatTree;

use super::ext_lifecycle_slo::{base_config, templates, NODES};

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let orchestrator =
        FatTreeOrchestrator::new(FatTree::new(NODES, 16, 4).expect("valid fat-tree"))
            .expect("orchestrator");
    let horizon = Seconds::from_hours(8.0);
    let reference_arrivals = ctx.count(96);

    let header = [
        "load factor",
        "arrivals",
        "admitted",
        "completed",
        "left queued",
        "p50 queue delay (s)",
        "p99 queue delay (s)",
        "goodput",
        "utilization",
        "frag mean",
    ];
    let mut rows = Vec::new();
    for &load in ctx.select(&[0.25, 0.5, 1.0, 2.0, 4.0]) {
        let mean_interarrival = Seconds(horizon.value() / (reference_arrivals as f64 * load));
        // Same seed for every load: the sweep varies only the arrival rate.
        let workload = Workload::poisson(
            &templates(),
            mean_interarrival,
            horizon,
            stream_seed(ctx.seed, 0),
        )
        .expect("workload");
        let mut config = base_config(ctx, horizon);
        config.backfill = true;
        let outcome = simulate(&orchestrator, &workload, &[], &config).expect("simulation");
        rows.push(vec![
            fmt(load, 2),
            outcome.arrivals.to_string(),
            outcome.admitted.to_string(),
            outcome.completed.to_string(),
            outcome.left_queued.to_string(),
            fmt(outcome.queue_delay_percentile(0.5), 1),
            fmt(outcome.queue_delay_percentile(0.99), 1),
            fmt(outcome.goodput, 4),
            fmt(outcome.utilization, 4),
            fmt(outcome.frag_mean, 4),
        ]);
    }

    vec![Table::new(
        "Lifecycle SLOs vs offered load (backfill, fault-free)",
        &header,
        rows,
    )]
}
