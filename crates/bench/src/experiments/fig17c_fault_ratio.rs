//! Fig 17c: cross-ToR traffic rate versus node fault ratio on the 8,192-GPU
//! cluster at an 85% job-scale ratio.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let config = ClusterConfig::paper_8192_gpu();
    let tree = FatTree::from_config(&config).expect("valid fat-tree");
    let orch = FatTreeOrchestrator::new(tree.clone()).expect("valid orchestrator");
    let model = TrafficModel::paper_tp32();
    let header = ["fault ratio (%)", "baseline (%)", "optimized (%)"];
    let mut rows = Vec::new();
    let request = OrchestrationRequest {
        job_nodes: config.nodes * 85 / 100 / 8 * 8,
        nodes_per_group: 8,
        k: 2,
    };
    for &ratio in ctx.select(&[0.0, 0.01, 0.03, 0.05, 0.07, 0.09]) {
        let mut rng = ctx.rng();
        let faults =
            FaultSet::from_nodes(IidFaultModel::new(config.nodes, ratio).sample_exact(&mut rng));
        let baseline = greedy_placement(config.nodes, &faults, 8, request.job_nodes, &mut rng);
        let optimized = match orch.orchestrate_par(&request, &faults, ctx.threads) {
            Ok(p) => fmt(cross_tor_rate(&p, &tree, &model) * 100.0, 2),
            Err(_) => "wait".to_string(),
        };
        rows.push(vec![
            fmt(ratio * 100.0, 0),
            fmt(cross_tor_rate(&baseline, &tree, &model) * 100.0, 2),
            optimized,
        ]);
    }
    vec![Table::new(
        "Fig 17c: cross-ToR rate vs node fault ratio (8,192 GPUs, 85% job)",
        &header,
        rows,
    )]
}
