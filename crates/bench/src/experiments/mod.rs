//! One module per registered experiment. Each module exposes
//! `pub fn run(&RunCtx) -> Vec<Table>` — the body that used to live in the
//! corresponding binary's `main` — and the binaries are now thin wrappers
//! around [`crate::run_cli`].

pub mod appg_alltoall;
pub mod appg_alltoall_fastswitch;
pub mod ext_dcn_congestion;
pub mod ext_failover_recovery;
pub mod ext_fault_storms;
pub mod ext_incremental_publish;
pub mod ext_interference_vs_jobs;
pub mod ext_lifecycle_churn;
pub mod ext_lifecycle_faults;
pub mod ext_lifecycle_slo;
pub mod ext_multijob_interference;
pub mod ext_overload_shedding;
pub mod ext_pp_traffic;
pub mod ext_replay_scale;
pub mod ext_service_throughput;
pub mod fig10_11_insertion_loss;
pub mod fig10b_power;
pub mod fig12_ber;
pub mod fig13_waste_cdf;
pub mod fig14_waste_vs_fault;
pub mod fig15_max_job;
pub mod fig16_fault_waiting;
pub mod fig17a_cluster_size;
pub mod fig17b_job_scale;
pub mod fig17c_fault_ratio;
pub mod fig17d_aggregate_cost;
pub mod fig18_trace_stats;
pub mod fig20_waste_timeseries;
pub mod sec52_allreduce_util;
pub mod sim_seeds;
pub mod table2_llama_mfu;
pub mod table3_traffic_volume;
pub mod table4_tp_vs_ep;
pub mod table5_moe_mfu;
pub mod table6_cost_power;
pub mod table7_waste_bound;
pub mod table8_bom;
