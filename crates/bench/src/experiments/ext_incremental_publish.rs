//! Extension experiment: incremental epoch publishing under a churn-rate
//! sweep.
//!
//! A long-lived [`PlacementService`] is
//! driven across a chain of delta-published epochs on a 4k-node Fat-Tree.
//! Each epoch flips a fixed number of seeded exclusion bits (occupations,
//! faults and releases against the live set) through
//! [`SnapshotStore::publish_delta`](crate::service::SnapshotStore), then a
//! fixed probe batch forces the service to materialize its shared scratches
//! for the new epoch — *patched* forward from the previous epoch's scratches,
//! re-orchestrating only the sub-line segments whose fault words changed.
//!
//! The table reports, per churn rate, how many segments the patches
//! re-orchestrated versus carried over (from
//! [`PatchTally`](crate::service::PatchTally)) and prices both publish paths
//! with the same deterministic cost model as the throughput experiment: a
//! cold scratch build costs `build_us(nodes)` and a patched build the
//! re-orchestrated fraction of it. Every cell is bit-stable in the seed and
//! invariant in `--threads` (batch counters are pinned thread-invariant by
//! the `service_oracle` / `service_delta` suites; the patch statistics are a
//! deterministic function of the delta chain).

use crate::par::stream_seed;
use crate::registry::RunCtx;
use crate::service::{PlacementQuery, PlacementService, SnapshotDelta, SnapshotStore};
use crate::{fmt, Table};
use infinitehbd::hbd_types::NodeId;
use infinitehbd::orchestrator::{FatTreeOrchestrator, OrchestrationRequest};
use infinitehbd::topology::{FatTree, FaultSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Cluster size of the sweep (16 nodes per ToR, 8 ToRs per K-Hop domain).
const NODES: usize = 4096;

/// Exclusion-bit flips per published epoch — the churn-rate axis.
pub const CHURN_RATES: [usize; 5] = [1, 4, 16, 64, 256];

/// Modeled cost of one cold shared-scratch build, in microseconds — the same
/// linear model as the service-throughput experiment.
fn build_us(nodes: usize) -> f64 {
    0.08 * nodes as f64
}

/// The fixed probe batch: one placement and one max-job probe per TP-group
/// geometry, so every epoch materializes exactly two shared scratch keys.
fn probe_batch() -> Vec<PlacementQuery> {
    [8usize, 16]
        .iter()
        .flat_map(|&nodes_per_group| {
            [
                PlacementQuery::Place(OrchestrationRequest {
                    job_nodes: NODES / 8 / nodes_per_group * nodes_per_group,
                    nodes_per_group,
                    k: 2,
                }),
                PlacementQuery::MaxJob {
                    nodes_per_group,
                    k: 2,
                },
            ]
        })
        .collect()
}

/// One seeded epoch delta: `flips` nodes toggled against the live exclusion
/// set — an excluded node is released, a free one is occupied or faulted.
fn next_delta(live: &FaultSet, flips: usize, rng: &mut StdRng) -> SnapshotDelta {
    let mut delta = SnapshotDelta::new();
    let mut toggled = 0usize;
    while toggled < flips {
        let node = NodeId(rng.gen_range(0..NODES));
        if delta.occupied.is_faulty(node)
            || delta.faulted.is_faulty(node)
            || delta.released.is_faulty(node)
        {
            continue; // one flip per node per epoch
        }
        if live.is_faulty(node) {
            delta.released.add(node);
        } else if rng.gen_range(0..4) == 0 {
            delta.faulted.add(node);
        } else {
            delta.occupied.add(node);
        }
        toggled += 1;
    }
    delta
}

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let rates = ctx.select(&CHURN_RATES);
    let epochs = ctx.count(24);
    let orchestrator = Arc::new(
        FatTreeOrchestrator::new(FatTree::new(NODES, 16, 8).expect("valid fat-tree"))
            .expect("orchestrator"),
    );
    let queries = probe_batch();

    let mut rows = Vec::new();
    for (idx, &flips) in rates.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(stream_seed(ctx.seed, idx as u64));
        let mut live = FaultSet::new();
        let store = Arc::new(SnapshotStore::new(
            Arc::clone(&orchestrator),
            FaultSet::new(),
        ));
        let service = PlacementService::new(Arc::clone(&store));
        // Epoch 0 builds the two shared scratches cold; every epoch after
        // that patches them forward.
        service.answer_batch(&queries, ctx.threads);
        for _ in 0..epochs {
            let delta = next_delta(&live, flips, &mut rng);
            live.union_with(&delta.occupied);
            live.union_with(&delta.faulted);
            for node in delta.released.iter() {
                live.remove(node);
            }
            store.publish_delta(&delta);
            service.answer_batch(&queries, ctx.threads);
        }

        let tally = service.patch_tally();
        let segments = (tally.stats.segments_reorchestrated + tally.stats.segments_reused) as f64;
        let reorchestrated = tally.stats.segments_reorchestrated as f64;
        let reuse_pct = if segments > 0.0 {
            100.0 * tally.stats.segments_reused as f64 / segments
        } else {
            0.0
        };
        // Modeled publish-side latency per epoch: both keys' scratch
        // materializations, cold versus the re-orchestrated fraction.
        let builds_per_epoch = tally.patched_builds as f64 / epochs as f64;
        let cold_epoch_us = builds_per_epoch * build_us(NODES);
        let patched_epoch_us = if segments > 0.0 {
            builds_per_epoch * build_us(NODES) * (reorchestrated / segments)
        } else {
            0.0
        };
        let speedup = if patched_epoch_us > 0.0 {
            cold_epoch_us / patched_epoch_us
        } else {
            0.0
        };
        rows.push(vec![
            flips.to_string(),
            epochs.to_string(),
            tally.cold_builds.to_string(),
            tally.patched_builds.to_string(),
            tally.stats.segments_reorchestrated.to_string(),
            tally.stats.segments_reused.to_string(),
            fmt(reuse_pct, 1),
            fmt(patched_epoch_us, 1),
            fmt(cold_epoch_us, 1),
            fmt(speedup, 1),
        ]);
    }

    vec![Table::new(
        format!(
            "Incremental publish vs churn rate on the {NODES}-node snapshot \
             (delta-published epochs, modeled publish latency)"
        ),
        &[
            "flips/epoch",
            "epochs",
            "cold builds",
            "patched builds",
            "segments reorch.",
            "segments reused",
            "reuse %",
            "patched epoch (us)",
            "cold epoch (us)",
            "speedup",
        ],
        rows,
    )]
}
