//! Extension experiment: interference as a function of job count.
//!
//! Packing more concurrent jobs onto one Fat-Tree raises the odds that two
//! jobs' DP/PP flows meet on a ToR uplink. This sweep adds identical 64-node
//! jobs one at a time, replays every mix through the traffic engine for both
//! placement policies, and tracks how the mean/worst slowdown and the hot-link
//! count grow with the mix size — the shared-fabric scaling axis the
//! single-job figures cannot see.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::dcn::{greedy_place_mix, place_mix, replay_mix_par, JobTraffic, MixJob};
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let nodes = 512usize;
    let tree = FatTree::new(nodes, 16, 8).expect("valid fat-tree");
    let orchestrator = FatTreeOrchestrator::new(tree.clone()).expect("orchestrator");
    let network = DcnNetwork::new(tree, NetworkParams::non_blocking(16, 4).oversubscribed(4.0))
        .expect("network");
    let mut rng = ctx.rng();
    let faults = FaultSet::from_nodes(IidFaultModel::new(nodes, 0.05).sample_exact(&mut rng));

    let model = ModelConfig::llama31_405b();
    let comm = CommModel::paper_defaults();
    // Every job: 64 nodes = 8 TP-32 groups, sliced DP-2 × PP-4.
    let strategy = ParallelismStrategy::new(32, 4, 2);
    let matrix = TrafficMatrix::of_plan(&model, &strategy, &comm);
    let request = OrchestrationRequest {
        job_nodes: 64,
        nodes_per_group: 8,
        k: 2,
    };

    let header = [
        "jobs",
        "scheme",
        "makespan (s)",
        "mean slowdown",
        "max slowdown",
        "links >=95% peak",
    ];
    let mut rows = Vec::new();
    for &count in ctx.select(&[1usize, 2, 3, 4, 5]) {
        let requests: Vec<MixJob> = (0..count)
            .map(|i| MixJob::new(format!("job{i}"), request))
            .collect();

        let optimized = place_mix(&orchestrator, &requests, &faults, ctx.threads)
            .expect("mix fits")
            .into_iter()
            .map(|p| (p.name, p.scheme))
            .collect::<Vec<_>>();
        // Drop greedy shortfall jobs (partial placements cannot be lowered
        // into the fixed DP2×PP4 shape, and they have no optimized analogue).
        let greedy: Vec<(String, PlacementScheme)> =
            greedy_place_mix(nodes, &requests, &faults, &mut rng)
                .into_iter()
                .zip(&requests)
                .filter(|(p, job)| p.scheme.nodes_placed() >= job.request.job_nodes)
                .map(|(p, _)| (p.name, p.scheme))
                .collect();

        for (label, placements) in [("optimized", optimized), ("greedy", greedy)] {
            let jobs: Vec<JobTraffic> = placements
                .iter()
                .map(|(name, scheme)| {
                    matrix
                        .lower(scheme, name.clone(), 4)
                        .expect("shape matches the placement")
                })
                .collect();
            let outcome = replay_mix_par(&network, &jobs, ctx.threads).expect("replay");
            rows.push(vec![
                count.to_string(),
                label.to_string(),
                fmt(outcome.makespan.value(), 2),
                fmt(outcome.mean_slowdown(), 2),
                fmt(outcome.max_slowdown(), 2),
                outcome.hot_links(0.95).to_string(),
            ]);
        }
    }
    vec![Table::new(
        "Extension: interference vs concurrent job count (64-node DP2×PP4 jobs, 4:1 oversubscription)",
        &header,
        rows,
    )]
}
