//! Table 8 (Appendix F): component-level bill of materials of every
//! architecture's reference deployment.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::cost::ArchitectureBom;

pub fn run(_ctx: &RunCtx) -> Vec<Table> {
    let header = [
        "architecture",
        "component",
        "quantity",
        "unit $",
        "unit W",
        "line $",
        "line W",
    ];
    let mut rows = Vec::new();
    let mut boms = ArchitectureBom::table6_rows();
    boms.push(ArchitectureBom::alibaba_hpn());
    for bom in boms {
        for line in &bom.lines {
            rows.push(vec![
                bom.name.clone(),
                format!("{:?}", line.component.kind),
                line.quantity.to_string(),
                fmt(line.component.unit_cost.value(), 2),
                fmt(line.component.unit_power.value(), 2),
                fmt(line.cost().value(), 2),
                fmt(line.power().value(), 1),
            ]);
        }
        rows.push(vec![
            bom.name.clone(),
            "TOTAL".to_string(),
            bom.gpus.to_string(),
            String::new(),
            String::new(),
            fmt(bom.total_cost().value(), 2),
            fmt(bom.total_power().value(), 1),
        ]);
    }
    vec![Table::new(
        "Table 8: per-architecture bill of materials",
        &header,
        rows,
    )]
}
