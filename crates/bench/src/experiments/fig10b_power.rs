//! Fig 10b: core-module power of the OCSTrx per activated path and ambient
//! temperature.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::ocstrx::{PathId, PowerModel};

pub fn run(_ctx: &RunCtx) -> Vec<Table> {
    let model = PowerModel::paper_calibrated();
    let header = [
        "temp (C)",
        "Path 1 (W)",
        "Path 2 (W)",
        "Path 3 (W)",
        "total (W)",
    ];
    let mut rows = Vec::new();
    for temp in [0.0, 25.0, 50.0, 85.0] {
        rows.push(vec![
            fmt(temp, 0),
            fmt(model.core_power(PathId::External1, temp).value(), 3),
            fmt(model.core_power(PathId::External2, temp).value(), 3),
            fmt(model.core_power(PathId::Loopback, temp).value(), 3),
            fmt(model.total_power(PathId::Loopback, temp).value(), 2),
        ]);
    }
    vec![Table::new(
        "Fig 10b: OCSTrx core-module power",
        &header,
        rows,
    )]
}
