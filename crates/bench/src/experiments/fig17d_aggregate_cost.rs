//! Fig 17d: normalized aggregate cost (GPU capital lost to faults and waste
//! plus interconnect) versus node fault ratio for every architecture, TP-32 on
//! a 2,880-GPU cluster.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::cost::normalized_aggregate_cost;
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let nodes = 720;
    let pairs: Vec<(Box<dyn HbdArchitecture>, ArchitectureBom)> = vec![
        (Box::new(TpuV4::new(nodes, 4)), ArchitectureBom::tpuv4()),
        (
            Box::new(Nvl::new(nodes, 4, NvlVariant::Nvl36)),
            ArchitectureBom::nvl36(),
        ),
        (
            Box::new(Nvl::new(nodes, 4, NvlVariant::Nvl72)),
            ArchitectureBom::nvl72(),
        ),
        (
            Box::new(Nvl::new(nodes, 4, NvlVariant::Nvl36x2)),
            ArchitectureBom::nvl36x2(),
        ),
        (
            Box::new(Nvl::new(nodes, 4, NvlVariant::Nvl576)),
            ArchitectureBom::nvl576(),
        ),
        (
            Box::new(KHopRing::new(nodes, 4, 2).expect("valid ring")),
            ArchitectureBom::infinitehbd_k2(),
        ),
        (
            Box::new(KHopRing::new(nodes, 4, 3).expect("valid ring")),
            ArchitectureBom::infinitehbd_k3(),
        ),
    ];
    let ratios = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25];
    let mut header: Vec<String> = vec!["fault ratio (%)".to_string()];
    header.extend(pairs.iter().map(|(_, bom)| bom.name.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for ratio in ratios {
        let mut rng = ctx.rng();
        let faults = FaultSet::from_nodes(IidFaultModel::new(nodes, ratio).sample_exact(&mut rng));
        let mut row = vec![fmt(ratio * 100.0, 0)];
        for (arch, bom) in &pairs {
            let report = arch.utilization(&faults, 32);
            let cost = normalized_aggregate_cost(&AggregateCostInput {
                gpu_cost: Dollars(25_000.0),
                total_gpus: report.total_gpus,
                faulty_gpus: report.faulty_gpus,
                wasted_gpus: report.wasted_healthy_gpus,
                // Normalise every interconnect to 800 GBps of per-GPU bandwidth.
                interconnect_cost_per_gpu: Dollars(bom.cost_per_gbyteps() * 800.0),
            });
            row.push(fmt(cost, 1));
        }
        rows.push(row);
    }
    vec![Table::new(
        "Fig 17d: normalized aggregate cost vs fault ratio (TP-32)",
        &header_refs,
        rows,
    )]
}
