//! Fig 17b: cross-ToR traffic rate versus job-scale ratio on the 8,192-GPU
//! cluster with 5% node faults, plus the largest orchestratable job under the
//! same fault pattern (the parallel job-size search).

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let config = ClusterConfig::paper_8192_gpu();
    let tree = FatTree::from_config(&config).expect("valid fat-tree");
    let orch = FatTreeOrchestrator::new(tree.clone()).expect("valid orchestrator");
    let model = TrafficModel::paper_tp32();
    let header = ["job-scale ratio (%)", "baseline (%)", "optimized (%)"];
    let mut rows = Vec::new();
    for &scale in ctx.select(&[70usize, 75, 80, 85, 90]) {
        let mut rng = ctx.rng();
        let faults =
            FaultSet::from_nodes(IidFaultModel::new(config.nodes, 0.05).sample_exact(&mut rng));
        let request = OrchestrationRequest {
            job_nodes: config.nodes * scale / 100 / 8 * 8,
            nodes_per_group: 8,
            k: 2,
        };
        let baseline = greedy_placement(config.nodes, &faults, 8, request.job_nodes, &mut rng);
        let optimized = match orch.orchestrate_par(&request, &faults, ctx.threads) {
            Ok(p) => fmt(cross_tor_rate(&p, &tree, &model) * 100.0, 2),
            Err(_) => "wait".to_string(),
        };
        rows.push(vec![
            scale.to_string(),
            fmt(cross_tor_rate(&baseline, &tree, &model) * 100.0, 2),
            optimized,
        ]);
    }
    let mut tables = vec![Table::new(
        "Fig 17b: cross-ToR rate vs job-scale ratio (8,192 GPUs, 5% faults)",
        &header,
        rows,
    )];

    // Capacity planning: the largest job the orchestrator can place under the
    // same 5% fault pattern, found by the parallel multisection search.
    let faults =
        FaultSet::from_nodes(IidFaultModel::new(config.nodes, 0.05).sample_exact(&mut ctx.rng()));
    let report = max_orchestratable_job(&orch, 8, 2, &faults, ctx.threads);
    tables.push(Table::new(
        "Fig 15b (ext): largest orchestratable job under 5% faults",
        &["metric", "value"],
        vec![
            vec!["max job (nodes)".to_string(), report.job_nodes.to_string()],
            vec![
                "max job (GPUs)".to_string(),
                (report.job_nodes * config.node_size.gpus()).to_string(),
            ],
            vec![
                "max job-scale ratio (%)".to_string(),
                fmt(report.job_nodes as f64 / config.nodes as f64 * 100.0, 1),
            ],
            vec!["feasibility probes".to_string(), report.probes.to_string()],
        ],
    ));
    tables
}
