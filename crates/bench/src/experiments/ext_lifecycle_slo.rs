//! Extension experiment: admission-policy SLOs of the online cluster
//! lifecycle simulator (`cluster::lifecycle`).
//!
//! One seeded Poisson job mix (large/medium/small training jobs) and one
//! seeded fault schedule replay against a 256-node Fat-Tree under three
//! admission policies — strict FIFO, FIFO with backfill, and backfill plus
//! defragmentation-on-exit. The tables report the production SLOs the static
//! job-mix figures cannot see: the queueing-delay distribution, modeled
//! placement-latency percentiles, fragmentation over time and goodput, plus
//! the churn ledger (migrations, fault-waits, defrag moves) behind them.
//!
//! Placement latency is a deterministic model (per-group, per-retry and
//! per-failover-command terms), never wall-clock, so every cell is bit-stable
//! in the seed and invariant in `--threads`.

use crate::par::stream_seed;
use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::cluster::lifecycle::{simulate, LifecycleConfig, PlacementLatencyModel};
use infinitehbd::cluster::{JobTemplate, Workload};
use infinitehbd::fault::sim_events::generate_events;
use infinitehbd::fault::GeneratorConfig;
use infinitehbd::hbd_types::Seconds;
use infinitehbd::orchestrator::{FatTreeOrchestrator, OrchestrationRequest};
use infinitehbd::topology::FatTree;

/// Cluster size shared by the lifecycle experiments.
pub const NODES: usize = 256;

/// The job templates of the lifecycle workload: a large pre-training job, a
/// medium fine-tune and a small experiment, in paper-shaped TP groups.
pub fn templates() -> Vec<JobTemplate> {
    vec![
        JobTemplate {
            name: "large".to_string(),
            request: OrchestrationRequest {
                job_nodes: 64,
                nodes_per_group: 8,
                k: 2,
            },
            mean_service: Seconds::from_hours(2.0),
            weight: 1.0,
        },
        JobTemplate {
            name: "medium".to_string(),
            request: OrchestrationRequest {
                job_nodes: 32,
                nodes_per_group: 8,
                k: 2,
            },
            mean_service: Seconds::from_hours(1.0),
            weight: 2.0,
        },
        JobTemplate {
            name: "small".to_string(),
            request: OrchestrationRequest {
                job_nodes: 16,
                nodes_per_group: 4,
                k: 2,
            },
            mean_service: Seconds(1200.0),
            weight: 4.0,
        },
    ]
}

/// The shared lifecycle configuration (policy flags set per row).
pub fn base_config(ctx: &RunCtx, horizon: Seconds) -> LifecycleConfig {
    LifecycleConfig {
        nodes: NODES,
        gpus_per_node: 8,
        backfill: false,
        defrag_on_exit: false,
        latency: PlacementLatencyModel::default(),
        horizon,
        threads: ctx.threads,
        frag_probe_group: 8,
        frag_probe_k: 2,
        retry_backoff: None,
    }
}

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let orchestrator =
        FatTreeOrchestrator::new(FatTree::new(NODES, 16, 4).expect("valid fat-tree"))
            .expect("orchestrator");
    let horizon = Seconds::from_hours(8.0);
    // The arrival count scales with `--scale`; the horizon stays fixed so the
    // retained rows describe the same regime, only sampled more sparsely.
    let arrivals = ctx.count(96);
    let mean_interarrival = Seconds(horizon.value() / arrivals as f64);
    let workload = Workload::poisson(
        &templates(),
        mean_interarrival,
        horizon,
        stream_seed(ctx.seed, 0),
    )
    .expect("workload");
    let faults = generate_events(
        &GeneratorConfig {
            nodes: NODES,
            duration: horizon,
            steady_state_fault_ratio: 0.03,
            mean_time_to_repair: Seconds::from_hours(1.0),
        },
        stream_seed(ctx.seed, 1),
    )
    .expect("fault schedule");

    let policies: [(&str, bool, bool); 3] = [
        ("fifo", false, false),
        ("backfill", true, false),
        ("backfill+defrag", true, true),
    ];
    let mut slo_rows = Vec::new();
    let mut churn_rows = Vec::new();
    for (name, backfill, defrag) in policies {
        let mut config = base_config(ctx, horizon);
        config.backfill = backfill;
        config.defrag_on_exit = defrag;
        let outcome = simulate(&orchestrator, &workload, &faults, &config).expect("simulation");
        slo_rows.push(vec![
            name.to_string(),
            outcome.arrivals.to_string(),
            outcome.admitted.to_string(),
            outcome.completed.to_string(),
            fmt(outcome.queue_delay_percentile(0.5), 1),
            fmt(outcome.queue_delay_percentile(0.99), 1),
            fmt(outcome.placement_latency_percentile(0.5), 2),
            fmt(outcome.placement_latency_percentile(0.99), 2),
            fmt(outcome.goodput, 4),
        ]);
        churn_rows.push(vec![
            name.to_string(),
            outcome.migrations.to_string(),
            outcome.fault_waits.to_string(),
            outcome.defrag_passes.to_string(),
            outcome.defrag_moves.to_string(),
            fmt(outcome.frag_mean, 4),
            fmt(outcome.frag_max, 4),
            fmt(outcome.utilization, 4),
        ]);
    }

    vec![
        Table::new(
            "Lifecycle SLOs per admission policy (256 nodes, 8 h horizon)",
            &[
                "policy",
                "arrivals",
                "admitted",
                "completed",
                "p50 queue delay (s)",
                "p99 queue delay (s)",
                "p50 placement (s)",
                "p99 placement (s)",
                "goodput",
            ],
            slo_rows,
        ),
        Table::new(
            "Lifecycle churn ledger per admission policy",
            &[
                "policy",
                "migrations",
                "fault waits",
                "defrag passes",
                "defrag moves",
                "frag mean",
                "frag max",
                "utilization",
            ],
            churn_rows,
        ),
    ]
}
