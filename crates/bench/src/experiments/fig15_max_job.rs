//! Fig 15: maximal job scale supported by the 2,880-GPU cluster over the fault
//! trace, for TP-8/16/32/64. The per-instant trace scan fans out over the
//! thread pool.

use crate::registry::RunCtx;
use crate::Table;
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let config = ClusterConfig::paper_2880_gpu();
    let days = ctx.days(348.0);
    let samples = ctx.count(348);
    let mut header: Vec<String> = vec!["architecture".to_string()];
    header.extend(
        ["TP8", "TP16", "TP32", "TP64"]
            .iter()
            .map(|s| s.to_string()),
    );
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let arch_names: Vec<String> = paper_architectures(config.nodes, 4, 32)
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let mut table: Vec<Vec<String>> = arch_names.iter().map(|n| vec![n.clone()]).collect();
    for tp in [8usize, 16, 32, 64] {
        let study = ClusterStudy::new(config.clone(), tp, Seconds::from_days(days), ctx.seed)
            .expect("valid study");
        for (i, arch) in paper_architectures(config.nodes, 4, tp).iter().enumerate() {
            let job =
                max_job_over_trace_par(arch.as_ref(), study.trace(), tp, samples, ctx.threads);
            table[i].push(job.to_string());
        }
    }
    vec![Table::new(
        "Fig 15: maximal job scale (GPUs) supported by 2,880 GPUs",
        &header_refs,
        table,
    )]
}
