//! Extension experiment: sustained-load throughput and tail latency of the
//! placement-query service layer (`orchestrator::service`).
//!
//! A seeded open-loop Poisson arrival stream of mixed queries — placements,
//! max-job probes and what-if overlays — is driven against epoch-swapped
//! snapshots of 1k / 4k / 16k-node Fat-Trees while a seeded fault/repair
//! schedule churns in the background (published as new snapshot epochs at
//! fixed stream positions, a deliberate timescale compression: hours of
//! churn replayed over one query stream). The service batches whatever has
//! arrived, up to a cap, and answers each batch against one pinned epoch.
//!
//! Latency is a **deterministic model**, never wall-clock: the per-query
//! [`QueryCost`](crate::service::QueryCost) counters and batch-level
//! scratch build/reuse counters are
//! priced by the shared [`ModeledLatency`] model (fixed per-probe /
//! per-search / per-build terms scaled by cluster size, dealt round-robin
//! onto a fixed-width modeled lane pool — the same pricing the admission
//! controller uses), and an open-loop single-server queue simulation turns the
//! modeled service times into sojourn times. Every cell is bit-stable in the
//! seed and invariant in `--threads` (the batch answers themselves are pinned
//! thread-invariant by the `service_oracle` suite).

use crate::par::stream_seed;
use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::fault::sim_events::{generate_events, NodeEvent, NodeEventKind};
use infinitehbd::fault::GeneratorConfig;
use infinitehbd::hbd_types::{NodeId, Seconds};
use infinitehbd::orchestrator::service::{
    ModeledLatency, PlacementAnswer, PlacementQuery, PlacementService, SnapshotStore,
};
use infinitehbd::orchestrator::{FatTreeOrchestrator, OrchestrationRequest};
use infinitehbd::topology::{FatTree, FaultSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The snapshot sizes of the throughput sweep (nodes; 16 per ToR, 8 ToRs per
/// K-Hop domain, as in the cluster-size figure).
pub const CLUSTERS: [usize; 3] = [1024, 4096, 16384];

/// Batch caps of the batching sweep.
pub const BATCH_CAPS: [usize; 4] = [1, 8, 32, 128];

/// Batch cap of the cluster-size table.
const DEFAULT_BATCH_CAP: usize = 32;

/// Snapshot epochs published (beyond epoch 0) while a stream runs.
const CHURN_PUBLISHES: usize = 6;

/// Mean interarrival time of the open-loop stream, in microseconds. Scaling
/// with cluster size keeps every row in a comparable utilisation regime, so
/// the tail columns show queueing, not trivial overload.
pub fn mean_interarrival_us(nodes: usize) -> f64 {
    0.15 * nodes as f64
}

/// Interarrival shrink factor of the batching sweep: the sweep stream is
/// deliberately overloaded for a serial (cap-1) server, so the table shows
/// where batching starts sustaining the offered load.
const SWEEP_OVERLOAD: f64 = 0.5;

/// One random query of the mix: ~70 % placements, ~10 % max-job probes,
/// ~20 % what-if overlays, over two TP-group geometries and three job sizes.
/// Shared with the overload/storm robustness experiments so every service
/// experiment stresses the same query mix.
pub fn random_query(rng: &mut StdRng, nodes: usize) -> PlacementQuery {
    let nodes_per_group = [8usize, 16][rng.gen_range(0..2usize)];
    let fraction = [8usize, 4, 2][rng.gen_range(0..3usize)];
    let job_nodes = ((nodes / fraction) / nodes_per_group).max(1) * nodes_per_group;
    let request = OrchestrationRequest {
        job_nodes,
        nodes_per_group,
        k: 2,
    };
    match rng.gen_range(0..10) {
        0..=6 => PlacementQuery::Place(request),
        7 => PlacementQuery::MaxJob {
            nodes_per_group,
            k: 2,
        },
        _ => {
            let extra = FaultSet::from_nodes(
                (0..rng.gen_range(1..=8)).map(|_| NodeId(rng.gen_range(0..nodes))),
            );
            PlacementQuery::WhatIf {
                request,
                extra_faults: extra,
            }
        }
    }
}

/// A seeded query stream plus its open-loop arrival times (microseconds),
/// with the given mean interarrival time.
pub fn build_stream(
    nodes: usize,
    count: usize,
    seed: u64,
    interarrival_us: f64,
) -> (Vec<PlacementQuery>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = 0.0f64;
    let mut queries = Vec::with_capacity(count);
    let mut arrivals = Vec::with_capacity(count);
    for _ in 0..count {
        at += -interarrival_us * (1.0 - rng.gen::<f64>()).ln();
        arrivals.push(at);
        queries.push(random_query(&mut rng, nodes));
    }
    (queries, arrivals)
}

/// The background churn schedule: a seeded fault/repair edge stream, replayed
/// in *stream position* (not wall time) at [`CHURN_PUBLISHES`] publish points.
fn churn_schedule(nodes: usize, seed: u64) -> Vec<NodeEvent> {
    generate_events(
        &GeneratorConfig {
            nodes,
            duration: Seconds::from_hours(8.0),
            steady_state_fault_ratio: 0.02,
            mean_time_to_repair: Seconds::from_hours(1.0),
        },
        seed,
    )
    .expect("churn schedule")
}

/// Aggregates of one simulated stream.
struct StreamOutcome {
    batches: usize,
    epochs_published: usize,
    placed: usize,
    infeasible: usize,
    max_job_mean: f64,
    scratch_builds: usize,
    scratch_reuses: usize,
    probes: usize,
    qps: f64,
    sojourns_ms: Vec<f64>,
}

impl StreamOutcome {
    fn sojourn_percentile(&self, q: f64) -> f64 {
        if self.sojourns_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.sojourns_ms.clone();
        sorted.sort_by(f64::total_cmp);
        infinitehbd::fault::stats::percentile(&sorted, q)
    }
}

/// Drives one query stream through a fresh service under a batch cap: a
/// single-server queue takes whatever has arrived by the time the server
/// frees up (at most `batch_cap`, at least one query — open-loop arrivals
/// are never dropped), answers it as one batch against the pinned snapshot,
/// and charges the modeled batch service time. Churn edges are applied and
/// published when the stream position crosses each publish point.
fn run_stream(
    orchestrator: &Arc<FatTreeOrchestrator>,
    queries: &[PlacementQuery],
    arrivals_us: &[f64],
    churn: &[NodeEvent],
    batch_cap: usize,
    threads: usize,
) -> StreamOutcome {
    let store = Arc::new(SnapshotStore::new(
        Arc::clone(orchestrator),
        FaultSet::new(),
    ));
    let service = PlacementService::new(Arc::clone(&store));
    let model = ModeledLatency::for_cluster(orchestrator.fat_tree().nodes());
    let total = queries.len();
    let chunk = churn.len().div_ceil(CHURN_PUBLISHES.max(1));

    let mut live = FaultSet::new();
    let mut published = 0usize;
    let mut free_at = 0.0f64;
    let mut next = 0usize;
    let mut outcome = StreamOutcome {
        batches: 0,
        epochs_published: 0,
        placed: 0,
        infeasible: 0,
        max_job_mean: 0.0,
        scratch_builds: 0,
        scratch_reuses: 0,
        probes: 0,
        qps: 0.0,
        sojourns_ms: Vec::with_capacity(total),
    };
    let mut max_job_sum = 0usize;
    let mut max_job_count = 0usize;

    while next < total {
        // Publish pending churn chunks once the stream position crosses their
        // publish point (evenly spaced over the stream).
        while published < CHURN_PUBLISHES && next >= (published + 1) * total / (CHURN_PUBLISHES + 1)
        {
            for event in churn.iter().skip(published * chunk).take(chunk) {
                match event.kind {
                    NodeEventKind::Fault => live.add(event.node),
                    NodeEventKind::Repair => live.remove(event.node),
                };
            }
            store.publish(live.clone());
            published += 1;
            outcome.epochs_published += 1;
        }

        let start = free_at.max(arrivals_us[next]);
        let mut end = next + 1;
        while end < total && end - next < batch_cap && arrivals_us[end] <= start {
            end += 1;
        }
        let report = service.answer_batch(&queries[next..end], threads);
        let done = start + model.batch_service_us(&report);
        for &arrived in &arrivals_us[next..end] {
            outcome.sojourns_ms.push((done - arrived) / 1_000.0);
        }
        for answer in &report.answers {
            match answer {
                PlacementAnswer::Placement(Ok(_)) => outcome.placed += 1,
                PlacementAnswer::Placement(Err(_)) => outcome.infeasible += 1,
                PlacementAnswer::MaxJob { job_nodes } => {
                    max_job_sum += job_nodes;
                    max_job_count += 1;
                }
            }
        }
        outcome.scratch_builds +=
            report.stats.shared_scratch_builds + report.stats.private_scratch_builds;
        outcome.scratch_reuses += report.stats.shared_scratch_reuses;
        outcome.probes += report.stats.probes;
        outcome.batches += 1;
        free_at = done;
        next = end;
    }

    if max_job_count > 0 {
        outcome.max_job_mean = max_job_sum as f64 / max_job_count as f64;
    }
    // Sustained rate: queries per modeled second of makespan.
    outcome.qps = total as f64 / (free_at / 1_000_000.0);
    outcome
}

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let clusters = ctx.select(&CLUSTERS);
    let queries_per_stream = ctx.count(288);

    let mut size_rows = Vec::new();
    let mut orchestrators = Vec::new();
    for (idx, &nodes) in clusters.iter().enumerate() {
        let orchestrator = Arc::new(
            FatTreeOrchestrator::new(FatTree::new(nodes, 16, 8).expect("valid fat-tree"))
                .expect("orchestrator"),
        );
        let (queries, arrivals) = build_stream(
            nodes,
            queries_per_stream,
            stream_seed(ctx.seed, idx as u64),
            mean_interarrival_us(nodes),
        );
        let churn = churn_schedule(nodes, stream_seed(ctx.seed, 100 + idx as u64));
        let outcome = run_stream(
            &orchestrator,
            &queries,
            &arrivals,
            &churn,
            DEFAULT_BATCH_CAP,
            ctx.threads,
        );
        size_rows.push(vec![
            nodes.to_string(),
            queries_per_stream.to_string(),
            outcome.epochs_published.to_string(),
            outcome.placed.to_string(),
            outcome.infeasible.to_string(),
            fmt(outcome.max_job_mean, 1),
            outcome.scratch_builds.to_string(),
            outcome.scratch_reuses.to_string(),
            fmt(outcome.probes as f64 / queries_per_stream as f64, 2),
            fmt(outcome.qps, 0),
            fmt(outcome.sojourn_percentile(0.5), 3),
            fmt(outcome.sojourn_percentile(0.99), 3),
        ]);
        orchestrators.push(orchestrator);
    }

    // The batching sweep runs on the middle retained cluster, over one shared
    // stream so the caps are directly comparable.
    let sweep_idx = clusters.len() / 2;
    let sweep_nodes = clusters[sweep_idx];
    let sweep_queries = ctx.count(192);
    let (queries, arrivals) = build_stream(
        sweep_nodes,
        sweep_queries,
        stream_seed(ctx.seed, 50),
        mean_interarrival_us(sweep_nodes) * SWEEP_OVERLOAD,
    );
    let churn = churn_schedule(sweep_nodes, stream_seed(ctx.seed, 150));
    let mut batch_rows = Vec::new();
    for &cap in &BATCH_CAPS {
        let outcome = run_stream(
            &orchestrators[sweep_idx],
            &queries,
            &arrivals,
            &churn,
            cap,
            ctx.threads,
        );
        batch_rows.push(vec![
            cap.to_string(),
            outcome.batches.to_string(),
            outcome.scratch_builds.to_string(),
            outcome.scratch_reuses.to_string(),
            fmt(outcome.qps, 0),
            fmt(outcome.sojourn_percentile(0.5), 3),
            fmt(outcome.sojourn_percentile(0.99), 3),
        ]);
    }

    vec![
        Table::new(
            format!(
                "Service sustained load vs cluster size (batch cap {DEFAULT_BATCH_CAP}, \
                 {CHURN_PUBLISHES} churn epochs, modeled latency)"
            ),
            &[
                "nodes",
                "queries",
                "epochs",
                "placed",
                "infeasible",
                "max-job mean",
                "scratch builds",
                "scratch reuses",
                "probes/query",
                "qps",
                "p50 (ms)",
                "p99 (ms)",
            ],
            size_rows,
        ),
        Table::new(
            format!("Batch-cap sweep on the {sweep_nodes}-node snapshot (modeled latency)"),
            &[
                "batch cap",
                "batches",
                "scratch builds",
                "scratch reuses",
                "qps",
                "p50 (ms)",
                "p99 (ms)",
            ],
            batch_rows,
        ),
    ]
}
