//! Figs 16 and 23: job fault-waiting rate versus job scale over the fault
//! trace, for TP-16 and TP-32 (plus TP-8/64 for the appendix figure). The
//! per-instant trace scan fans out over the thread pool.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let config = ClusterConfig::paper_2880_gpu();
    let days = ctx.days(348.0);
    let samples = ctx.count(348);
    let mut tables = Vec::new();
    for tp in [8usize, 16, 32, 64] {
        let study = ClusterStudy::new(config.clone(), tp, Seconds::from_days(days), ctx.seed)
            .expect("valid study");
        let archs = paper_architectures(config.nodes, 4, tp);
        let job_scales: Vec<usize> = [0.80, 0.85, 0.90, 0.95, 1.0]
            .iter()
            .map(|f| ((2880.0 * f) as usize / tp) * tp)
            .collect();
        let mut header: Vec<String> = vec!["architecture".to_string()];
        header.extend(job_scales.iter().map(|j| format!("{j} GPUs")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut rows = Vec::new();
        for arch in &archs {
            let mut row = vec![arch.name().to_string()];
            for &job in &job_scales {
                let rate = fault_waiting_rate_par(
                    arch.as_ref(),
                    study.trace(),
                    tp,
                    job,
                    samples,
                    ctx.threads,
                );
                row.push(fmt(rate * 100.0, 1));
            }
            rows.push(row);
        }
        tables.push(Table::new(
            format!("Fig 16/23: fault-waiting rate (%) vs job scale, TP-{tp}"),
            &header_refs,
            rows,
        ));
    }
    tables
}
