//! Appendix G (extended): Binary Exchange AllToAll with OCSTrx fast switching
//! versus the O(p²) ring fallback, with the reconfiguration latency exposed or
//! overlapped with expert computation.
//!
//! Complements the `appg_alltoall` harness (pure volume/complexity comparison)
//! with wall-clock estimates that include the 60–80 µs path switches, plus the
//! Appendix-G.3 feasibility limits of the ±2^i Binary-Hop wiring.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::collective::FastSwitchAllToAll;
use infinitehbd::prelude::*;

pub fn run(_ctx: &RunCtx) -> Vec<Table> {
    let link = AlphaBeta::hbd_default();
    let block = Bytes::from_mb(24.0);

    let header = [
        "EP size",
        "rounds",
        "reconfigs",
        "ring (ms)",
        "binexch exposed (ms)",
        "binexch overlapped (ms)",
        "speedup",
    ];
    let mut rows = Vec::new();
    for p in [4usize, 8, 16, 32, 64, 128] {
        let schedule = FastSwitchAllToAll::new(p);
        let exposed = schedule.cost(block, &link);
        let overlapped = schedule.overlapped(Seconds(200e-6)).cost(block, &link);
        let ring = schedule.ring_fallback(block, &link);
        rows.push(vec![
            p.to_string(),
            exposed.rounds.to_string(),
            exposed.reconfigurations.to_string(),
            fmt(ring.value() * 1e3, 3),
            fmt(exposed.total().value() * 1e3, 3),
            fmt(overlapped.total().value() * 1e3, 3),
            fmt(ring.value() / overlapped.total().value(), 2),
        ]);
    }
    let mut tables = vec![Table::new(
        "Appendix G (ext): fast-switched Binary Exchange vs ring AllToAll, 24 MiB blocks",
        &header,
        rows,
    )];

    // Feasibility limits of the Binary-Hop wiring (Appendix G.3).
    let header = ["node size", "max EP group (nodes)", "TP x EP limit"];
    let mut rows = Vec::new();
    for (gpus, k) in [(4usize, 4usize), (8, 8)] {
        let wiring = BinaryHopRing::new(4096, gpus, k).expect("valid wiring");
        rows.push(vec![
            format!("{gpus}-GPU"),
            wiring.max_ep_group_nodes().to_string(),
            wiring.tp_ep_product_limit().to_string(),
        ]);
    }
    tables.push(Table::new(
        "Appendix G.3: TP x EP coupling constraint of the Binary-Hop wiring",
        &header,
        rows,
    ));
    tables
}
