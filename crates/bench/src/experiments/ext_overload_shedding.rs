//! Extension experiment: overload robustness of the admission-controlled
//! placement service (`orchestrator::admission`).
//!
//! The service's modeled capacity is first **calibrated in-experiment**: a
//! back-to-back (all arrivals at t=0) run of one stream measures the
//! saturation throughput, and the sweep's interarrival times are derived
//! from it — so "1x" means *exactly* saturation regardless of how the cost
//! model evolves. The same seeded open-loop query mix as
//! `ext_service_throughput` is then pushed past that point — offered load at
//! 1x, 2x, 4x and 8x capacity — twice per load point: once against an **unbounded
//! patient queue** (no admission control: every query waits however long it
//! takes) and once through the bounded [`AdmissionController`] with
//! per-query deadlines and deadline-aware shedding. The first table shows
//! the failure mode the controller exists to prevent: without admission
//! control the p99 sojourn grows without bound as the backlog does, while
//! with it the p99 stays pinned near the deadline budget and goodput stays
//! nonzero at every load point — bounded latency bought with explicit,
//! typed sheds instead of silent collapse.
//!
//! The second table compares the three shed policies at the 4x point:
//! reject-newest (classic tail drop), deadline-aware displacement (the queue
//! evicts whoever is most likely already dead), and priority classes (the
//! stream is striped over four classes, lowest class shed first).
//!
//! Everything is modeled time ([`ModeledLatency`]): bit-stable in the seed
//! and invariant in `--threads`.

use crate::experiments::ext_service_throughput::{build_stream, mean_interarrival_us};
use crate::par::stream_seed;
use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::orchestrator::admission::{
    AdmissionConfig, AdmissionController, AdmissionStats, Disposition, ShedPolicy, Ticket,
};
use infinitehbd::orchestrator::service::{
    ModeledLatency, PlacementQuery, PlacementService, SnapshotStore,
};
use infinitehbd::orchestrator::FatTreeOrchestrator;
use infinitehbd::topology::{FatTree, FaultSet};
use std::sync::Arc;

/// Cluster size of the sweep (16 nodes per ToR, 8 ToRs per K-Hop domain).
pub const NODES: usize = 1024;

/// Offered-load multipliers over the saturation interarrival rate.
pub const LOAD_MULTIPLIERS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

/// Queue capacity of the admission-controlled rows.
pub const CAPACITY: usize = 64;

/// Batch cap (matches the service-throughput default regime).
const BATCH_CAP: usize = 32;

/// Per-query deadline budget of the admission-controlled rows, modeled µs.
pub const DEADLINE_US: f64 = 8_000.0;

/// Aggregates of one driven stream.
struct DriveOutcome {
    stats: AdmissionStats,
    /// Sojourns of the answered queries, ms.
    sojourns_ms: Vec<f64>,
    /// Last completion instant, µs (0 when nothing was answered).
    makespan_us: f64,
}

impl DriveOutcome {
    fn percentile_ms(&self, q: f64) -> f64 {
        if self.sojourns_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.sojourns_ms.clone();
        sorted.sort_by(f64::total_cmp);
        infinitehbd::fault::stats::percentile(&sorted, q)
    }

    /// Answered queries per modeled second of makespan.
    fn goodput_qps(&self) -> f64 {
        if self.makespan_us <= 0.0 {
            return 0.0;
        }
        self.sojourns_ms.len() as f64 / (self.makespan_us / 1_000_000.0)
    }
}

/// Drives one arrival stream through a fresh admission controller in arrival
/// order: advance the modeled queue to each arrival instant, offer the
/// ticket, and drain whatever is still queued after the last arrival.
/// `deadline_us` is the per-query budget (`f64::INFINITY` = patient queue);
/// classes stripe the stream round-robin over four priorities.
fn drive(
    service: &PlacementService,
    queries: &[PlacementQuery],
    arrivals_us: &[f64],
    config: AdmissionConfig,
    deadline_us: f64,
    threads: usize,
) -> DriveOutcome {
    let mut controller = AdmissionController::new(config, ModeledLatency::for_cluster(NODES));
    let mut dispositions = Vec::with_capacity(queries.len());
    for (i, query) in queries.iter().enumerate() {
        controller.run_until(service, arrivals_us[i], threads, &mut dispositions);
        controller.offer(
            Ticket {
                id: i as u64,
                query: query.clone(),
                arrival_us: arrivals_us[i],
                deadline_us: arrivals_us[i] + deadline_us,
                class: (i % 4) as u8,
            },
            &mut dispositions,
        );
    }
    controller.drain(service, threads, &mut dispositions);
    let mut outcome = DriveOutcome {
        stats: controller.stats(),
        sojourns_ms: Vec::new(),
        makespan_us: 0.0,
    };
    for disposition in &dispositions {
        if let Disposition::Answered(answer) = disposition {
            outcome.sojourns_ms.push(answer.sojourn_us / 1_000.0);
            outcome.makespan_us = outcome.makespan_us.max(answer.completed_us);
        }
    }
    outcome
}

/// One row of either table.
fn row(label: &[String], outcome: &DriveOutcome) -> Vec<String> {
    let stats = &outcome.stats;
    let mut cells = label.to_vec();
    cells.extend([
        stats.offered.to_string(),
        stats.answered.to_string(),
        stats.shed().to_string(),
        fmt(100.0 * stats.shed() as f64 / stats.offered.max(1) as f64, 1),
        fmt(outcome.goodput_qps(), 0),
        fmt(outcome.percentile_ms(0.5), 3),
        fmt(outcome.percentile_ms(0.99), 3),
        stats.max_backlog.to_string(),
    ]);
    cells
}

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let orchestrator = Arc::new(
        FatTreeOrchestrator::new(FatTree::new(NODES, 16, 8).expect("valid fat-tree"))
            .expect("orchestrator"),
    );
    let service = PlacementService::new(Arc::new(SnapshotStore::new(
        Arc::clone(&orchestrator),
        FaultSet::new(),
    )));
    let queries_per_stream = ctx.count(512);
    let loads = ctx.select(&LOAD_MULTIPLIERS);

    // Calibrate the saturation rate: a back-to-back run (every query already
    // waiting at t=0, no bound, no deadline) is service-limited by
    // construction, so its goodput IS the modeled capacity.
    let (cal_queries, _) = build_stream(
        NODES,
        queries_per_stream,
        stream_seed(ctx.seed, 999),
        mean_interarrival_us(NODES),
    );
    let calibration = drive(
        &service,
        &cal_queries,
        &vec![0.0; cal_queries.len()],
        AdmissionConfig {
            capacity: usize::MAX,
            batch_cap: BATCH_CAP,
            policy: ShedPolicy::RejectNewest,
        },
        f64::INFINITY,
        ctx.threads,
    );
    let saturation_interarrival_us = 1_000_000.0 / calibration.goodput_qps();

    let mut sweep_rows = Vec::new();
    let mut four_x: Option<(Vec<PlacementQuery>, Vec<f64>)> = None;
    for (idx, &load) in loads.iter().enumerate() {
        let (queries, arrivals) = build_stream(
            NODES,
            queries_per_stream,
            stream_seed(ctx.seed, idx as u64),
            saturation_interarrival_us / load,
        );
        // Unbounded patient queue: no capacity bound, no deadline — the
        // pre-admission-control behaviour.
        let unbounded = drive(
            &service,
            &queries,
            &arrivals,
            AdmissionConfig {
                capacity: usize::MAX,
                batch_cap: BATCH_CAP,
                policy: ShedPolicy::RejectNewest,
            },
            f64::INFINITY,
            ctx.threads,
        );
        // Bounded queue, per-query deadline, deadline-aware displacement.
        let admission = drive(
            &service,
            &queries,
            &arrivals,
            AdmissionConfig {
                capacity: CAPACITY,
                batch_cap: BATCH_CAP,
                policy: ShedPolicy::DeadlineAware,
            },
            DEADLINE_US,
            ctx.threads,
        );
        sweep_rows.push(row(
            &[format!("{load:.0}x"), "off (unbounded)".to_string()],
            &unbounded,
        ));
        sweep_rows.push(row(&[format!("{load:.0}x"), "on".to_string()], &admission));
        if (load - 4.0).abs() < 1e-12 {
            four_x = Some((queries, arrivals));
        }
    }

    // The policy comparison reuses the 4x stream (the most interesting
    // regime: heavily overloaded but not hopeless). At smoke scales that
    // trim the sweep before 4x, fall back to the highest retained load.
    let (queries, arrivals) = four_x.unwrap_or_else(|| {
        build_stream(
            NODES,
            queries_per_stream,
            stream_seed(ctx.seed, (loads.len() - 1) as u64),
            saturation_interarrival_us / loads[loads.len() - 1],
        )
    });
    let mut policy_rows = Vec::new();
    for (name, policy) in [
        ("reject-newest", ShedPolicy::RejectNewest),
        ("deadline-aware", ShedPolicy::DeadlineAware),
        ("priority-class", ShedPolicy::PriorityClass),
    ] {
        let outcome = drive(
            &service,
            &queries,
            &arrivals,
            AdmissionConfig {
                capacity: CAPACITY,
                batch_cap: BATCH_CAP,
                policy,
            },
            DEADLINE_US,
            ctx.threads,
        );
        let stats = &outcome.stats;
        policy_rows.push(vec![
            name.to_string(),
            stats.answered.to_string(),
            stats.shed_queue_full.to_string(),
            stats.shed_displaced.to_string(),
            stats.shed_deadline.to_string(),
            fmt(outcome.percentile_ms(0.5), 3),
            fmt(outcome.percentile_ms(0.99), 3),
        ]);
    }

    vec![
        Table::new(
            format!(
                "Offered-load sweep past saturation on the {NODES}-node snapshot \
                 (calibrated capacity {} qps, queue cap {CAPACITY}, deadline \
                 {DEADLINE_US} us, modeled latency)",
                fmt(calibration.goodput_qps(), 0)
            ),
            &[
                "load",
                "admission",
                "offered",
                "answered",
                "shed",
                "shed %",
                "goodput qps",
                "p50 (ms)",
                "p99 (ms)",
                "max backlog",
            ],
            sweep_rows,
        ),
        Table::new(
            "Shed-policy comparison at the 4x overload point".to_string(),
            &[
                "policy",
                "answered",
                "queue-full",
                "displaced",
                "deadline-expired",
                "p50 (ms)",
                "p99 (ms)",
            ],
            policy_rows,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion of the admission controller: at 4x the
    /// saturation load, admission control keeps the p99 sojourn bounded
    /// (within a small multiple of the deadline budget) and still answers a
    /// nonzero fraction of the stream, while the unbounded queue's p99
    /// collapses to orders of magnitude beyond it.
    #[test]
    fn four_x_overload_is_bounded_with_admission_control_and_collapses_without() {
        let ctx = RunCtx {
            seed: 42,
            threads: 1,
            scale: 1.0,
        };
        let orchestrator =
            Arc::new(FatTreeOrchestrator::new(FatTree::new(NODES, 16, 8).unwrap()).unwrap());
        let service = PlacementService::new(Arc::new(SnapshotStore::new(
            Arc::clone(&orchestrator),
            FaultSet::new(),
        )));
        let count = ctx.count(512);
        // Calibrate saturation exactly as the experiment does, then offer 4x.
        let (cal_queries, _) = build_stream(
            NODES,
            count,
            stream_seed(ctx.seed, 999),
            mean_interarrival_us(NODES),
        );
        let calibration = drive(
            &service,
            &cal_queries,
            &vec![0.0; count],
            AdmissionConfig {
                capacity: usize::MAX,
                batch_cap: BATCH_CAP,
                policy: ShedPolicy::RejectNewest,
            },
            f64::INFINITY,
            ctx.threads,
        );
        let (queries, arrivals) = build_stream(
            NODES,
            count,
            stream_seed(ctx.seed, 2),
            1_000_000.0 / calibration.goodput_qps() / 4.0,
        );
        let unbounded = drive(
            &service,
            &queries,
            &arrivals,
            AdmissionConfig {
                capacity: usize::MAX,
                batch_cap: BATCH_CAP,
                policy: ShedPolicy::RejectNewest,
            },
            f64::INFINITY,
            ctx.threads,
        );
        let admission = drive(
            &service,
            &queries,
            &arrivals,
            AdmissionConfig {
                capacity: CAPACITY,
                batch_cap: BATCH_CAP,
                policy: ShedPolicy::DeadlineAware,
            },
            DEADLINE_US,
            ctx.threads,
        );
        // Conservation on both paths.
        assert_eq!(
            unbounded.stats.offered,
            unbounded.stats.answered + unbounded.stats.shed()
        );
        assert_eq!(
            admission.stats.offered,
            admission.stats.answered + admission.stats.shed()
        );
        assert_eq!(unbounded.stats.shed(), 0, "the patient queue never sheds");
        // Nonzero goodput under admission control at 4x.
        assert!(admission.stats.answered > 0);
        assert!(admission.goodput_qps() > 0.0);
        // Every answered sojourn respects the deadline budget, so the p99 is
        // bounded by it; the unbounded queue blows far past it.
        let deadline_ms = DEADLINE_US / 1_000.0;
        assert!(
            admission.percentile_ms(0.99) <= deadline_ms + 1e-9,
            "p99 {} ms must stay within the {deadline_ms} ms budget",
            admission.percentile_ms(0.99)
        );
        assert!(
            unbounded.percentile_ms(0.99) > deadline_ms
                && unbounded.percentile_ms(0.99) > 3.0 * admission.percentile_ms(0.99),
            "the unbounded queue must show collapse (p99 {} ms vs {} ms controlled)",
            unbounded.percentile_ms(0.99),
            admission.percentile_ms(0.99)
        );
    }
}
