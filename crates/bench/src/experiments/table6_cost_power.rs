//! Table 6: interconnect cost and power per GPU and per GBps.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::prelude::*;

pub fn run(_ctx: &RunCtx) -> Vec<Table> {
    let header = ["architecture", "$/GPU", "W/GPU", "$/GBps", "W/GBps"];
    let rows: Vec<Vec<String>> = NormalizedCost::table6()
        .into_iter()
        .map(|row| {
            vec![
                row.name,
                fmt(row.cost_per_gpu, 2),
                fmt(row.watts_per_gpu, 2),
                fmt(row.cost_per_gbyteps, 2),
                fmt(row.watts_per_gbyteps, 3),
            ]
        })
        .collect();
    vec![Table::new(
        "Table 6: interconnect cost and power",
        &header,
        rows,
    )]
}
