//! Extension experiment: replay-engine throughput as the job mix grows.
//!
//! The multi-job scenario axis (job churn, defragmentation, heterogeneous
//! mixes) multiplies the number of max-min solves the fluid replay performs,
//! so the engine's own cost profile — events, full vs. skipped re-solves,
//! water-filling rounds — is the quantity that gates how far the scenarios
//! can scale. This sweep grows an optimally placed mix from 2 to 8 identical
//! jobs on a 768-node Fat-Tree and reports the engine's cost counters
//! ([`infinitehbd::dcn::ReplayStats`]) plus the *simulated-time* throughput
//! (epoch instances per simulated second). All columns are derived from the
//! deterministic fluid model, so the table is seed-stable and
//! thread-count-invariant; the wall-clock trajectory lives next door in
//! `bench_results.json` (`wall_ms` per experiment and the `maxmin` criterion
//! micro-bench), which future `BENCH_*.json` snapshots track.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::dcn::{place_mix, replay_mix_par, JobTraffic, MixJob};
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let nodes = 768usize;
    let tree = FatTree::new(nodes, 16, 8).expect("valid fat-tree");
    let orchestrator = FatTreeOrchestrator::new(tree.clone()).expect("orchestrator");
    let network = DcnNetwork::new(tree, NetworkParams::non_blocking(16, 4).oversubscribed(4.0))
        .expect("network");
    let mut rng = ctx.rng();
    let faults = FaultSet::from_nodes(IidFaultModel::new(nodes, 0.05).sample_exact(&mut rng));

    let model = ModelConfig::llama31_405b();
    let comm = CommModel::paper_defaults();
    // Every job: 64 nodes = 8 TP-32 groups, sliced DP-2 × PP-4.
    let strategy = ParallelismStrategy::new(32, 4, 2);
    let matrix = TrafficMatrix::of_plan(&model, &strategy, &comm);
    let request = OrchestrationRequest {
        job_nodes: 64,
        nodes_per_group: 8,
        k: 2,
    };

    let header = [
        "jobs",
        "epoch instances",
        "events",
        "full solves",
        "skipped solves",
        "rounds/event",
        "instances per sim-s",
    ];
    let mut rows = Vec::new();
    for &count in ctx.select(&[2usize, 4, 6, 8]) {
        let requests: Vec<MixJob> = (0..count)
            .map(|i| MixJob::new(format!("job{i}"), request))
            .collect();
        let placements = place_mix(&orchestrator, &requests, &faults, ctx.threads)
            .expect("mix fits on 768 nodes");
        let jobs: Vec<JobTraffic> = placements
            .iter()
            .map(|p| {
                matrix
                    .lower(&p.scheme, p.name.clone(), 4)
                    .expect("shape matches the placement")
            })
            .collect();
        let outcome = replay_mix_par(&network, &jobs, ctx.threads).expect("replay");
        let stats = outcome.stats;
        let throughput = if outcome.makespan.value() > 0.0 {
            stats.epoch_instances as f64 / outcome.makespan.value()
        } else {
            0.0
        };
        rows.push(vec![
            count.to_string(),
            stats.epoch_instances.to_string(),
            stats.events.to_string(),
            stats.full_solves.to_string(),
            stats.skipped_solves.to_string(),
            fmt(stats.rounds_per_event(), 2),
            fmt(throughput, 2),
        ]);
    }
    vec![Table::new(
        "Extension: replay-engine cost profile vs mix size (768 nodes, 64-node DP2×PP4 jobs, 4:1 oversubscription)",
        &header,
        rows,
    )]
}
