//! Extension experiment: what PP and CP/SP traffic does to the DCN.
//!
//! The paper's Table 3 prices TP/EP inside the HBD; the DCN carries what is
//! left — DP gradients, PP boundary activations, and (if a job dares) the
//! Ring-Attention K/V exchange of CP/SP. This harness lowers one 384-node job
//! under several parallelism plans through the `TrafficMatrix` and replays the
//! resulting epochs, showing how the traffic mix shifts from a pure DP sync
//! burst to steady-state PP/CP streams — and why CP/SP volumes are the reason
//! sequence parallelism must stay inside the HBD.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::dcn::replay_mix_par;
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let nodes = 512usize;
    let tree = FatTree::new(nodes, 16, 8).expect("valid fat-tree");
    let orchestrator = FatTreeOrchestrator::new(tree.clone()).expect("orchestrator");
    let request = OrchestrationRequest {
        job_nodes: 384,
        nodes_per_group: 8,
        k: 2,
    };
    let placement = orchestrator
        .orchestrate_par(&request, &FaultSet::new(), ctx.threads)
        .expect("job fits on a healthy cluster");
    let network = DcnNetwork::new(tree, NetworkParams::non_blocking(16, 4).oversubscribed(4.0))
        .expect("network");

    let model = ModelConfig::llama31_405b();
    let comm = CommModel::paper_defaults();
    // 48 TP groups of 8 nodes × 4 GPUs = TP-32; the plans re-slice the same
    // 48 groups along DP / PP / CP.
    let plans: Vec<ParallelismStrategy> = vec![
        ParallelismStrategy::new(32, 1, 48),
        ParallelismStrategy::new(32, 4, 12),
        ParallelismStrategy::new(32, 8, 6),
        ParallelismStrategy::new(32, 4, 6).with_cp(2),
        ParallelismStrategy::new(32, 8, 3).with_cp(2),
    ];

    let header = [
        "plan",
        "epochs",
        "DP GiB",
        "PP GiB",
        "CP GiB",
        "steady (s)",
        "sync (s)",
        "iteration (s)",
    ];
    let mut rows = Vec::new();
    for strategy in ctx.select(&plans) {
        let matrix = TrafficMatrix::of_plan(&model, strategy, &comm);
        let dimension_gib = |flows: &[infinitehbd::dcn::Flow]| {
            // `+ 0.0` normalises the empty sum's `-0.0` for display.
            fmt(flows.iter().map(|f| f.bytes.as_gib()).sum::<f64>() + 0.0, 1)
        };
        let shape_fits = "shape matches the placement";
        let dp_gib = dimension_gib(&matrix.dp_flows(&placement).expect(shape_fits));
        let pp_gib = dimension_gib(&matrix.pp_flows(&placement).expect(shape_fits));
        let cp_gib = dimension_gib(
            &[
                matrix.cp_flows(&placement).expect(shape_fits),
                matrix.cp_grad_flows(&placement).expect(shape_fits),
            ]
            .concat(),
        );
        let job = matrix
            .lower(&placement, strategy.to_string(), 1)
            .expect("shape matches the placement");
        let epoch_labels: Vec<&str> = job.epochs.iter().map(|e| e.label.as_str()).collect();
        let outcome =
            replay_mix_par(&network, std::slice::from_ref(&job), ctx.threads).expect("replay");
        let time_of = |label: &str| {
            epoch_labels
                .iter()
                .position(|&l| l == label)
                .and_then(|i| outcome.jobs[0].epoch_times.get(i))
                .map(|t| fmt(t.value(), 2))
                .unwrap_or_else(|| "-".to_string())
        };
        rows.push(vec![
            strategy.to_string(),
            epoch_labels.join("+"),
            dp_gib,
            pp_gib,
            cp_gib,
            time_of("steady"),
            time_of("sync"),
            fmt(outcome.jobs[0].shared_time.value(), 2),
        ]);
    }
    vec![Table::new(
        "Extension: DCN traffic mix per parallelism plan (384 nodes, TP-32, 4:1 oversubscription)",
        &header,
        rows,
    )]
}
