//! Extension experiment: flow-level consequence of orchestration quality.
//!
//! Figure 17 counts cross-ToR traffic; this harness pushes the same scenarios
//! through the flow-level DCN simulator and reports the exposed DP AllReduce
//! slowdown for the greedy baseline and the HBD-DCN orchestration, across ToR
//! oversubscription ratios — the ablation that connects "fewer cross-ToR
//! pairs" to "faster training iterations".

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::dcn::{dp_ring_flows, DcnNetwork, FlowSimulation, NetworkParams, TrafficSpec};
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let nodes = 512usize;
    let tree = FatTree::new(nodes, 16, 8).expect("valid fat-tree");
    let orchestrator = FatTreeOrchestrator::new(tree.clone()).expect("orchestrator");
    let mut rng = ctx.rng();
    let faults = FaultSet::from_nodes(IidFaultModel::new(nodes, 0.05).sample_exact(&mut rng));
    let request = OrchestrationRequest {
        job_nodes: nodes * 85 / 100 / 8 * 8,
        nodes_per_group: 8,
        k: 2,
    };
    let optimized = orchestrator
        .orchestrate_par(&request, &faults, ctx.threads)
        .expect("job fits");
    let baseline = greedy_placement(nodes, &faults, 8, request.job_nodes, &mut rng);
    let spec = TrafficSpec::paper_dp_allreduce();

    let header = [
        "oversubscription",
        "scheme",
        "cross-ToR flows (%)",
        "slowdown",
        "max link util (%)",
    ];
    let mut rows = Vec::new();
    for &ratio in ctx.select(&[1.0f64, 2.0, 4.0, 8.0]) {
        for (label, scheme) in [("greedy", &baseline), ("optimized", &optimized)] {
            let params = NetworkParams::non_blocking(16, 4).oversubscribed(ratio);
            let network = DcnNetwork::new(tree.clone(), params).expect("network");
            let sim = FlowSimulation::run(&network, dp_ring_flows(scheme, &spec)).expect("sim");
            let report = sim.report(&network);
            rows.push(vec![
                format!("{ratio}:1"),
                label.to_string(),
                fmt(
                    100.0 * report.cross_tor_flows as f64
                        / (report.flows - report.local_flows).max(1) as f64,
                    1,
                ),
                fmt(report.slowdown, 2),
                fmt(report.max_link_utilization * 100.0, 0),
            ]);
        }
    }
    vec![Table::new(
        "Extension: DP AllReduce slowdown vs ToR oversubscription (2,048 GPUs, TP-32, 5% faults)",
        &header,
        rows,
    )]
}
