//! Extension experiment: multi-job interference on the shared DCN.
//!
//! Mission Apollo's hard lesson (and the congestion regime PULSE targets) is
//! that landing optics at datacenter scale means several jobs *sharing* the
//! electrical spill-over fabric. This harness places a three-job mix on one
//! Fat-Tree — once with the HBD-DCN orchestration, once with the greedy
//! baseline — lowers each job's DP+PP plan into epochs, replays them
//! concurrently, and reports what each job pays for its neighbours: slowdown
//! vs. the isolated run, p99 epoch stretch, and the link hot-spot profile.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::dcn::{greedy_place_mix, place_mix, replay_mix_par, MixJob};
use infinitehbd::prelude::*;

/// The fixed three-job mix: (name, job nodes, DP, PP).
const JOBS: [(&str, usize, usize, usize); 3] = [
    ("large", 128, 4, 4),
    ("medium", 96, 3, 4),
    ("small", 64, 2, 4),
];

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let nodes = 512usize;
    let tree = FatTree::new(nodes, 16, 8).expect("valid fat-tree");
    let orchestrator = FatTreeOrchestrator::new(tree.clone()).expect("orchestrator");
    let network = DcnNetwork::new(tree, NetworkParams::non_blocking(16, 4).oversubscribed(4.0))
        .expect("network");
    let mut rng = ctx.rng();
    let faults = FaultSet::from_nodes(IidFaultModel::new(nodes, 0.05).sample_exact(&mut rng));

    let model = ModelConfig::llama31_405b();
    let comm = CommModel::paper_defaults();
    let requests: Vec<MixJob> = JOBS
        .iter()
        .map(|&(name, job_nodes, _, _)| {
            MixJob::new(
                name,
                OrchestrationRequest {
                    job_nodes,
                    nodes_per_group: 8,
                    k: 2,
                },
            )
        })
        .collect();

    // Optimized: the HBD-DCN orchestration, job after job.
    let optimized = place_mix(&orchestrator, &requests, &faults, ctx.threads).expect("mix fits");
    // Greedy baseline: random node picking, also job after job. The greedy
    // packer returns partial placements when the node pool runs out; only
    // fully satisfied jobs are comparable to the optimized mix, so shortfall
    // jobs are dropped rather than lowered into a mismatched shape.
    let greedy: Vec<(String, PlacementScheme)> =
        greedy_place_mix(nodes, &requests, &faults, &mut rng)
            .into_iter()
            .zip(&requests)
            .filter(|(p, job)| p.scheme.nodes_placed() >= job.request.job_nodes)
            .map(|(p, _)| (p.name, p.scheme))
            .collect();

    let lower = |name: &str, scheme: &PlacementScheme| {
        let &(_, _, dp, pp) = JOBS
            .iter()
            .find(|(n, ..)| *n == name)
            .expect("job is in the mix");
        let strategy = ParallelismStrategy::new(32, pp, dp);
        TrafficMatrix::of_plan(&model, &strategy, &comm)
            .lower(scheme, name, 4)
            .expect("shape matches the placement")
    };

    let per_job_header = [
        "scheme",
        "job",
        "isolated (s)",
        "shared (s)",
        "slowdown",
        "p99 stretch",
    ];
    let mix_header = [
        "scheme",
        "makespan (s)",
        "mean slowdown",
        "max slowdown",
        "links >=95% peak",
    ];
    let mut per_job_rows = Vec::new();
    let mut mix_rows = Vec::new();
    for (label, placements) in [
        (
            "optimized",
            optimized
                .iter()
                .map(|p| (p.name.clone(), p.scheme.clone()))
                .collect::<Vec<_>>(),
        ),
        ("greedy", greedy),
    ] {
        let jobs: Vec<_> = placements
            .iter()
            .map(|(name, scheme)| lower(name, scheme))
            .collect();
        let outcome = replay_mix_par(&network, &jobs, ctx.threads).expect("replay");
        for job in &outcome.jobs {
            per_job_rows.push(vec![
                label.to_string(),
                job.name.clone(),
                fmt(job.isolated_time.value(), 2),
                fmt(job.shared_time.value(), 2),
                fmt(job.slowdown, 2),
                fmt(job.p99_stretch, 2),
            ]);
        }
        mix_rows.push(vec![
            label.to_string(),
            fmt(outcome.makespan.value(), 2),
            fmt(outcome.mean_slowdown(), 2),
            fmt(outcome.max_slowdown(), 2),
            outcome.hot_links(0.95).to_string(),
        ]);
    }
    vec![
        Table::new(
            "Extension: per-job interference in a 3-job mix (512 nodes, TP-32, DP+PP, 5% faults)",
            &per_job_header,
            per_job_rows,
        ),
        Table::new(
            "Extension: mix-level congestion summary",
            &mix_header,
            mix_rows,
        ),
    ]
}
