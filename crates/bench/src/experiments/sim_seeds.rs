//! Extension experiment: seeded adversarial-schedule sweep of the
//! control-plane simulator (`control::sim`).
//!
//! Six message-fault profiles — from a clean channel to a hostile one mixing
//! delay jitter, reordering, duplication and loss — each replay the same kind
//! of renewal-process fault schedule across hundreds of master seeds. Every
//! run checks the convergence invariant (deployed fabric state ≡ the failover
//! planner's plan for the final fault set), so the table is a machine-checked
//! claim: *zero* violations over every seeded ordering. A failing seed can be
//! replayed in isolation with `experiments --sim-seed N --sim-profile NAME`.
//!
//! All aggregate columns are integer sums over per-seed integer counters, so
//! the table is bit-stable across `--threads` by construction.

use crate::par::par_map_seeded;
use crate::registry::RunCtx;
use crate::Table;
use infinitehbd::control::sim;
use infinitehbd::control::{ControlLatencies, MessageFaults, SimConfig};
use infinitehbd::hbd_types::Seconds;

/// The deployment and fault-arrival regime every profile replays: a 48-node
/// K=3 ring with latencies compressed until recoveries genuinely overlap
/// (≈70 availability edges per 600 s schedule, each landing while earlier
/// commands are still in flight on the slower channels).
pub fn base_config() -> SimConfig {
    SimConfig {
        nodes: 48,
        gpus_per_node: 4,
        k: 3,
        fault_ratio: 0.15,
        mean_time_to_repair: Seconds(150.0),
        horizon: Seconds(600.0),
        latencies: ControlLatencies {
            detection: Seconds(0.5),
            planning: Seconds(0.05),
            dispatch: Seconds(0.02),
        },
        message_faults: MessageFaults::reliable(),
    }
}

/// The named message-fault profiles of the sweep (also the values accepted by
/// the driver's `--sim-profile` flag).
pub fn profiles() -> Vec<(&'static str, MessageFaults)> {
    let jitter = MessageFaults {
        delay_min: Seconds(0.05),
        delay_max: Seconds(0.5),
        reorder: 0.0,
        drop: 0.0,
        duplicate: 0.0,
        ack_timeout: Seconds(1.0),
        max_retries: 4,
    };
    vec![
        ("clean", MessageFaults::reliable()),
        ("jitter", jitter),
        (
            "reorder",
            MessageFaults {
                reorder: 0.3,
                ..jitter
            },
        ),
        (
            "drop",
            MessageFaults {
                drop: 0.25,
                ..jitter
            },
        ),
        (
            "duplicate",
            MessageFaults {
                duplicate: 0.25,
                ..jitter
            },
        ),
        ("adversarial", MessageFaults::adversarial()),
    ]
}

/// Looks a profile up by name.
pub fn profile(name: &str) -> Option<MessageFaults> {
    profiles()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, mf)| mf)
}

/// Per-seed integer counters, aggregated per profile row.
#[derive(Default)]
struct ProfileTotals {
    converged: usize,
    violations: usize,
    arrivals: usize,
    commands: usize,
    sends: usize,
    retries: usize,
    dropped: usize,
    duplicates: usize,
    stale: usize,
    superseded: usize,
}

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let seeds_per_profile = ctx.count(200);
    let profiles = profiles();
    let base = base_config();

    // Flat (profile, seed) grid: the item index — not the thread schedule —
    // fixes each run's master seed.
    let grid: Vec<(usize, u64)> = (0..profiles.len())
        .flat_map(|p| (0..seeds_per_profile as u64).map(move |s| (p, s)))
        .collect();
    let runs = par_map_seeded(ctx.threads, ctx.seed, &grid, |_, &(p, _), master| {
        let mut config = base;
        config.message_faults = profiles[p].1;
        let report = sim::run(&config, master).expect("sim config is valid");
        (
            p,
            report.final_converged as usize,
            report.invariant_violations,
            report.arrivals,
            report.commands_issued,
            report.sends,
            report.retries,
            report.commands_dropped,
            report.duplicates_injected,
            report.delivered_stale,
            report.superseded,
        )
    });

    let mut totals: Vec<ProfileTotals> = (0..profiles.len()).map(|_| Default::default()).collect();
    for (p, conv, viol, arr, cmd, sends, retries, dropped, dup, stale, sup) in runs {
        let t = &mut totals[p];
        t.converged += conv;
        t.violations += viol;
        t.arrivals += arr;
        t.commands += cmd;
        t.sends += sends;
        t.retries += retries;
        t.dropped += dropped;
        t.duplicates += dup;
        t.stale += stale;
        t.superseded += sup;
    }

    let header = [
        "profile",
        "seeds",
        "converged",
        "violations",
        "arrivals",
        "commands",
        "sends",
        "retries",
        "dropped",
        "duplicated",
        "stale rx",
        "superseded",
    ];
    let rows = profiles
        .iter()
        .zip(&totals)
        .map(|((name, _), t)| {
            vec![
                name.to_string(),
                seeds_per_profile.to_string(),
                t.converged.to_string(),
                t.violations.to_string(),
                t.arrivals.to_string(),
                t.commands.to_string(),
                t.sends.to_string(),
                t.retries.to_string(),
                t.dropped.to_string(),
                t.duplicates.to_string(),
                t.stale.to_string(),
                t.superseded.to_string(),
            ]
        })
        .collect();
    vec![Table::new(
        format!(
            "Extension: control-plane simulator convergence over {} seeded orderings \
             (48 nodes, K=3, 6 channel profiles)",
            profiles.len() * seeds_per_profile
        ),
        &header,
        rows,
    )]
}
