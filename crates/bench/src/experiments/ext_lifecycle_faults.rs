//! Extension experiment: lifecycle SLOs vs steady-state fault ratio.
//!
//! Replays the reference lifecycle workload (backfill + defrag policy)
//! against fault schedules of increasing steady-state node-fault ratio. The
//! table tracks how churn grows with the fault rate: migrations and
//! fault-waits climb, the queueing-delay tail stretches as re-queued jobs
//! contend with fresh arrivals, and goodput erodes — the online analogue of
//! the static waste-ratio sweep (Fig 14), with the control plane's failover
//! pricing in the loop.

use crate::par::stream_seed;
use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::cluster::lifecycle::simulate;
use infinitehbd::cluster::Workload;
use infinitehbd::fault::sim_events::generate_events;
use infinitehbd::fault::GeneratorConfig;
use infinitehbd::hbd_types::Seconds;
use infinitehbd::orchestrator::FatTreeOrchestrator;
use infinitehbd::topology::FatTree;

use super::ext_lifecycle_slo::{base_config, templates, NODES};

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let orchestrator =
        FatTreeOrchestrator::new(FatTree::new(NODES, 16, 4).expect("valid fat-tree"))
            .expect("orchestrator");
    let horizon = Seconds::from_hours(8.0);
    let arrivals = ctx.count(96);
    let workload = Workload::poisson(
        &templates(),
        Seconds(horizon.value() / arrivals as f64),
        horizon,
        stream_seed(ctx.seed, 0),
    )
    .expect("workload");

    let header = [
        "fault ratio",
        "completed",
        "migrations",
        "fault waits",
        "defrag moves",
        "p99 queue delay (s)",
        "p99 placement (s)",
        "goodput",
        "frag mean",
        "frag max",
    ];
    let mut rows = Vec::new();
    for &ratio in ctx.select(&[0.0, 0.02, 0.05, 0.10]) {
        let faults = if ratio > 0.0 {
            generate_events(
                &GeneratorConfig {
                    nodes: NODES,
                    duration: horizon,
                    steady_state_fault_ratio: ratio,
                    mean_time_to_repair: Seconds::from_hours(1.0),
                },
                stream_seed(ctx.seed, 1),
            )
            .expect("fault schedule")
        } else {
            Vec::new()
        };
        let mut config = base_config(ctx, horizon);
        config.backfill = true;
        config.defrag_on_exit = true;
        let outcome = simulate(&orchestrator, &workload, &faults, &config).expect("simulation");
        rows.push(vec![
            fmt(ratio, 2),
            outcome.completed.to_string(),
            outcome.migrations.to_string(),
            outcome.fault_waits.to_string(),
            outcome.defrag_moves.to_string(),
            fmt(outcome.queue_delay_percentile(0.99), 1),
            fmt(outcome.placement_latency_percentile(0.99), 2),
            fmt(outcome.goodput, 4),
            fmt(outcome.frag_mean, 4),
            fmt(outcome.frag_max, 4),
        ]);
    }

    vec![Table::new(
        "Lifecycle churn vs steady-state fault ratio (backfill + defrag)",
        &header,
        rows,
    )]
}
