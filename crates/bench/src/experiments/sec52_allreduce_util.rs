//! §5.2: large-message Ring-AllReduce bandwidth utilisation of the 16- and
//! 32-GPU prototype rings versus the NVLink-switched 8-GPU node.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::prelude::*;

pub fn run(_ctx: &RunCtx) -> Vec<Table> {
    let model = RingUtilization::paper_calibrated();
    let header = ["configuration", "bandwidth utilisation (%)"];
    let rows = vec![
        vec![
            "16-GPU ring".to_string(),
            fmt(model.ring_utilization(16) * 100.0, 2),
        ],
        vec![
            "32-GPU ring".to_string(),
            fmt(model.ring_utilization(32) * 100.0, 2),
        ],
        vec![
            "8-GPU NVLink switch (no SHARP)".to_string(),
            fmt(model.switch_utilization() * 100.0, 2),
        ],
        vec![
            "small-packet latency reduction (direct links)".to_string(),
            fmt(model.direct_link_latency_reduction() * 100.0, 0),
        ],
    ];
    vec![Table::new(
        "Sec 5.2: AllReduce bandwidth utilisation",
        &header,
        rows,
    )]
}
