//! Table 3: per-MoE-layer communication volume of TP (AllReduce) and EP
//! (AllToAll), evaluated on the GPT-MoE configuration.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::llmsim::CommModel;
use infinitehbd::prelude::*;

pub fn run(_ctx: &RunCtx) -> Vec<Table> {
    let comm = CommModel::paper_defaults();
    let model = ModelConfig::gpt_moe_1t();
    let header = [
        "parallel size n",
        "TP AllReduce (MB)",
        "EP AllToAll (MB)",
        "EP/TP",
    ];
    let mut rows = Vec::new();
    for n in [2usize, 4, 8] {
        let tp = comm
            .tp_allreduce_bytes(&model, &ParallelismStrategy::new(n, 1, 1))
            .value()
            / 1e6;
        let ep = comm
            .ep_alltoall_bytes(&model, &ParallelismStrategy::new(1, 1, n).with_ep(n))
            .value()
            / 1e6;
        rows.push(vec![n.to_string(), fmt(tp, 1), fmt(ep, 1), fmt(ep / tp, 3)]);
    }
    vec![Table::new(
        "Table 3: TP vs EP traffic per MoE layer (top-2 of 8 experts)",
        &header,
        rows,
    )]
}
