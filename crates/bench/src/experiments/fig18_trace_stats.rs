//! Fig 18: macro statistics of the (generated) production fault trace — the
//! daily fault-node ratio and its CDF with p50/p99 annotations.

use crate::registry::RunCtx;
use crate::{fmt, Table};
use infinitehbd::prelude::*;

pub fn run(ctx: &RunCtx) -> Vec<Table> {
    let mut config = GeneratorConfig::paper_8gpu_cluster();
    config.duration = Seconds::from_days(ctx.days(config.duration.as_days()));
    let generator = TraceGenerator::new(config).expect("valid config");
    let trace = generator.generate(&mut ctx.rng());
    let stats = TraceStats::daily(&trace);
    let header = ["statistic", "value"];
    let rows = vec![
        vec![
            "trace length (days)".to_string(),
            fmt(trace.duration().as_days(), 0),
        ],
        vec!["fault events".to_string(), trace.len().to_string()],
        vec![
            "mean fault-node ratio (%)".to_string(),
            fmt(stats.mean_ratio * 100.0, 2),
        ],
        vec![
            "p50 fault-node ratio (%)".to_string(),
            fmt(stats.p50_ratio * 100.0, 2),
        ],
        vec![
            "p99 fault-node ratio (%)".to_string(),
            fmt(stats.p99_ratio * 100.0, 2),
        ],
        vec![
            "max fault-node ratio (%)".to_string(),
            fmt(stats.max_ratio * 100.0, 2),
        ],
    ];
    let mut tables = vec![Table::new(
        "Fig 18: fault-trace statistics (paper: mean 2.33%, p50 1.67%, p99 7.22%)",
        &header,
        rows,
    )];

    let cdf = stats.cdf();
    let header = ["fault ratio (%)", "CDF"];
    let rows: Vec<Vec<String>> = cdf
        .iter()
        .step_by((cdf.len() / 12).max(1))
        .map(|&(ratio, p)| vec![fmt(ratio * 100.0, 2), fmt(p, 3)])
        .collect();
    tables.push(Table::new(
        "Fig 18b: CDF of the daily fault-node ratio",
        &header,
        rows,
    ));
    tables
}
