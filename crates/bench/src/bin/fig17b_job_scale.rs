//! Thin wrapper: runs the registered `fig17b_job_scale` experiment
//! (see `bench::experiments::fig17b_job_scale`).

fn main() {
    bench::run_cli("fig17b_job_scale");
}
