//! Fig 17b: cross-ToR traffic rate versus job-scale ratio on the 8,192-GPU
//! cluster with 5% node faults.

use bench::{emit, fmt, HarnessArgs};
use infinitehbd::prelude::*;

fn main() {
    let args = HarnessArgs::parse();
    let config = ClusterConfig::paper_8192_gpu();
    let tree = FatTree::from_config(&config).expect("valid fat-tree");
    let orch = FatTreeOrchestrator::new(tree.clone()).expect("valid orchestrator");
    let model = TrafficModel::paper_tp32();
    let header = ["job-scale ratio (%)", "baseline (%)", "optimized (%)"];
    let mut rows = Vec::new();
    for scale in [70usize, 75, 80, 85, 90] {
        let mut rng = args.rng();
        let faults =
            FaultSet::from_nodes(IidFaultModel::new(config.nodes, 0.05).sample_exact(&mut rng));
        let request = OrchestrationRequest {
            job_nodes: config.nodes * scale / 100 / 8 * 8,
            nodes_per_group: 8,
            k: 2,
        };
        let baseline = greedy_placement(config.nodes, &faults, 8, request.job_nodes, &mut rng);
        let optimized = match orch.orchestrate(&request, &faults) {
            Ok(p) => fmt(cross_tor_rate(&p, &tree, &model) * 100.0, 2),
            Err(_) => "wait".to_string(),
        };
        rows.push(vec![
            scale.to_string(),
            fmt(cross_tor_rate(&baseline, &tree, &model) * 100.0, 2),
            optimized,
        ]);
    }
    emit(
        &args,
        "Fig 17b: cross-ToR rate vs job-scale ratio (8,192 GPUs, 5% faults)",
        &header,
        &rows,
    );
}
