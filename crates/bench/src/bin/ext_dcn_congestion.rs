//! Thin wrapper: runs the registered `ext_dcn_congestion` experiment
//! (see `bench::experiments::ext_dcn_congestion`).

fn main() {
    bench::run_cli("ext_dcn_congestion");
}
