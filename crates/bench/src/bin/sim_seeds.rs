fn main() {
    bench::run_cli("sim_seeds");
}
