//! Fig 12: bit-error rate of the OCSTrx under varying optical modulation
//! amplitude and ambient temperature.

use bench::{emit, HarnessArgs};
use infinitehbd::ocstrx::optics::OmaSweep;
use infinitehbd::ocstrx::{BerModel, OpticalConditions};

fn main() {
    let args = HarnessArgs::parse();
    let mut rng = args.rng();
    let model = BerModel::paper_calibrated();
    let sweep = OmaSweep::paper_sweep();
    let header = ["OMA (mW)", "-5C", "25C", "50C", "75C"];
    let mut rows = Vec::new();
    for oma in sweep.values() {
        let mut row = vec![format!("{oma:.2}")];
        for temp in [-5.0, 25.0, 50.0, 75.0] {
            let ber = model.measure(
                OpticalConditions {
                    temperature_c: temp,
                    oma_mw: oma,
                },
                10_000_000_000,
                &mut rng,
            );
            row.push(if ber == 0.0 {
                "0".to_string()
            } else {
                format!("{ber:.1e}")
            });
        }
        rows.push(row);
    }
    emit(
        &args,
        "Fig 12: OCSTrx BER vs OMA and temperature",
        &header,
        &rows,
    );
}
