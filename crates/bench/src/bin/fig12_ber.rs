//! Thin wrapper: runs the registered `fig12_ber` experiment
//! (see `bench::experiments::fig12_ber`).

fn main() {
    bench::run_cli("fig12_ber");
}
