//! Thin wrapper: runs the registered `appg_alltoall_fastswitch` experiment
//! (see `bench::experiments::appg_alltoall_fastswitch`).

fn main() {
    bench::run_cli("appg_alltoall_fastswitch");
}
