//! Thin wrapper: runs the registered `ext_lifecycle_faults` experiment
//! (see `bench::experiments::ext_lifecycle_faults`).

fn main() {
    bench::run_cli("ext_lifecycle_faults");
}
