//! Thin wrapper: runs the registered `fig14_waste_vs_fault` experiment
//! (see `bench::experiments::fig14_waste_vs_fault`).

fn main() {
    bench::run_cli("fig14_waste_vs_fault");
}
