//! Figs 14 and 22: GPU waste ratio versus node fault ratio (i.i.d. fault
//! model), for TP-8/16/32/64 on the 2,880-GPU / 4-GPU-node cluster.

use bench::{emit, fmt, HarnessArgs};
use infinitehbd::prelude::*;

fn main() {
    let args = HarnessArgs::parse();
    let nodes = 720;
    let ratios = [0.0, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12];
    for tp in [8usize, 16, 32, 64] {
        let mut rng = args.rng();
        let archs = paper_architectures(nodes, 4, tp);
        let mut header: Vec<String> = vec!["fault ratio (%)".to_string()];
        header.extend(archs.iter().map(|a| a.name().to_string()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut columns: Vec<Vec<f64>> = Vec::new();
        for arch in &archs {
            let points = waste_vs_fault_ratio(arch.as_ref(), tp, &ratios, 10, &mut rng);
            columns.push(points.iter().map(|p| p.waste_ratio).collect());
        }
        let mut rows = Vec::new();
        for (i, ratio) in ratios.iter().enumerate() {
            let mut row = vec![fmt(ratio * 100.0, 0)];
            for column in &columns {
                row.push(fmt(column[i] * 100.0, 2));
            }
            rows.push(row);
        }
        emit(
            &args,
            &format!("Fig 14/22: waste ratio (%) vs node fault ratio, TP-{tp}"),
            &header_refs,
            &rows,
        );
    }
}
