//! Thin wrapper: runs the registered `fig16_fault_waiting` experiment
//! (see `bench::experiments::fig16_fault_waiting`).

fn main() {
    bench::run_cli("fig16_fault_waiting");
}
