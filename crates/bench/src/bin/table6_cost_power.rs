//! Thin wrapper: runs the registered `table6_cost_power` experiment
//! (see `bench::experiments::table6_cost_power`).

fn main() {
    bench::run_cli("table6_cost_power");
}
