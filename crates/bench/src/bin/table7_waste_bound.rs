//! Thin wrapper: runs the registered `table7_waste_bound` experiment
//! (see `bench::experiments::table7_waste_bound`).

fn main() {
    bench::run_cli("table7_waste_bound");
}
