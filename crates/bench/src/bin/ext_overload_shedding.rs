fn main() {
    bench::run_cli("ext_overload_shedding");
}
