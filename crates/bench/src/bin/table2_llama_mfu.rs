//! Thin wrapper: runs the registered `table2_llama_mfu` experiment
//! (see `bench::experiments::table2_llama_mfu`).

fn main() {
    bench::run_cli("table2_llama_mfu");
}
