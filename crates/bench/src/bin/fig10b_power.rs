//! Thin wrapper: runs the registered `fig10b_power` experiment
//! (see `bench::experiments::fig10b_power`).

fn main() {
    bench::run_cli("fig10b_power");
}
