fn main() {
    bench::run_cli("ext_service_throughput");
}
