//! Thin wrapper: runs the registered `fig17c_fault_ratio` experiment
//! (see `bench::experiments::fig17c_fault_ratio`).

fn main() {
    bench::run_cli("fig17c_fault_ratio");
}
