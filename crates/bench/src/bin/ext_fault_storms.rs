fn main() {
    bench::run_cli("ext_fault_storms");
}
