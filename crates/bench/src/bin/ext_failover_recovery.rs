//! Thin wrapper: runs the registered `ext_failover_recovery` experiment
//! (see `bench::experiments::ext_failover_recovery`).

fn main() {
    bench::run_cli("ext_failover_recovery");
}
