//! Thin wrapper: runs the registered `sec52_allreduce_util` experiment
//! (see `bench::experiments::sec52_allreduce_util`).

fn main() {
    bench::run_cli("sec52_allreduce_util");
}
