//! Thin wrapper: runs the registered `ext_lifecycle_churn` experiment
//! (see `bench::experiments::ext_lifecycle_churn`).

fn main() {
    bench::run_cli("ext_lifecycle_churn");
}
