//! Thin wrapper: runs the registered `ext_interference_vs_jobs` experiment
//! (see `bench::experiments::ext_interference_vs_jobs`).

fn main() {
    bench::run_cli("ext_interference_vs_jobs");
}
