//! Thin wrapper: runs the registered `fig18_trace_stats` experiment
//! (see `bench::experiments::fig18_trace_stats`).

fn main() {
    bench::run_cli("fig18_trace_stats");
}
