//! Thin wrapper: runs the registered `ext_multijob_interference` experiment
//! (see `bench::experiments::ext_multijob_interference`).

fn main() {
    bench::run_cli("ext_multijob_interference");
}
