//! Thin wrapper: runs the registered `ext_lifecycle_slo` experiment
//! (see `bench::experiments::ext_lifecycle_slo`).

fn main() {
    bench::run_cli("ext_lifecycle_slo");
}
