//! Thin wrapper: runs the registered `fig17d_aggregate_cost` experiment
//! (see `bench::experiments::fig17d_aggregate_cost`).

fn main() {
    bench::run_cli("fig17d_aggregate_cost");
}
