//! Thin wrapper: runs the registered `fig20_waste_timeseries` experiment
//! (see `bench::experiments::fig20_waste_timeseries`).

fn main() {
    bench::run_cli("fig20_waste_timeseries");
}
