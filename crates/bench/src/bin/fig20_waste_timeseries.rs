//! Fig 20: GPU waste ratio over time (trace replay) for every architecture,
//! TP-32 on the 2,880-GPU / 4-GPU-node cluster.

use bench::{emit, fmt, HarnessArgs};
use infinitehbd::prelude::*;

fn main() {
    let args = HarnessArgs::parse();
    let config = ClusterConfig::paper_2880_gpu();
    let tp = 32;
    let study = ClusterStudy::new(config.clone(), tp, Seconds::from_days(348.0), args.seed)
        .expect("valid study");
    let archs = paper_architectures(config.nodes, config.node_size.gpus(), tp);
    let series: Vec<(String, Vec<f64>)> = archs
        .iter()
        .map(|arch| {
            let points = waste_over_trace(arch.as_ref(), study.trace(), tp, 58);
            (
                arch.name().to_string(),
                points.iter().map(|p| p.waste_ratio).collect(),
            )
        })
        .collect();
    let mut header: Vec<&str> = vec!["day"];
    let names: Vec<String> = series.iter().map(|(n, _)| n.clone()).collect();
    header.extend(names.iter().map(|s| s.as_str()));
    let mut rows = Vec::new();
    for i in 0..58 {
        let mut row = vec![format!("{}", i * 6)];
        for (_, values) in &series {
            row.push(fmt(values[i] * 100.0, 2));
        }
        rows.push(row);
    }
    emit(
        &args,
        "Fig 20: waste ratio (%) over the trace, TP-32",
        &header,
        &rows,
    );
}
