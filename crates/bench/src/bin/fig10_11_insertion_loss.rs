//! Thin wrapper: runs the registered `fig10_11_insertion_loss` experiment
//! (see `bench::experiments::fig10_11_insertion_loss`).

fn main() {
    bench::run_cli("fig10_11_insertion_loss");
}
