//! The evaluation driver: runs every registered experiment in-process,
//! regenerates `EXPERIMENTS.md` and writes a machine-readable
//! `bench_results.json` (per-experiment wall-clock included) for trend
//! tracking.
//!
//! ```text
//! cargo run --release --bin experiments -- --threads 4
//! cargo run --release --bin experiments -- --scale 0.05 --md EXPERIMENTS.smoke.md --out smoke.json
//! cargo run --release --bin experiments -- --only fig17 --json
//! cargo run --release --bin experiments -- --list
//! ```
//!
//! With `--only <substring>` the run is a partial preview: results go to
//! stdout only and no files are written (a partial `EXPERIMENTS.md` would
//! masquerade as the full evaluation).
//!
//! With `--sim-seed <N> --sim-profile <name>` the driver instead replays
//! exactly one ordering of the control-plane fault-injection simulator (the
//! `sim_seeds` experiment's configuration under the named message-fault
//! profile), prints the full report and exits non-zero if the convergence
//! invariant was violated — the one-command reproduction path for any failing
//! seed the sweep reports. The two flags are only meaningful together, so
//! giving exactly one of them is a usage error (a lone `--sim-profile` used
//! to be silently ignored; a lone `--sim-seed` silently picked a profile).

use bench::registry::{self, RunCtx};
use bench::{HarnessArgs, Table, USAGE};
use std::time::Instant;

const DRIVER_USAGE: &str = "usage: experiments [--seed <u64>] [--threads <n>] [--scale <f64>] \
     [--json] [--only <substring>] [--md <path>] [--out <path>] [--bench-json <path>] \
     [--compare <old bench_results.json>] [--warn-over <factor>] [--list] \
     [--sim-seed <u64> --sim-profile <name>]";

struct DriverArgs {
    common: HarnessArgs,
    only: Option<String>,
    md_path: String,
    out_path: String,
    bench_json: Option<String>,
    compare: Option<String>,
    warn_over: Option<f64>,
    list: bool,
    sim_seed: Option<u64>,
    sim_profile: Option<String>,
}

fn parse_driver_args() -> DriverArgs {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (common, leftover) = match HarnessArgs::try_parse(&argv) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}\n{USAGE}\n{DRIVER_USAGE}");
            std::process::exit(2);
        }
    };
    let mut driver = DriverArgs {
        common,
        only: None,
        md_path: "EXPERIMENTS.md".to_string(),
        out_path: "bench_results.json".to_string(),
        bench_json: None,
        compare: None,
        warn_over: None,
        list: false,
        sim_seed: None,
        sim_profile: None,
    };
    let mut i = 0;
    while i < leftover.len() {
        match leftover[i].as_str() {
            "--only" => {
                driver.only = Some(require_value(&leftover, &mut i, "--only"));
            }
            "--md" => {
                driver.md_path = require_value(&leftover, &mut i, "--md");
            }
            "--out" => {
                driver.out_path = require_value(&leftover, &mut i, "--out");
            }
            "--bench-json" => {
                driver.bench_json = Some(require_value(&leftover, &mut i, "--bench-json"));
            }
            "--compare" => {
                driver.compare = Some(require_value(&leftover, &mut i, "--compare"));
            }
            "--warn-over" => {
                let value = require_value(&leftover, &mut i, "--warn-over");
                match value.parse::<f64>() {
                    Ok(factor) if factor >= 1.0 => driver.warn_over = Some(factor),
                    _ => {
                        eprintln!(
                            "error: --warn-over needs a factor >= 1.0, got '{value}'\n{DRIVER_USAGE}"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--sim-seed" => {
                let value = require_value(&leftover, &mut i, "--sim-seed");
                match value.parse::<u64>() {
                    Ok(seed) => driver.sim_seed = Some(seed),
                    Err(_) => {
                        eprintln!("error: --sim-seed needs a u64, got '{value}'\n{DRIVER_USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--sim-profile" => {
                driver.sim_profile = Some(require_value(&leftover, &mut i, "--sim-profile"));
            }
            "--list" => driver.list = true,
            other => {
                eprintln!("error: unknown argument '{other}'\n{DRIVER_USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // Cross-flag validation: reject combinations that used to be silently
    // ignored (or silently defaulted) before any experiment runs.
    match (&driver.sim_seed, &driver.sim_profile) {
        (Some(_), None) => {
            eprintln!(
                "error: --sim-seed requires --sim-profile <name> (run the sim_seeds experiment \
                 or see its module docs for the profile names)\n{DRIVER_USAGE}"
            );
            std::process::exit(2);
        }
        (None, Some(_)) => {
            eprintln!(
                "error: --sim-profile is only meaningful together with --sim-seed <u64>\
                 \n{DRIVER_USAGE}"
            );
            std::process::exit(2);
        }
        _ => {}
    }
    if driver.warn_over.is_some() && driver.compare.is_none() {
        eprintln!(
            "error: --warn-over needs a --compare <old bench_results.json> baseline to check \
             against\n{DRIVER_USAGE}"
        );
        std::process::exit(2);
    }
    driver
}

/// Eagerly validates a `--compare` baseline that `--warn-over` will gate on:
/// it must be readable, parse as JSON and carry at least one experiment
/// wall-clock. Without `--warn-over` a broken baseline still degrades to a
/// skipped (informational) comparison, but a gating flag pointing at nothing
/// is a usage error — and it fails *before* the experiments run, not after.
fn validate_compare_baseline(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|error| {
        eprintln!("error: --warn-over baseline {path} is unreadable: {error}\n{DRIVER_USAGE}");
        std::process::exit(2);
    });
    let old: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|error| {
        eprintln!("error: --warn-over baseline {path} is malformed JSON: {error}\n{DRIVER_USAGE}");
        std::process::exit(2);
    });
    let has_wall_clocks = old
        .get("experiments")
        .and_then(|e| e.as_array())
        .is_some_and(|records| {
            records
                .iter()
                .any(|r| r.get("name").is_some() && r.get("wall_ms").is_some())
        });
    if !has_wall_clocks {
        eprintln!(
            "error: --warn-over baseline {path} has no experiment wall-clocks to compare \
             against\n{DRIVER_USAGE}"
        );
        std::process::exit(2);
    }
}

fn require_value(argv: &[String], i: &mut usize, flag: &str) -> String {
    match argv.get(*i + 1) {
        Some(value) => {
            *i += 1;
            value.clone()
        }
        None => {
            eprintln!("error: {flag} requires a value\n{DRIVER_USAGE}");
            std::process::exit(2);
        }
    }
}

struct ExperimentRun {
    name: &'static str,
    group: &'static str,
    summary: &'static str,
    wall_ms: f64,
    tables: Vec<Table>,
}

/// Replays one seeded ordering of the control-plane simulator with the
/// `sim_seeds` experiment's exact configuration, printing the full report.
/// Exit status 0 = converged with zero invariant violations, 1 = violated —
/// so a failing seed from the sweep reproduces with a single command.
fn replay_sim_seed(seed: u64, profile_name: &str) -> ! {
    use bench::experiments::sim_seeds;
    use infinitehbd::control::sim;

    let Some(message_faults) = sim_seeds::profile(profile_name) else {
        let known: Vec<&str> = sim_seeds::profiles().iter().map(|(n, _)| *n).collect();
        eprintln!(
            "error: unknown --sim-profile '{profile_name}' (known: {})",
            known.join(", ")
        );
        std::process::exit(2);
    };
    let mut config = sim_seeds::base_config();
    config.message_faults = message_faults;
    let report = match sim::run(&config, seed) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("error: simulation failed to run: {error}");
            std::process::exit(2);
        }
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("serialisable report")
    );
    let ok = report.final_converged && report.invariant_violations == 0;
    eprintln!(
        "sim-seed {seed} profile '{profile_name}': {} ({} arrivals, {} commands, {} sends, \
         {} invariant violation(s), end time {:.3} s)",
        if ok {
            "CONVERGED"
        } else {
            "INVARIANT VIOLATED"
        },
        report.arrivals,
        report.commands_issued,
        report.sends,
        report.invariant_violations,
        report.end_time.value()
    );
    std::process::exit(if ok { 0 } else { 1 });
}

fn main() {
    let args = parse_driver_args();
    if let Some(seed) = args.sim_seed {
        let profile = args.sim_profile.as_deref().expect("validated at parse");
        replay_sim_seed(seed, profile);
    }
    if args.warn_over.is_some() {
        let path = args.compare.as_deref().expect("validated at parse");
        validate_compare_baseline(path);
    }
    if args.list {
        for experiment in registry::all() {
            println!(
                "{:28} {:22} {}",
                experiment.name, experiment.group, experiment.summary
            );
        }
        return;
    }

    let ctx = RunCtx::from_args(&args.common);
    let selected: Vec<_> = registry::all()
        .iter()
        .filter(|e| {
            args.only
                .as_deref()
                .map(|needle| e.name.contains(needle))
                .unwrap_or(true)
        })
        .collect();
    if selected.is_empty() {
        eprintln!(
            "error: --only '{}' matches no experiment (try --list)",
            args.only.as_deref().unwrap_or("")
        );
        std::process::exit(2);
    }

    let total_start = Instant::now();
    let mut runs: Vec<ExperimentRun> = Vec::with_capacity(selected.len());
    for experiment in &selected {
        let start = Instant::now();
        let tables = (experiment.run)(&ctx);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "ran {:28} {:>9.1} ms  ({} table{})",
            experiment.name,
            wall_ms,
            tables.len(),
            if tables.len() == 1 { "" } else { "s" }
        );
        runs.push(ExperimentRun {
            name: experiment.name,
            group: experiment.group,
            summary: experiment.summary,
            wall_ms,
            tables,
        });
    }
    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;

    let microbenches = load_microbenches(args.bench_json.as_deref());

    if let Some(path) = args.compare.as_deref() {
        print_wall_clock_deltas(path, &runs, args.warn_over);
    }

    if args.common.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&collate_json(&ctx, &runs, &microbenches))
                .expect("serialisable")
        );
    }

    if args.only.is_some() {
        if !args.common.json {
            for run in &runs {
                for table in &run.tables {
                    table.print_text();
                }
            }
        }
        eprintln!("partial run (--only): EXPERIMENTS.md / bench_results.json not written");
        return;
    }

    std::fs::write(&args.md_path, render_markdown(&ctx, &runs))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.md_path));
    std::fs::write(
        &args.out_path,
        format!(
            "{}\n",
            serde_json::to_string_pretty(&collate_json(&ctx, &runs, &microbenches))
                .expect("serialisable")
        ),
    )
    .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out_path));
    eprintln!(
        "wrote {} and {} ({} experiments, {:.1} s total)",
        args.md_path,
        args.out_path,
        runs.len(),
        total_ms / 1e3
    );
}

/// Reads the JSON-lines file the criterion shim appends to (one record per
/// micro-benchmark, see `CRITERION_JSON` in `shims/criterion`). A missing or
/// malformed file is a hard error: the flag promises baselines.
fn load_microbenches(path: Option<&str>) -> Vec<serde_json::Value> {
    let Some(path) = path else {
        return Vec::new();
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read --bench-json {path}: {e}");
        std::process::exit(2);
    });
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            serde_json::from_str::<serde_json::Value>(line).unwrap_or_else(|e| {
                eprintln!("error: malformed record in --bench-json {path}: {e}");
                std::process::exit(2);
            })
        })
        .collect()
}

/// Prints per-experiment wall-clock deltas against an older
/// `bench_results.json` to stderr. Strictly informational and non-fatal —
/// wall-clock is machine-dependent, so the report surfaces regressions for a
/// human (or CI log reader) without gating anything: unreadable or malformed
/// baselines degrade to a warning. (With `--warn-over` the baseline has
/// already been validated up front, so the degrade paths are plain-`--compare`
/// only.)
///
/// With `warn_over = Some(factor)` the report additionally ends with a
/// visible summary of every experiment whose wall-clock grew to at least
/// `factor ×` its baseline (still non-fatal; sub-millisecond regressions are
/// ignored as timer noise).
fn print_wall_clock_deltas(path: &str, runs: &[ExperimentRun], warn_over: Option<f64>) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("compare: cannot read {path}: {error} (skipping)");
            return;
        }
    };
    let old: serde_json::Value = match serde_json::from_str(&text) {
        Ok(value) => value,
        Err(error) => {
            eprintln!("compare: malformed JSON in {path}: {error} (skipping)");
            return;
        }
    };
    let old_runs: Vec<(&str, f64)> = old
        .get("experiments")
        .and_then(|e| e.as_array())
        .map(|records| {
            records
                .iter()
                .filter_map(|record| {
                    Some((
                        record.get("name")?.as_str()?,
                        record.get("wall_ms")?.as_f64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    if old_runs.is_empty() {
        eprintln!("compare: {path} has no experiment wall-clocks (skipping)");
        return;
    }
    eprintln!("compare: wall-clock vs {path} (informational, machine-dependent)");
    let mut old_total = 0.0;
    let mut new_total = 0.0;
    let mut regressions: Vec<(&str, f64, f64)> = Vec::new();
    for run in runs {
        match old_runs.iter().find(|(name, _)| *name == run.name) {
            Some(&(_, old_ms)) => {
                let delta = if old_ms > 0.0 {
                    (run.wall_ms - old_ms) / old_ms * 100.0
                } else {
                    0.0
                };
                old_total += old_ms;
                new_total += run.wall_ms;
                eprintln!(
                    "  {:28} {:>9.1} -> {:>9.1} ms  {:>+7.1}%",
                    run.name, old_ms, run.wall_ms, delta
                );
                if let Some(factor) = warn_over {
                    // Sub-millisecond experiments regress by whole factors on
                    // timer noise alone; only flag measurable growth.
                    if old_ms > 0.0 && run.wall_ms >= old_ms * factor && run.wall_ms - old_ms >= 1.0
                    {
                        regressions.push((run.name, old_ms, run.wall_ms));
                    }
                }
            }
            None => eprintln!("  {:28}       new -> {:>9.1} ms", run.name, run.wall_ms),
        }
    }
    if old_total > 0.0 {
        eprintln!(
            "  {:28} {:>9.1} -> {:>9.1} ms  {:>+7.1}%  (experiments present in both)",
            "total",
            old_total,
            new_total,
            (new_total - old_total) / old_total * 100.0
        );
    }
    if let Some(factor) = warn_over {
        if regressions.is_empty() {
            eprintln!("warn-over: no experiment regressed by {factor}x or more");
        } else {
            eprintln!(
                "warn-over: {} experiment(s) at or over the {factor}x wall-clock threshold \
                 (non-fatal):",
                regressions.len()
            );
            for (name, old_ms, new_ms) in &regressions {
                eprintln!(
                    "  {:28} {:>9.1} -> {:>9.1} ms  ({:.1}x)",
                    name,
                    old_ms,
                    new_ms,
                    new_ms / old_ms
                );
            }
        }
    }
}

/// The machine-readable collation (`bench_results.json`): run parameters,
/// per-experiment wall-clock, every table, and (with `--bench-json`) the
/// criterion micro-bench baselines.
fn collate_json(
    ctx: &RunCtx,
    runs: &[ExperimentRun],
    microbenches: &[serde_json::Value],
) -> serde_json::Value {
    let experiments: Vec<serde_json::Value> = runs
        .iter()
        .map(|run| {
            let tables: Vec<serde_json::Value> = run.tables.iter().map(Table::to_json).collect();
            serde_json::json!({
                "name": run.name,
                "group": run.group,
                "summary": run.summary,
                "wall_ms": run.wall_ms,
                "tables": tables,
            })
        })
        .collect();
    serde_json::json!({
        "seed": ctx.seed,
        "scale": ctx.scale,
        "threads": ctx.threads,
        "experiments": experiments,
        "microbenches": microbenches,
    })
}

/// The regenerated `EXPERIMENTS.md`. Deliberately free of wall-clock numbers
/// so that re-running with the same seed/scale reproduces the file
/// byte-for-byte.
fn render_markdown(ctx: &RunCtx, runs: &[ExperimentRun]) -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS\n\n");
    out.push_str(
        "Every table and figure of the paper's evaluation, regenerated mechanically by the\n\
         experiment registry (`crates/bench/src/registry.rs`). Do not edit by hand — refresh with:\n\n\
         ```bash\ncargo run --release --bin experiments -- --threads <N>\n```\n\n",
    );
    out.push_str(&format!(
        "Parameters of this run: seed `{}`, scale `{}`, {} experiments. Per-experiment\n\
         wall-clock times and the same tables in machine-readable form are written to\n\
         `bench_results.json` alongside this file.\n\n",
        ctx.seed,
        ctx.scale,
        runs.len()
    ));
    out.push_str(
        "`bench_results.json` schema: a top-level object with `seed`, `scale` and `threads`\n\
         (the run parameters), `experiments` — one record per registered experiment with\n\
         `name`, `group`, `summary`, `wall_ms` (wall-clock of the run, machine-dependent)\n\
         and `tables` (the same tables as below, each `{experiment, rows}` with one\n\
         column-name → cell object per row) —\n\
         and `microbenches`: the criterion micro-bench baselines collected by\n\
         `cargo bench` with `CRITERION_JSON` set and folded in via `--bench-json`, one\n\
         record per benchmark with `bench` (label), `mean_ns`, `min_ns`, `p50_ns`,\n\
         `p99_ns`, `samples` and —\n\
         for groups that declare a throughput — `throughput_per_sec` / `throughput_unit`\n\
         (empty when the driver runs without `--bench-json`). `--compare <old json>`\n\
         additionally prints per-experiment wall-clock deltas against an older\n\
         `bench_results.json` to stderr (informational only); `--warn-over <factor>`\n\
         appends a visible — still non-fatal — summary of the experiments whose\n\
         wall-clock reached `factor`x their baseline.\n\n",
    );

    out.push_str("## Index\n\n| experiment | group | summary |\n| --- | --- | --- |\n");
    for run in runs {
        out.push_str(&format!(
            "| [`{name}`](#{name}) | {} | {} |\n",
            run.group,
            run.summary,
            name = run.name
        ));
    }
    out.push('\n');

    let mut current_group = "";
    for run in runs {
        if run.group != current_group {
            current_group = run.group;
            out.push_str(&format!("## {current_group}\n\n"));
        }
        out.push_str(&format!("### {}\n\n{}\n\n", run.name, run.summary));
        for table in &run.tables {
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
    }
    out
}
