//! Thin wrapper: runs the registered `fig17a_cluster_size` experiment
//! (see `bench::experiments::fig17a_cluster_size`).

fn main() {
    bench::run_cli("fig17a_cluster_size");
}
