//! Thin wrapper: runs the registered `table4_tp_vs_ep` experiment
//! (see `bench::experiments::table4_tp_vs_ep`).

fn main() {
    bench::run_cli("table4_tp_vs_ep");
}
