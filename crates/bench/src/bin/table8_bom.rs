//! Thin wrapper: runs the registered `table8_bom` experiment
//! (see `bench::experiments::table8_bom`).

fn main() {
    bench::run_cli("table8_bom");
}
