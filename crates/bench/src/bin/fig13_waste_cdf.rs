//! Thin wrapper: runs the registered `fig13_waste_cdf` experiment
//! (see `bench::experiments::fig13_waste_cdf`).

fn main() {
    bench::run_cli("fig13_waste_cdf");
}
