//! Figs 13 and 21: CDF of the GPU waste ratio of every architecture over the
//! production-calibrated fault trace (2,880 GPUs, 4-GPU nodes), for TP-8/16/32/64.

use bench::{emit, fmt, HarnessArgs};
use infinitehbd::cluster::waste::waste_cdf;
use infinitehbd::prelude::*;

fn main() {
    let args = HarnessArgs::parse();
    let config = ClusterConfig::paper_2880_gpu();
    for tp in [8usize, 16, 32, 64] {
        let study = ClusterStudy::new(config.clone(), tp, Seconds::from_days(348.0), args.seed)
            .expect("valid study");
        let header = [
            "architecture",
            "p50 waste (%)",
            "p90 waste (%)",
            "p99 waste (%)",
            "mean (%)",
        ];
        let mut rows = Vec::new();
        for arch in paper_architectures(config.nodes, config.node_size.gpus(), tp) {
            let points = waste_over_trace(arch.as_ref(), study.trace(), tp, 348);
            let cdf = waste_cdf(&points);
            let pick = |q: f64| cdf[(q * (cdf.len() - 1) as f64) as usize].0;
            let mean = points.iter().map(|p| p.waste_ratio).sum::<f64>() / points.len() as f64;
            rows.push(vec![
                arch.name().to_string(),
                fmt(pick(0.50) * 100.0, 2),
                fmt(pick(0.90) * 100.0, 2),
                fmt(pick(0.99) * 100.0, 2),
                fmt(mean * 100.0, 2),
            ]);
        }
        emit(
            &args,
            &format!("Fig 13/21: GPU waste ratio CDF summary, TP-{tp}"),
            &header,
            &rows,
        );
    }
}
