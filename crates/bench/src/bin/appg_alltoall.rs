//! Thin wrapper: runs the registered `appg_alltoall` experiment
//! (see `bench::experiments::appg_alltoall`).

fn main() {
    bench::run_cli("appg_alltoall");
}
