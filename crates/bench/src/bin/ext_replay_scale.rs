//! Thin wrapper: runs the registered `ext_replay_scale` experiment
//! (see `bench::experiments::ext_replay_scale`).

fn main() {
    bench::run_cli("ext_replay_scale");
}
