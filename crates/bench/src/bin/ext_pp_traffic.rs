//! Thin wrapper: runs the registered `ext_pp_traffic` experiment
//! (see `bench::experiments::ext_pp_traffic`).

fn main() {
    bench::run_cli("ext_pp_traffic");
}
