fn main() {
    bench::run_cli("ext_incremental_publish");
}
