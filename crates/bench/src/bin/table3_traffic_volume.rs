//! Thin wrapper: runs the registered `table3_traffic_volume` experiment
//! (see `bench::experiments::table3_traffic_volume`).

fn main() {
    bench::run_cli("table3_traffic_volume");
}
