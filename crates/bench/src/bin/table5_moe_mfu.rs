//! Thin wrapper: runs the registered `table5_moe_mfu` experiment
//! (see `bench::experiments::table5_moe_mfu`).

fn main() {
    bench::run_cli("table5_moe_mfu");
}
