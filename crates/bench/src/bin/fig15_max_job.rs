//! Thin wrapper: runs the registered `fig15_max_job` experiment
//! (see `bench::experiments::fig15_max_job`).

fn main() {
    bench::run_cli("fig15_max_job");
}
