//! The experiment registry: every table/figure of the paper's evaluation,
//! name → runner function, replacing 24 ad-hoc `main`s with one composable
//! catalogue that the thin per-figure binaries, the `experiments` driver and
//! the determinism test suite all share.

use crate::experiments;
use crate::{HarnessArgs, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything an experiment run depends on. Experiments must be deterministic
/// in `(seed, scale)` and invariant in `threads`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunCtx {
    /// RNG master seed; per-shard streams are derived from it via
    /// [`stream_seed`](crate::par::stream_seed).
    pub seed: u64,
    /// Worker threads for the parallel sweeps.
    pub threads: usize,
    /// Scale factor on sample counts / trial counts / trace lengths
    /// (`1.0` = paper-sized, smaller = proportionally cheaper smoke run).
    pub scale: f64,
}

impl Default for RunCtx {
    fn default() -> Self {
        RunCtx {
            seed: 42,
            threads: 1,
            scale: 1.0,
        }
    }
}

impl RunCtx {
    /// Builds the context from parsed CLI flags.
    pub fn from_args(args: &HarnessArgs) -> Self {
        RunCtx {
            seed: args.seed,
            threads: args.threads,
            scale: args.scale,
        }
    }

    /// The experiment's master RNG (for experiments that sample sequentially).
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// Scales an iteration count (samples, trials, bits), never below 1.
    pub fn count(&self, full: usize) -> usize {
        ((full as f64 * self.scale).round() as usize).max(1)
    }

    /// Scales a trace duration in days, never below two days (the fault
    /// generator needs room for at least a couple of repair cycles).
    pub fn days(&self, full: f64) -> f64 {
        (full * self.scale).max(2.0)
    }

    /// Scales a sweep-point list by keeping a proportional prefix (at least
    /// one point) — how smoke runs trim the expensive outer loops of an
    /// experiment without changing any retained point.
    pub fn select<'a, T>(&self, items: &'a [T]) -> &'a [T] {
        let keep = ((items.len() as f64 * self.scale).ceil() as usize).clamp(1, items.len());
        &items[..keep]
    }
}

/// A registered experiment.
pub struct Experiment {
    /// Stable name — identical to the per-figure binary name.
    pub name: &'static str,
    /// Which part of the evaluation the experiment reproduces.
    pub group: &'static str,
    /// One-line description for `EXPERIMENTS.md` and `--list`.
    pub summary: &'static str,
    /// The runner.
    pub run: fn(&RunCtx) -> Vec<Table>,
}

macro_rules! registry {
    ($( $module:ident / $group:literal / $summary:literal ),* $(,)?) => {
        &[ $( Experiment {
            name: stringify!($module),
            group: $group,
            summary: $summary,
            run: experiments::$module::run,
        }, )* ]
    };
}

/// Every experiment of the evaluation, in EXPERIMENTS.md presentation order.
pub fn all() -> &'static [Experiment] {
    registry![
        fig10_11_insertion_loss
            / "Device (§5.1)"
            / "OCSTrx insertion loss vs temperature, and its distribution",
        fig10b_power / "Device (§5.1)" / "OCSTrx core-module power per path and temperature",
        fig12_ber / "Device (§5.1)" / "OCSTrx bit-error rate vs OMA and temperature",
        sec52_allreduce_util
            / "Prototype (§5.2)"
            / "Ring-AllReduce bandwidth utilisation of the prototype rings",
        ext_failover_recovery
            / "Control plane (§5.2)"
            / "Single-fault recovery cost vs ring degree K",
        sim_seeds
            / "Control plane (§5.2)"
            / "Seeded adversarial-schedule convergence sweep of the control-plane simulator",
        table2_llama_mfu
            / "Training (§6.1)"
            / "Llama 3.1-405B optimal parallelism and MFU vs the TP-8 cap",
        table3_traffic_volume / "Training (§6.1)" / "Per-MoE-layer TP vs EP communication volume",
        table4_tp_vs_ep / "Training (§6.1)" / "TP vs EP MFU under expert imbalance",
        table5_moe_mfu / "Training (§6.1)" / "GPT-MoE optimal parallelism and MFU",
        fig13_waste_cdf
            / "Fault resilience (§6.2)"
            / "GPU waste-ratio CDF summary over the production-calibrated trace",
        fig14_waste_vs_fault
            / "Fault resilience (§6.2)"
            / "Waste ratio vs node fault ratio (parallel Monte-Carlo sweep)",
        fig15_max_job
            / "Fault resilience (§6.2)"
            / "Maximal job scale supported over the fault trace",
        fig16_fault_waiting / "Fault resilience (§6.2)" / "Job fault-waiting rate vs job scale",
        fig18_trace_stats
            / "Fault resilience (§6.2)"
            / "Macro statistics of the generated production fault trace",
        fig20_waste_timeseries
            / "Fault resilience (§6.2)"
            / "Waste ratio over the trace, per architecture",
        fig17a_cluster_size
            / "Orchestration (§6.3)"
            / "Cross-ToR rate vs cluster size (binary-searched constraints)",
        fig17b_job_scale
            / "Orchestration (§6.3)"
            / "Cross-ToR rate vs job-scale ratio on the 8,192-GPU cluster",
        fig17c_fault_ratio
            / "Orchestration (§6.3)"
            / "Cross-ToR rate vs node fault ratio on the 8,192-GPU cluster",
        ext_dcn_congestion
            / "Orchestration (§6.3)"
            / "Flow-level DP AllReduce slowdown vs ToR oversubscription",
        ext_pp_traffic
            / "Traffic engine (ext)"
            / "DCN traffic mix (DP/PP/CP epochs) per parallelism plan",
        ext_multijob_interference
            / "Traffic engine (ext)"
            / "Per-job slowdown and hot links in a 3-job mix on one Fat-Tree",
        ext_interference_vs_jobs
            / "Traffic engine (ext)"
            / "Interference growth vs concurrent job count, per placement policy",
        ext_replay_scale
            / "Traffic engine (ext)"
            / "Replay-engine cost counters and throughput vs job-mix size",
        ext_lifecycle_slo
            / "Lifecycle (ext)"
            / "Online job-lifecycle SLOs per admission policy (FIFO / backfill / defrag)",
        ext_lifecycle_churn
            / "Lifecycle (ext)"
            / "Lifecycle queueing and goodput vs offered load (saturation knee)",
        ext_lifecycle_faults
            / "Lifecycle (ext)"
            / "Lifecycle churn and SLOs vs steady-state fault ratio",
        ext_service_throughput
            / "Service (ext)"
            / "Placement-service sustained load, batching sweep and modeled tail latency",
        ext_incremental_publish
            / "Service (ext)"
            / "Delta-published epochs: segment reuse and modeled publish latency vs churn rate",
        ext_overload_shedding
            / "Robustness (ext)"
            / "Offered-load sweep past saturation: bounded p99 with admission control vs collapse",
        ext_fault_storms
            / "Robustness (ext)"
            / "Correlated fault-storm sweep: degraded answers, breaker transitions and recovery",
        fig17d_aggregate_cost / "Economics (§6.4)" / "Normalized aggregate cost vs fault ratio",
        table6_cost_power / "Economics (§6.4)" / "Interconnect cost and power per GPU and per GBps",
        table7_waste_bound
            / "Theory (App. C)"
            / "Closed-form upper bound on the expected waste ratio",
        table8_bom / "Economics (App. F)" / "Component-level bill of materials per architecture",
        appg_alltoall / "AllToAll (App. G)" / "AllToAll algorithm comparison incl. Binary Exchange",
        appg_alltoall_fastswitch
            / "AllToAll (App. G)"
            / "Fast-switched Binary Exchange vs ring AllToAll",
    ]
}

/// Looks an experiment up by exact name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    all().iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_experiments_with_unique_names() {
        let experiments = all();
        assert_eq!(experiments.len(), 37);
        let mut names: Vec<&str> = experiments.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), experiments.len());
    }

    #[test]
    fn find_resolves_names() {
        assert!(find("fig14_waste_vs_fault").is_some());
        assert!(find("no_such_experiment").is_none());
    }

    #[test]
    fn ctx_scaling_helpers_are_sane() {
        let ctx = RunCtx {
            seed: 1,
            threads: 2,
            scale: 0.1,
        };
        assert_eq!(ctx.count(348), 35);
        assert_eq!(ctx.count(1), 1);
        assert!((ctx.days(348.0) - 34.8).abs() < 1e-9);
        assert_eq!(ctx.days(10.0), 2.0);
        let items = [1, 2, 3, 4, 5];
        assert_eq!(ctx.select(&items), &[1]);
        let full = RunCtx::default();
        assert_eq!(full.select(&items), &items);
    }
}
