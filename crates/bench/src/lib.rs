//! The experiment harness.
//!
//! Every table and figure of the paper's evaluation is one **registered
//! experiment** ([`registry`]): a named function from a [`registry::RunCtx`]
//! (seed, thread count, scale factor) to a list of [`Table`]s. The per-figure
//! binaries under `src/bin/` are thin wrappers around the registry ([`run_cli`])
//! and the `experiments` driver binary runs the whole registry in-process,
//! regenerating `EXPERIMENTS.md` and a machine-readable `bench_results.json`.
//!
//! Every experiment is deterministic in `(seed, scale)` and **invariant in the
//! thread count**: stochastic sweeps draw from per-shard RNG streams derived
//! from the master seed (see [`par`]), so `--threads 1` and `--threads N`
//! produce byte-identical JSON — the property the workspace-level
//! `integration_determinism` suite asserts for all 35 registered experiments.

pub mod experiments;
pub mod registry;
pub mod table;

/// The scoped fan-out pool used by the parallel sweeps, re-exported from
/// `hbd_types::par` so harness code can say `bench::par::par_map`.
pub mod par {
    pub use infinitehbd::hbd_types::par::{par_map, par_map_range, par_map_seeded, stream_seed};
}

/// The placement-query service layer, re-exported from
/// `orchestrator::service` so harness code and benches can say
/// `bench::service::PlacementService`.
pub mod service {
    pub use infinitehbd::orchestrator::service::{
        BatchReport, BatchStats, ClusterSnapshot, PatchTally, PlacementAnswer, PlacementQuery,
        PlacementService, QueryCost, QueryKind, SnapshotDelta, SnapshotStore,
    };
}

pub use table::Table;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parses the common CLI flags of the harness binaries: `--seed <u64>`,
/// `--threads <n>`, `--scale <f64>` and `--json`.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// RNG master seed used by every stochastic experiment.
    pub seed: u64,
    /// Emit machine-readable JSON instead of the plain-text table.
    pub json: bool,
    /// Worker threads for the parallel sweeps (results are identical for any
    /// value; this only changes wall-clock time).
    pub threads: usize,
    /// Scale factor applied to sample counts / trial counts / trace lengths;
    /// `1.0` reproduces the paper-sized experiments, smaller values give a
    /// proportionally cheaper smoke run.
    pub scale: f64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            seed: 42,
            json: false,
            threads: 1,
            scale: 1.0,
        }
    }
}

/// One-line usage string shared by every harness binary.
pub const USAGE: &str = "usage: <binary> [--seed <u64>] [--threads <n>] [--scale <f64>] [--json]";

impl HarnessArgs {
    /// Parses `std::env::args()`, printing the error and usage to stderr and
    /// exiting with status 2 on malformed input (a malformed `--seed` is an
    /// error, not a silent fallback to the default).
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match Self::try_parse(&argv) {
            Ok((args, leftover)) => {
                if let Some(unknown) = leftover.first() {
                    eprintln!("error: unknown argument '{unknown}'\n{USAGE}");
                    std::process::exit(2);
                }
                args
            }
            Err(message) => {
                eprintln!("error: {message}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses the common flags out of `argv`, returning the parsed arguments
    /// and any unrecognised arguments (in order) for the caller to interpret
    /// or reject. Malformed values for recognised flags are hard errors.
    pub fn try_parse(argv: &[String]) -> Result<(Self, Vec<String>), String> {
        let mut args = HarnessArgs::default();
        let mut leftover = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--seed" => {
                    let value = argv
                        .get(i + 1)
                        .ok_or_else(|| "--seed requires a value".to_string())?;
                    args.seed = value.parse().map_err(|_| {
                        format!("malformed --seed value '{value}' (expected a u64)")
                    })?;
                    i += 1;
                }
                "--threads" => {
                    let value = argv
                        .get(i + 1)
                        .ok_or_else(|| "--threads requires a value".to_string())?;
                    args.threads = value.parse().map_err(|_| {
                        format!("malformed --threads value '{value}' (expected a positive integer)")
                    })?;
                    if args.threads == 0 {
                        return Err("--threads must be at least 1".to_string());
                    }
                    i += 1;
                }
                "--scale" => {
                    let value = argv
                        .get(i + 1)
                        .ok_or_else(|| "--scale requires a value".to_string())?;
                    args.scale = value.parse().map_err(|_| {
                        format!("malformed --scale value '{value}' (expected a float)")
                    })?;
                    if !(args.scale > 0.0 && args.scale.is_finite()) {
                        return Err(format!(
                            "--scale must be a positive finite number, got {value}"
                        ));
                    }
                    i += 1;
                }
                "--json" => args.json = true,
                other => leftover.push(other.to_string()),
            }
            i += 1;
        }
        Ok((args, leftover))
    }

    /// A seeded RNG for the experiment.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Runs the registered experiment `name` as a standalone binary: parses the
/// common CLI flags and prints every table the experiment produces, as text or
/// (with `--json`) one JSON document per table.
pub fn run_cli(name: &str) {
    let args = HarnessArgs::parse();
    let experiment = registry::find(name)
        .unwrap_or_else(|| panic!("experiment '{name}' is not in the registry"));
    let ctx = registry::RunCtx::from_args(&args);
    for table in (experiment.run)(&ctx) {
        if args.json {
            println!(
                "{}",
                serde_json::to_string_pretty(&table.to_json()).expect("serialisable")
            );
        } else {
            table.print_text();
        }
    }
}

/// Prints a named series as aligned columns (legacy helper, kept as the
/// text-rendering primitive behind [`Table::print_text`]).
pub fn print_series(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    println!(
        "{}",
        header
            .iter()
            .map(|h| format!("{h:>16}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for row in rows {
        println!(
            "{}",
            row.iter()
                .map(|c| format!("{c:>16}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    println!();
}

/// Formats a float with the given number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn fmt_rounds_to_requested_precision() {
        assert_eq!(fmt(2.4652, 2), "2.47");
        assert_eq!(fmt(0.4821, 4), "0.4821");
    }

    #[test]
    fn try_parse_reads_every_flag() {
        let (args, leftover) = HarnessArgs::try_parse(&argv(&[
            "--seed",
            "7",
            "--threads",
            "4",
            "--scale",
            "0.5",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            args,
            HarnessArgs {
                seed: 7,
                json: true,
                threads: 4,
                scale: 0.5
            }
        );
        assert!(leftover.is_empty());
        let _ = args.rng();
    }

    #[test]
    fn malformed_seed_is_an_error_not_a_silent_default() {
        let err = HarnessArgs::try_parse(&argv(&["--seed", "not-a-number"])).unwrap_err();
        assert!(err.contains("malformed --seed"), "{err}");
        // A missing value is an error too.
        let err = HarnessArgs::try_parse(&argv(&["--seed"])).unwrap_err();
        assert!(err.contains("--seed requires a value"), "{err}");
    }

    #[test]
    fn malformed_threads_and_scale_are_errors() {
        assert!(HarnessArgs::try_parse(&argv(&["--threads", "zero"])).is_err());
        assert!(HarnessArgs::try_parse(&argv(&["--threads", "0"])).is_err());
        assert!(HarnessArgs::try_parse(&argv(&["--scale", "-1"])).is_err());
        assert!(HarnessArgs::try_parse(&argv(&["--scale", "nope"])).is_err());
    }

    #[test]
    fn unknown_arguments_are_returned_to_the_caller() {
        let (args, leftover) = HarnessArgs::try_parse(&argv(&["--only", "fig14"])).unwrap();
        assert_eq!(args.seed, 42);
        assert_eq!(leftover, argv(&["--only", "fig14"]));
    }
}
