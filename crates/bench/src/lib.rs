//! Shared helpers for the experiment harness binaries.
//!
//! Every binary regenerates one table or figure of the paper's evaluation and
//! prints it both as a human-readable table and (with `--json`) as a JSON
//! document, so EXPERIMENTS.md can be refreshed mechanically.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parses the common CLI flags of the harness binaries: `--seed <u64>` and
/// `--json`.
pub struct HarnessArgs {
    /// RNG seed used by every stochastic experiment.
    pub seed: u64,
    /// Emit machine-readable JSON instead of the plain-text table.
    pub json: bool,
}

impl HarnessArgs {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut seed = 42u64;
        let mut json = false;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    if let Some(value) = args.get(i + 1) {
                        seed = value.parse().unwrap_or(42);
                        i += 1;
                    }
                }
                "--json" => json = true,
                _ => {}
            }
            i += 1;
        }
        HarnessArgs { seed, json }
    }

    /// A seeded RNG for the experiment.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Prints a named series as aligned columns.
pub fn print_series(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    println!(
        "{}",
        header
            .iter()
            .map(|h| format!("{h:>16}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for row in rows {
        println!(
            "{}",
            row.iter()
                .map(|c| format!("{c:>16}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    println!();
}

/// Serialises rows to a JSON document on stdout.
pub fn print_json(title: &str, header: &[&str], rows: &[Vec<String>]) {
    let records: Vec<serde_json::Value> = rows
        .iter()
        .map(|row| {
            let map: serde_json::Map<String, serde_json::Value> = header
                .iter()
                .zip(row.iter())
                .map(|(k, v)| ((*k).to_string(), serde_json::Value::String(v.clone())))
                .collect();
            serde_json::Value::Object(map)
        })
        .collect();
    let doc = serde_json::json!({ "experiment": title, "rows": records });
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("serialisable")
    );
}

/// Dispatches between the plain-text and JSON output paths.
pub fn emit(args: &HarnessArgs, title: &str, header: &[&str], rows: &[Vec<String>]) {
    if args.json {
        print_json(title, header, rows);
    } else {
        print_series(title, header, rows);
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_rounds_to_requested_precision() {
        assert_eq!(fmt(2.4652, 2), "2.47");
        assert_eq!(fmt(0.4821, 4), "0.4821");
    }

    #[test]
    fn default_args_without_cli() {
        let args = HarnessArgs {
            seed: 7,
            json: false,
        };
        let _ = args.rng();
        assert_eq!(args.seed, 7);
    }
}
