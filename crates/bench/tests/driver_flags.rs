//! Regression tests for the `experiments` driver's flag validation.
//!
//! Every case here used to be silently accepted (and silently misbehave):
//! a lone `--sim-profile` was ignored, a lone `--sim-seed` picked a profile
//! on its own, `--warn-over` without a `--compare` baseline only printed a
//! note after running everything, and a `--warn-over` pointed at a missing
//! or malformed baseline degraded to an informational skip — turning the
//! gating flag into a no-op exactly when the baseline was broken. All of
//! them must now fail fast with exit code 2 and a clear message, *before*
//! any experiment runs (which also keeps these spawned-process tests cheap).

use std::process::{Command, Output};

fn run_driver(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("driver binary spawns")
}

fn assert_usage_error(args: &[&str], needle: &str) {
    let output = run_driver(args);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(2),
        "{args:?} must exit 2; stderr: {stderr}"
    );
    assert!(
        stderr.contains(needle),
        "{args:?} stderr must mention '{needle}', got: {stderr}"
    );
    assert!(
        stderr.contains("usage: experiments"),
        "{args:?} stderr must include the usage line, got: {stderr}"
    );
}

#[test]
fn sim_seed_without_sim_profile_is_rejected() {
    assert_usage_error(&["--sim-seed", "7"], "--sim-seed requires --sim-profile");
}

#[test]
fn sim_profile_without_sim_seed_is_rejected() {
    assert_usage_error(
        &["--sim-profile", "adversarial"],
        "--sim-profile is only meaningful together with --sim-seed",
    );
}

#[test]
fn unknown_sim_profile_is_rejected_with_the_known_names() {
    let output = run_driver(&["--sim-seed", "7", "--sim-profile", "no-such-profile"]);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("unknown --sim-profile 'no-such-profile'")
            && stderr.contains("adversarial"),
        "must list the known profiles, got: {stderr}"
    );
}

#[test]
fn warn_over_without_compare_is_rejected() {
    assert_usage_error(&["--warn-over", "2.0"], "--warn-over needs a --compare");
}

#[test]
fn warn_over_with_a_missing_baseline_is_rejected() {
    assert_usage_error(
        &[
            "--compare",
            "this-baseline-does-not-exist.json",
            "--warn-over",
            "2.0",
        ],
        "is unreadable",
    );
}

#[test]
fn warn_over_with_a_malformed_baseline_is_rejected() {
    let dir = std::env::temp_dir().join("driver_flags_malformed");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("baseline.json");
    std::fs::write(&path, "{ not json").expect("write baseline");
    assert_usage_error(
        &["--compare", path.to_str().unwrap(), "--warn-over", "2.0"],
        "malformed JSON",
    );
}

#[test]
fn warn_over_with_an_empty_baseline_is_rejected() {
    let dir = std::env::temp_dir().join("driver_flags_empty");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("baseline.json");
    std::fs::write(&path, r#"{"experiments": []}"#).expect("write baseline");
    assert_usage_error(
        &["--compare", path.to_str().unwrap(), "--warn-over", "2.0"],
        "has no experiment wall-clocks",
    );
}

#[test]
fn warn_over_still_validates_its_factor() {
    assert_usage_error(&["--warn-over", "0.5"], "--warn-over needs a factor >= 1.0");
}

#[test]
fn an_unmatched_only_filter_is_rejected() {
    let output = run_driver(&["--only", "no_such_experiment_name"]);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(2), "stderr: {stderr}");
    assert!(stderr.contains("matches no experiment"), "got: {stderr}");
}

#[test]
fn unknown_flags_are_rejected() {
    assert_usage_error(&["--no-such-flag"], "unknown argument '--no-such-flag'");
}
