//! Criterion benchmarks for the flow-level DCN simulator: routing plus max-min
//! fair allocation over the DP flows of increasingly large jobs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use infinitehbd::dcn::{dp_ring_flows, DcnNetwork, FlowSimulation, NetworkParams, TrafficSpec};
use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(nodes: usize) -> (DcnNetwork, Vec<infinitehbd::dcn::Flow>) {
    let tree = FatTree::new(nodes, 16, 8).unwrap();
    let orchestrator = FatTreeOrchestrator::new(tree.clone()).unwrap();
    let faults = FaultSet::from_nodes(
        IidFaultModel::new(nodes, 0.05).sample_exact(&mut StdRng::seed_from_u64(5)),
    );
    let request = OrchestrationRequest {
        job_nodes: nodes * 85 / 100 / 8 * 8,
        nodes_per_group: 8,
        k: 2,
    };
    let placement = orchestrator.orchestrate(&request, &faults).unwrap();
    let network =
        DcnNetwork::new(tree, NetworkParams::non_blocking(16, 4).oversubscribed(2.0)).unwrap();
    let flows = dp_ring_flows(&placement, &TrafficSpec::paper_dp_allreduce());
    (network, flows)
}

fn bench_flow_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcn_flow_simulation");
    group.sample_size(20);
    for nodes in [256usize, 1024, 4096] {
        let (network, flows) = scenario(nodes);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                let sim = FlowSimulation::run(&network, flows.clone()).unwrap();
                black_box(sim.report(&network).slowdown)
            })
        });
    }
    group.finish();
}

fn bench_routing_only(c: &mut Criterion) {
    let (network, flows) = scenario(1024);
    c.bench_function("dcn_route_1024_nodes", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for flow in &flows {
                hops += network.route(flow).unwrap().hops();
            }
            black_box(hops)
        })
    });
}

criterion_group!(benches, bench_flow_simulation, bench_routing_only);
criterion_main!(benches);
