//! Criterion benchmarks for the placement-query service layer: batched
//! `answer_batch` (one memoized scratch per `(k, nodes_per_group)` key,
//! amortised over the batch) against the unbatched oracle loop that rebuilds
//! its scratch per query (`orchestrate_par` per query, the path every answer
//! is pinned bit-identical to), plus the raw snapshot-store swap/load costs.

use bench::service::{PlacementQuery, PlacementService, SnapshotStore};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const NODES: usize = 2048;

fn store() -> Arc<SnapshotStore> {
    let orch = Arc::new(FatTreeOrchestrator::new(FatTree::new(NODES, 16, 8).unwrap()).unwrap());
    let faults = FaultSet::from_nodes(
        IidFaultModel::new(NODES, 0.05).sample_exact(&mut StdRng::seed_from_u64(21)),
    );
    Arc::new(SnapshotStore::new(orch, faults))
}

/// A placement-only batch over two TP-group geometries, so the batched side
/// amortises exactly two shared scratches per epoch.
fn place_batch(len: usize) -> Vec<PlacementQuery> {
    (0..len)
        .map(|i| {
            let nodes_per_group = [8usize, 16][i % 2];
            PlacementQuery::Place(OrchestrationRequest {
                job_nodes: NODES / 4 / nodes_per_group * nodes_per_group,
                nodes_per_group,
                k: 2,
            })
        })
        .collect()
}

/// Batched service vs the per-query oracle loop, per batch size. Throughput
/// is queries per second, so the amortisation gain reads off directly.
fn bench_placement_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_service");
    group.sample_size(10);
    let store = store();
    let snapshot = store.load();
    for &len in &[8usize, 32, 128] {
        let queries = place_batch(len);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("batched", len), &len, |b, _| {
            let service = PlacementService::new(Arc::clone(&store));
            b.iter(|| black_box(service.answer_batch(&queries, 4).answers.len()))
        });
        group.bench_with_input(BenchmarkId::new("unbatched_oracle", len), &len, |b, _| {
            b.iter(|| {
                let mut answered = 0usize;
                for query in &queries {
                    let PlacementQuery::Place(request) = query else {
                        unreachable!("placement-only batch");
                    };
                    answered += usize::from(
                        snapshot
                            .value
                            .orchestrator()
                            .orchestrate_par(request, snapshot.value.faults(), 1)
                            .is_ok(),
                    );
                }
                black_box(answered)
            })
        });
    }
    group.finish();
}

/// The raw store costs: pinning the current snapshot and publishing a new
/// epoch (full fault-set clone included, as a publisher would pay it).
fn bench_snapshot_store(c: &mut Criterion) {
    let store = store();
    c.bench_function("snapshot_store_load", |b| {
        b.iter(|| black_box(store.load().epoch))
    });
    let faults = store.load().value.faults().clone();
    c.bench_function("snapshot_store_publish", |b| {
        b.iter(|| black_box(store.publish(faults.clone())))
    });
}

criterion_group!(benches, bench_placement_service, bench_snapshot_store);
criterion_main!(benches);
