//! Criterion benchmarks for the HBD-DCN orchestration algorithms (the paper's
//! complexity claim is O(n log n) for the Fat-Tree orchestration), plus the
//! `dcn_free_kernel` group pitting the linear-scan placement kernel against
//! the graph + DFS formulation it replaced (kept in the orchestrator as a
//! `#[cfg(test)]` oracle; re-stated here so the ratio is measured on every
//! bench pass and lands in `bench_results.json`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use infinitehbd::orchestrator::{orchestrate_dcn_free, TpGroup};
use infinitehbd::prelude::*;
use infinitehbd::topology::NodeGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The graph + DFS formulation of Algorithm 2 — a faithful copy of the
/// orchestrator's `#[cfg(test)]` oracle (benches cannot see test-gated items),
/// used as the baseline the linear scan is measured against.
fn dcn_free_graph_oracle(
    order: &[NodeId],
    k: usize,
    faults: &FaultSet,
    nodes_per_group: usize,
) -> PlacementScheme {
    if order.is_empty() {
        return PlacementScheme::new();
    }
    let mut graph = NodeGraph::new(order.len());
    for i in 0..order.len() {
        for hop in 1..=k {
            if i + hop < order.len() {
                graph.add_edge(NodeId(i), NodeId(i + hop));
            }
        }
    }
    let healthy_positions: Vec<NodeId> = order
        .iter()
        .enumerate()
        .filter(|(_, node)| !faults.is_faulty(**node))
        .map(|(i, _)| NodeId(i))
        .collect();
    let healthy_graph = graph
        .induced_subgraph(|pos| pos.index() < order.len() && !faults.is_faulty(order[pos.index()]));
    let components = healthy_graph.connected_components(&healthy_positions);
    let mut scheme = PlacementScheme::new();
    for component in components {
        let nodes: Vec<NodeId> = component.iter().map(|pos| order[pos.index()]).collect();
        for chunk in nodes.chunks(nodes_per_group) {
            if chunk.len() == nodes_per_group {
                scheme.push(TpGroup::new(chunk.to_vec()));
            }
        }
    }
    scheme
}

/// Linear-scan kernel vs graph oracle, across cluster sizes and fault ratios.
/// Throughput is nodes scanned per second, so the two variants are directly
/// comparable per size.
fn bench_dcn_free_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcn_free_kernel");
    group.sample_size(20);
    for &nodes in &[512usize, 2048, 8192] {
        for &fault_pct in &[1usize, 5, 10] {
            let order: Vec<NodeId> = (0..nodes).map(NodeId).collect();
            let faults = FaultSet::from_nodes(
                IidFaultModel::new(nodes, fault_pct as f64 / 100.0)
                    .sample_exact(&mut StdRng::seed_from_u64(11)),
            );
            group.throughput(Throughput::Elements(nodes as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("linear_scan/{fault_pct}pct"), nodes),
                &nodes,
                |b, _| b.iter(|| black_box(orchestrate_dcn_free(&order, 2, &faults, 8).len())),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("graph_oracle/{fault_pct}pct"), nodes),
                &nodes,
                |b, _| b.iter(|| black_box(dcn_free_graph_oracle(&order, 2, &faults, 8).len())),
            );
        }
    }
    group.finish();
}

fn bench_orchestration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fat_tree_orchestration");
    group.sample_size(20);
    for nodes in [512usize, 2048, 8192] {
        let tree = FatTree::new(nodes, 16, 8).unwrap();
        let orch = FatTreeOrchestrator::new(tree).unwrap();
        let faults = FaultSet::from_nodes(
            IidFaultModel::new(nodes, 0.05).sample_exact(&mut StdRng::seed_from_u64(1)),
        );
        let request = OrchestrationRequest {
            job_nodes: nodes * 85 / 100 / 8 * 8,
            nodes_per_group: 8,
            k: 2,
        };
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| black_box(orch.orchestrate(&request, &faults).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_greedy_baseline(c: &mut Criterion) {
    c.bench_function("greedy_placement_2048_nodes", |b| {
        let faults = FaultSet::from_nodes(
            IidFaultModel::new(2048, 0.05).sample_exact(&mut StdRng::seed_from_u64(2)),
        );
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(greedy_placement(2048, &faults, 8, 1740, &mut rng).len())
        })
    });
}

fn bench_cross_tor_accounting(c: &mut Criterion) {
    let tree = FatTree::new(2048, 16, 8).unwrap();
    let orch = FatTreeOrchestrator::new(tree.clone()).unwrap();
    let faults = FaultSet::from_nodes(
        IidFaultModel::new(2048, 0.05).sample_exact(&mut StdRng::seed_from_u64(4)),
    );
    let request = OrchestrationRequest {
        job_nodes: 1740,
        nodes_per_group: 8,
        k: 2,
    };
    let placement = orch.orchestrate(&request, &faults).unwrap();
    c.bench_function("cross_tor_rate_2048_nodes", |b| {
        b.iter(|| {
            black_box(cross_tor_rate(
                &placement,
                &tree,
                &TrafficModel::paper_tp32(),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_dcn_free_kernel,
    bench_orchestration,
    bench_greedy_baseline,
    bench_cross_tor_accounting
);
criterion_main!(benches);
