//! Criterion benchmarks for the HBD-DCN orchestration algorithms (the paper's
//! complexity claim is O(n log n) for the Fat-Tree orchestration).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_orchestration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fat_tree_orchestration");
    group.sample_size(20);
    for nodes in [512usize, 2048, 8192] {
        let tree = FatTree::new(nodes, 16, 8).unwrap();
        let orch = FatTreeOrchestrator::new(tree).unwrap();
        let faults = FaultSet::from_nodes(
            IidFaultModel::new(nodes, 0.05).sample_exact(&mut StdRng::seed_from_u64(1)),
        );
        let request = OrchestrationRequest {
            job_nodes: nodes * 85 / 100 / 8 * 8,
            nodes_per_group: 8,
            k: 2,
        };
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| black_box(orch.orchestrate(&request, &faults).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_greedy_baseline(c: &mut Criterion) {
    c.bench_function("greedy_placement_2048_nodes", |b| {
        let faults = FaultSet::from_nodes(
            IidFaultModel::new(2048, 0.05).sample_exact(&mut StdRng::seed_from_u64(2)),
        );
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(greedy_placement(2048, &faults, 8, 1740, &mut rng).len())
        })
    });
}

fn bench_cross_tor_accounting(c: &mut Criterion) {
    let tree = FatTree::new(2048, 16, 8).unwrap();
    let orch = FatTreeOrchestrator::new(tree.clone()).unwrap();
    let faults = FaultSet::from_nodes(
        IidFaultModel::new(2048, 0.05).sample_exact(&mut StdRng::seed_from_u64(4)),
    );
    let request = OrchestrationRequest {
        job_nodes: 1740,
        nodes_per_group: 8,
        k: 2,
    };
    let placement = orch.orchestrate(&request, &faults).unwrap();
    c.bench_function("cross_tor_rate_2048_nodes", |b| {
        b.iter(|| {
            black_box(cross_tor_rate(
                &placement,
                &tree,
                &TrafficModel::paper_tp32(),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_orchestration,
    bench_greedy_baseline,
    bench_cross_tor_accounting
);
criterion_main!(benches);
