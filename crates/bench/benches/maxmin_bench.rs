//! Criterion benchmarks for the incremental max-min solver on synthetic
//! fat-tree routes: flow counts 64 / 512 / 4096, in an aggregated variant
//! (each node pair carries 8 identical flows — the per-GPU NIC flow regime
//! where route-class aggregation collapses the problem) and an unaggregated
//! one (all-distinct pairs, where the incremental bookkeeping does the work).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use infinitehbd::dcn::{max_min_rates, DcnNetwork, Flow, NetworkParams};
use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds `flows` synthetic cross-ToR routes on a 4096-node Fat-Tree: `pairs`
/// distinct endpoint pairs, each replicated `flows / pairs` times.
fn scenario(flows: usize, pairs: usize) -> (Vec<GBps>, Vec<Vec<usize>>) {
    let nodes = 4096usize;
    let tree = FatTree::new(nodes, 16, 8).expect("valid fat-tree");
    let network = DcnNetwork::new(tree, NetworkParams::non_blocking(16, 4).oversubscribed(4.0))
        .expect("network");
    let mut rng = StdRng::seed_from_u64(7);
    let mut routes = Vec::with_capacity(flows);
    let copies = flows / pairs;
    for _ in 0..pairs {
        let src = NodeId(rng.gen_range(0..nodes));
        let mut dst = NodeId(rng.gen_range(0..nodes));
        while dst == src {
            dst = NodeId(rng.gen_range(0..nodes));
        }
        let route = network
            .route(&Flow::new(src, dst, Bytes::from_gib(1.0)))
            .expect("routable");
        let links: Vec<usize> = route.links.iter().map(|l| l.index()).collect();
        for _ in 0..copies {
            routes.push(links.clone());
        }
    }
    (network.capacities(), routes)
}

fn bench_maxmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin");
    group.sample_size(20);
    for flows in [64usize, 512, 4096] {
        group.throughput(Throughput::Elements(flows as u64));
        // Aggregated: 8 identical flows per pair collapse into one class.
        let (caps, routes) = scenario(flows, flows / 8);
        group.bench_with_input(
            BenchmarkId::new("aggregated", flows),
            &flows,
            |bencher, _| bencher.iter(|| black_box(max_min_rates(&caps, &routes))),
        );
        // Unaggregated: all-distinct pairs, one class per flow.
        let (caps, routes) = scenario(flows, flows);
        group.bench_with_input(
            BenchmarkId::new("unaggregated", flows),
            &flows,
            |bencher, _| bencher.iter(|| black_box(max_min_rates(&caps, &routes))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_maxmin);
criterion_main!(benches);
