//! Criterion benchmarks for the control plane: failover planning and
//! end-to-end fault handling must stay cheap enough to run inside the 60–80 µs
//! hardware switching window's software budget at datacenter scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use infinitehbd::control::{ClusterManager, ControlLatencies, FailoverPlanner};
use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_failover_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("failover_plan");
    group.sample_size(20);
    for nodes in [512usize, 2048, 8192] {
        let ring = KHopRing::new(nodes, 4, 3).unwrap();
        let planner = FailoverPlanner::new(ring).unwrap();
        let faults = FaultSet::from_nodes(
            IidFaultModel::new(nodes, 0.05).sample_exact(&mut StdRng::seed_from_u64(1)),
        );
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| black_box(planner.plan(&faults).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_plan_diff(c: &mut Criterion) {
    let ring = KHopRing::new(2048, 4, 3).unwrap();
    let planner = FailoverPlanner::new(ring).unwrap();
    let before = planner.plan(&FaultSet::new()).unwrap();
    let after = planner
        .plan(&FaultSet::from_nodes([
            NodeId(100),
            NodeId(1000),
            NodeId(1500),
        ]))
        .unwrap();
    c.bench_function("plan_diff_2048_nodes", |b| {
        b.iter(|| black_box(before.diff(&after).len()))
    });
}

fn bench_fault_injection(c: &mut Criterion) {
    c.bench_function("cluster_manager_fault_repair_cycle_720_nodes", |b| {
        let ring = KHopRing::new(720, 4, 2).unwrap();
        let mut manager = ClusterManager::new(ring, ControlLatencies::hardware_only()).unwrap();
        let mut t = 0.0f64;
        b.iter(|| {
            t += 1.0;
            manager.inject_fault(NodeId(360), Seconds(t)).unwrap();
            t += 1.0;
            manager.repair_node(NodeId(360), Seconds(t)).unwrap();
            black_box(manager.usable_gpus(32))
        })
    });
}

criterion_group!(
    benches,
    bench_failover_planning,
    bench_plan_diff,
    bench_fault_injection
);
criterion_main!(benches);
