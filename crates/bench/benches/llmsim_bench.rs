//! Criterion benchmarks for the analytical LLM training simulator: single
//! estimates and full strategy searches.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use infinitehbd::prelude::*;

fn bench_single_estimate(c: &mut Criterion) {
    let sim = TrainingSimulator::paper_defaults();
    let model = ModelConfig::llama31_405b();
    let strategy = ParallelismStrategy::new(32, 8, 32);
    c.bench_function("mfu_estimate_llama405b", |b| {
        b.iter(|| black_box(sim.estimate(&model, &strategy).unwrap().mfu))
    });
}

fn bench_strategy_search(c: &mut Criterion) {
    let search = StrategySearch::paper_defaults();
    let mut group = c.benchmark_group("strategy_search_llama405b");
    group.sample_size(20);
    for gpus in [1024usize, 16384, 131072] {
        group.bench_with_input(BenchmarkId::from_parameter(gpus), &gpus, |b, &gpus| {
            let model = ModelConfig::llama31_405b();
            b.iter(|| black_box(search.optimal(&model, gpus).unwrap().mfu))
        });
    }
    group.finish();
}

fn bench_moe_search(c: &mut Criterion) {
    let search = StrategySearch::paper_defaults();
    let model = ModelConfig::gpt_moe_1t();
    let mut group = c.benchmark_group("strategy_search_gpt_moe");
    group.sample_size(20);
    group.bench_function("8192_gpus", |b| {
        b.iter(|| black_box(search.optimal(&model, 8192).unwrap().mfu))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_estimate,
    bench_strategy_search,
    bench_moe_search
);
criterion_main!(benches);
