//! Criterion benchmarks for the collective-communication algorithms: symbolic
//! correctness simulation and cost evaluation at increasing group sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use infinitehbd::collective::{BinaryExchangeSim, RingAllReduceSim};
use infinitehbd::prelude::*;

fn bench_ring_allreduce_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_allreduce_symbolic");
    for ranks in [8usize, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let mut sim = RingAllReduceSim::new(ranks);
                sim.run();
                black_box(sim.is_complete())
            })
        });
    }
    group.finish();
}

fn bench_binary_exchange_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("binary_exchange_symbolic");
    for ranks in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let mut sim = BinaryExchangeSim::new(ranks);
                sim.run();
                black_box(sim.is_complete())
            })
        });
    }
    group.finish();
}

fn bench_alltoall_costing(c: &mut Criterion) {
    let link = AlphaBeta::hbd_default();
    c.bench_function("alltoall_cost_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for p in [8usize, 64, 512] {
                for algo in AllToAllAlgorithm::ALL {
                    total += algo
                        .cost(p, Bytes(4e6), &link, Seconds(70e-6))
                        .cost
                        .time
                        .value();
                }
            }
            black_box(total)
        })
    });
}

criterion_group!(
    benches,
    bench_ring_allreduce_sim,
    bench_binary_exchange_sim,
    bench_alltoall_costing
);
criterion_main!(benches);
