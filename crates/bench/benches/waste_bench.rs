//! Criterion benchmarks for the cluster fault-resilience pipeline: utilization
//! reports across architectures and full trace replays.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_utilization(c: &mut Criterion) {
    let mut group = c.benchmark_group("utilization_tp32_5pct_faults");
    let faults = FaultSet::from_nodes(
        IidFaultModel::new(720, 0.05).sample_exact(&mut StdRng::seed_from_u64(1)),
    );
    for arch in paper_architectures(720, 4, 32) {
        group.bench_with_input(
            BenchmarkId::from_parameter(arch.name().to_string()),
            &arch,
            |b, arch| b.iter(|| black_box(arch.utilization(&faults, 32).waste_ratio())),
        );
    }
    group.finish();
}

fn bench_trace_replay(c: &mut Criterion) {
    let generator = TraceGenerator::new(GeneratorConfig {
        nodes: 720,
        duration: Seconds::from_days(348.0),
        steady_state_fault_ratio: 0.0117,
        mean_time_to_repair: Seconds::from_hours(12.0),
    })
    .unwrap();
    let trace = generator.generate(&mut StdRng::seed_from_u64(2));
    let ring = KHopRing::new(720, 4, 3).unwrap();
    c.bench_function("waste_over_trace_348_samples", |b| {
        b.iter(|| black_box(waste_over_trace(&ring, &trace, 32, 348).len()))
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let generator = TraceGenerator::new(GeneratorConfig::paper_8gpu_cluster()).unwrap();
    c.bench_function("trace_generation_400_nodes_348_days", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(generator.generate(&mut rng).len())
        })
    });
}

criterion_group!(
    benches,
    bench_utilization,
    bench_trace_replay,
    bench_trace_generation
);
criterion_main!(benches);
