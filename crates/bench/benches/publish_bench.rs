//! Criterion benchmarks for incremental epoch publishing: the delta-publish
//! path against the wholesale publish (the cost of swapping a new fault
//! state in), and patched scratch materialization against cold rebuilds (the
//! cost of the first placement probe after a publish), across cluster sizes
//! and delta widths. The delta legs should scale with the delta; the full /
//! cold legs with the cluster.

use bench::service::{PlacementService, SnapshotDelta, SnapshotStore};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use infinitehbd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const CLUSTERS: [usize; 3] = [1024, 4096, 16384];
const DELTAS: [usize; 3] = [1, 16, 256];

fn store(nodes: usize) -> Arc<SnapshotStore> {
    let orch = Arc::new(FatTreeOrchestrator::new(FatTree::new(nodes, 16, 8).unwrap()).unwrap());
    let faults = FaultSet::from_nodes(
        IidFaultModel::new(nodes, 0.02).sample_exact(&mut StdRng::seed_from_u64(33)),
    );
    Arc::new(SnapshotStore::new(orch, faults))
}

/// An occupy/release delta pair of `width` healthy nodes spread evenly over
/// the cluster, so publishing the pair toggles exactly `width` exclusion
/// bits there and back.
fn delta_pair(nodes: usize, width: usize, base: &FaultSet) -> (SnapshotDelta, SnapshotDelta) {
    let stride = (nodes / width).max(1);
    let mut occupy = SnapshotDelta::new();
    for id in (0..nodes).step_by(stride) {
        if !base.is_faulty(NodeId(id)) {
            occupy.occupied.add(NodeId(id));
        }
        if occupy.occupied.len() == width {
            break;
        }
    }
    // Top up from the front if the stride landed on faulty nodes.
    let mut id = 0;
    while occupy.occupied.len() < width {
        if !base.is_faulty(NodeId(id)) {
            occupy.occupied.add(NodeId(id));
        }
        id += 1;
    }
    let mut release = SnapshotDelta::new();
    release.released = occupy.occupied.clone();
    (occupy, release)
}

/// Raw publish cost: applying an occupy/release delta pair through
/// `publish_delta` versus republishing the whole fault set. Throughput is
/// flipped nodes per second for the delta leg.
fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("publish_epoch");
    group.sample_size(10);
    for &nodes in &CLUSTERS {
        let store = store(nodes);
        let base = store.load().value.faults().clone();
        for &width in &DELTAS {
            let (occupy, release) = delta_pair(nodes, width, &base);
            group.throughput(Throughput::Elements(2 * width as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("publish_delta_{nodes}"), width),
                &width,
                |b, _| {
                    b.iter(|| {
                        black_box(store.publish_delta(&occupy));
                        black_box(store.publish_delta(&release))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("publish_full_{nodes}"), width),
                &width,
                |b, _| {
                    b.iter(|| {
                        let faults = store.load().value.faults().clone();
                        black_box(store.publish(faults))
                    })
                },
            );
        }
    }
    group.finish();
}

/// First-probe-after-publish cost: a long-lived service that patches its
/// previous epoch's scratch forward versus a fresh service that must build
/// cold. Each iteration publishes the occupy delta, probes, publishes the
/// release delta and probes again.
fn bench_scratch_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("scratch_materialization");
    group.sample_size(10);
    for &nodes in &CLUSTERS {
        let store = store(nodes);
        let base = store.load().value.faults().clone();
        let probe = OrchestrationRequest {
            job_nodes: 64,
            nodes_per_group: 16,
            k: 2,
        };
        for &width in &DELTAS {
            let (occupy, release) = delta_pair(nodes, width, &base);
            group.throughput(Throughput::Elements(2));
            group.bench_with_input(
                BenchmarkId::new(format!("patched_{nodes}"), width),
                &width,
                |b, _| {
                    let service = PlacementService::new(Arc::clone(&store));
                    let _ = service.place(&probe, 1);
                    b.iter(|| {
                        store.publish_delta(&occupy);
                        black_box(service.place(&probe, 1).is_ok());
                        store.publish_delta(&release);
                        black_box(service.place(&probe, 1).is_ok())
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("cold_{nodes}"), width),
                &width,
                |b, _| {
                    b.iter(|| {
                        store.publish_delta(&occupy);
                        let fresh = PlacementService::new(Arc::clone(&store));
                        black_box(fresh.place(&probe, 1).is_ok());
                        store.publish_delta(&release);
                        let fresh = PlacementService::new(Arc::clone(&store));
                        black_box(fresh.place(&probe, 1).is_ok())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_publish, bench_scratch_materialization);
criterion_main!(benches);
