//! Property-based invariant tests for the ring-family baselines beyond the
//! K-Hop Ring: the static **SiP-Ring** and the ±2^i **Binary-Hop Ring**.
//! Whatever the cluster size, node size, deployment parameter and fault
//! pattern, the structural invariants (node degree, reachability, GPU
//! accounting) must hold.

use hbd_types::NodeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topology::{BinaryHopRing, FaultSet, HbdArchitecture, SipRing};

/// A random fault set over `nodes` nodes with roughly `ratio` density,
/// deterministic in `seed`.
fn random_faults(nodes: usize, ratio: f64, seed: u64) -> FaultSet {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    FaultSet::from_nodes((0..nodes).filter(|_| rng.gen::<f64>() < ratio).map(NodeId))
}

proptest! {
    /// SiP-Ring GPU accounting: `usable + faulty + wasted == total` for any
    /// cluster size, ring size, TP size and fault pattern, usable capacity is
    /// a whole number of TP groups, and a TP larger than the deployed ring is
    /// never usable.
    #[test]
    fn sip_ring_accounting_is_exact(
        nodes in 1usize..300,
        gpus_per_node in 1usize..9,
        ring_nodes in 1usize..12,
        tp_exp in 0u32..6,
        ratio in 0.0f64..0.5,
        seed in 0u64..10_000,
    ) {
        let ring_gpus = ring_nodes * gpus_per_node;
        let hbd = SipRing::new(nodes, gpus_per_node, ring_gpus).unwrap();
        prop_assert_eq!(hbd.nodes(), nodes);
        prop_assert_eq!(hbd.gpus_per_node(), gpus_per_node);
        prop_assert_eq!(hbd.nodes_per_ring(), ring_nodes);
        // Whole rings only: the ring partition never over-counts the cluster.
        prop_assert!(hbd.rings() * hbd.nodes_per_ring() <= nodes);

        let faults = random_faults(nodes, ratio, seed);
        let tp = gpus_per_node << tp_exp;
        let report = hbd.utilization(&faults, tp);
        prop_assert_eq!(report.total_gpus, nodes * gpus_per_node);
        prop_assert_eq!(
            report.usable_gpus + report.faulty_gpus + report.wasted_healthy_gpus,
            report.total_gpus
        );
        prop_assert_eq!(report.usable_gpus % tp, 0);
        if tp > ring_gpus {
            prop_assert_eq!(report.usable_gpus, 0);
        }
    }

    /// SiP-Ring fault explosion: every faulty node takes its whole ring out of
    /// service — the usable capacity is exactly the intact-ring count times
    /// the per-ring TP capacity, and faults never increase capacity.
    #[test]
    fn sip_ring_loses_whole_rings(
        rings in 1usize..40,
        ring_nodes in 1usize..10,
        ratio in 0.0f64..0.4,
        seed in 0u64..10_000,
    ) {
        let gpus_per_node = 4usize;
        let nodes = rings * ring_nodes;
        let ring_gpus = ring_nodes * gpus_per_node;
        let hbd = SipRing::new(nodes, gpus_per_node, ring_gpus).unwrap();
        let faults = random_faults(nodes, ratio, seed);
        let intact = (0..hbd.rings()).filter(|&r| hbd.ring_intact(r, &faults)).count();
        let report = hbd.utilization(&faults, ring_gpus);
        prop_assert_eq!(report.usable_gpus, intact * ring_gpus);
        let healthy = hbd.utilization(&FaultSet::new(), ring_gpus);
        prop_assert!(report.usable_gpus <= healthy.usable_gpus);
    }

    /// Binary-Hop node degree: every node reaches `±2^j` for `j < K`, so its
    /// degree is `2K` minus the collisions that occur when a hop distance and
    /// its ring complement coincide (`2d ≡ 0 mod n`); degree is symmetric
    /// (regular graph) and never exceeds `2K`.
    #[test]
    fn binary_hop_degree_is_regular_and_bounded(
        nodes in 2usize..400,
        gpus_per_node in 1usize..9,
        k in 1usize..8,
    ) {
        prop_assume!(k <= gpus_per_node);
        prop_assume!((1usize << (k - 1)) < nodes);
        let ring = BinaryHopRing::new(nodes, gpus_per_node, k).unwrap();
        let graph = ring.graph();
        // The wiring is vertex-transitive: every node has the same degree,
        // namely the number of distinct non-zero residues among `±2^j mod n`
        // (hop distances can collide with each other's complements on small
        // rings, e.g. +4 ≡ -2 mod 6).
        let mut residues = std::collections::BTreeSet::new();
        for &d in &ring.hop_distances() {
            residues.insert(d % nodes);
            residues.insert((nodes - d % nodes) % nodes);
        }
        residues.remove(&0);
        let expected = residues.len();
        for n in 0..nodes {
            let degree = graph.degree(NodeId(n));
            prop_assert!(degree <= 2 * k, "node {n} degree {degree} > 2K");
            prop_assert_eq!(degree, expected, "node {} degree", n);
        }
    }

    /// Binary-Hop reachability: the ±1 hop alone makes the healthy ring
    /// connected, so with no faults every node reaches every other; and every
    /// Binary Exchange partner offset `2^j (j < K)` is a direct hop.
    #[test]
    fn binary_hop_is_connected_and_partners_are_direct(
        nodes in 2usize..300,
        k in 1usize..5,
    ) {
        prop_assume!((1usize << (k - 1)) < nodes);
        let ring = BinaryHopRing::new(nodes, 8, k).unwrap();
        let graph = ring.graph();
        // BFS from node 0 over the undirected hop graph.
        let mut seen = vec![false; nodes];
        let mut frontier = vec![NodeId(0)];
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(node) = frontier.pop() {
            for peer in graph.neighbours(node) {
                if !seen[peer.index()] {
                    seen[peer.index()] = true;
                    reached += 1;
                    frontier.push(peer);
                }
            }
        }
        prop_assert_eq!(reached, nodes, "hop graph must be connected");

        // Every power-of-two offset below 2^K is a wiring hop distance.
        let distances = ring.hop_distances();
        for j in 0..k {
            prop_assert!(distances.contains(&(1usize << j)));
        }
        prop_assert_eq!(ring.max_ep_group_nodes(), 1usize << k);
        prop_assert_eq!(ring.tp_ep_product_limit(), 8 * (1usize << k));
    }

    /// Binary Exchange feasibility tracks group health: an aligned healthy
    /// power-of-two group of at most `2^K` nodes can always run, and any fault
    /// inside the group blocks it.
    #[test]
    fn binary_hop_binary_exchange_feasibility(
        k in 1usize..5,
        group_exp in 1usize..5,
        base_slot in 0usize..8,
        faulty_offset in 0usize..16,
    ) {
        let nodes = 256usize;
        let ring = BinaryHopRing::new(nodes, 8, k).unwrap();
        let group = 1usize << group_exp;
        prop_assume!(group <= ring.max_ep_group_nodes());
        let base = NodeId(base_slot * group);
        prop_assert!(ring.can_run_binary_exchange(base, group, &FaultSet::new()));
        // A fault inside the group blocks it; one outside does not.
        let inside = NodeId(base.index() + faulty_offset % group);
        let faults = FaultSet::from_nodes([inside]);
        prop_assert!(!ring.can_run_binary_exchange(base, group, &faults));
        let outside = NodeId((base.index() + group) % nodes);
        let faults = FaultSet::from_nodes([outside]);
        prop_assert!(ring.can_run_binary_exchange(base, group, &faults));
    }
}
