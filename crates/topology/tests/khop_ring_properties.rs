//! Property-based invariant tests for the K-Hop Ring, complementing the
//! example-based integration tests: whatever the cluster size, K, fault
//! pattern and TP size, the structural invariants of §4.2 must hold.

use hbd_types::NodeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topology::{FaultSet, HbdArchitecture, KHopRing};

/// A random fault set over `nodes` nodes with roughly `ratio` density,
/// deterministic in `seed`.
fn random_faults(nodes: usize, ratio: f64, seed: u64) -> FaultSet {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    FaultSet::from_nodes((0..nodes).filter(|_| rng.gen::<f64>() < ratio).map(NodeId))
}

#[test]
fn rejects_invalid_k() {
    // K = 0 and K beyond the per-node bundle budget must be rejected, for the
    // ring and the line variant alike.
    assert!(KHopRing::new(64, 4, 0).is_err());
    assert!(KHopRing::new(64, 4, 5).is_err());
    assert!(KHopRing::line(64, 4, 0).is_err());
    assert!(KHopRing::line(64, 8, 9).is_err());
    // Degenerate clusters are rejected too.
    assert!(KHopRing::new(0, 4, 2).is_err());
    assert!(KHopRing::new(64, 0, 2).is_err());
    // The paper's configurations are valid.
    assert!(KHopRing::new(720, 4, 2).is_ok());
    assert!(KHopRing::new(720, 4, 3).is_ok());
}

proptest! {
    /// Node and GPU counts are consistent between the constructor arguments,
    /// the architecture trait and the utilization accounting identity
    /// `usable + faulty + wasted == total`.
    #[test]
    fn gpu_accounting_is_exact(
        nodes in 1usize..300,
        gpus_per_node in 1usize..9,
        k in 1usize..4,
        ratio in 0.0f64..0.5,
        tp_exp in 0u32..6,
        seed in 0u64..10_000,
    ) {
        prop_assume!(k <= gpus_per_node);
        let ring = KHopRing::new(nodes, gpus_per_node, k).unwrap();
        prop_assert_eq!(ring.nodes(), nodes);
        prop_assert_eq!(ring.gpus_per_node(), gpus_per_node);
        prop_assert_eq!(ring.total_gpus(), nodes * gpus_per_node);

        let faults = random_faults(nodes, ratio, seed);
        let tp = gpus_per_node << tp_exp;
        let report = ring.utilization(&faults, tp);
        prop_assert_eq!(report.total_gpus, nodes * gpus_per_node);
        prop_assert_eq!(
            report.usable_gpus + report.faulty_gpus + report.wasted_healthy_gpus,
            report.total_gpus
        );
        prop_assert_eq!(report.usable_gpus % tp, 0);
        prop_assert!(report.waste_ratio() >= 0.0 && report.waste_ratio() <= 1.0);
    }

    /// The healthy segments partition the healthy nodes: every healthy node
    /// appears in exactly one segment, no faulty node appears anywhere, and
    /// consecutive nodes inside a segment are at most K apart (the backup-link
    /// bypass reach), while distinct segments are separated by more than K.
    #[test]
    fn segments_partition_healthy_nodes(
        nodes in 2usize..300,
        k in 1usize..4,
        ratio in 0.0f64..0.6,
        seed in 0u64..10_000,
    ) {
        let ring = KHopRing::new(nodes, 4, k).unwrap();
        let faults = random_faults(nodes, ratio, seed);
        let segments = ring.healthy_segments(&faults);

        let mut seen = std::collections::BTreeSet::new();
        for segment in &segments {
            prop_assert!(!segment.is_empty());
            for &node in &segment.nodes {
                prop_assert!(!faults.is_faulty(node), "faulty node {node} in segment");
                prop_assert!(seen.insert(node), "node {node} in two segments");
            }
            for pair in segment.nodes.windows(2) {
                let gap = (pair[1].index() + nodes - pair[0].index()) % nodes;
                prop_assert!(
                    gap >= 1 && gap <= k,
                    "segment jump {} -> {} exceeds K = {k}",
                    pair[0],
                    pair[1]
                );
            }
        }
        let healthy = nodes - faults.len();
        prop_assert_eq!(seen.len(), healthy, "segments must cover every healthy node");
    }

    /// Ring symmetry: rotating the fault pattern by any offset only rotates
    /// the segments, so the multiset of segment lengths (and hence the usable
    /// GPU count) is invariant under rotation.
    #[test]
    fn closed_ring_is_rotation_invariant(
        nodes in 2usize..200,
        k in 1usize..4,
        ratio in 0.0f64..0.5,
        seed in 0u64..10_000,
        rotation in 1usize..199,
    ) {
        let ring = KHopRing::new(nodes, 4, k).unwrap();
        let faults = random_faults(nodes, ratio, seed);
        let rotated = FaultSet::from_nodes(
            faults.iter().map(|n| NodeId((n.index() + rotation) % nodes)),
        );

        let mut lens: Vec<usize> = ring.healthy_segments(&faults).iter().map(|s| s.len()).collect();
        let mut rotated_lens: Vec<usize> =
            ring.healthy_segments(&rotated).iter().map(|s| s.len()).collect();
        lens.sort_unstable();
        rotated_lens.sort_unstable();
        prop_assert_eq!(lens, rotated_lens);
        prop_assert_eq!(
            ring.usable_gpus(&faults, 8),
            ring.usable_gpus(&rotated, 8)
        );
    }

    /// The degree structure of the connectivity graph: in a closed ring with
    /// more than 2K nodes every node sees exactly 2K distinct neighbours, and
    /// the hop-H links exist in both directions (symmetry).
    #[test]
    fn closed_ring_degree_is_2k(
        nodes in 8usize..300,
        k in 1usize..4,
    ) {
        prop_assume!(nodes > 2 * k);
        let ring = KHopRing::new(nodes, 4, k).unwrap();
        let graph = ring.graph();
        for n in 0..nodes {
            prop_assert_eq!(graph.degree(NodeId(n)), 2 * k, "node {n}");
            for hop in 1..=k {
                let fwd = NodeId((n + hop) % nodes);
                prop_assert!(graph.has_edge(NodeId(n), fwd));
                prop_assert!(graph.has_edge(fwd, NodeId(n)));
            }
        }
    }

    /// The line variant never wraps: no segment marks `wraps` and the end
    /// nodes have reduced degree.
    #[test]
    fn line_variant_never_wraps(
        nodes in 3usize..200,
        k in 1usize..4,
        ratio in 0.0f64..0.5,
        seed in 0u64..10_000,
    ) {
        prop_assume!(nodes > 2 * k);
        let line = KHopRing::line(nodes, 4, k).unwrap();
        prop_assert!(!line.is_closed());
        prop_assert_eq!(line.graph().degree(NodeId(0)), k);
        for segment in line.healthy_segments(&random_faults(nodes, ratio, seed)) {
            prop_assert!(!segment.wraps);
        }
    }

    /// The counting fast path of `usable_gpus` (the run scan that never
    /// materialises a segment) agrees exactly with the segment-materialising
    /// definition, on the closed ring and on the line variant alike.
    #[test]
    fn usable_gpus_fast_path_matches_segment_definition(
        nodes in 1usize..300,
        k in 1usize..4,
        ratio in 0.0f64..0.7,
        seed in 0u64..10_000,
        tp_exp in 0u32..6,
    ) {
        let faults = random_faults(nodes, ratio, seed);
        let tp = 4usize << tp_exp;
        for ring in [
            KHopRing::new(nodes, 4, k).unwrap(),
            KHopRing::line(nodes, 4, k).unwrap(),
        ] {
            let from_segments: usize = ring
                .healthy_segments(&faults)
                .iter()
                .map(|seg| seg.tp_groups(4, tp) * tp)
                .sum();
            prop_assert_eq!(ring.usable_gpus(&faults, tp), from_segments);
        }
    }

    /// Monotonicity: adding one more faulty node can never increase the
    /// number of usable GPUs.
    #[test]
    fn more_faults_never_increase_usable_gpus(
        nodes in 2usize..200,
        k in 1usize..4,
        ratio in 0.0f64..0.4,
        seed in 0u64..10_000,
        extra in 0usize..199,
    ) {
        let ring = KHopRing::new(nodes, 4, k).unwrap();
        let faults = random_faults(nodes, ratio, seed);
        let mut more = FaultSet::from_nodes(faults.iter());
        more.add(NodeId(extra % nodes));
        prop_assert!(ring.usable_gpus(&more, 8) <= ring.usable_gpus(&faults, 8));
    }
}
