//! The compute node: `R` GPUs and `R` OCSTrx bundles on a UBB 2.0 baseboard.
//!
//! Fig 4 of the paper: each bundle is shared by a *pair* of GPUs — one GPU
//! drives the upper-half SerDes of the bundle's modules, the other the lower
//! half. A node with `R` GPUs therefore supports up to `R` bundles and exposes
//! up to `2R` external paths (each bundle has a primary and a backup fiber),
//! which is what allows the K-Hop Ring with `K ≤ R`.

use hbd_types::{GpuId, HbdError, NodeId, Result};
use ocstrx::{Bundle, BundleState};
use serde::{Deserialize, Serialize};

/// A compute node of the InfiniteHBD cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    gpus_per_node: usize,
    bundles: Vec<Bundle>,
    healthy: bool,
}

impl Node {
    /// Creates a node with `gpus_per_node` GPUs and `bundle_count` OCSTrx
    /// bundles of `modules_per_bundle` transceivers each.
    ///
    /// The paper's K-Hop Ring requires `bundle_count == K`; the remaining GPU
    /// pairs are connected with DAC links (the cost-reduced option of §4.2), so
    /// `bundle_count` may be less than `gpus_per_node`.
    pub fn new(
        id: NodeId,
        gpus_per_node: usize,
        bundle_count: usize,
        modules_per_bundle: usize,
    ) -> Result<Self> {
        if gpus_per_node == 0 || !gpus_per_node.is_multiple_of(2) {
            return Err(HbdError::invalid_config(format!(
                "a node needs a positive, even GPU count (got {gpus_per_node})"
            )));
        }
        if bundle_count > gpus_per_node {
            return Err(HbdError::invalid_config(format!(
                "bundle count {bundle_count} exceeds GPU count {gpus_per_node}"
            )));
        }
        Ok(Node {
            id,
            gpus_per_node,
            bundles: (0..bundle_count)
                .map(|_| Bundle::new(modules_per_bundle))
                .collect::<Result<Vec<_>>>()?,
            healthy: true,
        })
    }

    /// Node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// GPUs hosted on this node.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> + '_ {
        self.id.gpus(self.gpus_per_node)
    }

    /// Number of GPUs on the node.
    pub fn gpu_count(&self) -> usize {
        self.gpus_per_node
    }

    /// Number of OCSTrx bundles installed.
    pub fn bundle_count(&self) -> usize {
        self.bundles.len()
    }

    /// Whether this node is currently healthy.
    pub fn is_healthy(&self) -> bool {
        self.healthy
    }

    /// Marks the node faulty (all bundles stop carrying traffic from the
    /// perspective of its neighbours).
    pub fn set_faulty(&mut self) {
        self.healthy = false;
    }

    /// Marks the node repaired.
    pub fn set_repaired(&mut self) {
        self.healthy = true;
    }

    /// Immutable access to a bundle.
    pub fn bundle(&self, index: usize) -> Result<&Bundle> {
        self.bundles
            .get(index)
            .ok_or_else(|| HbdError::unknown_entity(format!("bundle {index} on node {}", self.id)))
    }

    /// Mutable access to a bundle.
    pub fn bundle_mut(&mut self, index: usize) -> Result<&mut Bundle> {
        let id = self.id;
        self.bundles
            .get_mut(index)
            .ok_or_else(|| HbdError::unknown_entity(format!("bundle {index} on node {id}")))
    }

    /// Number of bundles currently closed into intra-node loopback (ring
    /// endpoints). During ring construction only two bundles per node carry
    /// inter-node traffic; the rest are loopback or idle (§4.2).
    pub fn loopback_bundles(&self) -> usize {
        self.bundles
            .iter()
            .filter(|b| b.state() == BundleState::Loopback)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_creation_and_gpu_enumeration() {
        let node = Node::new(NodeId(2), 4, 2, 1).unwrap();
        assert_eq!(node.id(), NodeId(2));
        assert_eq!(node.gpu_count(), 4);
        assert_eq!(node.bundle_count(), 2);
        let gpus: Vec<GpuId> = node.gpus().collect();
        assert_eq!(gpus, vec![GpuId(8), GpuId(9), GpuId(10), GpuId(11)]);
    }

    #[test]
    fn invalid_nodes_are_rejected() {
        assert!(Node::new(NodeId(0), 0, 0, 1).is_err());
        assert!(Node::new(NodeId(0), 3, 1, 1).is_err());
        assert!(Node::new(NodeId(0), 4, 5, 1).is_err());
    }

    #[test]
    fn health_toggling() {
        let mut node = Node::new(NodeId(0), 4, 2, 1).unwrap();
        assert!(node.is_healthy());
        node.set_faulty();
        assert!(!node.is_healthy());
        node.set_repaired();
        assert!(node.is_healthy());
    }

    #[test]
    fn bundle_access_and_loopback_count() {
        let mut node = Node::new(NodeId(0), 4, 3, 1).unwrap();
        assert!(node.bundle(0).is_ok());
        assert!(node.bundle(3).is_err());
        assert_eq!(node.loopback_bundles(), 0);
        node.bundle_mut(1).unwrap().activate_loopback().unwrap();
        assert_eq!(node.loopback_bundles(), 1);
    }
}
