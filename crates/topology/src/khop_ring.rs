//! The reconfigurable **K-Hop Ring** — InfiniteHBD's inter-node topology
//! (§4.2).
//!
//! Nodes are laid out on a line (or closed into a ring) following their
//! physical deployment order. Every node owns `K` OCSTrx bundles, giving it a
//! degree of `2K`: links to the nodes at distance ±1, ±2, ..., ±K. For a
//! Ring-AllReduce only two of those links are active; the others are *backup*
//! links. When a node fails, its neighbours reconfigure onto backup links that
//! skip over it, so up to `K − 1` *consecutive* faulty nodes can be bypassed
//! without losing connectivity — this is what confines the fault explosion
//! radius to the node level.
//!
//! Intra-node, the cross-lane loopback of the two boundary bundles closes a
//! GPU-level ring over any consecutive run of healthy nodes, so TP groups of
//! any size that fits in a healthy *segment* can be formed at any position —
//! which is why fragmentation is near zero.

use crate::arch::{ArchitectureKind, FaultSet, HbdArchitecture, UtilizationReport};
use crate::graph::NodeGraph;
use hbd_types::{HbdError, NodeId, Result};
use serde::{Deserialize, Serialize};

/// A maximal run of healthy nodes that remains mutually connected after
/// bypassing faulty nodes with backup links.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingSegment {
    /// The healthy nodes of the segment, in deployment order.
    pub nodes: Vec<NodeId>,
    /// Whether the segment wraps around the end of the deployment order (only
    /// possible when the topology is closed into a ring).
    pub wraps: bool,
}

impl RingSegment {
    /// Number of healthy nodes in the segment.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of GPUs available in the segment.
    pub fn gpus(&self, gpus_per_node: usize) -> usize {
        self.len() * gpus_per_node
    }

    /// Number of complete TP groups of `tp_size` GPUs the segment can host.
    pub fn tp_groups(&self, gpus_per_node: usize, tp_size: usize) -> usize {
        assert!(tp_size > 0, "TP size must be positive");
        self.gpus(gpus_per_node) / tp_size
    }
}

/// The K-Hop Ring topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KHopRing {
    name: String,
    nodes: usize,
    gpus_per_node: usize,
    k: usize,
    /// `true` when the last node is wired back to the first (§4.3 deployment:
    /// "N1 may link to the last node, forming a ring"); `false` for the K-Hop
    /// line variant.
    closed: bool,
}

impl KHopRing {
    /// Creates a closed K-Hop Ring over `nodes` nodes of `gpus_per_node` GPUs.
    ///
    /// `k` is the OCSTrx bundle count per node (the paper evaluates `K = 2` and
    /// `K = 3`); it must be at least 1 and no larger than the GPU count per
    /// node (each bundle is driven by a GPU pair, and the node exposes at most
    /// `R` bundles).
    pub fn new(nodes: usize, gpus_per_node: usize, k: usize) -> Result<Self> {
        Self::with_closure(nodes, gpus_per_node, k, true)
    }

    /// Creates the K-Hop *line* variant (no wraparound), trading a little fault
    /// tolerance at the two ends for simpler deployment.
    pub fn line(nodes: usize, gpus_per_node: usize, k: usize) -> Result<Self> {
        Self::with_closure(nodes, gpus_per_node, k, false)
    }

    fn with_closure(nodes: usize, gpus_per_node: usize, k: usize, closed: bool) -> Result<Self> {
        if nodes == 0 {
            return Err(HbdError::invalid_config(
                "K-Hop Ring needs at least one node",
            ));
        }
        if gpus_per_node == 0 {
            return Err(HbdError::invalid_config("nodes need at least one GPU"));
        }
        if k == 0 {
            return Err(HbdError::invalid_config("K must be at least 1"));
        }
        if k > gpus_per_node {
            return Err(HbdError::invalid_config(format!(
                "K = {k} exceeds the {gpus_per_node} OCSTrx bundles a {gpus_per_node}-GPU node can host"
            )));
        }
        Ok(KHopRing {
            name: format!("InfiniteHBD(K={k})"),
            nodes,
            gpus_per_node,
            k,
            closed,
        })
    }

    /// The hop count `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether the topology is closed into a ring.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Builds the connectivity graph: node `n` has edges to `n ± 1..=K`
    /// (modulo the node count when the ring is closed).
    pub fn graph(&self) -> NodeGraph {
        let mut graph = NodeGraph::new(self.nodes);
        for n in 0..self.nodes {
            for hop in 1..=self.k {
                if self.closed {
                    let other = (n + hop) % self.nodes;
                    graph.add_edge(NodeId(n), NodeId(other));
                } else if n + hop < self.nodes {
                    graph.add_edge(NodeId(n), NodeId(n + hop));
                }
            }
        }
        graph
    }

    /// The healthy *segments* of the topology under the given fault pattern.
    ///
    /// Two healthy nodes stay connected as long as fewer than `K` consecutive
    /// faulty nodes separate them (the backup link at distance `K` bypasses up
    /// to `K − 1` failures). Each returned segment is a maximal run of healthy
    /// nodes satisfying that property; when the ring is closed, a run may wrap
    /// around the deployment boundary.
    pub fn healthy_segments(&self, faults: &FaultSet) -> Vec<RingSegment> {
        // The linear run scan of `runscan`: a segment breaks exactly where K
        // or more consecutive faulty nodes sever the line.
        struct Collector {
            segments: Vec<RingSegment>,
            current: Vec<NodeId>,
        }
        impl crate::runscan::RunSink<usize> for Collector {
            fn healthy(&mut self, pos: usize) {
                self.current.push(NodeId(pos));
            }
            fn cut(&mut self) {
                if !self.current.is_empty() {
                    self.segments.push(RingSegment {
                        nodes: std::mem::take(&mut self.current),
                        wraps: false,
                    });
                }
            }
        }
        let mut sink = Collector {
            segments: Vec::new(),
            current: Vec::new(),
        };
        crate::runscan::scan_khop_runs(
            0..self.nodes,
            self.k,
            |&n| faults.is_faulty(NodeId(n)),
            &mut sink,
        );
        let Collector {
            mut segments,
            current,
        } = sink;
        if !current.is_empty() {
            segments.push(RingSegment {
                nodes: current,
                wraps: false,
            });
        }

        // Wraparound merge: if the ring is closed and the gap from the last
        // healthy node over the boundary to the first healthy node is <= K,
        // the first and last segments are really one segment.
        if self.closed && segments.len() > 1 {
            let first = segments.first().expect("len > 1").nodes[0].index();
            let last = segments
                .last()
                .expect("len > 1")
                .nodes
                .last()
                .expect("segments are non-empty")
                .index();
            let boundary_gap = self.nodes - last + first;
            if boundary_gap <= self.k {
                let tail = segments.pop().expect("len > 1");
                let head = segments.remove(0);
                let mut nodes = tail.nodes;
                nodes.extend(head.nodes);
                segments.push(RingSegment { nodes, wraps: true });
            }
        }
        segments
    }

    /// Total number of usable GPUs under `faults` for TP groups of `tp_size`.
    ///
    /// Fast path of [`healthy_segments`](Self::healthy_segments): only the
    /// per-segment healthy-node counts matter for capacity, so the run scan
    /// counts them without materialising any segment.
    pub fn usable_gpus(&self, faults: &FaultSet, tp_size: usize) -> usize {
        assert!(tp_size > 0, "TP size must be positive");
        let mut counter = crate::runscan::RunCounter::new();
        crate::runscan::scan_khop_runs(
            0..self.nodes,
            self.k,
            |&n| faults.is_faulty(NodeId(n)),
            &mut counter,
        );
        counter.finish();
        let mut runs = counter.runs;
        if self.closed && runs.len() > 1 {
            let first = counter.first_healthy.expect("runs are non-empty");
            let boundary_gap = self.nodes - counter.last_healthy + first;
            if boundary_gap <= self.k {
                // The first and last runs merge over the deployment boundary.
                let tail = runs.pop().expect("len > 1");
                runs[0] += tail;
            }
        }
        runs.iter()
            .map(|&healthy| (healthy * self.gpus_per_node / tp_size) * tp_size)
            .sum()
    }
}

impl HbdArchitecture for KHopRing {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ArchitectureKind {
        ArchitectureKind::TransceiverCentric
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    fn utilization(&self, faults: &FaultSet, tp_size: usize) -> UtilizationReport {
        let faulty_nodes = faults.count_in_range(0, self.nodes);
        let faulty_gpus = faulty_nodes * self.gpus_per_node;
        let usable = self.usable_gpus(faults, tp_size);
        UtilizationReport::new(self.total_gpus(), faulty_gpus, usable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faults(nodes: &[usize]) -> FaultSet {
        FaultSet::from_nodes(nodes.iter().map(|&n| NodeId(n)))
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(KHopRing::new(0, 4, 2).is_err());
        assert!(KHopRing::new(10, 0, 2).is_err());
        assert!(KHopRing::new(10, 4, 0).is_err());
        assert!(KHopRing::new(10, 4, 5).is_err());
        assert!(KHopRing::new(10, 4, 4).is_ok());
        assert_eq!(KHopRing::new(10, 4, 2).unwrap().name(), "InfiniteHBD(K=2)");
    }

    #[test]
    fn graph_degree_is_2k_for_closed_ring() {
        let ring = KHopRing::new(20, 4, 3).unwrap();
        let graph = ring.graph();
        for n in 0..20 {
            assert_eq!(graph.degree(NodeId(n)), 6, "node {n}");
        }
        assert_eq!(graph.edge_count(), 20 * 3);
    }

    #[test]
    fn line_variant_has_lower_degree_at_the_ends() {
        let line = KHopRing::line(20, 4, 2).unwrap();
        let graph = line.graph();
        assert_eq!(graph.degree(NodeId(0)), 2);
        assert_eq!(graph.degree(NodeId(1)), 3);
        assert_eq!(graph.degree(NodeId(10)), 4);
        assert!(!line.is_closed());
    }

    #[test]
    fn healthy_cluster_is_one_segment() {
        let ring = KHopRing::new(16, 4, 2).unwrap();
        let segments = ring.healthy_segments(&FaultSet::new());
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].len(), 16);
        assert_eq!(segments[0].gpus(4), 64);
    }

    #[test]
    fn single_fault_is_bypassed_without_splitting() {
        let ring = KHopRing::new(16, 4, 2).unwrap();
        let segments = ring.healthy_segments(&faults(&[5]));
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].len(), 15);
    }

    #[test]
    fn k_consecutive_faults_split_a_k_hop_ring() {
        // K = 2: one or two... exactly K faulty nodes in a row cannot be
        // bypassed (the farthest backup link only reaches distance K, which
        // lands on the last faulty node... distance K reaches over K-1 faults).
        // Use the line variant so the break cannot be papered over by the
        // wraparound: the link from node 4 reaches node 6 at distance 2, but
        // both 5 and 6 are faulty, so node 4's farthest reach is faulty ->
        // split into two segments.
        let line = KHopRing::line(16, 4, 2).unwrap();
        let segments = line.healthy_segments(&faults(&[5, 6]));
        assert_eq!(segments.len(), 2);
        // With K = 3 the same two faults are bypassed.
        let line3 = KHopRing::line(16, 4, 3).unwrap();
        let segments3 = line3.healthy_segments(&faults(&[5, 6]));
        assert_eq!(segments3.len(), 1);
        // On the closed ring the two runs re-join across the deployment
        // boundary, so the healthy nodes form one long (wrapping) line.
        let ring = KHopRing::new(16, 4, 2).unwrap();
        let segments = ring.healthy_segments(&faults(&[5, 6]));
        assert_eq!(segments.len(), 1);
        assert!(segments[0].wraps);
        assert_eq!(segments[0].len(), 14);
    }

    #[test]
    fn wraparound_merges_boundary_segments() {
        let ring = KHopRing::new(16, 4, 2).unwrap();
        // Faults in the middle split the ring in two, but the two halves stay
        // connected across the deployment boundary because the ring is closed.
        let segments = ring.healthy_segments(&faults(&[7, 8]));
        assert_eq!(segments.len(), 2 - 1);
        assert_eq!(segments[0].len(), 14);
        assert!(segments[0].wraps);

        // The line variant cannot wrap.
        let line = KHopRing::line(16, 4, 2).unwrap();
        let segments = line.healthy_segments(&faults(&[7, 8]));
        assert_eq!(segments.len(), 2);
        assert!(segments.iter().all(|s| !s.wraps));
    }

    #[test]
    fn all_faulty_yields_no_segments() {
        let ring = KHopRing::new(4, 4, 2).unwrap();
        let all = faults(&[0, 1, 2, 3]);
        assert!(ring.healthy_segments(&all).is_empty());
        let report = ring.utilization(&all, 8);
        assert_eq!(report.usable_gpus, 0);
        assert_eq!(report.faulty_gpus, 16);
    }

    #[test]
    fn utilization_matches_paper_example_near_zero_waste() {
        // 720 nodes x 4 GPUs = 2,880 GPUs, TP-32, a 2.33% node fault ratio
        // spread out (not consecutive): waste should be (near) zero because
        // every fault is bypassed and the single big segment fragments by at
        // most one TP group.
        let ring = KHopRing::new(720, 4, 3).unwrap();
        let spread: FaultSet = (0..16).map(|i| NodeId(i * 45)).collect();
        let report = ring.utilization(&spread, 32);
        assert_eq!(report.faulty_gpus, 64);
        assert!(
            report.waste_ratio() < 0.02,
            "waste {}",
            report.waste_ratio()
        );
    }

    #[test]
    fn fragmentation_waste_is_bounded_by_one_group_per_segment() {
        // Use the line variant so the two segments cannot re-join over the
        // deployment boundary: segments of 5 and 3 healthy nodes (20 and 12
        // GPUs), each too small for a TP-32 group.
        let line = KHopRing::line(10, 4, 2).unwrap();
        let report = line.utilization(&faults(&[5, 6]), 32);
        assert_eq!(report.usable_gpus, 0);
        assert!(report.wasted_healthy_gpus < 2 * 32);

        // The closed ring merges the two runs across the boundary into one
        // 8-node segment, which hosts exactly one TP-32 group: zero waste.
        let ring = KHopRing::new(10, 4, 2).unwrap();
        let report = ring.utilization(&faults(&[5, 6]), 32);
        assert_eq!(report.usable_gpus, 32);
        assert_eq!(report.wasted_healthy_gpus, 0);
    }

    #[test]
    fn usable_gpus_scale_with_tp_size() {
        let ring = KHopRing::new(100, 4, 2).unwrap();
        let f = faults(&[10, 50]);
        for tp in [8, 16, 32, 64] {
            let usable = ring.usable_gpus(&f, tp);
            assert_eq!(usable % tp, 0);
            assert!(usable <= 100 * 4 - 8);
        }
    }

    #[test]
    fn fault_explosion_radius_is_node_level() {
        let ring = KHopRing::new(720, 4, 2).unwrap();
        // A single fault costs at most the faulty node's own GPUs plus at most
        // one fragmented TP group.
        assert!(ring.fault_explosion_radius(32) <= 32 + 4);
    }
}
