//! The linear K-Hop run-scanning kernel.
//!
//! Algorithm 2 of the paper models the healthy cluster as a graph and finds
//! its connected components with a DFS — but on a K-Hop line the components
//! have a much simpler characterisation: two healthy positions stay connected
//! exactly when no run of `K` or more *consecutive* faulty positions lies
//! between them (the farthest backup link reaches distance `K`, bypassing up
//! to `K − 1` failures). The healthy components are therefore the maximal
//! runs of healthy positions *not* severed by a `≥ K` fault run, and a single
//! left-to-right scan discovers them with no graph, no DFS and no
//! allocations.
//!
//! This module is that scan, shared by every consumer of the component
//! structure: the orchestrator's `orchestrate_dcn_free` cuts TP groups from
//! the runs, [`KHopRing::healthy_segments`](crate::KHopRing::healthy_segments)
//! materialises them as ring segments, and the utilization fast path counts
//! their healthy nodes without materialising anything. The graph + DFS
//! formulation survives as a `#[cfg(test)]` oracle in the orchestrator,
//! pinned bit-for-bit to this kernel by proptests.

/// Consumer of a K-Hop run scan.
///
/// The kernel walks the positions in ascending order and reports every
/// healthy item via [`healthy`](Self::healthy); whenever a run of `K`
/// consecutive faulty positions is crossed it calls [`cut`](Self::cut)
/// exactly once — the line is severed there, so the healthy items before and
/// after the cut belong to different components. A cut may be reported before
/// the first healthy item (a leading fault run) or after the last one; sinks
/// must treat cutting an empty run as a no-op.
pub trait RunSink<T> {
    /// The next healthy item, in scan order.
    fn healthy(&mut self, item: T);
    /// `K` consecutive faulty positions: the current run (if any) ends here.
    fn cut(&mut self);
}

/// Runs the linear K-Hop scan over `items`, classifying each with `faulty`
/// and feeding the run structure to `sink`. O(items), allocation-free.
///
/// `k` is the hop reach: a run of *fewer than* `k` consecutive faulty items
/// is bypassed by backup links; `k` or more sever the line.
pub fn scan_khop_runs<T, I, F, S>(items: I, k: usize, mut faulty: F, sink: &mut S)
where
    I: IntoIterator<Item = T>,
    F: FnMut(&T) -> bool,
    S: RunSink<T>,
{
    assert!(k > 0, "K must be at least 1");
    let mut gap = 0usize;
    for item in items {
        if faulty(&item) {
            gap += 1;
            if gap == k {
                sink.cut();
            }
        } else {
            gap = 0;
            sink.healthy(item);
        }
    }
}

/// A [`RunSink`] that only counts: healthy items per run, plus the first and
/// last healthy positions of the whole scan (for the closed-ring wraparound
/// merge). Used by the utilization fast paths, which never need the nodes
/// themselves.
#[derive(Debug, Default)]
pub struct RunCounter {
    /// Healthy-item count of every completed (non-empty) run, in scan order.
    pub runs: Vec<usize>,
    /// Scan position of the first healthy item, if any.
    pub first_healthy: Option<usize>,
    /// Scan position of the last healthy item seen so far.
    pub last_healthy: usize,
    current: usize,
}

impl RunCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Closes the trailing run; call once after the scan.
    pub fn finish(&mut self) {
        if self.current > 0 {
            self.runs.push(self.current);
            self.current = 0;
        }
    }
}

impl RunSink<usize> for RunCounter {
    fn healthy(&mut self, pos: usize) {
        if self.first_healthy.is_none() {
            self.first_healthy = Some(pos);
        }
        self.last_healthy = pos;
        self.current += 1;
    }

    fn cut(&mut self) {
        if self.current > 0 {
            self.runs.push(self.current);
            self.current = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs(len: usize, k: usize, faulty: &[usize]) -> Vec<usize> {
        let mut counter = RunCounter::new();
        scan_khop_runs(0..len, k, |&i| faulty.contains(&i), &mut counter);
        counter.finish();
        counter.runs
    }

    #[test]
    fn healthy_line_is_one_run() {
        assert_eq!(runs(10, 2, &[]), vec![10]);
    }

    #[test]
    fn short_fault_runs_are_bypassed() {
        assert_eq!(runs(10, 2, &[4]), vec![9]);
        assert_eq!(runs(10, 3, &[4, 5]), vec![8]);
    }

    #[test]
    fn k_consecutive_faults_cut_the_line() {
        assert_eq!(runs(10, 2, &[4, 5]), vec![4, 4]);
        assert_eq!(runs(10, 1, &[4]), vec![4, 5]);
    }

    #[test]
    fn leading_and_trailing_fault_runs_do_not_create_empty_runs() {
        assert_eq!(runs(10, 2, &[0, 1, 8, 9]), vec![6]);
        assert_eq!(runs(4, 2, &[0, 1, 2, 3]), Vec::<usize>::new());
    }

    #[test]
    fn counter_tracks_scan_extremes() {
        let mut counter = RunCounter::new();
        scan_khop_runs(0..10, 2, |&i| !(2..=7).contains(&i), &mut counter);
        counter.finish();
        assert_eq!(counter.first_healthy, Some(2));
        assert_eq!(counter.last_healthy, 7);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_is_rejected() {
        let mut counter = RunCounter::new();
        scan_khop_runs(0..4, 0, |_| false, &mut counter);
    }
}
