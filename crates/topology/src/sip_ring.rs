//! The GPU-centric baseline: **SiP-Ring** — static, fixed-size optical rings.
//!
//! In SiP-Ring (SiP-ML's ring configuration) the cluster is wired into a series
//! of static rings whose size equals the TP group size the cluster was deployed
//! for (§6.1). GPUs forward traffic around the ring; there is no switching
//! element, so:
//!
//! * a ring with any faulty node degenerates into a line and can no longer run
//!   the ring collective at full bandwidth — the paper counts the whole ring as
//!   lost capacity ("HBD-level fault explosion radius"), and
//! * the TP size is frozen at deployment time: running a larger TP than the
//!   ring size is impossible, and running a smaller TP wastes the remainder of
//!   every ring.

use crate::arch::{ArchitectureKind, FaultSet, HbdArchitecture, UtilizationReport};
use hbd_types::{HbdError, Result};
use serde::{Deserialize, Serialize};

/// A cluster wired as fixed-size static rings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SipRing {
    nodes: usize,
    gpus_per_node: usize,
    /// Ring size in GPUs, fixed at deployment time.
    ring_gpus: usize,
}

impl SipRing {
    /// Creates a SiP-Ring cluster deployed for rings of `ring_gpus` GPUs.
    pub fn new(nodes: usize, gpus_per_node: usize, ring_gpus: usize) -> Result<Self> {
        if gpus_per_node == 0 {
            return Err(HbdError::invalid_config("nodes need at least one GPU"));
        }
        if ring_gpus == 0 || !ring_gpus.is_multiple_of(gpus_per_node) {
            return Err(HbdError::invalid_config(format!(
                "ring size ({ring_gpus} GPUs) must be a positive multiple of the node size ({gpus_per_node})"
            )));
        }
        Ok(SipRing {
            nodes,
            gpus_per_node,
            ring_gpus,
        })
    }

    /// Ring size in GPUs.
    pub fn ring_gpus(&self) -> usize {
        self.ring_gpus
    }

    /// Nodes per ring.
    pub fn nodes_per_ring(&self) -> usize {
        self.ring_gpus / self.gpus_per_node
    }

    /// Number of complete rings (trailing nodes that do not fill a ring are
    /// never usable).
    pub fn rings(&self) -> usize {
        self.nodes / self.nodes_per_ring()
    }

    /// Whether ring `r` is intact (contains no faulty node).
    pub fn ring_intact(&self, ring: usize, faults: &FaultSet) -> bool {
        let per_ring = self.nodes_per_ring();
        let start = ring * per_ring;
        faults.count_in_range(start, start + per_ring) == 0
    }
}

impl HbdArchitecture for SipRing {
    fn name(&self) -> &str {
        "SiP-Ring"
    }

    fn kind(&self) -> ArchitectureKind {
        ArchitectureKind::GpuCentric
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    fn utilization(&self, faults: &FaultSet, tp_size: usize) -> UtilizationReport {
        assert!(tp_size > 0, "TP size must be positive");
        let faulty_nodes = faults.count_in_range(0, self.nodes);
        let faulty_gpus = faulty_nodes * self.gpus_per_node;

        // A TP group needs a ring at least as large as the group; the static
        // rings cannot be merged, so TP sizes above the deployed ring size are
        // simply unsupported.
        let usable = if tp_size > self.ring_gpus {
            0
        } else {
            (0..self.rings())
                .filter(|&r| self.ring_intact(r, faults))
                .map(|_| (self.ring_gpus / tp_size) * tp_size)
                .sum()
        };
        let healthy = self.total_gpus() - faulty_gpus;
        UtilizationReport::new(self.total_gpus(), faulty_gpus, usable.min(healthy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeId;

    #[test]
    fn ring_size_must_be_node_multiple() {
        assert!(SipRing::new(720, 4, 0).is_err());
        assert!(SipRing::new(720, 4, 30).is_err());
        assert!(SipRing::new(720, 4, 32).is_ok());
    }

    #[test]
    fn healthy_cluster_fully_usable_at_deployed_tp() {
        let hbd = SipRing::new(720, 4, 32).unwrap();
        assert_eq!(hbd.rings(), 90);
        let report = hbd.utilization(&FaultSet::new(), 32);
        assert_eq!(report.wasted_healthy_gpus, 0);
    }

    #[test]
    fn one_fault_loses_the_whole_ring() {
        let hbd = SipRing::new(720, 4, 32).unwrap();
        let faults = FaultSet::from_nodes([NodeId(0)]);
        let report = hbd.utilization(&faults, 32);
        assert_eq!(report.faulty_gpus, 4);
        // The other 7 nodes of ring 0 (28 healthy GPUs) are wasted.
        assert_eq!(report.wasted_healthy_gpus, 28);
        assert_eq!(report.usable_gpus, 89 * 32);
    }

    #[test]
    fn tp_larger_than_ring_is_unsupported() {
        let hbd = SipRing::new(720, 4, 32).unwrap();
        let report = hbd.utilization(&FaultSet::new(), 64);
        assert_eq!(report.usable_gpus, 0);
        assert_eq!(report.wasted_healthy_gpus, 2880);
    }

    #[test]
    fn smaller_tp_still_limited_to_intact_rings() {
        let hbd = SipRing::new(720, 4, 32).unwrap();
        let faults = FaultSet::from_nodes([NodeId(0)]);
        let report = hbd.utilization(&faults, 16);
        // Ring 0 is broken: its 28 healthy GPUs are wasted even for TP-16.
        assert_eq!(report.usable_gpus, 89 * 32);
    }

    #[test]
    fn explosion_radius_is_one_ring() {
        let hbd = SipRing::new(720, 4, 32).unwrap();
        assert_eq!(hbd.fault_explosion_radius(32), 32);
    }

    #[test]
    fn trailing_partial_ring_is_never_usable() {
        let hbd = SipRing::new(10, 4, 32).unwrap();
        // 10 nodes -> 1 complete 8-node ring, 2 spare nodes.
        assert_eq!(hbd.rings(), 1);
        let report = hbd.utilization(&FaultSet::new(), 32);
        assert_eq!(report.usable_gpus, 32);
        assert_eq!(report.wasted_healthy_gpus, 8);
    }
}
