//! The switch-GPU hybrid baseline: **TPUv4** — 4³ cubes of 64 TPUs joined by
//! centralized OCS-based switches.
//!
//! Scheduling on TPUv4 is cube-granular (§2.2 / §6.2): a TP group of up to 64
//! accelerators must be carved out of a single cube, and groups larger than a
//! cube are built from *whole healthy* cubes stitched together by the central
//! OCS. A fault anywhere in a cube therefore removes capacity at cube
//! granularity — the "coarse 4³ cube-based resource management, which amplifies
//! the fault explosion radius" the paper calls out. Concretely:
//!
//! * TP ≤ 64: each cube contributes `floor(healthy_in_cube / TP)` groups,
//! * TP > 64: only *fully healthy* cubes participate, and `TP / 64` of them are
//!   needed per group.

use crate::arch::{ArchitectureKind, FaultSet, HbdArchitecture, UtilizationReport};
use serde::{Deserialize, Serialize};

/// GPUs (TPUs) per cube: 4 × 4 × 4.
pub const CUBE_GPUS: usize = 64;

/// A TPUv4-style cluster: cubes of 64 accelerators behind central OCS switches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TpuV4 {
    nodes: usize,
    gpus_per_node: usize,
}

impl TpuV4 {
    /// Creates a TPUv4-style cluster. Nodes are assigned to cubes in deployment
    /// order (a 4-GPU node contributes 4 TPUs, so 16 nodes form a cube).
    pub fn new(nodes: usize, gpus_per_node: usize) -> Self {
        TpuV4 {
            nodes,
            gpus_per_node,
        }
    }

    /// Nodes per cube.
    pub fn nodes_per_cube(&self) -> usize {
        (CUBE_GPUS / self.gpus_per_node).max(1)
    }

    /// Number of cubes (the last may be partial).
    pub fn cubes(&self) -> usize {
        self.nodes.div_ceil(self.nodes_per_cube())
    }

    /// Healthy GPUs per cube under the given fault pattern.
    pub fn healthy_gpus_per_cube(&self, faults: &FaultSet) -> Vec<usize> {
        let per_cube = self.nodes_per_cube();
        (0..self.cubes())
            .map(|c| {
                let start = c * per_cube;
                let end = ((c + 1) * per_cube).min(self.nodes);
                (end - start - faults.count_in_range(start, end)) * self.gpus_per_node
            })
            .collect()
    }
}

impl HbdArchitecture for TpuV4 {
    fn name(&self) -> &str {
        "TPUv4"
    }

    fn kind(&self) -> ArchitectureKind {
        ArchitectureKind::SwitchGpuHybrid
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    fn utilization(&self, faults: &FaultSet, tp_size: usize) -> UtilizationReport {
        assert!(tp_size > 0, "TP size must be positive");
        let faulty_nodes = faults.count_in_range(0, self.nodes);
        let faulty_gpus = faulty_nodes * self.gpus_per_node;
        let per_cube = self.healthy_gpus_per_cube(faults);

        let usable = if tp_size <= CUBE_GPUS {
            // Groups are carved from individual cubes.
            per_cube
                .iter()
                .map(|&healthy| (healthy / tp_size) * tp_size)
                .sum()
        } else {
            // Groups span whole cubes; only fully healthy, full-size cubes count.
            let full_cubes = per_cube.iter().filter(|&&h| h == CUBE_GPUS).count();
            let cubes_per_group = tp_size / CUBE_GPUS
                + if tp_size.is_multiple_of(CUBE_GPUS) {
                    0
                } else {
                    1
                };
            let groups = full_cubes / cubes_per_group;
            groups * tp_size
        };
        // Usable can never exceed the healthy pool (guard for TP not dividing
        // the cube size cleanly).
        let healthy = self.total_gpus() - faulty_gpus;
        UtilizationReport::new(self.total_gpus(), faulty_gpus, usable.min(healthy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeId;

    #[test]
    fn sixteen_four_gpu_nodes_form_a_cube() {
        let hbd = TpuV4::new(720, 4);
        assert_eq!(hbd.nodes_per_cube(), 16);
        assert_eq!(hbd.cubes(), 45);
        assert_eq!(hbd.total_gpus(), 2880);
    }

    #[test]
    fn healthy_cluster_has_no_waste_for_divisor_tp() {
        let hbd = TpuV4::new(720, 4);
        for tp in [8, 16, 32, 64] {
            let report = hbd.utilization(&FaultSet::new(), tp);
            assert_eq!(report.wasted_healthy_gpus, 0, "TP {tp}");
        }
    }

    #[test]
    fn one_fault_wastes_a_slice_of_its_cube() {
        let hbd = TpuV4::new(720, 4);
        let faults = FaultSet::from_nodes([NodeId(0)]);
        // Cube 0 drops to 60 healthy GPUs.
        let r16 = hbd.utilization(&faults, 16);
        // floor(60/16)*16 = 48: 12 healthy GPUs wasted.
        assert_eq!(r16.wasted_healthy_gpus, 12);
        let r32 = hbd.utilization(&faults, 32);
        // floor(60/32)*32 = 32: 28 healthy GPUs wasted - the waste grows with
        // TP size, which is the trend the paper highlights.
        assert_eq!(r32.wasted_healthy_gpus, 28);
        let r64 = hbd.utilization(&faults, 64);
        assert_eq!(r64.wasted_healthy_gpus, 60);
        assert!(r16.wasted_healthy_gpus < r32.wasted_healthy_gpus);
        assert!(r32.wasted_healthy_gpus < r64.wasted_healthy_gpus);
    }

    #[test]
    fn groups_larger_than_a_cube_need_fully_healthy_cubes() {
        let hbd = TpuV4::new(720, 4);
        // TP-128 = 2 cubes per group. With one fault, 44 healthy cubes remain:
        // 22 groups of 128 = 2816 usable.
        let faults = FaultSet::from_nodes([NodeId(3)]);
        let report = hbd.utilization(&faults, 128);
        assert_eq!(report.usable_gpus, 22 * 128);
        assert_eq!(report.wasted_healthy_gpus, 2880 - 4 - 22 * 128);
    }

    #[test]
    fn cube_level_explosion_radius_exceeds_node_level() {
        let hbd = TpuV4::new(720, 4);
        // Losing one 4-GPU node costs far more than 4 GPUs of capacity at
        // TP-64: the whole cube can no longer host a TP-64 group.
        assert!(hbd.fault_explosion_radius(64) >= 64);
    }

    #[test]
    fn partial_trailing_cube_is_handled() {
        let hbd = TpuV4::new(20, 4);
        assert_eq!(hbd.cubes(), 2);
        let healthy = hbd.healthy_gpus_per_cube(&FaultSet::new());
        assert_eq!(healthy, vec![64, 16]);
        let report = hbd.utilization(&FaultSet::new(), 64);
        assert_eq!(report.usable_gpus, 64);
        assert_eq!(report.wasted_healthy_gpus, 16);
    }
}
