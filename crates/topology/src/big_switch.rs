//! The **Big-Switch** ideal: a single, infinitely large, zero-latency switch
//! connecting every node in the datacenter.
//!
//! The paper uses Big-Switch as the theoretical upper limit of communication
//! performance and fault resilience (§6.1): any set of healthy GPUs can be
//! grouped into TP groups with no placement constraint, so the only waste is
//! the global fragmentation remainder `healthy mod TP`.

use crate::arch::{ArchitectureKind, FaultSet, HbdArchitecture, UtilizationReport};
use serde::{Deserialize, Serialize};

/// The idealised Big-Switch HBD.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BigSwitch {
    nodes: usize,
    gpus_per_node: usize,
}

impl BigSwitch {
    /// Creates a Big-Switch HBD over the whole cluster.
    pub fn new(nodes: usize, gpus_per_node: usize) -> Self {
        BigSwitch {
            nodes,
            gpus_per_node,
        }
    }
}

impl HbdArchitecture for BigSwitch {
    fn name(&self) -> &str {
        "Big-Switch"
    }

    fn kind(&self) -> ArchitectureKind {
        ArchitectureKind::Ideal
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    fn utilization(&self, faults: &FaultSet, tp_size: usize) -> UtilizationReport {
        assert!(tp_size > 0, "TP size must be positive");
        let faulty_nodes = faults.count_in_range(0, self.nodes);
        let faulty_gpus = faulty_nodes * self.gpus_per_node;
        let healthy = self.total_gpus() - faulty_gpus;
        let usable = (healthy / tp_size) * tp_size;
        UtilizationReport::new(self.total_gpus(), faulty_gpus, usable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeId;

    #[test]
    fn healthy_cluster_only_wastes_the_global_remainder() {
        let hbd = BigSwitch::new(720, 4);
        let report = hbd.utilization(&FaultSet::new(), 64);
        assert_eq!(report.total_gpus, 2880);
        // 2880 is divisible by 64, so nothing is wasted.
        assert_eq!(report.wasted_healthy_gpus, 0);

        let report = hbd.utilization(&FaultSet::new(), 7);
        assert_eq!(report.wasted_healthy_gpus, 2880 % 7);
    }

    #[test]
    fn faults_only_cost_the_faulty_gpus_plus_remainder() {
        let hbd = BigSwitch::new(720, 4);
        let faults = FaultSet::from_nodes([NodeId(1), NodeId(2), NodeId(3)]);
        let report = hbd.utilization(&faults, 32);
        assert_eq!(report.faulty_gpus, 12);
        // 2868 healthy GPUs -> 89 groups of 32 = 2848 usable, 20 wasted.
        assert_eq!(report.usable_gpus, 2848);
        assert_eq!(report.wasted_healthy_gpus, 20);
    }

    #[test]
    fn fault_explosion_radius_is_at_most_one_group() {
        let hbd = BigSwitch::new(720, 4);
        assert!(hbd.fault_explosion_radius(32) <= 32);
        assert_eq!(hbd.kind(), ArchitectureKind::Ideal);
    }
}
