//! A small undirected graph over nodes, used by the K-Hop Ring topology and the
//! orchestration algorithms (Algorithm 2 models the healthy cluster as a graph
//! and finds its connected components with a DFS).

use hbd_types::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An undirected graph whose vertices are node indices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeGraph {
    adjacency: Vec<BTreeSet<usize>>,
}

impl NodeGraph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        NodeGraph {
            adjacency: vec![BTreeSet::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Adds an undirected edge. Self-loops and out-of-range vertices are
    /// ignored (the K-Hop wiring near the ends of a line naturally produces
    /// out-of-range neighbour indices, which simply do not exist).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        let (a, b) = (a.index(), b.index());
        if a == b || a >= self.len() || b >= self.len() {
            return;
        }
        self.adjacency[a].insert(b);
        self.adjacency[b].insert(a);
    }

    /// Whether an edge exists between `a` and `b`.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency
            .get(a.index())
            .map(|set| set.contains(&b.index()))
            .unwrap_or(false)
    }

    /// Neighbours of `v` in ascending order.
    pub fn neighbours(&self, v: NodeId) -> Vec<NodeId> {
        self.adjacency
            .get(v.index())
            .map(|set| set.iter().map(|&i| NodeId(i)).collect())
            .unwrap_or_default()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency.get(v.index()).map(|s| s.len()).unwrap_or(0)
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Restricts the graph to the vertices for which `keep` returns `true`:
    /// the *healthy subgraph* of Algorithm 2.
    pub fn induced_subgraph(&self, keep: impl Fn(NodeId) -> bool) -> NodeGraph {
        let mut sub = NodeGraph::new(self.len());
        for (a, neighbours) in self.adjacency.iter().enumerate() {
            if !keep(NodeId(a)) {
                continue;
            }
            for &b in neighbours {
                if b > a && keep(NodeId(b)) {
                    sub.add_edge(NodeId(a), NodeId(b));
                }
            }
        }
        sub
    }

    /// Connected components containing at least one vertex from `vertices`,
    /// discovered with an iterative DFS. Each component is returned sorted in
    /// ascending node order (the `sortedInHBD()` step of Algorithm 2: adjacent
    /// elements of the returned list are adjacent in the HBD line).
    pub fn connected_components(&self, vertices: &[NodeId]) -> Vec<Vec<NodeId>> {
        let mut visited = vec![false; self.len()];
        let mut interesting = vec![false; self.len()];
        for v in vertices {
            if v.index() < self.len() {
                interesting[v.index()] = true;
            }
        }
        let mut components = Vec::new();
        for start in vertices {
            let start = start.index();
            if start >= self.len() || visited[start] {
                continue;
            }
            let mut stack = vec![start];
            let mut component = Vec::new();
            visited[start] = true;
            while let Some(v) = stack.pop() {
                if interesting[v] {
                    component.push(NodeId(v));
                }
                for &next in &self.adjacency[v] {
                    if !visited[next] && interesting[next] {
                        visited[next] = true;
                        stack.push(next);
                    }
                }
            }
            if !component.is_empty() {
                component.sort();
                components.push(component);
            }
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(n: usize) -> NodeGraph {
        let mut g = NodeGraph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        g
    }

    #[test]
    fn edges_are_undirected_and_deduplicated() {
        let mut g = NodeGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(0));
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(1)), 1);
    }

    #[test]
    fn self_loops_and_out_of_range_edges_are_ignored() {
        let mut g = NodeGraph::new(2);
        g.add_edge(NodeId(0), NodeId(0));
        g.add_edge(NodeId(0), NodeId(7));
        assert_eq!(g.edge_count(), 0);
        assert!(g.neighbours(NodeId(9)).is_empty());
        assert_eq!(g.degree(NodeId(9)), 0);
    }

    #[test]
    fn neighbours_are_sorted() {
        let mut g = NodeGraph::new(5);
        g.add_edge(NodeId(2), NodeId(4));
        g.add_edge(NodeId(2), NodeId(0));
        g.add_edge(NodeId(2), NodeId(3));
        assert_eq!(
            g.neighbours(NodeId(2)),
            vec![NodeId(0), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn connected_components_of_a_line() {
        let g = line_graph(6);
        let all: Vec<NodeId> = (0..6).map(NodeId).collect();
        let components = g.connected_components(&all);
        assert_eq!(components.len(), 1);
        assert_eq!(components[0], all);
    }

    #[test]
    fn removing_a_vertex_splits_the_line() {
        let g = line_graph(6);
        let healthy: Vec<NodeId> = [0, 1, 2, 4, 5].iter().map(|&i| NodeId(i)).collect();
        let sub = g.induced_subgraph(|v| v != NodeId(3));
        let components = sub.connected_components(&healthy);
        assert_eq!(components.len(), 2);
        assert_eq!(components[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(components[1], vec![NodeId(4), NodeId(5)]);
    }

    #[test]
    fn components_ignore_vertices_not_requested() {
        let g = line_graph(4);
        let components = g.connected_components(&[NodeId(1), NodeId(2)]);
        assert_eq!(components.len(), 1);
        assert_eq!(components[0], vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn empty_graph_behaves() {
        let g = NodeGraph::new(0);
        assert!(g.is_empty());
        assert!(g.connected_components(&[]).is_empty());
    }
}
