//! HBD topologies and the datacenter network (DCN) model.
//!
//! This crate implements every interconnect architecture compared in the paper:
//!
//! * [`khop_ring`] — **InfiniteHBD**'s reconfigurable K-Hop Ring (§4.2): every
//!   node connects to the nodes at distance ±1..±K, two links are active for the
//!   Ring-AllReduce and the rest serve as backups that bypass faulty nodes.
//! * [`big_switch`] — the *Big-Switch* ideal: one infinitely large, zero-latency
//!   switch connecting every node (the theoretical upper bound used in §6).
//! * [`nvl`] — switch-centric NVLink domains (NVL-36 / NVL-72 / NVL-576).
//! * [`tpuv4`] — the switch-GPU hybrid: 4³ TPU cubes joined by centralized OCS.
//! * [`sip_ring`] — GPU-centric fixed-size static rings (SiP-Ring).
//! * [`dojo`] — a GPU-centric 2-D mesh (Dojo / TPUv3 style), the other
//!   GPU-centric extreme of Table 1.
//! * [`binary_hop`] — the Appendix-G.3 ±2^i rewiring used for Binary Exchange
//!   AllToAll (Expert Parallelism).
//! * [`fat_tree`] — the Fat-Tree DCN used for cross-ToR traffic accounting.
//!
//! All HBD architectures implement the [`arch::HbdArchitecture`] trait: given a
//! set of faulty nodes and a TP group size they report how many GPUs remain
//! *usable*, which is the quantity every fault-resilience experiment in §6.2 is
//! built on (GPU waste ratio, maximum job scale, fault-waiting time).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod big_switch;
pub mod binary_hop;
pub mod dojo;
pub mod fat_tree;
pub mod graph;
pub mod khop_ring;
pub mod node;
pub mod nvl;
pub mod runscan;
pub mod sip_ring;
pub mod tpuv4;

pub use arch::{ArchitectureKind, FaultSet, HbdArchitecture, UtilizationReport};
pub use big_switch::BigSwitch;
pub use binary_hop::BinaryHopRing;
pub use dojo::DojoMesh;
pub use fat_tree::{FatTree, NetworkDistance};
pub use graph::NodeGraph;
pub use khop_ring::{KHopRing, RingSegment};
pub use node::Node;
pub use nvl::{Nvl, NvlVariant};
pub use runscan::{scan_khop_runs, RunCounter, RunSink};
pub use sip_ring::SipRing;
pub use tpuv4::TpuV4;

/// Convenience constructor: builds every architecture evaluated in the paper for
/// a cluster of `nodes` nodes with `gpus_per_node` GPUs each, in the order used
/// by the figures (InfiniteHBD K=2, InfiniteHBD K=3, Big-Switch, TPUv4, NVL-36,
/// NVL-72, NVL-576, SiP-Ring).
///
/// `tp_size` (in GPUs) is needed because SiP-Ring's static ring size is tied to
/// the TP size it was deployed for.
pub fn paper_architectures(
    nodes: usize,
    gpus_per_node: usize,
    tp_size: usize,
) -> Vec<Box<dyn HbdArchitecture>> {
    vec![
        Box::new(KHopRing::new(nodes, gpus_per_node, 2).expect("valid K=2 ring")),
        Box::new(KHopRing::new(nodes, gpus_per_node, 3).expect("valid K=3 ring")),
        Box::new(BigSwitch::new(nodes, gpus_per_node)),
        Box::new(TpuV4::new(nodes, gpus_per_node)),
        Box::new(Nvl::new(nodes, gpus_per_node, NvlVariant::Nvl36)),
        Box::new(Nvl::new(nodes, gpus_per_node, NvlVariant::Nvl72)),
        Box::new(Nvl::new(nodes, gpus_per_node, NvlVariant::Nvl576)),
        Box::new(SipRing::new(nodes, gpus_per_node, tp_size).expect("valid SiP-Ring")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_architecture_set_is_complete() {
        let archs = paper_architectures(720, 4, 32);
        assert_eq!(archs.len(), 8);
        let names: Vec<&str> = archs.iter().map(|a| a.name()).collect();
        assert!(names.contains(&"InfiniteHBD(K=2)"));
        assert!(names.contains(&"InfiniteHBD(K=3)"));
        assert!(names.contains(&"Big-Switch"));
        assert!(names.contains(&"TPUv4"));
        assert!(names.contains(&"NVL-36"));
        assert!(names.contains(&"NVL-72"));
        assert!(names.contains(&"NVL-576"));
        assert!(names.contains(&"SiP-Ring"));
        for arch in &archs {
            assert_eq!(arch.total_gpus(), 2880);
        }
    }

    #[test]
    fn healthy_cluster_has_no_waste_for_infinitehbd() {
        let archs = paper_architectures(720, 4, 32);
        let faults = FaultSet::default();
        for arch in &archs {
            let report = arch.utilization(&faults, 32);
            assert_eq!(report.total_gpus, 2880);
            assert_eq!(report.faulty_gpus, 0);
            if arch.name().starts_with("InfiniteHBD") || arch.name() == "Big-Switch" {
                assert_eq!(report.wasted_healthy_gpus, 0, "{}", arch.name());
            }
        }
    }
}
