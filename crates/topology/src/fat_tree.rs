//! The Fat-Tree DCN model used for cross-ToR traffic accounting (§4.3, §6.4).
//!
//! The simulator does not route individual packets; what the orchestration
//! experiments need is the *locality structure* of the DCN: which nodes share a
//! ToR switch, which ToRs share an aggregation-switch domain, and how "far"
//! two nodes are from each other. Traffic that stays under one ToR only crosses
//! node–ToR links and cannot congest the fabric; traffic between ToRs of one
//! aggregation domain crosses that domain's aggregation switches; anything else
//! crosses the core layer.

use hbd_types::{ClusterConfig, HbdError, NodeId, Result, ToRId};
use serde::{Deserialize, Serialize};

/// Distance classes between two nodes in the Fat-Tree DCN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NetworkDistance {
    /// The two endpoints are the same node (intra-node traffic).
    SameNode,
    /// Both nodes hang off the same ToR switch.
    SameToR,
    /// Different ToRs within the same aggregation-switch domain.
    SameAggregationDomain,
    /// The path crosses the core layer.
    CrossCore,
}

impl NetworkDistance {
    /// Number of switch hops a packet traverses for this distance class
    /// (node→ToR→node = 1 switch, node→ToR→Agg→ToR→node = 3 switches, ...).
    pub const fn switch_hops(self) -> usize {
        match self {
            NetworkDistance::SameNode => 0,
            NetworkDistance::SameToR => 1,
            NetworkDistance::SameAggregationDomain => 3,
            NetworkDistance::CrossCore => 5,
        }
    }

    /// Whether traffic at this distance leaves its ToR (the congestion metric
    /// minimised by the orchestration algorithm).
    pub const fn crosses_tor(self) -> bool {
        matches!(
            self,
            NetworkDistance::SameAggregationDomain | NetworkDistance::CrossCore
        )
    }
}

/// The Fat-Tree DCN of the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FatTree {
    nodes: usize,
    nodes_per_tor: usize,
    tors_per_aggregation_domain: usize,
}

impl FatTree {
    /// Creates a Fat-Tree over `nodes` nodes with the given rack layout.
    pub fn new(
        nodes: usize,
        nodes_per_tor: usize,
        tors_per_aggregation_domain: usize,
    ) -> Result<Self> {
        if nodes == 0 {
            return Err(HbdError::invalid_config("fat-tree needs at least one node"));
        }
        if nodes_per_tor == 0 || tors_per_aggregation_domain == 0 {
            return Err(HbdError::invalid_config(
                "nodes_per_tor and tors_per_aggregation_domain must be positive",
            ));
        }
        Ok(FatTree {
            nodes,
            nodes_per_tor,
            tors_per_aggregation_domain,
        })
    }

    /// Builds the Fat-Tree described by a [`ClusterConfig`].
    pub fn from_config(config: &ClusterConfig) -> Result<Self> {
        Self::new(
            config.nodes,
            config.nodes_per_tor,
            config.tors_per_aggregation_domain,
        )
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Nodes per ToR.
    pub fn nodes_per_tor(&self) -> usize {
        self.nodes_per_tor
    }

    /// Nodes per aggregation-switch domain.
    pub fn nodes_per_aggregation_domain(&self) -> usize {
        self.nodes_per_tor * self.tors_per_aggregation_domain
    }

    /// Number of ToR switches.
    pub fn tors(&self) -> usize {
        self.nodes.div_ceil(self.nodes_per_tor)
    }

    /// Number of aggregation-switch domains.
    pub fn aggregation_domains(&self) -> usize {
        self.tors().div_ceil(self.tors_per_aggregation_domain)
    }

    /// The ToR a node is attached to.
    pub fn tor_of(&self, node: NodeId) -> Result<ToRId> {
        self.check(node)?;
        Ok(node.tor(self.nodes_per_tor))
    }

    /// The aggregation-switch domain a node belongs to.
    pub fn aggregation_domain_of(&self, node: NodeId) -> Result<usize> {
        self.check(node)?;
        Ok(node.index() / self.nodes_per_aggregation_domain())
    }

    /// Distance class between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Result<NetworkDistance> {
        self.check(a)?;
        self.check(b)?;
        Ok(if a == b {
            NetworkDistance::SameNode
        } else if self.tor_of(a)? == self.tor_of(b)? {
            NetworkDistance::SameToR
        } else if self.aggregation_domain_of(a)? == self.aggregation_domain_of(b)? {
            NetworkDistance::SameAggregationDomain
        } else {
            NetworkDistance::CrossCore
        })
    }

    /// The nodes attached to the given ToR, in deployment order.
    pub fn nodes_under_tor(&self, tor: ToRId) -> Vec<NodeId> {
        let start = tor.index() * self.nodes_per_tor;
        let end = ((tor.index() + 1) * self.nodes_per_tor).min(self.nodes);
        (start..end).map(NodeId).collect()
    }

    fn check(&self, node: NodeId) -> Result<()> {
        if node.index() >= self.nodes {
            Err(HbdError::unknown_entity(format!(
                "{node} in a {}-node fat-tree",
                self.nodes
            )))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_tree() -> FatTree {
        // 2,048 nodes, 16 per ToR, 8 ToRs per aggregation domain.
        FatTree::new(2048, 16, 8).unwrap()
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(FatTree::new(0, 16, 8).is_err());
        assert!(FatTree::new(10, 0, 8).is_err());
        assert!(FatTree::new(10, 16, 0).is_err());
    }

    #[test]
    fn counts_match_layout() {
        let tree = paper_tree();
        assert_eq!(tree.tors(), 128);
        assert_eq!(tree.aggregation_domains(), 16);
        assert_eq!(tree.nodes_per_aggregation_domain(), 128);
    }

    #[test]
    fn tor_and_domain_assignment() {
        let tree = paper_tree();
        assert_eq!(tree.tor_of(NodeId(0)).unwrap(), ToRId(0));
        assert_eq!(tree.tor_of(NodeId(15)).unwrap(), ToRId(0));
        assert_eq!(tree.tor_of(NodeId(16)).unwrap(), ToRId(1));
        assert_eq!(tree.aggregation_domain_of(NodeId(127)).unwrap(), 0);
        assert_eq!(tree.aggregation_domain_of(NodeId(128)).unwrap(), 1);
    }

    #[test]
    fn distance_classes_and_hops() {
        let tree = paper_tree();
        assert_eq!(
            tree.distance(NodeId(3), NodeId(3)).unwrap(),
            NetworkDistance::SameNode
        );
        assert_eq!(
            tree.distance(NodeId(0), NodeId(15)).unwrap(),
            NetworkDistance::SameToR
        );
        assert_eq!(
            tree.distance(NodeId(0), NodeId(16)).unwrap(),
            NetworkDistance::SameAggregationDomain
        );
        assert_eq!(
            tree.distance(NodeId(0), NodeId(2000)).unwrap(),
            NetworkDistance::CrossCore
        );
        assert_eq!(NetworkDistance::SameNode.switch_hops(), 0);
        assert_eq!(NetworkDistance::SameToR.switch_hops(), 1);
        assert_eq!(NetworkDistance::SameAggregationDomain.switch_hops(), 3);
        assert_eq!(NetworkDistance::CrossCore.switch_hops(), 5);
    }

    #[test]
    fn cross_tor_classification() {
        assert!(!NetworkDistance::SameNode.crosses_tor());
        assert!(!NetworkDistance::SameToR.crosses_tor());
        assert!(NetworkDistance::SameAggregationDomain.crosses_tor());
        assert!(NetworkDistance::CrossCore.crosses_tor());
    }

    #[test]
    fn nodes_under_tor_lists_the_rack() {
        let tree = FatTree::new(20, 8, 2).unwrap();
        assert_eq!(tree.nodes_under_tor(ToRId(0)).len(), 8);
        // The last rack is partial.
        assert_eq!(tree.nodes_under_tor(ToRId(2)).len(), 4);
    }

    #[test]
    fn out_of_range_nodes_are_rejected() {
        let tree = FatTree::new(20, 8, 2).unwrap();
        assert!(tree.tor_of(NodeId(20)).is_err());
        assert!(tree.distance(NodeId(0), NodeId(99)).is_err());
    }

    #[test]
    fn from_config_matches_config_counts() {
        let config = ClusterConfig::paper_8192_gpu();
        let tree = FatTree::from_config(&config).unwrap();
        assert_eq!(tree.tors(), config.tors());
        assert_eq!(tree.aggregation_domains(), config.aggregation_domains());
    }
}
