//! A GPU-centric 2-D mesh HBD in the style of Tesla Dojo / TPUv3 (Figure 1c).
//!
//! Nodes are arranged on a `rows × cols` grid and connected to their four
//! neighbours; GPUs themselves forward traffic, so there is no switch tier and
//! the interconnect cost scales linearly — but the *fault explosion radius* is
//! HBD-level: a faulty node no longer forwards, so every node that depended on
//! it for X/Y-routed bandwidth is degraded. Following the illustration in the
//! paper (the yellow nodes around the red fault), the model marks the faulty
//! node's entire mesh row and column as bandwidth-degraded; degraded nodes are
//! healthy but cannot join a full-bandwidth TP group.
//!
//! This is intentionally a *coarse* model (the real Dojo can reroute around
//! single faults at reduced bandwidth); it exists as the GPU-centric extreme of
//! Table 1, between SiP-Ring (1-D, fixed rings) and the switch-assisted
//! architectures.

use crate::arch::{ArchitectureKind, FaultSet, HbdArchitecture, UtilizationReport};
use crate::graph::NodeGraph;
use hbd_types::{HbdError, NodeId, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A 2-D mesh of nodes with GPU-forwarded traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DojoMesh {
    rows: usize,
    cols: usize,
    gpus_per_node: usize,
    /// Number of populated grid positions, when the grid is not completely
    /// filled (set by [`DojoMesh::square`]); `None` means every position holds
    /// a node.
    populated: Option<usize>,
}

impl DojoMesh {
    /// Creates a `rows × cols` mesh of nodes with `gpus_per_node` GPUs each.
    pub fn new(rows: usize, cols: usize, gpus_per_node: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(HbdError::invalid_config(
                "mesh needs at least one row and one column",
            ));
        }
        if gpus_per_node == 0 {
            return Err(HbdError::invalid_config("nodes need at least one GPU"));
        }
        Ok(DojoMesh {
            rows,
            cols,
            gpus_per_node,
            populated: None,
        })
    }

    /// Builds the most-square mesh that holds `nodes` nodes (the last row may
    /// be partial in node count terms; the grid is sized `rows × cols ≥ nodes`
    /// but only `nodes` positions are populated).
    pub fn square(nodes: usize, gpus_per_node: usize) -> Result<Self> {
        if nodes == 0 {
            return Err(HbdError::invalid_config("mesh needs at least one node"));
        }
        let cols = (nodes as f64).sqrt().ceil() as usize;
        let rows = nodes.div_ceil(cols);
        let mut mesh = Self::new(rows, cols, gpus_per_node)?;
        mesh.truncate_to(nodes);
        Ok(mesh)
    }

    fn truncate_to(&mut self, nodes: usize) {
        // Represented implicitly: positions >= nodes simply do not exist. We
        // keep rows*cols as the grid shape and `nodes()` reports the populated
        // count.
        self.populated = Some(nodes.min(self.rows * self.cols));
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid coordinates of a node.
    pub fn position(&self, node: NodeId) -> (usize, usize) {
        (node.index() / self.cols, node.index() % self.cols)
    }

    /// The mesh connectivity graph (4-neighbour grid).
    pub fn graph(&self) -> NodeGraph {
        let n = self.nodes();
        let mut graph = NodeGraph::new(n);
        for i in 0..n {
            let (r, c) = self.position(NodeId(i));
            if c + 1 < self.cols && i + 1 < n {
                graph.add_edge(NodeId(i), NodeId(i + 1));
            }
            if r + 1 < self.rows && i + self.cols < n {
                graph.add_edge(NodeId(i), NodeId(i + self.cols));
            }
        }
        graph
    }

    /// Nodes that lose full bandwidth because of `faults`: the faulty nodes
    /// themselves plus every populated node sharing a row or column with one.
    pub fn degraded_nodes(&self, faults: &FaultSet) -> BTreeSet<NodeId> {
        let mut rows = BTreeSet::new();
        let mut cols = BTreeSet::new();
        for node in faults.iter() {
            if node.index() >= self.nodes() {
                continue;
            }
            let (r, c) = self.position(node);
            rows.insert(r);
            cols.insert(c);
        }
        (0..self.nodes())
            .map(NodeId)
            .filter(|&n| {
                let (r, c) = self.position(n);
                faults.is_faulty(n) || rows.contains(&r) || cols.contains(&c)
            })
            .collect()
    }
}

impl HbdArchitecture for DojoMesh {
    fn name(&self) -> &str {
        "Dojo-Mesh"
    }

    fn kind(&self) -> ArchitectureKind {
        ArchitectureKind::GpuCentric
    }

    fn nodes(&self) -> usize {
        self.populated.unwrap_or(self.rows * self.cols)
    }

    fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    fn utilization(&self, faults: &FaultSet, tp_size: usize) -> UtilizationReport {
        assert!(tp_size > 0, "TP size must be positive");
        let total_nodes = self.nodes();
        let faulty_nodes = faults.count_in_range(0, total_nodes);
        let degraded = self.degraded_nodes(faults);
        let full_bandwidth_nodes = total_nodes - degraded.len();
        let usable = (full_bandwidth_nodes * self.gpus_per_node / tp_size) * tp_size;
        UtilizationReport::new(
            total_nodes * self.gpus_per_node,
            faulty_nodes * self.gpus_per_node,
            usable,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_shape() {
        assert!(DojoMesh::new(0, 4, 4).is_err());
        assert!(DojoMesh::new(4, 0, 4).is_err());
        assert!(DojoMesh::new(4, 4, 0).is_err());
        assert!(DojoMesh::square(0, 4).is_err());
        let mesh = DojoMesh::new(4, 4, 4).unwrap();
        assert_eq!(mesh.nodes(), 16);
        assert_eq!(mesh.total_gpus(), 64);
    }

    #[test]
    fn square_builder_covers_the_requested_node_count() {
        let mesh = DojoMesh::square(20, 4).unwrap();
        assert_eq!(mesh.nodes(), 20);
        assert!(mesh.rows() * mesh.cols() >= 20);
    }

    #[test]
    fn grid_graph_has_the_right_degrees() {
        let mesh = DojoMesh::new(3, 3, 4).unwrap();
        let graph = mesh.graph();
        // Corner, edge and centre degrees of a 3x3 grid.
        assert_eq!(graph.degree(NodeId(0)), 2);
        assert_eq!(graph.degree(NodeId(1)), 3);
        assert_eq!(graph.degree(NodeId(4)), 4);
        assert_eq!(graph.edge_count(), 12);
    }

    #[test]
    fn healthy_mesh_has_only_fragmentation_waste() {
        let mesh = DojoMesh::new(4, 4, 4).unwrap();
        let report = mesh.utilization(&FaultSet::new(), 16);
        assert_eq!(report.wasted_healthy_gpus, 0);
        let report = mesh.utilization(&FaultSet::new(), 24);
        // 64 GPUs / 24 => 2 groups of 24, 16 wasted.
        assert_eq!(report.usable_gpus, 48);
        assert_eq!(report.wasted_healthy_gpus, 16);
    }

    #[test]
    fn single_fault_degrades_its_row_and_column() {
        let mesh = DojoMesh::new(4, 4, 4).unwrap();
        let faults = FaultSet::from_nodes([NodeId(5)]); // row 1, col 1
        let degraded = mesh.degraded_nodes(&faults);
        assert_eq!(degraded.len(), 4 + 4 - 1);
        let report = mesh.utilization(&faults, 8);
        assert_eq!(report.faulty_gpus, 4);
        // 16 - 7 = 9 full-bandwidth nodes = 36 GPUs => 4 groups of 8.
        assert_eq!(report.usable_gpus, 32);
    }

    #[test]
    fn dojo_fault_radius_dwarfs_the_khop_ring() {
        use crate::khop_ring::KHopRing;
        let mesh = DojoMesh::new(8, 8, 4).unwrap();
        let ring = KHopRing::new(64, 4, 2).unwrap();
        assert!(mesh.fault_explosion_radius(16) > ring.fault_explosion_radius(16));
    }

    #[test]
    fn faults_outside_the_populated_grid_are_ignored() {
        let mesh = DojoMesh::square(10, 4).unwrap();
        let faults = FaultSet::from_nodes([NodeId(50)]);
        let report = mesh.utilization(&faults, 8);
        assert_eq!(report.faulty_gpus, 0);
        assert_eq!(report.wasted_healthy_gpus, 0);
    }
}
