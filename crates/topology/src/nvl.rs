//! Switch-centric NVLink HBD domains: NVL-36, NVL-72 and NVL-576.
//!
//! The cluster is partitioned into fixed-size NVLink domains; TP groups must be
//! placed entirely inside one domain (NVLink does not reach across domains), so
//! each domain suffers its own fragmentation: with TP-16 a 36-GPU domain can
//! host only two complete groups, wasting 4 of 36 GPUs (~11 %) even with zero
//! faults — exactly the number quoted in §2.1 and §6.2. Faulty GPUs inside a
//! domain reduce the healthy pool of that domain only.

use crate::arch::{ArchitectureKind, FaultSet, HbdArchitecture, UtilizationReport};
use serde::{Deserialize, Serialize};

/// The NVLink domain sizes compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvlVariant {
    /// GB200 NVL-36: 36 GPUs per domain.
    Nvl36,
    /// GB200 NVL-72: 72 GPUs per domain.
    Nvl72,
    /// Two NVL-36 racks cabled into one 72-GPU domain (cost model only; for
    /// utilization it behaves like NVL-72).
    Nvl36x2,
    /// GB200 NVL-576: 576 GPUs per domain.
    Nvl576,
}

impl NvlVariant {
    /// GPUs per NVLink domain.
    pub const fn domain_gpus(self) -> usize {
        match self {
            NvlVariant::Nvl36 => 36,
            NvlVariant::Nvl72 | NvlVariant::Nvl36x2 => 72,
            NvlVariant::Nvl576 => 576,
        }
    }

    /// Display name matching the paper's figure legends.
    pub const fn name(self) -> &'static str {
        match self {
            NvlVariant::Nvl36 => "NVL-36",
            NvlVariant::Nvl72 => "NVL-72",
            NvlVariant::Nvl36x2 => "NVL-36x2",
            NvlVariant::Nvl576 => "NVL-576",
        }
    }
}

/// A cluster built from switch-centric NVLink domains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nvl {
    nodes: usize,
    gpus_per_node: usize,
    variant: NvlVariant,
}

impl Nvl {
    /// Creates an NVL cluster. Nodes are assigned to domains in deployment
    /// order; a trailing partial domain is allowed (it simply fragments more).
    pub fn new(nodes: usize, gpus_per_node: usize, variant: NvlVariant) -> Self {
        Nvl {
            nodes,
            gpus_per_node,
            variant,
        }
    }

    /// The NVLink variant.
    pub fn variant(&self) -> NvlVariant {
        self.variant
    }

    /// Nodes per domain.
    pub fn nodes_per_domain(&self) -> usize {
        (self.variant.domain_gpus() / self.gpus_per_node).max(1)
    }

    /// Number of domains (the last may be partial).
    pub fn domains(&self) -> usize {
        self.nodes.div_ceil(self.nodes_per_domain())
    }

    /// Healthy GPUs in each domain under the given fault pattern.
    pub fn healthy_gpus_per_domain(&self, faults: &FaultSet) -> Vec<usize> {
        let per_domain = self.nodes_per_domain();
        (0..self.domains())
            .map(|d| {
                let start = d * per_domain;
                let end = ((d + 1) * per_domain).min(self.nodes);
                (end - start - faults.count_in_range(start, end)) * self.gpus_per_node
            })
            .collect()
    }
}

impl HbdArchitecture for Nvl {
    fn name(&self) -> &str {
        self.variant.name()
    }

    fn kind(&self) -> ArchitectureKind {
        ArchitectureKind::SwitchCentric
    }

    fn nodes(&self) -> usize {
        self.nodes
    }

    fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    fn utilization(&self, faults: &FaultSet, tp_size: usize) -> UtilizationReport {
        assert!(tp_size > 0, "TP size must be positive");
        let faulty_nodes = faults.count_in_range(0, self.nodes);
        let faulty_gpus = faulty_nodes * self.gpus_per_node;
        let usable: usize = self
            .healthy_gpus_per_domain(faults)
            .into_iter()
            .map(|healthy| (healthy / tp_size) * tp_size)
            .sum();
        UtilizationReport::new(self.total_gpus(), faulty_gpus, usable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeId;

    #[test]
    fn domain_sizes_match_products() {
        assert_eq!(NvlVariant::Nvl36.domain_gpus(), 36);
        assert_eq!(NvlVariant::Nvl72.domain_gpus(), 72);
        assert_eq!(NvlVariant::Nvl36x2.domain_gpus(), 72);
        assert_eq!(NvlVariant::Nvl576.domain_gpus(), 576);
    }

    #[test]
    fn nvl36_wastes_eleven_percent_for_tp16_even_when_healthy() {
        // 720 nodes x 4 GPUs = 2,880 GPUs = 80 NVL-36 domains.
        let hbd = Nvl::new(720, 4, NvlVariant::Nvl36);
        assert_eq!(hbd.domains(), 80);
        let report = hbd.utilization(&FaultSet::new(), 16);
        // Each domain hosts 2 groups of 16 = 32 GPUs; 4 wasted per domain.
        assert_eq!(report.usable_gpus, 80 * 32);
        let waste = report.waste_ratio();
        assert!((waste - 4.0 / 36.0).abs() < 1e-9, "waste {waste}");
        assert!(waste > 0.11 && waste < 0.12);
    }

    #[test]
    fn nvl72_also_wastes_eleven_percent_for_tp16() {
        let hbd = Nvl::new(720, 4, NvlVariant::Nvl72);
        let report = hbd.utilization(&FaultSet::new(), 16);
        assert!((report.waste_ratio() - 8.0 / 72.0).abs() < 1e-9);
    }

    #[test]
    fn nvl576_has_no_fragmentation_for_power_of_two_tp() {
        let hbd = Nvl::new(720, 4, NvlVariant::Nvl576);
        assert_eq!(hbd.domains(), 5);
        for tp in [8, 16, 32, 64] {
            let report = hbd.utilization(&FaultSet::new(), tp);
            assert_eq!(report.wasted_healthy_gpus, 0, "TP {tp}");
        }
    }

    #[test]
    fn single_fault_fragments_only_its_domain() {
        let hbd = Nvl::new(720, 4, NvlVariant::Nvl72);
        let faults = FaultSet::from_nodes([NodeId(0)]);
        let report = hbd.utilization(&faults, 32);
        // Domain 0 now has 68 healthy GPUs -> 2 groups of 32 = 64, wasting 4.
        // Other 39 domains host 2 groups each with 8 wasted.
        assert_eq!(report.faulty_gpus, 4);
        assert_eq!(report.usable_gpus, 64 + 39 * 64);
    }

    #[test]
    fn fault_explosion_radius_is_domain_level_fragment() {
        let hbd36 = Nvl::new(720, 4, NvlVariant::Nvl36);
        let hbd576 = Nvl::new(720, 4, NvlVariant::Nvl576);
        // For TP-32, losing one node in NVL-576 can cost a whole extra group.
        assert!(hbd576.fault_explosion_radius(32) >= hbd36.fault_explosion_radius(32));
    }

    #[test]
    fn partial_trailing_domain_is_supported() {
        // 100 nodes of 4 GPUs with NVL-72 (18 nodes/domain): 5 full domains
        // plus a 10-node partial domain.
        let hbd = Nvl::new(100, 4, NvlVariant::Nvl72);
        assert_eq!(hbd.domains(), 6);
        let healthy = hbd.healthy_gpus_per_domain(&FaultSet::new());
        assert_eq!(healthy.len(), 6);
        assert_eq!(healthy[5], 40);
        let report = hbd.utilization(&FaultSet::new(), 16);
        assert_eq!(report.total_gpus, 400);
        assert_eq!(report.usable_gpus, 5 * 64 + 32);
    }
}
