//! The **Binary-Hop Ring** — the Appendix-G.3 rewiring of InfiniteHBD for
//! AllToAll (Expert Parallelism) workloads.
//!
//! Instead of connecting node `n` to its neighbours at distance `±1 .. ±K`, the
//! AllToAll variant connects it to the nodes at distance `±1, ±2, ±4, ..,
//! ±2^(K−1)`, matching the partner pattern of the Binary Exchange AllToAll
//! algorithm (node `i` talks to `i ⊕ 2^j`). Each fabric bundle pair still
//! offers one forward and one backward fiber per power of two, and the OCSTrx
//! fast-switch mechanism re-targets the active path between rounds.
//!
//! Appendix G.3 also derives the coupling constraint between the TP and EP
//! dimensions: with `R`-GPU nodes the node exposes `R` bundles, so the product
//! of the intra-node TP size and the inter-node EP group size is bounded by
//! `TP × EP ≤ R · 2^(R−1)` (64 for 4-GPU nodes, 2048 for 8-GPU nodes).

use crate::arch::FaultSet;
use crate::graph::NodeGraph;
use hbd_types::{HbdError, NodeId, Result};
use serde::{Deserialize, Serialize};

/// The ±2^i wiring used for Binary Exchange AllToAll.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryHopRing {
    nodes: usize,
    gpus_per_node: usize,
    k: usize,
}

impl BinaryHopRing {
    /// Creates the wiring over `nodes` nodes with `k` bundles per node
    /// (`k ≤ gpus_per_node`), reaching distances `±2^0 .. ±2^(k−1)`.
    pub fn new(nodes: usize, gpus_per_node: usize, k: usize) -> Result<Self> {
        if nodes == 0 {
            return Err(HbdError::invalid_config(
                "Binary-Hop Ring needs at least one node",
            ));
        }
        if gpus_per_node == 0 {
            return Err(HbdError::invalid_config("nodes need at least one GPU"));
        }
        if k == 0 || k > gpus_per_node {
            return Err(HbdError::invalid_config(format!(
                "K = {k} must be between 1 and the {gpus_per_node} bundles a node can host"
            )));
        }
        if (1usize << (k - 1)) >= nodes {
            return Err(HbdError::invalid_config(format!(
                "the longest hop 2^{} does not fit a {nodes}-node ring",
                k - 1
            )));
        }
        Ok(BinaryHopRing {
            nodes,
            gpus_per_node,
            k,
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// GPUs per node.
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Bundles per node.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The hop distances available from every node (`1, 2, 4, ..., 2^(K−1)`).
    pub fn hop_distances(&self) -> Vec<usize> {
        (0..self.k).map(|j| 1usize << j).collect()
    }

    /// The connectivity graph: node `n` has edges to `n ± 2^j (mod N)`.
    pub fn graph(&self) -> NodeGraph {
        let mut graph = NodeGraph::new(self.nodes);
        for n in 0..self.nodes {
            for d in self.hop_distances() {
                graph.add_edge(NodeId(n), NodeId((n + d) % self.nodes));
            }
        }
        graph
    }

    /// The largest EP group (in nodes) that can run Binary Exchange entirely on
    /// direct links: every partner `i ⊕ 2^j` must be reachable in one hop, so
    /// the group size is capped at `2^K`.
    pub fn max_ep_group_nodes(&self) -> usize {
        1usize << self.k
    }

    /// The Appendix-G.3 coupling constraint: the product of the TP size (GPUs)
    /// and the EP group size (nodes) a single job can combine on this wiring.
    pub fn tp_ep_product_limit(&self) -> usize {
        self.gpus_per_node * self.max_ep_group_nodes()
    }

    /// Whether a `tp_size × ep_nodes` hybrid job satisfies the coupling
    /// constraint.
    pub fn supports_hybrid(&self, tp_size: usize, ep_nodes: usize) -> bool {
        tp_size > 0
            && ep_nodes > 0
            && ep_nodes.is_power_of_two()
            && ep_nodes <= self.max_ep_group_nodes()
            && tp_size * ep_nodes <= self.tp_ep_product_limit()
    }

    /// Checks that an EP group of `group` consecutive healthy nodes starting at
    /// `base` can run every Binary Exchange round on direct links: for every
    /// round `j`, node `base + i` must reach `base + (i ⊕ 2^j)`, i.e. the
    /// offset `2^j` must be one of the wiring's hop distances and neither
    /// endpoint may be faulty.
    pub fn can_run_binary_exchange(&self, base: NodeId, group: usize, faults: &FaultSet) -> bool {
        if group < 2 || !group.is_power_of_two() || group > self.max_ep_group_nodes() {
            return false;
        }
        if base.index() + group > self.nodes {
            return false;
        }
        let rounds = group.trailing_zeros() as usize;
        for i in 0..group {
            let node = NodeId(base.index() + i);
            if faults.is_faulty(node) {
                return false;
            }
            for j in 0..rounds {
                let partner = i ^ (1usize << j);
                let distance = partner.abs_diff(i);
                if !self.hop_distances().contains(&distance) {
                    return false;
                }
            }
        }
        true
    }

    /// Number of OCSTrx fast switches one node performs during a Binary
    /// Exchange over a `group`-node EP group: the active path must re-target a
    /// different partner every round after the first.
    pub fn reconfigurations_per_node(&self, group: usize) -> usize {
        if group < 2 || !group.is_power_of_two() {
            return 0;
        }
        (group.trailing_zeros() as usize).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(BinaryHopRing::new(0, 4, 2).is_err());
        assert!(BinaryHopRing::new(16, 0, 2).is_err());
        assert!(BinaryHopRing::new(16, 4, 0).is_err());
        assert!(BinaryHopRing::new(16, 4, 5).is_err());
        // 2^(k-1) must fit in the ring.
        assert!(BinaryHopRing::new(8, 4, 4).is_err());
        assert!(BinaryHopRing::new(16, 4, 4).is_ok());
    }

    #[test]
    fn hop_distances_are_powers_of_two() {
        let ring = BinaryHopRing::new(64, 4, 4).unwrap();
        assert_eq!(ring.hop_distances(), vec![1, 2, 4, 8]);
        let graph = ring.graph();
        for n in 0..64 {
            assert_eq!(graph.degree(NodeId(n)), 8, "node {n}");
        }
    }

    #[test]
    fn ep_group_limits_follow_appendix_g3() {
        // 4-GPU node: TP x EP <= 64.
        let four = BinaryHopRing::new(256, 4, 4).unwrap();
        assert_eq!(four.max_ep_group_nodes(), 16);
        assert_eq!(four.tp_ep_product_limit(), 64);
        assert!(four.supports_hybrid(4, 4));
        assert!(four.supports_hybrid(4, 16));
        assert!(!four.supports_hybrid(8, 16));
        // 8-GPU node: TP x EP <= 2048.
        let eight = BinaryHopRing::new(1024, 8, 8).unwrap();
        assert_eq!(eight.tp_ep_product_limit(), 2048);
        assert!(eight.supports_hybrid(8, 256));
        assert!(!eight.supports_hybrid(16, 256));
        // Non-power-of-two EP groups are rejected.
        assert!(!four.supports_hybrid(4, 3));
    }

    #[test]
    fn binary_exchange_feasibility_depends_on_group_size_and_faults() {
        let ring = BinaryHopRing::new(64, 4, 3).unwrap();
        // 2^3 = 8-node groups are the maximum.
        assert!(ring.can_run_binary_exchange(NodeId(0), 8, &FaultSet::new()));
        assert!(ring.can_run_binary_exchange(NodeId(16), 4, &FaultSet::new()));
        assert!(!ring.can_run_binary_exchange(NodeId(0), 16, &FaultSet::new()));
        assert!(!ring.can_run_binary_exchange(NodeId(0), 3, &FaultSet::new()));
        // A fault inside the group blocks it.
        let faults = FaultSet::from_nodes([NodeId(2)]);
        assert!(!ring.can_run_binary_exchange(NodeId(0), 8, &faults));
        assert!(ring.can_run_binary_exchange(NodeId(8), 8, &faults));
        // Groups falling off the end of the node range are rejected.
        assert!(!ring.can_run_binary_exchange(NodeId(60), 8, &FaultSet::new()));
    }

    #[test]
    fn reconfiguration_count_is_rounds_minus_one() {
        let ring = BinaryHopRing::new(64, 4, 4).unwrap();
        assert_eq!(ring.reconfigurations_per_node(2), 0);
        assert_eq!(ring.reconfigurations_per_node(8), 2);
        assert_eq!(ring.reconfigurations_per_node(16), 3);
        assert_eq!(ring.reconfigurations_per_node(5), 0);
    }

    #[test]
    fn partner_offsets_inside_a_group_are_always_direct_hops() {
        // Structural property behind `can_run_binary_exchange`: within a group
        // of 2^r <= 2^K nodes, |i xor 2^j - i| = 2^j is a wiring hop.
        let ring = BinaryHopRing::new(128, 8, 5).unwrap();
        for r in 1..=5usize {
            let group = 1usize << r;
            assert!(
                ring.can_run_binary_exchange(NodeId(0), group, &FaultSet::new()),
                "group {group}"
            );
        }
    }
}
