//! The common interface of every HBD architecture, plus the utilization report
//! that the fault-resilience experiments are built on.
//!
//! §2.1 of the paper defines the **GPU waste ratio** of an HBD as
//! `{(HBD_size − N_fault) mod TP_size} / HBD_size` — the healthy GPUs that
//! cannot be used because of fragmentation, topology disconnection or bandwidth
//! degradation. This module generalises that formula to a per-architecture
//! [`UtilizationReport`], letting every architecture apply its own placement
//! constraints (NVLink domains, TPU cubes, ring segments, ...).

use hbd_types::NodeId;
use serde::{Deserialize, Serialize};

/// The set of currently-faulty nodes.
///
/// Faults are tracked at node granularity because the production trace the
/// paper uses records node-level fault events (most are GPU faults, and a node
/// with any faulty GPU is taken out of service for training).
///
/// Internally this is a dense `u64`-word bitset indexed by node id — the
/// fault-resilience sweeps probe `is_faulty` for every node of the cluster at
/// every trace instant, so membership must be O(1) and counting O(words).
/// The serialised form is unchanged from the original `BTreeSet` version: an
/// object holding the sorted faulty-node list (`{"nodes": [3, 17, ...]}`).
#[derive(Clone, Default, Eq)]
pub struct FaultSet {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = u64::BITS as usize;

impl FaultSet {
    /// Creates an empty fault set (fully healthy cluster).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fault set from an iterator of faulty nodes.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let mut set = FaultSet::new();
        for node in nodes {
            set.add(node);
        }
        set
    }

    /// Creates a fault set for a cluster of `cluster_nodes` nodes: the word
    /// storage is sized once up front and ids at or beyond `cluster_nodes`
    /// are ignored. This is the per-instant constructor of the trace replays,
    /// whose traces may cover more nodes than the architecture under study.
    pub fn from_nodes_clamped<I: IntoIterator<Item = NodeId>>(
        cluster_nodes: usize,
        nodes: I,
    ) -> Self {
        let mut set = FaultSet {
            words: vec![0; cluster_nodes.div_ceil(WORD_BITS)],
            len: 0,
        };
        for node in nodes {
            if node.index() < cluster_nodes {
                set.add(node);
            }
        }
        set
    }

    /// Marks a node as faulty. Returns `true` if it was previously healthy.
    pub fn add(&mut self, node: NodeId) -> bool {
        let (word, bit) = (node.index() / WORD_BITS, node.index() % WORD_BITS);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let newly = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += newly as usize;
        newly
    }

    /// Marks a node as repaired. Returns `true` if it was previously faulty.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (word, bit) = (node.index() / WORD_BITS, node.index() % WORD_BITS);
        let Some(slot) = self.words.get_mut(word) else {
            return false;
        };
        let mask = 1u64 << bit;
        let was = *slot & mask != 0;
        *slot &= !mask;
        self.len -= was as usize;
        was
    }

    /// Whether the given node is faulty.
    pub fn is_faulty(&self, node: NodeId) -> bool {
        let (word, bit) = (node.index() / WORD_BITS, node.index() % WORD_BITS);
        self.words.get(word).is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Number of faulty nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no node is faulty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the faulty nodes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            std::iter::successors((word != 0).then_some(word), |w| {
                let rest = w & (w - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |w| NodeId(i * WORD_BITS + w.trailing_zeros() as usize))
        })
    }

    /// Fault ratio over a cluster of `total_nodes` nodes.
    pub fn node_fault_ratio(&self, total_nodes: usize) -> f64 {
        if total_nodes == 0 {
            0.0
        } else {
            self.len() as f64 / total_nodes as f64
        }
    }

    /// Number of faulty nodes with ids in `lo..hi` — a masked popcount over
    /// the word range, O(words touched). Every architecture's utilization
    /// report counts faults over its node range (or per fixed-size domain)
    /// with this instead of probing node by node.
    pub fn count_in_range(&self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            return 0;
        }
        let hi = hi.min(self.words.len() * WORD_BITS);
        if lo >= hi {
            return 0;
        }
        let (lo_word, lo_bit) = (lo / WORD_BITS, lo % WORD_BITS);
        let (hi_word, hi_bit) = (hi / WORD_BITS, hi % WORD_BITS);
        let lo_mask = !0u64 << lo_bit;
        let hi_mask = if hi_bit == 0 {
            0
        } else {
            !0u64 >> (WORD_BITS - hi_bit)
        };
        if lo_word == hi_word {
            return (self.words[lo_word] & lo_mask & hi_mask).count_ones() as usize;
        }
        let mut count = (self.words[lo_word] & lo_mask).count_ones() as usize;
        for &word in &self.words[lo_word + 1..hi_word] {
            count += word.count_ones() as usize;
        }
        if hi_bit != 0 {
            count += (self.words[hi_word] & hi_mask).count_ones() as usize;
        }
        count
    }

    /// Length of the run of consecutive faulty nodes starting at `from`
    /// (zero when `from` is healthy), found by word-wise scanning. Answers
    /// in one query whether a fault run severs a K-Hop line (`run >= K`) —
    /// the question the linear run scan of [`crate::runscan`] resolves with
    /// a gap counter when it is already walking every position anyway.
    pub fn faulty_run(&self, from: NodeId) -> usize {
        let start = from.index();
        let mut pos = start;
        loop {
            let (word, bit) = (pos / WORD_BITS, pos % WORD_BITS);
            let Some(&w) = self.words.get(word) else {
                return pos - start;
            };
            // Healthy bits at or above `bit` within this word, as set bits.
            let healthy = !w & (!0u64 << bit);
            if healthy != 0 {
                return word * WORD_BITS + healthy.trailing_zeros() as usize - start;
            }
            pos = (word + 1) * WORD_BITS;
        }
    }

    /// Returns `self ∪ other` without mutating either side — the what-if
    /// primitive of the placement service, which overlays hypothetical faults
    /// on a shared snapshot it must not touch.
    #[must_use]
    pub fn union(&self, other: &FaultSet) -> FaultSet {
        let mut merged = self.clone();
        merged.union_with(other);
        merged
    }

    /// The stored word at index `i`, with words past the allocated capacity
    /// reading as all-healthy. The range operations below use this so two
    /// sets with different capacities agree on every range.
    fn word_at(&self, i: usize) -> u64 {
        self.words.get(i).copied().unwrap_or(0)
    }

    /// Whether `self` and `other` agree on every node id in `lo..hi` — a
    /// masked word-wise comparison following the `count_in_range` idiom,
    /// O(words touched). This is the segment-fingerprint check of the
    /// incremental publish path: a placement segment whose fault words are
    /// unchanged across epochs needs no re-orchestration.
    pub fn range_eq(&self, other: &FaultSet, lo: usize, hi: usize) -> bool {
        if lo >= hi {
            return true;
        }
        let hi = hi.min(self.words.len().max(other.words.len()) * WORD_BITS);
        if lo >= hi {
            return true;
        }
        let (lo_word, lo_bit) = (lo / WORD_BITS, lo % WORD_BITS);
        let hi_word = (hi - 1) / WORD_BITS;
        for w in lo_word..=hi_word {
            let mut mask = !0u64;
            if w == lo_word {
                mask &= !0u64 << lo_bit;
            }
            if w == hi_word {
                let hi_bit = hi - hi_word * WORD_BITS;
                if hi_bit < WORD_BITS {
                    mask &= !0u64 >> (WORD_BITS - hi_bit);
                }
            }
            if (self.word_at(w) ^ other.word_at(w)) & mask != 0 {
                return false;
            }
        }
        true
    }

    /// Overwrites the node ids in `lo..hi` of `self` with the corresponding
    /// bits of `src`, leaving every id outside the range untouched — the
    /// word-splice primitive the incremental publish path uses to patch one
    /// aggregation domain of an effective fault set without rebuilding the
    /// rest. `len` is adjusted by the masked popcount delta, O(words
    /// touched).
    pub fn splice_range(&mut self, src: &FaultSet, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        let hi = hi.min(self.words.len().max(src.words.len()) * WORD_BITS);
        if lo >= hi {
            return;
        }
        let (lo_word, lo_bit) = (lo / WORD_BITS, lo % WORD_BITS);
        let hi_word = (hi - 1) / WORD_BITS;
        if hi_word >= self.words.len() {
            self.words.resize(hi_word + 1, 0);
        }
        for w in lo_word..=hi_word {
            let mut mask = !0u64;
            if w == lo_word {
                mask &= !0u64 << lo_bit;
            }
            if w == hi_word {
                let hi_bit = hi - hi_word * WORD_BITS;
                if hi_bit < WORD_BITS {
                    mask &= !0u64 >> (WORD_BITS - hi_bit);
                }
            }
            let incoming = src.word_at(w) & mask;
            let slot = &mut self.words[w];
            let outgoing = *slot & mask;
            self.len = self.len - outgoing.count_ones() as usize + incoming.count_ones() as usize;
            *slot = (*slot & !mask) | incoming;
        }
    }

    /// Iterates over the faulty nodes with ids in `lo..hi` in ascending
    /// order, touching only the words covering the range.
    pub fn iter_range(&self, lo: usize, hi: usize) -> impl Iterator<Item = NodeId> + '_ {
        let hi = hi.min(self.words.len() * WORD_BITS);
        let lo = lo.min(hi);
        let lo_word = lo / WORD_BITS;
        let hi_word = hi.div_ceil(WORD_BITS);
        self.words[lo_word..hi_word]
            .iter()
            .enumerate()
            .flat_map(move |(off, &word)| {
                let i = lo_word + off;
                let mut w = word;
                if i == lo_word {
                    w &= !0u64 << (lo % WORD_BITS);
                }
                let base = i * WORD_BITS;
                if base + WORD_BITS > hi {
                    let hi_bit = hi - base;
                    if hi_bit < WORD_BITS {
                        w &= !0u64 >> (WORD_BITS - hi_bit);
                    }
                }
                std::iter::successors((w != 0).then_some(w), |v| {
                    let rest = v & (v - 1);
                    (rest != 0).then_some(rest)
                })
                .map(move |v| NodeId(i * WORD_BITS + v.trailing_zeros() as usize))
            })
    }

    /// Capacity of the stored words in node ids. Ranges at or beyond this
    /// bound are all-healthy in `self`; the incremental publish path uses it
    /// to size the tail region it must compare and splice.
    pub fn capacity(&self) -> usize {
        self.words.len() * WORD_BITS
    }

    /// Adds every faulty node of `other` to `self` — a word-wise OR,
    /// O(words).
    pub fn union_with(&mut self, other: &FaultSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut len = 0usize;
        for (slot, &word) in self.words.iter_mut().zip(other.words.iter()) {
            *slot |= word;
            len += slot.count_ones() as usize;
        }
        for &word in &self.words[other.words.len()..] {
            len += word.count_ones() as usize;
        }
        self.len = len;
    }
}

impl PartialEq for FaultSet {
    fn eq(&self, other: &Self) -> bool {
        // Capacity (trailing zero words) is not part of the set's identity.
        if self.len != other.len {
            return false;
        }
        let shared = self.words.len().min(other.words.len());
        self.words[..shared] == other.words[..shared]
            && self.words[shared..].iter().all(|&w| w == 0)
            && other.words[shared..].iter().all(|&w| w == 0)
    }
}

impl std::fmt::Debug for FaultSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

// Hand-written serde keeping the wire format of the original
// `struct FaultSet { nodes: BTreeSet<NodeId> }`: an object with a single
// `nodes` key holding the sorted faulty-node array.
impl Serialize for FaultSet {
    fn to_value(&self) -> serde::value::Value {
        let nodes: Vec<serde::value::Value> =
            self.iter().map(|node| Serialize::to_value(&node)).collect();
        let mut map = serde::value::Map::new();
        map.insert(String::from("nodes"), serde::value::Value::Array(nodes));
        serde::value::Value::Object(map)
    }
}

impl Deserialize for FaultSet {
    fn from_value(value: &serde::value::Value) -> Result<Self, serde::de::Error> {
        let object = value.as_object().ok_or_else(|| {
            serde::de::Error::custom(format!("expected object for FaultSet, found {value}"))
        })?;
        let nodes = object
            .get("nodes")
            .ok_or_else(|| serde::de::Error::custom("FaultSet: missing field `nodes`"))?;
        let nodes: Vec<NodeId> = Deserialize::from_value(nodes)?;
        Ok(FaultSet::from_nodes(nodes))
    }
}

impl FromIterator<NodeId> for FaultSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        Self::from_nodes(iter)
    }
}

/// How many GPUs an architecture can actually put to work under a given fault
/// pattern and TP size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Total GPUs in the cluster (healthy + faulty).
    pub total_gpus: usize,
    /// GPUs on faulty nodes.
    pub faulty_gpus: usize,
    /// Healthy GPUs that can be organised into complete TP groups under the
    /// architecture's placement constraints.
    pub usable_gpus: usize,
    /// Healthy GPUs that cannot be used (fragmentation, broken rings, cube
    /// granularity, reserved backups, ...).
    pub wasted_healthy_gpus: usize,
}

impl UtilizationReport {
    /// Builds a report, checking internal consistency.
    pub fn new(total_gpus: usize, faulty_gpus: usize, usable_gpus: usize) -> Self {
        assert!(
            faulty_gpus + usable_gpus <= total_gpus,
            "faulty ({faulty_gpus}) + usable ({usable_gpus}) GPUs exceed total ({total_gpus})"
        );
        UtilizationReport {
            total_gpus,
            faulty_gpus,
            usable_gpus,
            wasted_healthy_gpus: total_gpus - faulty_gpus - usable_gpus,
        }
    }

    /// Healthy GPUs (usable + wasted).
    pub fn healthy_gpus(&self) -> usize {
        self.total_gpus - self.faulty_gpus
    }

    /// The paper's *GPU waste ratio*: wasted healthy GPUs over total GPUs.
    pub fn waste_ratio(&self) -> f64 {
        if self.total_gpus == 0 {
            0.0
        } else {
            self.wasted_healthy_gpus as f64 / self.total_gpus as f64
        }
    }

    /// Fraction of all GPUs that are usable.
    pub fn usable_ratio(&self) -> f64 {
        if self.total_gpus == 0 {
            0.0
        } else {
            self.usable_gpus as f64 / self.total_gpus as f64
        }
    }

    /// Number of complete TP groups of `tp_size` GPUs that fit in the usable
    /// capacity.
    pub fn tp_groups(&self, tp_size: usize) -> usize {
        assert!(tp_size > 0, "TP size must be positive");
        self.usable_gpus / tp_size
    }
}

/// Which family an architecture belongs to (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchitectureKind {
    /// Switch chips provide all connectivity (NVL series).
    SwitchCentric,
    /// Direct GPU-to-GPU links, GPUs forward traffic (Dojo, TPUv3, SiP-Ring).
    GpuCentric,
    /// GPU meshes stitched by centralized optical switches (TPUv4/TPUv5p).
    SwitchGpuHybrid,
    /// OCS embedded in every transceiver (InfiniteHBD).
    TransceiverCentric,
    /// The idealised Big-Switch upper bound.
    Ideal,
}

/// Common behaviour of every HBD architecture in the evaluation.
///
/// `Send + Sync` are supertraits so that `&dyn HbdArchitecture` can be shared
/// with the scoped fan-out pool (`hbd_types::par`) — every implementor is
/// plain immutable data.
pub trait HbdArchitecture: Send + Sync {
    /// Human-readable name, matching the legend strings of the paper's figures.
    fn name(&self) -> &str;

    /// Architecture family.
    fn kind(&self) -> ArchitectureKind;

    /// Number of nodes in the cluster.
    fn nodes(&self) -> usize;

    /// GPUs per node.
    fn gpus_per_node(&self) -> usize;

    /// Total GPUs in the cluster.
    fn total_gpus(&self) -> usize {
        self.nodes() * self.gpus_per_node()
    }

    /// Computes how many GPUs can be organised into complete TP groups of
    /// `tp_size` GPUs when the nodes in `faults` are out of service.
    fn utilization(&self, faults: &FaultSet, tp_size: usize) -> UtilizationReport;

    /// The *fault explosion radius* of a single node fault: how many GPUs
    /// (including the faulty node's own) lose full bandwidth when one node
    /// fails in an otherwise healthy cluster. Table 1 compares architectures on
    /// this metric.
    fn fault_explosion_radius(&self, tp_size: usize) -> usize {
        let baseline = self.utilization(&FaultSet::new(), tp_size);
        let mut faults = FaultSet::new();
        faults.add(NodeId(self.nodes() / 2));
        let degraded = self.utilization(&faults, tp_size);
        baseline.usable_gpus.saturating_sub(degraded.usable_gpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_set_basic_operations() {
        let mut faults = FaultSet::new();
        assert!(faults.is_empty());
        assert!(faults.add(NodeId(3)));
        assert!(!faults.add(NodeId(3)));
        assert!(faults.is_faulty(NodeId(3)));
        assert!(!faults.is_faulty(NodeId(4)));
        assert_eq!(faults.len(), 1);
        assert!(faults.remove(NodeId(3)));
        assert!(!faults.remove(NodeId(3)));
        assert!(faults.is_empty());
    }

    #[test]
    fn fault_set_from_iterator_deduplicates() {
        let faults: FaultSet = [NodeId(1), NodeId(2), NodeId(1)].into_iter().collect();
        assert_eq!(faults.len(), 2);
        let nodes: Vec<NodeId> = faults.iter().collect();
        assert_eq!(nodes, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn clamped_constructor_filters_and_matches_filtered_from_nodes() {
        let ids = [
            NodeId(0),
            NodeId(63),
            NodeId(64),
            NodeId(719),
            NodeId(720),
            NodeId(901),
        ];
        let clamped = FaultSet::from_nodes_clamped(720, ids);
        let filtered = FaultSet::from_nodes(ids.into_iter().filter(|n| n.index() < 720));
        assert_eq!(clamped, filtered);
        assert_eq!(clamped.len(), 4);
        assert!(!clamped.is_faulty(NodeId(720)));
        // Degenerate cluster sizes behave.
        assert!(FaultSet::from_nodes_clamped(0, [NodeId(0)]).is_empty());
    }

    #[test]
    fn equality_ignores_bitset_capacity() {
        // Two sets with the same members must compare equal even when their
        // word vectors have different lengths (e.g. after a remove).
        let mut a = FaultSet::from_nodes([NodeId(3), NodeId(500)]);
        a.remove(NodeId(500));
        let b = FaultSet::from_nodes([NodeId(3)]);
        assert_eq!(a, b);
        assert_eq!(b, a);
        assert_ne!(a, FaultSet::from_nodes([NodeId(4)]));
        assert_ne!(a, FaultSet::new());
    }

    #[test]
    fn iter_is_ascending_across_words() {
        let ids = [0usize, 1, 63, 64, 65, 127, 128, 400];
        let faults = FaultSet::from_nodes(ids.iter().rev().map(|&i| NodeId(i)));
        let out: Vec<usize> = faults.iter().map(|n| n.index()).collect();
        assert_eq!(out, ids);
        assert_eq!(faults.len(), ids.len());
    }

    #[test]
    fn count_in_range_is_a_masked_popcount() {
        let faults = FaultSet::from_nodes([0, 5, 63, 64, 100, 130].map(NodeId));
        assert_eq!(faults.count_in_range(0, 200), 6);
        assert_eq!(faults.count_in_range(0, 64), 3);
        assert_eq!(faults.count_in_range(63, 65), 2);
        assert_eq!(faults.count_in_range(64, 64), 0);
        assert_eq!(faults.count_in_range(101, 130), 0);
        assert_eq!(faults.count_in_range(100, 131), 2);
        // Ranges past the stored words are all healthy.
        assert_eq!(faults.count_in_range(500, 1000), 0);
        assert_eq!(faults.count_in_range(10, 5), 0);
    }

    #[test]
    fn range_eq_compares_masked_words() {
        let a = FaultSet::from_nodes([0, 5, 63, 64, 100, 130].map(NodeId));
        let mut b = a.clone();
        assert!(a.range_eq(&b, 0, 200));
        b.remove(NodeId(100));
        assert!(a.range_eq(&b, 0, 100));
        assert!(a.range_eq(&b, 101, 200));
        assert!(!a.range_eq(&b, 100, 101));
        assert!(!a.range_eq(&b, 0, 200));
        // Degenerate and out-of-capacity ranges always agree.
        assert!(a.range_eq(&b, 64, 64));
        assert!(a.range_eq(&b, 10, 5));
        assert!(a.range_eq(&b, 500, 10_000));
        // Capacity differences are invisible: a freshly-allocated empty set
        // agrees with a trimmed one everywhere it has no bits.
        let wide = FaultSet::from_nodes_clamped(4096, [NodeId(70)]);
        let narrow = FaultSet::from_nodes([NodeId(70)]);
        assert!(wide.range_eq(&narrow, 0, 4096));
        assert!(narrow.range_eq(&wide, 0, 4096));
    }

    #[test]
    fn splice_range_overwrites_only_the_range() {
        let src = FaultSet::from_nodes([0, 5, 63, 64, 100, 130].map(NodeId));
        let mut dst = FaultSet::from_nodes([2, 63, 70, 200].map(NodeId));
        dst.splice_range(&src, 63, 101);
        // Inside [63, 101): src's bits {63, 64, 100}. Outside: dst's {2, 200}.
        let expect = FaultSet::from_nodes([2, 63, 64, 100, 200].map(NodeId));
        assert_eq!(dst, expect);
        assert_eq!(dst.len(), 5);
        // Splicing a range past both capacities is a no-op.
        let before = dst.clone();
        dst.splice_range(&src, 5000, 6000);
        assert_eq!(dst, before);
        // Splicing in a longer source grows the destination.
        let tall = FaultSet::from_nodes([NodeId(900)]);
        dst.splice_range(&tall, 256, 1024);
        assert!(dst.is_faulty(NodeId(900)));
        assert_eq!(dst.len(), 6);
        // Sub-word splice keeps neighbours on both sides of the same word.
        let mut w = FaultSet::from_nodes([16, 20, 24].map(NodeId));
        w.splice_range(&FaultSet::from_nodes([NodeId(21)]), 18, 23);
        assert_eq!(w, FaultSet::from_nodes([16, 21, 24].map(NodeId)));
    }

    #[test]
    fn splice_full_range_reproduces_the_source() {
        let src = FaultSet::from_nodes([0, 5, 63, 64, 100, 130].map(NodeId));
        let mut dst = FaultSet::from_nodes([2, 63, 70, 200].map(NodeId));
        let hi = src.capacity().max(dst.capacity());
        dst.splice_range(&src, 0, hi);
        assert_eq!(dst, src);
        assert_eq!(dst.len(), src.len());
    }

    #[test]
    fn iter_range_is_the_masked_iterator() {
        let faults = FaultSet::from_nodes([0, 5, 63, 64, 100, 130].map(NodeId));
        let ids = |lo, hi| {
            faults
                .iter_range(lo, hi)
                .map(|n| n.index())
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(0, 200), vec![0, 5, 63, 64, 100, 130]);
        assert_eq!(ids(5, 64), vec![5, 63]);
        assert_eq!(ids(64, 64), Vec::<usize>::new());
        assert_eq!(ids(64, 65), vec![64]);
        assert_eq!(ids(101, 130), Vec::<usize>::new());
        assert_eq!(ids(500, 1000), Vec::<usize>::new());
        assert_eq!(ids(10, 5), Vec::<usize>::new());
    }

    #[test]
    fn faulty_run_measures_consecutive_faults() {
        let faults = FaultSet::from_nodes((60..70).chain(100..101).map(NodeId));
        assert_eq!(faults.faulty_run(NodeId(59)), 0);
        assert_eq!(faults.faulty_run(NodeId(60)), 10);
        assert_eq!(faults.faulty_run(NodeId(65)), 5);
        assert_eq!(faults.faulty_run(NodeId(100)), 1);
        assert_eq!(faults.faulty_run(NodeId(500)), 0);
        // A run that extends to the end of the stored words terminates there.
        let tail = FaultSet::from_nodes((120..128).map(NodeId));
        assert_eq!(tail.faulty_run(NodeId(120)), 8);
    }

    #[test]
    fn union_with_merges_and_recounts() {
        let mut a = FaultSet::from_nodes([NodeId(1), NodeId(70)]);
        let b = FaultSet::from_nodes([NodeId(1), NodeId(2), NodeId(300)]);
        a.union_with(&b);
        assert_eq!(a.len(), 4);
        let expect = FaultSet::from_nodes([NodeId(1), NodeId(2), NodeId(70), NodeId(300)]);
        assert_eq!(a, expect);
        // Union with a shorter set keeps the longer tail.
        let mut c = FaultSet::from_nodes([NodeId(300)]);
        c.union_with(&FaultSet::from_nodes([NodeId(0)]));
        assert_eq!(c, FaultSet::from_nodes([NodeId(0), NodeId(300)]));
    }

    #[test]
    fn union_is_the_non_mutating_overlay() {
        let base = FaultSet::from_nodes([NodeId(1), NodeId(70)]);
        let extra = FaultSet::from_nodes([NodeId(2), NodeId(300)]);
        let merged = base.union(&extra);
        let expect = FaultSet::from_nodes([NodeId(1), NodeId(2), NodeId(70), NodeId(300)]);
        assert_eq!(merged, expect);
        assert_eq!(merged.len(), 4);
        // Neither operand moved.
        assert_eq!(base, FaultSet::from_nodes([NodeId(1), NodeId(70)]));
        assert_eq!(extra, FaultSet::from_nodes([NodeId(2), NodeId(300)]));
    }

    #[test]
    fn serde_shape_is_the_sorted_node_list() {
        // The bitset rewrite must keep the original wire format: an object
        // with a single `nodes` key holding the ascending faulty-node array.
        let faults = FaultSet::from_nodes([NodeId(130), NodeId(5), NodeId(64)]);
        let json = serde_json::to_string(&faults).expect("serialises");
        assert_eq!(json, r#"{"nodes":[5,64,130]}"#);
        let back: FaultSet = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, faults);
        // Empty set round-trips too.
        let empty_json = serde_json::to_string(&FaultSet::new()).expect("serialises");
        assert_eq!(empty_json, r#"{"nodes":[]}"#);
        let back: FaultSet = serde_json::from_str(&empty_json).expect("deserialises");
        assert!(back.is_empty());
    }

    #[test]
    fn fault_ratio_is_fraction_of_nodes() {
        let faults = FaultSet::from_nodes([NodeId(0), NodeId(5)]);
        assert!((faults.node_fault_ratio(100) - 0.02).abs() < 1e-12);
        assert_eq!(faults.node_fault_ratio(0), 0.0);
    }

    #[test]
    fn utilization_report_accounts_for_every_gpu() {
        let report = UtilizationReport::new(2880, 40, 2816);
        assert_eq!(report.wasted_healthy_gpus, 24);
        assert_eq!(report.healthy_gpus(), 2840);
        assert!((report.waste_ratio() - 24.0 / 2880.0).abs() < 1e-12);
        assert!((report.usable_ratio() - 2816.0 / 2880.0).abs() < 1e-12);
        assert_eq!(report.tp_groups(32), 88);
    }

    #[test]
    #[should_panic(expected = "exceed total")]
    fn inconsistent_report_is_rejected() {
        let _ = UtilizationReport::new(100, 60, 60);
    }

    #[test]
    fn empty_cluster_report_is_all_zero() {
        let report = UtilizationReport::new(0, 0, 0);
        assert_eq!(report.waste_ratio(), 0.0);
        assert_eq!(report.usable_ratio(), 0.0);
    }
}
