//! The common interface of every HBD architecture, plus the utilization report
//! that the fault-resilience experiments are built on.
//!
//! §2.1 of the paper defines the **GPU waste ratio** of an HBD as
//! `{(HBD_size − N_fault) mod TP_size} / HBD_size` — the healthy GPUs that
//! cannot be used because of fragmentation, topology disconnection or bandwidth
//! degradation. This module generalises that formula to a per-architecture
//! [`UtilizationReport`], letting every architecture apply its own placement
//! constraints (NVLink domains, TPU cubes, ring segments, ...).

use hbd_types::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The set of currently-faulty nodes.
///
/// Faults are tracked at node granularity because the production trace the
/// paper uses records node-level fault events (most are GPU faults, and a node
/// with any faulty GPU is taken out of service for training).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    nodes: BTreeSet<NodeId>,
}

impl FaultSet {
    /// Creates an empty fault set (fully healthy cluster).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fault set from an iterator of faulty nodes.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        FaultSet {
            nodes: nodes.into_iter().collect(),
        }
    }

    /// Marks a node as faulty. Returns `true` if it was previously healthy.
    pub fn add(&mut self, node: NodeId) -> bool {
        self.nodes.insert(node)
    }

    /// Marks a node as repaired. Returns `true` if it was previously faulty.
    pub fn remove(&mut self, node: NodeId) -> bool {
        self.nodes.remove(&node)
    }

    /// Whether the given node is faulty.
    pub fn is_faulty(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Number of faulty nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no node is faulty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over the faulty nodes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Fault ratio over a cluster of `total_nodes` nodes.
    pub fn node_fault_ratio(&self, total_nodes: usize) -> f64 {
        if total_nodes == 0 {
            0.0
        } else {
            self.len() as f64 / total_nodes as f64
        }
    }
}

impl FromIterator<NodeId> for FaultSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        Self::from_nodes(iter)
    }
}

/// How many GPUs an architecture can actually put to work under a given fault
/// pattern and TP size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Total GPUs in the cluster (healthy + faulty).
    pub total_gpus: usize,
    /// GPUs on faulty nodes.
    pub faulty_gpus: usize,
    /// Healthy GPUs that can be organised into complete TP groups under the
    /// architecture's placement constraints.
    pub usable_gpus: usize,
    /// Healthy GPUs that cannot be used (fragmentation, broken rings, cube
    /// granularity, reserved backups, ...).
    pub wasted_healthy_gpus: usize,
}

impl UtilizationReport {
    /// Builds a report, checking internal consistency.
    pub fn new(total_gpus: usize, faulty_gpus: usize, usable_gpus: usize) -> Self {
        assert!(
            faulty_gpus + usable_gpus <= total_gpus,
            "faulty ({faulty_gpus}) + usable ({usable_gpus}) GPUs exceed total ({total_gpus})"
        );
        UtilizationReport {
            total_gpus,
            faulty_gpus,
            usable_gpus,
            wasted_healthy_gpus: total_gpus - faulty_gpus - usable_gpus,
        }
    }

    /// Healthy GPUs (usable + wasted).
    pub fn healthy_gpus(&self) -> usize {
        self.total_gpus - self.faulty_gpus
    }

    /// The paper's *GPU waste ratio*: wasted healthy GPUs over total GPUs.
    pub fn waste_ratio(&self) -> f64 {
        if self.total_gpus == 0 {
            0.0
        } else {
            self.wasted_healthy_gpus as f64 / self.total_gpus as f64
        }
    }

    /// Fraction of all GPUs that are usable.
    pub fn usable_ratio(&self) -> f64 {
        if self.total_gpus == 0 {
            0.0
        } else {
            self.usable_gpus as f64 / self.total_gpus as f64
        }
    }

    /// Number of complete TP groups of `tp_size` GPUs that fit in the usable
    /// capacity.
    pub fn tp_groups(&self, tp_size: usize) -> usize {
        assert!(tp_size > 0, "TP size must be positive");
        self.usable_gpus / tp_size
    }
}

/// Which family an architecture belongs to (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchitectureKind {
    /// Switch chips provide all connectivity (NVL series).
    SwitchCentric,
    /// Direct GPU-to-GPU links, GPUs forward traffic (Dojo, TPUv3, SiP-Ring).
    GpuCentric,
    /// GPU meshes stitched by centralized optical switches (TPUv4/TPUv5p).
    SwitchGpuHybrid,
    /// OCS embedded in every transceiver (InfiniteHBD).
    TransceiverCentric,
    /// The idealised Big-Switch upper bound.
    Ideal,
}

/// Common behaviour of every HBD architecture in the evaluation.
///
/// `Send + Sync` are supertraits so that `&dyn HbdArchitecture` can be shared
/// with the scoped fan-out pool (`hbd_types::par`) — every implementor is
/// plain immutable data.
pub trait HbdArchitecture: Send + Sync {
    /// Human-readable name, matching the legend strings of the paper's figures.
    fn name(&self) -> &str;

    /// Architecture family.
    fn kind(&self) -> ArchitectureKind;

    /// Number of nodes in the cluster.
    fn nodes(&self) -> usize;

    /// GPUs per node.
    fn gpus_per_node(&self) -> usize;

    /// Total GPUs in the cluster.
    fn total_gpus(&self) -> usize {
        self.nodes() * self.gpus_per_node()
    }

    /// Computes how many GPUs can be organised into complete TP groups of
    /// `tp_size` GPUs when the nodes in `faults` are out of service.
    fn utilization(&self, faults: &FaultSet, tp_size: usize) -> UtilizationReport;

    /// The *fault explosion radius* of a single node fault: how many GPUs
    /// (including the faulty node's own) lose full bandwidth when one node
    /// fails in an otherwise healthy cluster. Table 1 compares architectures on
    /// this metric.
    fn fault_explosion_radius(&self, tp_size: usize) -> usize {
        let baseline = self.utilization(&FaultSet::new(), tp_size);
        let mut faults = FaultSet::new();
        faults.add(NodeId(self.nodes() / 2));
        let degraded = self.utilization(&faults, tp_size);
        baseline.usable_gpus.saturating_sub(degraded.usable_gpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_set_basic_operations() {
        let mut faults = FaultSet::new();
        assert!(faults.is_empty());
        assert!(faults.add(NodeId(3)));
        assert!(!faults.add(NodeId(3)));
        assert!(faults.is_faulty(NodeId(3)));
        assert!(!faults.is_faulty(NodeId(4)));
        assert_eq!(faults.len(), 1);
        assert!(faults.remove(NodeId(3)));
        assert!(!faults.remove(NodeId(3)));
        assert!(faults.is_empty());
    }

    #[test]
    fn fault_set_from_iterator_deduplicates() {
        let faults: FaultSet = [NodeId(1), NodeId(2), NodeId(1)].into_iter().collect();
        assert_eq!(faults.len(), 2);
        let nodes: Vec<NodeId> = faults.iter().collect();
        assert_eq!(nodes, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn fault_ratio_is_fraction_of_nodes() {
        let faults = FaultSet::from_nodes([NodeId(0), NodeId(5)]);
        assert!((faults.node_fault_ratio(100) - 0.02).abs() < 1e-12);
        assert_eq!(faults.node_fault_ratio(0), 0.0);
    }

    #[test]
    fn utilization_report_accounts_for_every_gpu() {
        let report = UtilizationReport::new(2880, 40, 2816);
        assert_eq!(report.wasted_healthy_gpus, 24);
        assert_eq!(report.healthy_gpus(), 2840);
        assert!((report.waste_ratio() - 24.0 / 2880.0).abs() < 1e-12);
        assert!((report.usable_ratio() - 2816.0 / 2880.0).abs() < 1e-12);
        assert_eq!(report.tp_groups(32), 88);
    }

    #[test]
    #[should_panic(expected = "exceed total")]
    fn inconsistent_report_is_rejected() {
        let _ = UtilizationReport::new(100, 60, 60);
    }

    #[test]
    fn empty_cluster_report_is_all_zero() {
        let report = UtilizationReport::new(0, 0, 0);
        assert_eq!(report.waste_ratio(), 0.0);
        assert_eq!(report.usable_ratio(), 0.0);
    }
}
