//! Per-architecture bills of materials (Table 8).
//!
//! Each BOM records the reference deployment unit the paper priced (e.g. one
//! NVL-72 rack of 72 GPUs, one 4-GPU InfiniteHBD node, a 4,096-TPU TPUv4 pod)
//! and the component quantities inside it. Costs are then normalised per GPU
//! and per GBps of per-GPU HBD bandwidth to produce Table 6.

use crate::components::Component;
use hbd_types::{Dollars, GBps, Watts};
use serde::{Deserialize, Serialize};

/// One line of a bill of materials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BomLine {
    /// The component.
    pub component: Component,
    /// How many units the reference deployment needs.
    pub quantity: usize,
}

impl BomLine {
    /// Creates a BOM line.
    pub const fn new(component: Component, quantity: usize) -> Self {
        BomLine {
            component,
            quantity,
        }
    }

    /// Total cost of the line.
    pub fn cost(&self) -> Dollars {
        self.component.unit_cost * self.quantity
    }

    /// Total power of the line.
    pub fn power(&self) -> Watts {
        self.component.unit_power * self.quantity
    }
}

/// The bill of materials of one architecture's reference deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchitectureBom {
    /// Architecture name (matches the Table 6 / Table 8 rows).
    pub name: String,
    /// GPUs in the reference deployment.
    pub gpus: usize,
    /// Per-GPU HBD bandwidth of the architecture.
    pub per_gpu_bandwidth: GBps,
    /// The component lines.
    pub lines: Vec<BomLine>,
}

impl ArchitectureBom {
    /// Total interconnect cost of the reference deployment.
    pub fn total_cost(&self) -> Dollars {
        self.lines.iter().map(|l| l.cost()).sum()
    }

    /// Total interconnect power of the reference deployment.
    pub fn total_power(&self) -> Watts {
        self.lines.iter().map(|l| l.power()).sum()
    }

    /// Interconnect cost per GPU.
    pub fn cost_per_gpu(&self) -> Dollars {
        self.total_cost() / self.gpus as f64
    }

    /// Interconnect power per GPU.
    pub fn power_per_gpu(&self) -> Watts {
        self.total_power() / self.gpus as f64
    }

    /// Interconnect cost per GPU per GBps of HBD bandwidth (the first Table-6
    /// normalisation).
    pub fn cost_per_gbyteps(&self) -> f64 {
        self.cost_per_gpu() / self.per_gpu_bandwidth
    }

    /// Interconnect power per GPU per GBps of HBD bandwidth.
    pub fn power_per_gbyteps(&self) -> f64 {
        self.power_per_gpu() / self.per_gpu_bandwidth
    }

    // ----- Table 8 reference deployments -----------------------------------

    /// Google TPUv4: 4,096 TPUs at 300 GBps each.
    pub fn tpuv4() -> Self {
        ArchitectureBom {
            name: "TPUv4".to_string(),
            gpus: 4096,
            per_gpu_bandwidth: GBps(300.0),
            lines: vec![
                BomLine::new(Component::ocs_switch(), 48),
                BomLine::new(Component::dac_tpuv4(), 5120),
                BomLine::new(Component::optical_module_400g(), 6144),
                BomLine::new(Component::fiber(50.0), 6144),
            ],
        }
    }

    /// NVIDIA GB200 NVL-36: 36 GPUs at 900 GBps each.
    pub fn nvl36() -> Self {
        ArchitectureBom {
            name: "NVL-36".to_string(),
            gpus: 36,
            per_gpu_bandwidth: GBps(900.0),
            lines: vec![
                BomLine::new(Component::nvlink_switch(), 9),
                BomLine::new(Component::dac_nvl(), 2592),
            ],
        }
    }

    /// NVIDIA GB200 NVL-72: 72 GPUs at 900 GBps each.
    pub fn nvl72() -> Self {
        ArchitectureBom {
            name: "NVL-72".to_string(),
            gpus: 72,
            per_gpu_bandwidth: GBps(900.0),
            lines: vec![
                BomLine::new(Component::nvlink_switch(), 18),
                BomLine::new(Component::dac_nvl(), 5184),
            ],
        }
    }

    /// NVIDIA GB200 NVL-36x2: two NVL-36 racks joined into a 72-GPU domain.
    pub fn nvl36x2() -> Self {
        ArchitectureBom {
            name: "NVL-36x2".to_string(),
            gpus: 72,
            per_gpu_bandwidth: GBps(900.0),
            lines: vec![
                BomLine::new(Component::nvlink_switch(), 36),
                BomLine::new(Component::dac_nvl(), 6480),
                BomLine::new(Component::acc_cable(), 162),
            ],
        }
    }

    /// NVIDIA GB200 NVL-576: 576 GPUs behind a two-layer NVLink switch fabric.
    pub fn nvl576() -> Self {
        ArchitectureBom {
            name: "NVL-576".to_string(),
            gpus: 576,
            per_gpu_bandwidth: GBps(900.0),
            lines: vec![
                BomLine::new(Component::nvlink_switch(), 432),
                BomLine::new(Component::dac_nvl(), 41472),
                BomLine::new(Component::optical_module_1600g(), 4608),
                BomLine::new(Component::fiber(200.0), 4608),
            ],
        }
    }

    /// Alibaba HPN DCN reference (included in Table 8 for context).
    pub fn alibaba_hpn() -> Self {
        ArchitectureBom {
            name: "Alibaba HPN".to_string(),
            gpus: 16_320,
            per_gpu_bandwidth: GBps(50.0),
            lines: vec![
                BomLine::new(Component::electrical_packet_switch(), 360),
                BomLine::new(Component::dac_nvl(), 32_640),
                BomLine::new(Component::optical_module_400g(), 28_800),
                BomLine::new(Component::fiber(50.0), 14_400),
            ],
        }
    }

    /// InfiniteHBD with K = 2: a 4-GPU node at 800 GBps per GPU, two bundles of
    /// eight OCSTrx plus DAC links for the idle GPU pairs.
    pub fn infinitehbd_k2() -> Self {
        ArchitectureBom {
            name: "InfiniteHBD(K=2)".to_string(),
            gpus: 4,
            per_gpu_bandwidth: GBps(800.0),
            lines: vec![
                BomLine::new(Component::dac_infinitehbd(), 4),
                BomLine::new(Component::ocstrx(), 16),
                BomLine::new(Component::fiber(100.0), 16),
            ],
        }
    }

    /// InfiniteHBD with K = 3: three bundles of eight OCSTrx per 4-GPU node.
    pub fn infinitehbd_k3() -> Self {
        ArchitectureBom {
            name: "InfiniteHBD(K=3)".to_string(),
            gpus: 4,
            per_gpu_bandwidth: GBps(800.0),
            lines: vec![
                BomLine::new(Component::dac_infinitehbd(), 2),
                BomLine::new(Component::ocstrx(), 24),
                BomLine::new(Component::fiber(100.0), 24),
            ],
        }
    }

    /// All Table-6 rows in the paper's order.
    pub fn table6_rows() -> Vec<ArchitectureBom> {
        vec![
            Self::tpuv4(),
            Self::nvl36(),
            Self::nvl72(),
            Self::nvl36x2(),
            Self::nvl576(),
            Self::infinitehbd_k2(),
            Self::infinitehbd_k3(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tolerance: f64) -> bool {
        (a - b).abs() <= tolerance
    }

    #[test]
    fn table6_per_gpu_costs_match_the_paper() {
        assert!(close(
            ArchitectureBom::tpuv4().cost_per_gpu().value(),
            1567.20,
            1.0
        ));
        assert!(close(
            ArchitectureBom::nvl36().cost_per_gpu().value(),
            9563.20,
            1.0
        ));
        assert!(close(
            ArchitectureBom::nvl72().cost_per_gpu().value(),
            9563.20,
            1.0
        ));
        assert!(close(
            ArchitectureBom::nvl36x2().cost_per_gpu().value(),
            17924.00,
            1.0
        ));
        assert!(close(
            ArchitectureBom::nvl576().cost_per_gpu().value(),
            30417.60,
            1.0
        ));
        assert!(close(
            ArchitectureBom::infinitehbd_k2().cost_per_gpu().value(),
            2626.80,
            1.0
        ));
        assert!(close(
            ArchitectureBom::infinitehbd_k3().cost_per_gpu().value(),
            3740.60,
            1.0
        ));
    }

    #[test]
    fn table6_per_gpu_power_matches_the_paper() {
        assert!(close(
            ArchitectureBom::tpuv4().power_per_gpu().value(),
            19.39,
            0.05
        ));
        assert!(close(
            ArchitectureBom::nvl36().power_per_gpu().value(),
            75.95,
            0.05
        ));
        assert!(close(
            ArchitectureBom::nvl72().power_per_gpu().value(),
            75.95,
            0.05
        ));
        // Table 6 reports 150.33 W for NVL-36x2; the Table-8 component list
        // reproduces 152.1 W (the small gap comes from rounding in the paper's
        // ACC-cable power estimate), so allow a ~1.5% tolerance here.
        assert!(close(
            ArchitectureBom::nvl36x2().power_per_gpu().value(),
            150.33,
            2.5
        ));
        assert!(close(
            ArchitectureBom::nvl576().power_per_gpu().value(),
            413.45,
            0.1
        ));
        assert!(close(
            ArchitectureBom::infinitehbd_k2().power_per_gpu().value(),
            48.10,
            0.05
        ));
        assert!(close(
            ArchitectureBom::infinitehbd_k3().power_per_gpu().value(),
            72.05,
            0.05
        ));
    }

    #[test]
    fn table6_per_gbyteps_costs_match_the_paper() {
        assert!(close(
            ArchitectureBom::tpuv4().cost_per_gbyteps(),
            5.22,
            0.02
        ));
        assert!(close(
            ArchitectureBom::nvl72().cost_per_gbyteps(),
            10.63,
            0.02
        ));
        assert!(close(
            ArchitectureBom::nvl576().cost_per_gbyteps(),
            33.80,
            0.02
        ));
        assert!(close(
            ArchitectureBom::infinitehbd_k2().cost_per_gbyteps(),
            3.28,
            0.02
        ));
        assert!(close(
            ArchitectureBom::infinitehbd_k3().cost_per_gbyteps(),
            4.68,
            0.02
        ));
    }

    #[test]
    fn headline_cost_ratios_hold() {
        // "InfiniteHBD reduces cost to 31% of NVL-72" and "62.84% of TPUv4"
        // (per GBps of bandwidth).
        let k2 = ArchitectureBom::infinitehbd_k2().cost_per_gbyteps();
        let nvl72 = ArchitectureBom::nvl72().cost_per_gbyteps();
        let tpuv4 = ArchitectureBom::tpuv4().cost_per_gbyteps();
        assert!(close(k2 / nvl72, 0.3086, 0.01), "vs NVL-72: {}", k2 / nvl72);
        assert!(close(k2 / tpuv4, 0.6284, 0.01), "vs TPUv4: {}", k2 / tpuv4);
    }

    #[test]
    fn infinitehbd_has_the_lowest_per_bandwidth_cost() {
        let rows = ArchitectureBom::table6_rows();
        let k2 = ArchitectureBom::infinitehbd_k2().cost_per_gbyteps();
        for row in rows {
            if row.name != "InfiniteHBD(K=2)" {
                assert!(
                    k2 <= row.cost_per_gbyteps(),
                    "{} beats InfiniteHBD",
                    row.name
                );
            }
        }
    }

    #[test]
    fn hpn_reference_row_is_priced() {
        let hpn = ArchitectureBom::alibaba_hpn();
        assert!(hpn.total_cost().value() > 1e7);
        assert!(hpn.power_per_gpu().value() > 0.0);
    }
}
