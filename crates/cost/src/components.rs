//! The interconnect component catalogue of Appendix F (Table 8).

use hbd_types::{Dollars, GBps, Watts};
use serde::{Deserialize, Serialize};

/// The kinds of interconnect components that appear in the evaluated
/// architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// Centralised optical circuit switch (Google Palomar-class).
    OcsSwitch,
    /// NVLink switch tray.
    NvlinkSwitch,
    /// Electrical packet switch (Tomahawk-5-class, for the HPN reference).
    ElectricalPacketSwitch,
    /// Passive direct-attach copper cable.
    DacCable,
    /// Active copper cable.
    AccCable,
    /// Conventional optical transceiver module.
    OpticalModule,
    /// The paper's OCS transceiver.
    OcsTrx,
    /// Single-mode fiber patch cable.
    Fiber,
}

/// One catalogue entry: a purchasable component with unit cost, unit bandwidth
/// and unit power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// What kind of part this is.
    pub kind: ComponentKind,
    /// Unit cost in dollars.
    pub unit_cost: Dollars,
    /// Unit bandwidth in GBps (per the Table-8 column).
    pub unit_bandwidth: GBps,
    /// Unit power in watts.
    pub unit_power: Watts,
}

impl Component {
    /// Creates a catalogue entry.
    pub const fn new(kind: ComponentKind, cost: f64, bandwidth: f64, power: f64) -> Self {
        Component {
            kind,
            unit_cost: Dollars(cost),
            unit_bandwidth: GBps(bandwidth),
            unit_power: Watts(power),
        }
    }

    /// Google Palomar-class OCS switch (TPUv4 row of Table 8).
    pub const fn ocs_switch() -> Self {
        Self::new(ComponentKind::OcsSwitch, 80_000.0, 6400.0, 108.0)
    }

    /// NVLink switch tray (GB200 rows of Table 8).
    pub const fn nvlink_switch() -> Self {
        Self::new(ComponentKind::NvlinkSwitch, 28_000.0, 3600.0, 275.0)
    }

    /// 51.2 Tbps electrical packet switch (Alibaba HPN row of Table 8).
    pub const fn electrical_packet_switch() -> Self {
        Self::new(
            ComponentKind::ElectricalPacketSwitch,
            14_960.0,
            6400.0,
            3145.0,
        )
    }

    /// 400G OSFP passive DAC used by TPUv4.
    pub const fn dac_tpuv4() -> Self {
        Self::new(ComponentKind::DacCable, 63.60, 50.0, 0.1)
    }

    /// 200G QSFP56 passive DAC used inside GB200 racks and HPN.
    pub const fn dac_nvl() -> Self {
        Self::new(ComponentKind::DacCable, 35.60, 25.0, 0.1)
    }

    /// 1.6T OSFP passive DAC used between InfiniteHBD GPU pairs that skip the
    /// OCSTrx (the cost-reduced idle-bundle option).
    pub const fn dac_infinitehbd() -> Self {
        Self::new(ComponentKind::DacCable, 199.60, 200.0, 0.1)
    }

    /// 1.6T ACC cable (NVL-36x2 cross-rack links).
    pub const fn acc_cable() -> Self {
        Self::new(ComponentKind::AccCable, 320.0, 200.0, 2.5)
    }

    /// 400G FR4 optical transceiver (TPUv4 / HPN).
    pub const fn optical_module_400g() -> Self {
        Self::new(ComponentKind::OpticalModule, 360.0, 50.0, 12.0)
    }

    /// 1.6T optical transceiver (NVL-576 spine).
    pub const fn optical_module_1600g() -> Self {
        Self::new(ComponentKind::OpticalModule, 850.0, 200.0, 25.0)
    }

    /// The paper's QSFP-DD 800G OCSTrx.
    pub const fn ocstrx() -> Self {
        Self::new(ComponentKind::OcsTrx, 600.0, 100.0, 12.0)
    }

    /// Single-mode duplex fiber patch cable (cost only, bandwidth of the module
    /// it connects).
    pub const fn fiber(bandwidth_gbyteps: f64) -> Self {
        Self::new(ComponentKind::Fiber, 6.80, bandwidth_gbyteps, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_table8_prices() {
        assert_eq!(Component::ocs_switch().unit_cost, Dollars(80_000.0));
        assert_eq!(Component::nvlink_switch().unit_cost, Dollars(28_000.0));
        assert_eq!(
            Component::electrical_packet_switch().unit_power,
            Watts(3145.0)
        );
        assert_eq!(Component::dac_tpuv4().unit_cost, Dollars(63.60));
        assert_eq!(Component::dac_nvl().unit_cost, Dollars(35.60));
        assert_eq!(Component::dac_infinitehbd().unit_cost, Dollars(199.60));
        assert_eq!(Component::acc_cable().unit_cost, Dollars(320.0));
        assert_eq!(Component::optical_module_400g().unit_cost, Dollars(360.0));
        assert_eq!(Component::optical_module_1600g().unit_cost, Dollars(850.0));
        assert_eq!(Component::ocstrx().unit_cost, Dollars(600.0));
        assert_eq!(Component::fiber(100.0).unit_cost, Dollars(6.80));
    }

    #[test]
    fn passive_parts_draw_negligible_power() {
        assert_eq!(Component::fiber(50.0).unit_power, Watts(0.0));
        assert!(Component::dac_nvl().unit_power.value() <= 0.1);
        assert!(Component::ocstrx().unit_power.value() > 0.0);
    }
}
