//! Interconnect cost and power analysis (§6.5, Table 6, Table 8, Fig 17d).
//!
//! The paper reduces the cost comparison to a bill of materials per
//! architecture (Appendix F, Table 8) and two derived views:
//!
//! * **Table 6** — interconnect cost and power normalised per GPU and per GBps
//!   of per-GPU HBD bandwidth,
//! * **Fig 17d** — the *aggregate cost* under faults:
//!   `Cost_GPU · (N_wasted + N_faulty) + Cost_interconnect`, which shows how an
//!   architecture's fault resilience feeds back into its economics.
//!
//! All prices and power figures are the ones published in Table 8 (sourced by
//! the authors from public retailers and teardown reports).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bom;
pub mod components;

pub use analysis::{aggregate_cost, normalized_aggregate_cost, AggregateCostInput, NormalizedCost};
pub use bom::{ArchitectureBom, BomLine};
pub use components::{Component, ComponentKind};
