//! Normalised and aggregate cost analysis (Table 6 and Fig 17d).

use crate::bom::ArchitectureBom;
use hbd_types::Dollars;
use serde::{Deserialize, Serialize};

/// One row of Table 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalizedCost {
    /// Architecture name.
    pub name: String,
    /// Interconnect cost per GPU, in dollars.
    pub cost_per_gpu: f64,
    /// Interconnect power per GPU, in watts.
    pub watts_per_gpu: f64,
    /// Interconnect cost per GBps of per-GPU bandwidth.
    pub cost_per_gbyteps: f64,
    /// Interconnect power per GBps of per-GPU bandwidth.
    pub watts_per_gbyteps: f64,
}

impl NormalizedCost {
    /// Computes the row for one architecture BOM.
    pub fn from_bom(bom: &ArchitectureBom) -> Self {
        NormalizedCost {
            name: bom.name.clone(),
            cost_per_gpu: bom.cost_per_gpu().value(),
            watts_per_gpu: bom.power_per_gpu().value(),
            cost_per_gbyteps: bom.cost_per_gbyteps(),
            watts_per_gbyteps: bom.power_per_gbyteps(),
        }
    }

    /// Computes every Table-6 row.
    pub fn table6() -> Vec<NormalizedCost> {
        ArchitectureBom::table6_rows()
            .iter()
            .map(Self::from_bom)
            .collect()
    }
}

/// Inputs of the Fig-17d aggregate-cost formula.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateCostInput {
    /// Price of one GPU (the paper's formula weights wasted and faulty GPUs by
    /// the GPU price).
    pub gpu_cost: Dollars,
    /// Total GPUs in the cluster.
    pub total_gpus: usize,
    /// GPUs on faulty nodes.
    pub faulty_gpus: usize,
    /// Healthy GPUs that the architecture cannot use under this fault pattern.
    pub wasted_gpus: usize,
    /// Interconnect cost per GPU of the architecture.
    pub interconnect_cost_per_gpu: Dollars,
}

/// The aggregate cost of §6.5:
/// `Cost_GPU · (N_wasted + N_faulty) + Cost_interconnect`.
pub fn aggregate_cost(input: &AggregateCostInput) -> Dollars {
    input.gpu_cost * (input.wasted_gpus + input.faulty_gpus)
        + input.interconnect_cost_per_gpu * input.total_gpus
}

/// Aggregate cost normalised so that comparisons across architectures are
/// independent of the absolute GPU price: the paper plots the cost in units of
/// "per-mille of the cluster's GPU capital cost".
pub fn normalized_aggregate_cost(input: &AggregateCostInput) -> f64 {
    let capital = input.gpu_cost * input.total_gpus;
    if capital.value() == 0.0 {
        return 0.0;
    }
    aggregate_cost(input).value() / capital.value() * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_has_all_seven_rows_in_order() {
        let table = NormalizedCost::table6();
        let names: Vec<&str> = table.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "TPUv4",
                "NVL-36",
                "NVL-72",
                "NVL-36x2",
                "NVL-576",
                "InfiniteHBD(K=2)",
                "InfiniteHBD(K=3)"
            ]
        );
        for row in &table {
            assert!(row.cost_per_gpu > 0.0);
            assert!(row.watts_per_gpu > 0.0);
            assert!(row.cost_per_gbyteps > 0.0);
            assert!(row.watts_per_gbyteps > 0.0);
        }
    }

    #[test]
    fn aggregate_cost_formula() {
        let input = AggregateCostInput {
            gpu_cost: Dollars(25_000.0),
            total_gpus: 2880,
            faulty_gpus: 64,
            wasted_gpus: 32,
            interconnect_cost_per_gpu: Dollars(2626.8),
        };
        let cost = aggregate_cost(&input);
        let expected = 25_000.0 * 96.0 + 2626.8 * 2880.0;
        assert!((cost.value() - expected).abs() < 1.0);
        let normalized = normalized_aggregate_cost(&input);
        assert!((normalized - expected / (25_000.0 * 2880.0) * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn more_waste_means_higher_aggregate_cost() {
        let mut input = AggregateCostInput {
            gpu_cost: Dollars(25_000.0),
            total_gpus: 2880,
            faulty_gpus: 64,
            wasted_gpus: 0,
            interconnect_cost_per_gpu: Dollars(9563.2),
        };
        let low = aggregate_cost(&input);
        input.wasted_gpus = 300;
        let high = aggregate_cost(&input);
        assert!(high.value() > low.value());
    }

    #[test]
    fn zero_capital_normalisation_is_zero() {
        let input = AggregateCostInput {
            gpu_cost: Dollars(0.0),
            total_gpus: 0,
            faulty_gpus: 0,
            wasted_gpus: 0,
            interconnect_cost_per_gpu: Dollars(0.0),
        };
        assert_eq!(normalized_aggregate_cost(&input), 0.0);
    }

    #[test]
    fn fault_resilience_can_flip_the_cheaper_architecture() {
        // At equal fault ratios, the architecture with much lower waste
        // (InfiniteHBD) ends up cheaper in aggregate than NVL-72 despite both
        // paying for their interconnect - and the gap widens with waste.
        let infinite = AggregateCostInput {
            gpu_cost: Dollars(25_000.0),
            total_gpus: 2880,
            faulty_gpus: 144,
            wasted_gpus: 10,
            interconnect_cost_per_gpu: Dollars(2626.8),
        };
        let nvl = AggregateCostInput {
            gpu_cost: Dollars(25_000.0),
            total_gpus: 2880,
            faulty_gpus: 144,
            wasted_gpus: 320,
            interconnect_cost_per_gpu: Dollars(9563.2),
        };
        assert!(aggregate_cost(&infinite).value() < aggregate_cost(&nvl).value());
    }
}
