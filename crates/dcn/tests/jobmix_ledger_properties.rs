//! Property tests pinning the incremental [`ExclusionLedger`] bit-for-bit
//! against a naive rebuild-from-scratch oracle (the standing practice for
//! every incremental solver in this workspace).
//!
//! The oracle replays the full operation history after every step: the
//! exclusion set is *defined* as `faults ∪ (nodes of active placements)`,
//! recomputed from nothing. The ledger must agree exactly — same bitset,
//! same serialised shape — after any interleaving of fault, repair, place
//! and release operations, including nodes that are simultaneously faulty
//! and placed.

use dcn::jobmix::ExclusionLedger;
use hbd_types::NodeId;
use orchestrator::{PlacementScheme, TpGroup};
use proptest::prelude::*;
use topology::FaultSet;

const NODES: usize = 48;

/// One abstract operation over a pool of `NODES` nodes and 6 job slots.
#[derive(Debug, Clone)]
enum Op {
    Fault(usize),
    Repair(usize),
    /// Place job `slot` on a contiguous-ish pseudo-random node pick.
    Place {
        slot: usize,
        start: usize,
        len: usize,
    },
    Release(usize),
}

fn arbitrary_ops() -> impl Strategy<Value = Vec<Op>> {
    // Encoded as plain integer tuples (kind, a, b, len) so one strategy type
    // covers all four variants; decoded into `Op` here.
    let op =
        (0usize..4, 0..NODES, 0usize..6, 1usize..8).prop_map(
            |(kind, node, slot, len)| match kind {
                0 => Op::Fault(node),
                1 => Op::Repair(node),
                2 => Op::Place {
                    slot,
                    start: node,
                    len,
                },
                _ => Op::Release(slot),
            },
        );
    proptest::collection::vec(op, 1..60)
}

/// The naive oracle: exclusion = faults ∪ nodes of all active placements,
/// rebuilt from scratch.
fn oracle(faults: &FaultSet, active: &[Option<PlacementScheme>]) -> FaultSet {
    let mut excluded = faults.clone();
    for scheme in active.iter().flatten() {
        for group in &scheme.groups {
            for &node in &group.nodes {
                excluded.add(node);
            }
        }
    }
    excluded
}

/// Builds the placement for a `Place` op: `len` nodes starting at `start`
/// (wrapping), skipping nodes already owned by another active placement so
/// placements stay disjoint (the ledger's contract).
fn build_scheme(start: usize, len: usize, active: &[Option<PlacementScheme>]) -> PlacementScheme {
    let mut owned = [false; NODES];
    for scheme in active.iter().flatten() {
        for group in &scheme.groups {
            for &node in &group.nodes {
                owned[node.index()] = true;
            }
        }
    }
    let nodes: Vec<NodeId> = (0..NODES)
        .map(|i| (start + i) % NODES)
        .filter(|&n| !owned[n])
        .take(len)
        .map(NodeId)
        .collect();
    PlacementScheme::from_groups(vec![TpGroup::new(nodes)])
}

proptest! {
    /// After every single operation, the ledger's exclusion set equals the
    /// rebuild-from-scratch oracle bit-for-bit (FaultSet equality is word
    /// equality) and in serialised form.
    #[test]
    fn ledger_matches_rebuild_oracle(ops in arbitrary_ops()) {
        let mut ledger = ExclusionLedger::new();
        let mut faults = FaultSet::new();
        let mut active: Vec<Option<PlacementScheme>> = vec![None; 6];
        for op in &ops {
            match op {
                Op::Fault(n) => {
                    let newly = ledger.fault(NodeId(*n));
                    prop_assert_eq!(newly, faults.add(NodeId(*n)));
                }
                Op::Repair(n) => {
                    let was = ledger.repair(NodeId(*n));
                    prop_assert_eq!(was, faults.remove(NodeId(*n)));
                }
                Op::Place { slot, start, len } => {
                    // Release the slot first if occupied (a job slot reused).
                    if let Some(old) = active[*slot].take() {
                        ledger.release(&old);
                    }
                    let scheme = build_scheme(*start, *len, &active);
                    if scheme.nodes_placed() > 0 {
                        ledger.place(&scheme);
                        active[*slot] = Some(scheme);
                    }
                }
                Op::Release(slot) => {
                    if let Some(old) = active[*slot].take() {
                        ledger.release(&old);
                    }
                }
            }
            let expected = oracle(&faults, &active);
            prop_assert_eq!(ledger.excluded(), &expected);
            prop_assert_eq!(
                serde_json::to_string(ledger.excluded()).unwrap(),
                serde_json::to_string(&expected).unwrap()
            );
            prop_assert_eq!(ledger.faulty(), &faults);
            let placed: usize = active
                .iter()
                .flatten()
                .map(|s| s.nodes_placed())
                .sum();
            prop_assert_eq!(ledger.placed_nodes(), placed);
        }
    }

    /// Driving one ledger through `publish_delta` and a twin through full
    /// `publish` lands both stores on identical snapshot fault sets at every
    /// publish point — the delta path reproduces the wholesale path exactly
    /// while skipping publishes whose flips cancelled out.
    #[test]
    fn delta_publishes_match_full_publishes(ops in arbitrary_ops(), period in 1usize..6) {
        use orchestrator::{FatTreeOrchestrator, SnapshotStore};
        use std::sync::Arc;
        use topology::FatTree;
        let orch =
            Arc::new(FatTreeOrchestrator::new(FatTree::new(NODES, 4, 4).unwrap()).unwrap());
        let delta_store = SnapshotStore::new(Arc::clone(&orch), FaultSet::new());
        let full_store = SnapshotStore::new(Arc::clone(&orch), FaultSet::new());
        let mut delta_ledger = ExclusionLedger::new();
        let mut full_ledger = ExclusionLedger::new();
        let mut active: Vec<Option<PlacementScheme>> = vec![None; 6];
        let mut last_epoch = 0;
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Fault(n) => {
                    delta_ledger.fault(NodeId(*n));
                    full_ledger.fault(NodeId(*n));
                }
                Op::Repair(n) => {
                    delta_ledger.repair(NodeId(*n));
                    full_ledger.repair(NodeId(*n));
                }
                Op::Place { slot, start, len } => {
                    if let Some(old) = active[*slot].take() {
                        delta_ledger.release(&old);
                        full_ledger.release(&old);
                    }
                    let scheme = build_scheme(*start, *len, &active);
                    if scheme.nodes_placed() > 0 {
                        delta_ledger.place(&scheme);
                        full_ledger.place(&scheme);
                        active[*slot] = Some(scheme);
                    }
                }
                Op::Release(slot) => {
                    if let Some(old) = active[*slot].take() {
                        delta_ledger.release(&old);
                        full_ledger.release(&old);
                    }
                }
            }
            if i % period == period - 1 {
                let published = delta_ledger.publish_delta(&delta_store);
                full_ledger.publish(&full_store);
                let delta_snapshot = delta_store.load();
                let full_snapshot = full_store.load();
                prop_assert_eq!(delta_snapshot.value.faults(), full_snapshot.value.faults());
                prop_assert_eq!(delta_snapshot.value.faults(), delta_ledger.excluded());
                prop_assert!(delta_ledger.pending_delta().is_empty());
                match published {
                    // A skip is only legal when nothing flipped: the epoch
                    // must not have moved.
                    None => prop_assert_eq!(delta_store.epoch(), last_epoch),
                    Some(epoch) => prop_assert_eq!(epoch, last_epoch + 1),
                }
                last_epoch = delta_store.epoch();
            }
        }
    }
}
