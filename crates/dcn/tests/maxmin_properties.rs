//! Property tests for the max-min fair allocator — the numerical core of the
//! DCN congestion model.

use dcn::max_min_rates;
use hbd_types::GBps;
use proptest::prelude::*;

fn arbitrary_scenario() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
    // 1..8 links with capacities in [1, 1000] GBps, 1..24 flows each crossing a
    // random non-empty subset of links.
    (1usize..8).prop_flat_map(|links| {
        let caps = proptest::collection::vec(1.0f64..1000.0, links);
        let flows = proptest::collection::vec(
            proptest::collection::btree_set(0usize..links, 1..=links),
            1..24,
        )
        .prop_map(|sets| sets.into_iter().map(|s| s.into_iter().collect()).collect());
        (caps, flows)
    })
}

proptest! {
    /// No link is ever allocated beyond its capacity.
    #[test]
    fn allocation_respects_capacities((caps, flows) in arbitrary_scenario()) {
        let rates = max_min_rates(&caps.iter().copied().map(GBps).collect::<Vec<_>>(), &flows);
        for (l, cap) in caps.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(links, _)| links.contains(&l))
                .map(|(_, r)| r.value())
                .sum();
            prop_assert!(load <= cap + 1e-6, "link {l}: load {load} > cap {cap}");
        }
    }

    /// Every flow gets a positive, finite rate (all capacities are positive and
    /// every flow traverses at least one link).
    #[test]
    fn every_flow_gets_a_positive_rate((caps, flows) in arbitrary_scenario()) {
        let rates = max_min_rates(&caps.iter().copied().map(GBps).collect::<Vec<_>>(), &flows);
        prop_assert_eq!(rates.len(), flows.len());
        for rate in &rates {
            prop_assert!(rate.value() > 0.0);
            prop_assert!(rate.value().is_finite());
        }
    }

    /// Max-min optimality (bottleneck condition): every flow traverses at least
    /// one saturated link, so no flow could be increased without decreasing a
    /// flow with an equal-or-smaller rate.
    #[test]
    fn every_flow_has_a_saturated_link((caps, flows) in arbitrary_scenario()) {
        let rates = max_min_rates(&caps.iter().copied().map(GBps).collect::<Vec<_>>(), &flows);
        let mut load = vec![0.0f64; caps.len()];
        for (links, rate) in flows.iter().zip(&rates) {
            for &l in links {
                load[l] += rate.value();
            }
        }
        for (f, links) in flows.iter().enumerate() {
            let saturated = links
                .iter()
                .any(|&l| load[l] >= caps[l] * (1.0 - 1e-6) - 1e-6);
            prop_assert!(saturated, "flow {f} has headroom on every link it uses");
        }
    }

    /// Work conservation on the global bottleneck: the link with the smallest
    /// equal share (capacity / crossing flows) is allocated exactly its full
    /// capacity — progressive filling never strands bandwidth there.
    #[test]
    fn bottleneck_link_is_work_conserving((caps, flows) in arbitrary_scenario()) {
        let rates = max_min_rates(&caps.iter().copied().map(GBps).collect::<Vec<_>>(), &flows);
        let users = |l: usize| flows.iter().filter(|links| links.contains(&l)).count();
        let bottleneck = (0..caps.len())
            .filter(|&l| users(l) > 0)
            .min_by(|&a, &b| {
                let sa = caps[a] / users(a) as f64;
                let sb = caps[b] / users(b) as f64;
                sa.total_cmp(&sb)
            });
        if let Some(l) = bottleneck {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(links, _)| links.contains(&l))
                .map(|(_, r)| r.value())
                .sum();
            prop_assert!(
                (load - caps[l]).abs() <= caps[l] * 1e-9 + 1e-9,
                "bottleneck link {l}: load {load} != capacity {}", caps[l]
            );
        }
    }

    /// Route-class expansion: flows with identical link sets receive
    /// **bit-identical** rates (the solver groups them into one weighted
    /// class and expands the class rate back per flow), and duplicating
    /// flows never breaks capacity feasibility — per-link work is conserved
    /// at class granularity exactly as at flow granularity.
    #[test]
    fn route_classes_expand_to_identical_rates_and_conserve_work(
        (caps, flows) in arbitrary_scenario(),
        copies in 2usize..5,
    ) {
        // Duplicate every flow `copies` times, interleaved with the originals
        // so classes are scattered across the input order.
        let mut duplicated: Vec<Vec<usize>> = Vec::new();
        for links in &flows {
            for _ in 0..copies {
                duplicated.push(links.clone());
            }
        }
        let caps_gbps: Vec<GBps> = caps.iter().copied().map(GBps).collect();
        let rates = max_min_rates(&caps_gbps, &duplicated);

        // Every member of a class reports the same bits.
        for (f, group) in rates.chunks(copies).enumerate() {
            for rate in group {
                prop_assert_eq!(
                    rate.value().to_bits(), group[0].value().to_bits(),
                    "class {} members diverge", f
                );
            }
        }
        // Work conservation: summing per class (rate × weight) respects every
        // link capacity, and the global bottleneck stays exactly full.
        let mut load = vec![0.0f64; caps.len()];
        for (links, group) in flows.iter().zip(rates.chunks(copies)) {
            for &l in links {
                load[l] += group[0].value() * copies as f64;
            }
        }
        for (l, &cap) in caps.iter().enumerate() {
            prop_assert!(load[l] <= cap * (1.0 + 1e-9) + 1e-6,
                "link {}: class load {} > cap {}", l, load[l], cap);
        }
        let users = |l: usize| flows.iter().filter(|links| links.contains(&l)).count() * copies;
        let bottleneck = (0..caps.len())
            .filter(|&l| users(l) > 0)
            .min_by(|&a, &b| {
                (caps[a] / users(a) as f64).total_cmp(&(caps[b] / users(b) as f64))
            });
        if let Some(l) = bottleneck {
            // The per-flow debits sum to the full capacity up to rounding.
            let exact: f64 = duplicated
                .iter()
                .zip(&rates)
                .filter(|(links, _)| links.contains(&l))
                .map(|(_, r)| r.value())
                .sum();
            prop_assert!(
                (exact - caps[l]).abs() <= caps[l] * 1e-9 + 1e-9,
                "bottleneck link {}: load {} != capacity {}", l, exact, caps[l]
            );
        }
    }

    /// The allocation is a function of each flow's route set, not of the order
    /// the flows are listed in: reversing (and rotating) the flow list yields
    /// the same rate for every flow.
    #[test]
    fn allocation_is_invariant_under_flow_reordering(
        (caps, flows) in arbitrary_scenario(),
        rotation in 0usize..16,
    ) {
        let caps_gbps: Vec<GBps> = caps.iter().copied().map(GBps).collect();
        let baseline = max_min_rates(&caps_gbps, &flows);

        // Reversal.
        let reversed: Vec<Vec<usize>> = flows.iter().rev().cloned().collect();
        let reversed_rates = max_min_rates(&caps_gbps, &reversed);
        for (f, rate) in baseline.iter().enumerate() {
            let mirrored = reversed_rates[flows.len() - 1 - f];
            prop_assert!(
                (rate.value() - mirrored.value()).abs() <= 1e-9 * rate.value().max(1.0),
                "flow {f}: {} != {} after reversal", rate.value(), mirrored.value()
            );
        }

        // Rotation by an arbitrary offset.
        let shift = rotation % flows.len();
        let rotated: Vec<Vec<usize>> = flows[shift..]
            .iter()
            .chain(flows[..shift].iter())
            .cloned()
            .collect();
        let rotated_rates = max_min_rates(&caps_gbps, &rotated);
        for (f, rate) in baseline.iter().enumerate() {
            let moved = rotated_rates[(f + flows.len() - shift) % flows.len()];
            prop_assert!(
                (rate.value() - moved.value()).abs() <= 1e-9 * rate.value().max(1.0),
                "flow {f}: {} != {} after rotation", rate.value(), moved.value()
            );
        }
    }
}
