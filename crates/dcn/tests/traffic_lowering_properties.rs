//! Property tests for the `TrafficMatrix` lowering: the lowered flow sets
//! must conserve the analytic `llmsim::comm` volumes per parallelism
//! dimension, and the DP-only restriction must reproduce the original
//! single-epoch model byte-for-byte.

use dcn::{
    dp_ring_flows, DcnNetwork, Flow, FlowSimulation, LogicalShape, NetworkParams, TrafficMatrix,
    TrafficProfile, TrafficSpec,
};
use hbd_types::{Bytes, NodeId};
use llmsim::{CommModel, ModelConfig, ParallelismStrategy};
use orchestrator::{PlacementScheme, TpGroup};
use proptest::prelude::*;
use topology::FatTree;

/// A placement of `groups` TP groups of `ranks` nodes each, numbered densely.
fn grid_scheme(groups: usize, ranks: usize) -> PlacementScheme {
    PlacementScheme::from_groups(
        (0..groups)
            .map(|g| TpGroup::new((0..ranks).map(|r| NodeId(g * ranks + r)).collect()))
            .collect(),
    )
}

fn total_bytes(flows: &[Flow]) -> f64 {
    flows.iter().map(|f| f.bytes.value()).sum()
}

fn arbitrary_shape() -> impl Strategy<Value = (LogicalShape, usize)> {
    (1usize..5, 1usize..4, 1usize..3, 1usize..4)
        .prop_map(|(dp, pp, cp, ranks)| (LogicalShape { dp, pp, cp }, ranks))
}

proptest! {
    /// Total lowered bytes per dimension equal the analytic per-pair volume
    /// times the pair count of the logical grid times the two directions.
    #[test]
    fn lowered_totals_match_the_analytic_volumes(
        (shape, ranks) in arbitrary_shape(),
        dp_pair in 1.0f64..1e10,
        pp_pair in 1.0f64..1e10,
        cp_pair in 1.0f64..1e10,
        cp_grad_pair in 1.0f64..1e10,
        dp_wraps in (0usize..2).prop_map(|b| b == 1),
        cp_wraps in (0usize..2).prop_map(|b| b == 1),
    ) {
        let scheme = grid_scheme(shape.groups(), ranks);
        let profile = TrafficProfile {
            dp_pair_bytes: Bytes(dp_pair),
            pp_pair_bytes: Bytes(pp_pair),
            cp_pair_bytes: Bytes(cp_pair),
            cp_grad_pair_bytes: Bytes(cp_grad_pair),
            dp_ring_wraps: dp_wraps,
            cp_ring_wraps: cp_wraps,
        };
        let matrix = TrafficMatrix::new(shape, profile);

        let dp_pairs = if shape.dp < 2 { 0 } else if dp_wraps { shape.dp } else { shape.dp - 1 };
        let cp_pairs = if shape.cp < 2 { 0 } else if cp_wraps { shape.cp } else { shape.cp - 1 };
        let pp_pairs = shape.pp.saturating_sub(1);

        let expected_dp = (dp_pairs * shape.pp * shape.cp * ranks * 2) as f64 * dp_pair;
        let expected_pp = (pp_pairs * shape.cp * shape.dp * ranks * 2) as f64 * pp_pair;
        let expected_cp = (cp_pairs * shape.pp * shape.dp * ranks * 2) as f64 * cp_pair;
        let expected_cp_grad = (cp_pairs * shape.pp * shape.dp * ranks * 2) as f64 * cp_grad_pair;

        let relative = |actual: f64, expected: f64| {
            (actual - expected).abs() <= 1e-9 * expected.max(1.0)
        };
        prop_assert!(relative(total_bytes(&matrix.dp_flows(&scheme).unwrap()), expected_dp));
        prop_assert!(relative(total_bytes(&matrix.pp_flows(&scheme).unwrap()), expected_pp));
        prop_assert!(relative(total_bytes(&matrix.cp_flows(&scheme).unwrap()), expected_cp));
        prop_assert!(relative(
            total_bytes(&matrix.cp_grad_flows(&scheme).unwrap()),
            expected_cp_grad
        ));

        // The lowered job conserves the sum of all four components.
        let job = matrix.lower(&scheme, "prop", 1).unwrap();
        let expected_total = expected_dp + expected_pp + expected_cp + expected_cp_grad;
        prop_assert!(relative(job.bytes_per_iteration().value(), expected_total));

        // A mismatched placement is an error, not a panic.
        let wrong = grid_scheme(shape.groups() + 1, ranks);
        prop_assert!(matrix.dp_flows(&wrong).is_err());
        prop_assert!(matrix.lower(&wrong, "wrong", 1).is_err());
    }

    /// A plan-derived matrix conserves the `llmsim::comm` volumes: the lowered
    /// DP/PP/CP totals are the `CommModel` per-pair formulas times the grid's
    /// pair counts.
    #[test]
    fn plan_lowering_matches_llmsim_comm_volumes(
        dp in 1usize..5,
        pp in 1usize..4,
        cp in 1usize..3,
        ranks in 1usize..3,
    ) {
        let model = ModelConfig::llama31_405b();
        let comm = CommModel::paper_defaults();
        let strategy = ParallelismStrategy::new(8, pp, dp).with_cp(cp);
        let matrix = TrafficMatrix::of_plan(&model, &strategy, &comm);
        let scheme = grid_scheme(dp * pp * cp, ranks);

        let lanes = |pairs: usize, planes: usize| (pairs * planes * ranks * 2) as f64;
        let expected_dp =
            lanes(dp.saturating_sub(1), pp * cp) * comm.dp_pair_bytes(&model, &strategy).value();
        let expected_pp =
            lanes(pp.saturating_sub(1), dp * cp) * comm.pp_pair_bytes(&model, &strategy).value();
        let expected_cp =
            lanes(cp.saturating_sub(1), dp * pp) * comm.cp_pair_bytes(&model, &strategy).value();
        let expected_cp_grad = lanes(cp.saturating_sub(1), dp * pp)
            * comm.cp_grad_pair_bytes(&model, &strategy).value();

        let relative = |actual: f64, expected: f64| {
            (actual - expected).abs() <= 1e-9 * expected.max(1.0)
        };
        prop_assert!(relative(total_bytes(&matrix.dp_flows(&scheme).unwrap()), expected_dp));
        prop_assert!(relative(total_bytes(&matrix.pp_flows(&scheme).unwrap()), expected_pp));
        prop_assert!(relative(total_bytes(&matrix.cp_flows(&scheme).unwrap()), expected_cp));
        prop_assert!(relative(
            total_bytes(&matrix.cp_grad_flows(&scheme).unwrap()),
            expected_cp_grad
        ));
    }

    /// The DP-only restriction of the matrix reproduces the original
    /// `dp_ring_flows` lowering byte-for-byte — same flows, same order — and
    /// therefore the same `FlowSimulation` congestion report, serialised to
    /// the same JSON bytes.
    #[test]
    fn dp_only_lowering_is_byte_identical_to_the_single_job_model(
        groups in 1usize..9,
        ranks in 1usize..4,
        gib in 0.5f64..8.0,
        wraps in (0usize..2).prop_map(|b| b == 1),
    ) {
        let scheme = grid_scheme(groups, ranks);
        let mut spec = TrafficSpec::per_pair(Bytes::from_gib(gib));
        spec.dp_ring_wraps = wraps;
        let matrix = TrafficMatrix::new(
            LogicalShape::dp_only(groups),
            TrafficProfile::from_spec(&spec),
        );

        let legacy = dp_ring_flows(&scheme, &spec);
        let lowered = matrix.dp_flows(&scheme).unwrap();
        prop_assert_eq!(&lowered, &legacy);

        // End to end: both flow sets produce byte-identical congestion
        // reports on the same network.
        let tree = FatTree::new(32, 4, 4).unwrap();
        let network = DcnNetwork::new(tree, NetworkParams::non_blocking(4, 4)).unwrap();
        let legacy_report = FlowSimulation::run(&network, legacy).unwrap().report(&network);
        let lowered_report = FlowSimulation::run(&network, lowered).unwrap().report(&network);
        let legacy_json = serde_json::to_string(&serde_json::to_value(&legacy_report)).unwrap();
        let lowered_json = serde_json::to_string(&serde_json::to_value(&lowered_report)).unwrap();
        prop_assert_eq!(legacy_json, lowered_json);
    }
}
