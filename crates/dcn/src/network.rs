//! The DCN link plant and ECMP routing.
//!
//! The network follows the paper's evaluation setup (§6.1, §6.4): a two-tier
//! Fat-Tree in which every node's 400 Gbps NIC hangs off a ToR switch and every
//! ToR connects to the aggregation switches of its domain. Congestion of
//! interest lives on the ToR uplinks — exactly the links the orchestration
//! algorithm tries to keep idle by aligning DP pairs under one ToR — so the
//! model keeps the link plant at that granularity:
//!
//! * one access link pair (up/down) per node, and
//! * one uplink pair (up/down) per (ToR, aggregation switch).
//!
//! Cross-domain paths additionally traverse a per-(domain, aggregation switch)
//! core link pair, so the rare placements that spill a DP pair across
//! aggregation domains are also priced.

use crate::flow::{Flow, Route};
use hbd_types::{GBps, Gbps, HbdError, LinkId, NodeId, Result, ToRId};
use serde::{Deserialize, Serialize};
use topology::{FatTree, NetworkDistance};

/// What a directed link connects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Node NIC → ToR.
    NodeUp(NodeId),
    /// ToR → node NIC.
    NodeDown(NodeId),
    /// ToR → aggregation switch `plane` of its domain.
    TorUp(ToRId, usize),
    /// Aggregation switch `plane` → ToR.
    TorDown(ToRId, usize),
    /// Aggregation switch `plane` of `domain` → core.
    AggUp(usize, usize),
    /// Core → aggregation switch `plane` of `domain`.
    AggDown(usize, usize),
}

impl LinkKind {
    /// Whether this is a ToR uplink or downlink (the oversubscribed tier).
    pub fn is_tor_uplink(&self) -> bool {
        matches!(self, LinkKind::TorUp(..) | LinkKind::TorDown(..))
    }
}

/// One directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcnLink {
    /// Dense link identifier (index into the network's link table).
    pub id: LinkId,
    /// What the link connects.
    pub kind: LinkKind,
    /// Usable payload capacity.
    pub capacity: GBps,
}

/// Sizing of the link plant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// Per-node DCN NIC bandwidth (the paper uses one 400 Gbps ConnectX-7 per
    /// GPU; at node granularity the access link aggregates them).
    pub node_bandwidth: GBps,
    /// Number of aggregation switches (ECMP planes) per aggregation domain.
    pub aggregation_planes: usize,
    /// Capacity of each ToR → aggregation uplink.
    pub tor_uplink: GBps,
    /// Capacity of each aggregation → core uplink.
    pub core_uplink: GBps,
}

impl NetworkParams {
    /// A non-blocking fabric for `nodes_per_tor` nodes of `gpus_per_node` GPUs:
    /// the ToR uplinks together match the access capacity.
    pub fn non_blocking(nodes_per_tor: usize, gpus_per_node: usize) -> Self {
        let node_bandwidth = Gbps(400.0 * gpus_per_node as f64).to_gbytes_per_sec();
        let planes = 4;
        let access_total = GBps(node_bandwidth.value() * nodes_per_tor as f64);
        NetworkParams {
            node_bandwidth,
            aggregation_planes: planes,
            tor_uplink: GBps(access_total.value() / planes as f64),
            core_uplink: GBps(access_total.value() / planes as f64),
        }
    }

    /// Derives an oversubscribed variant: ToR uplink capacity divided by
    /// `ratio` (e.g. `2.0` for the common 2:1 oversubscription).
    pub fn oversubscribed(mut self, ratio: f64) -> Self {
        assert!(ratio >= 1.0, "oversubscription ratio must be >= 1");
        self.tor_uplink = GBps(self.tor_uplink.value() / ratio);
        self.core_uplink = GBps(self.core_uplink.value() / ratio);
        self
    }

    fn validate(&self) -> Result<()> {
        if self.aggregation_planes == 0 {
            return Err(HbdError::invalid_config(
                "need at least one aggregation plane",
            ));
        }
        if self.node_bandwidth.value() <= 0.0
            || self.tor_uplink.value() <= 0.0
            || self.core_uplink.value() <= 0.0
        {
            return Err(HbdError::invalid_config("link capacities must be positive"));
        }
        Ok(())
    }
}

/// The whole DCN: Fat-Tree structure plus sized, indexable links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcnNetwork {
    fat_tree: FatTree,
    params: NetworkParams,
    links: Vec<DcnLink>,
    tor_link_base: usize,
    agg_link_base: usize,
    tors_per_domain: usize,
}

impl DcnNetwork {
    /// Builds the link plant for the given Fat-Tree.
    pub fn new(fat_tree: FatTree, params: NetworkParams) -> Result<Self> {
        params.validate()?;
        let nodes = fat_tree.nodes();
        let tors = fat_tree.tors();
        let domains = fat_tree.aggregation_domains();
        let planes = params.aggregation_planes;
        let tors_per_domain =
            (fat_tree.nodes_per_aggregation_domain() / fat_tree.nodes_per_tor()).max(1);

        let mut links = Vec::with_capacity(2 * nodes + 2 * tors * planes + 2 * domains * planes);
        for n in 0..nodes {
            links.push(DcnLink {
                id: LinkId(links.len()),
                kind: LinkKind::NodeUp(NodeId(n)),
                capacity: params.node_bandwidth,
            });
            links.push(DcnLink {
                id: LinkId(links.len()),
                kind: LinkKind::NodeDown(NodeId(n)),
                capacity: params.node_bandwidth,
            });
        }
        let tor_link_base = links.len();
        for t in 0..tors {
            for plane in 0..planes {
                links.push(DcnLink {
                    id: LinkId(links.len()),
                    kind: LinkKind::TorUp(ToRId(t), plane),
                    capacity: params.tor_uplink,
                });
                links.push(DcnLink {
                    id: LinkId(links.len()),
                    kind: LinkKind::TorDown(ToRId(t), plane),
                    capacity: params.tor_uplink,
                });
            }
        }
        let agg_link_base = links.len();
        // One aggregation switch plane terminates the matching uplink of every
        // ToR in its domain, so its core-facing capacity scales with the ToR
        // count — this keeps the core tier non-blocking *relative to* the ToR
        // uplink tier, and `oversubscribed` scales both tiers together.
        let core_capacity = GBps(params.core_uplink.value() * tors_per_domain as f64);
        for d in 0..domains {
            for plane in 0..planes {
                links.push(DcnLink {
                    id: LinkId(links.len()),
                    kind: LinkKind::AggUp(d, plane),
                    capacity: core_capacity,
                });
                links.push(DcnLink {
                    id: LinkId(links.len()),
                    kind: LinkKind::AggDown(d, plane),
                    capacity: core_capacity,
                });
            }
        }
        Ok(DcnNetwork {
            fat_tree,
            params,
            links,
            tor_link_base,
            agg_link_base,
            tors_per_domain,
        })
    }

    /// The underlying Fat-Tree structure.
    pub fn fat_tree(&self) -> &FatTree {
        &self.fat_tree
    }

    /// The sizing parameters.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// All links.
    pub fn links(&self) -> &[DcnLink] {
        &self.links
    }

    /// One link by id.
    pub fn link(&self, id: LinkId) -> Result<&DcnLink> {
        self.links
            .get(id.index())
            .ok_or_else(|| HbdError::unknown_entity(format!("{id}")))
    }

    /// Link capacities as a dense vector (index = link id), for the max-min
    /// solver.
    pub fn capacities(&self) -> Vec<GBps> {
        self.links.iter().map(|l| l.capacity).collect()
    }

    fn node_up(&self, node: NodeId) -> LinkId {
        LinkId(2 * node.index())
    }

    fn node_down(&self, node: NodeId) -> LinkId {
        LinkId(2 * node.index() + 1)
    }

    fn tor_up(&self, tor: ToRId, plane: usize) -> LinkId {
        LinkId(self.tor_link_base + 2 * (tor.index() * self.params.aggregation_planes + plane))
    }

    fn tor_down(&self, tor: ToRId, plane: usize) -> LinkId {
        LinkId(self.tor_link_base + 2 * (tor.index() * self.params.aggregation_planes + plane) + 1)
    }

    fn agg_up(&self, domain: usize, plane: usize) -> LinkId {
        LinkId(self.agg_link_base + 2 * (domain * self.params.aggregation_planes + plane))
    }

    fn agg_down(&self, domain: usize, plane: usize) -> LinkId {
        LinkId(self.agg_link_base + 2 * (domain * self.params.aggregation_planes + plane) + 1)
    }

    /// The ECMP plane a flow hashes onto (deterministic 5-tuple-style hash on
    /// the endpoint pair).
    ///
    /// A strong bit-mixing finalizer (SplitMix64/Murmur3 style) is used rather
    /// than a linear combination: DP rings produce flows whose endpoints differ
    /// by a constant stride, and a weak hash would polarise all of them onto
    /// one plane — a real ECMP pathology, but not the one under study here.
    pub fn ecmp_plane(&self, flow: &Flow) -> usize {
        let mut h = ((flow.src.index() as u64) << 32) ^ (flow.dst.index() as u64);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        (h % self.params.aggregation_planes as u64) as usize
    }

    /// Routes one flow, returning the directed links it occupies.
    pub fn route(&self, flow: &Flow) -> Result<Route> {
        let mut links = Vec::new();
        let distance = self.route_with(flow, |id| links.push(id))?;
        Ok(Route { links, distance })
    }

    /// Routes one flow, appending the dense link *indices* of its path (in
    /// path order) to `out` instead of allocating a [`Route`]. This is the
    /// allocation-free primitive the replay engine uses to build its flattened
    /// (CSR) per-epoch route tables; the indices appended are exactly those of
    /// [`DcnNetwork::route`]'s links.
    pub fn route_links_into(&self, flow: &Flow, out: &mut Vec<usize>) -> Result<NetworkDistance> {
        self.route_with(flow, |id| out.push(id.index()))
    }

    /// Shared routing core: computes the path and emits each link through
    /// `emit`, in path order.
    fn route_with(&self, flow: &Flow, mut emit: impl FnMut(LinkId)) -> Result<NetworkDistance> {
        let distance = self.fat_tree.distance(flow.src, flow.dst)?;
        match distance {
            NetworkDistance::SameNode => {}
            NetworkDistance::SameToR => {
                emit(self.node_up(flow.src));
                emit(self.node_down(flow.dst));
            }
            NetworkDistance::SameAggregationDomain => {
                let plane = self.ecmp_plane(flow);
                let src_tor = self.fat_tree.tor_of(flow.src)?;
                let dst_tor = self.fat_tree.tor_of(flow.dst)?;
                emit(self.node_up(flow.src));
                emit(self.tor_up(src_tor, plane));
                emit(self.tor_down(dst_tor, plane));
                emit(self.node_down(flow.dst));
            }
            NetworkDistance::CrossCore => {
                let plane = self.ecmp_plane(flow);
                let src_tor = self.fat_tree.tor_of(flow.src)?;
                let dst_tor = self.fat_tree.tor_of(flow.dst)?;
                let src_domain = self.fat_tree.aggregation_domain_of(flow.src)?;
                let dst_domain = self.fat_tree.aggregation_domain_of(flow.dst)?;
                emit(self.node_up(flow.src));
                emit(self.tor_up(src_tor, plane));
                emit(self.agg_up(src_domain, plane));
                emit(self.agg_down(dst_domain, plane));
                emit(self.tor_down(dst_tor, plane));
                emit(self.node_down(flow.dst));
            }
        }
        Ok(distance)
    }

    /// Number of ToRs per aggregation domain (used by tests and reports).
    pub fn tors_per_domain(&self) -> usize {
        self.tors_per_domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::Bytes;

    fn network() -> DcnNetwork {
        // 64 nodes, 4 per ToR, 4 ToRs per aggregation domain => 16 ToRs, 4 domains.
        let fat_tree = FatTree::new(64, 4, 4).unwrap();
        DcnNetwork::new(fat_tree, NetworkParams::non_blocking(4, 4)).unwrap()
    }

    #[test]
    fn link_table_covers_every_tier() {
        let net = network();
        let planes = net.params().aggregation_planes;
        assert_eq!(net.links().len(), 2 * 64 + 2 * 16 * planes + 2 * 4 * planes);
        // Ids are dense and self-consistent.
        for (i, link) in net.links().iter().enumerate() {
            assert_eq!(link.id, LinkId(i));
            assert!(link.capacity.value() > 0.0);
        }
    }

    #[test]
    fn same_tor_route_uses_only_access_links() {
        let net = network();
        let flow = Flow::new(NodeId(0), NodeId(3), Bytes::from_mb(10.0));
        let route = net.route(&flow).unwrap();
        assert_eq!(route.distance, NetworkDistance::SameToR);
        assert_eq!(route.hops(), 2);
        assert!(!route.crosses_tor());
        assert!(
            matches!(net.link(route.links[0]).unwrap().kind, LinkKind::NodeUp(n) if n == NodeId(0))
        );
        assert!(
            matches!(net.link(route.links[1]).unwrap().kind, LinkKind::NodeDown(n) if n == NodeId(3))
        );
    }

    #[test]
    fn cross_tor_route_traverses_the_uplinks_of_one_plane() {
        let net = network();
        let flow = Flow::new(NodeId(0), NodeId(5), Bytes::from_mb(10.0));
        let route = net.route(&flow).unwrap();
        assert_eq!(route.distance, NetworkDistance::SameAggregationDomain);
        assert_eq!(route.hops(), 4);
        assert!(route.crosses_tor());
        let planes: Vec<usize> = route
            .links
            .iter()
            .filter_map(|&id| match net.link(id).unwrap().kind {
                LinkKind::TorUp(_, p) | LinkKind::TorDown(_, p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(planes.len(), 2);
        assert_eq!(planes[0], planes[1], "up and down must use the same plane");
    }

    #[test]
    fn cross_domain_route_traverses_the_core() {
        let net = network();
        // Node 0 is in domain 0, node 63 in domain 3.
        let flow = Flow::new(NodeId(0), NodeId(63), Bytes::from_mb(1.0));
        let route = net.route(&flow).unwrap();
        assert_eq!(route.distance, NetworkDistance::CrossCore);
        assert_eq!(route.hops(), 6);
        assert!(route
            .links
            .iter()
            .any(|&id| matches!(net.link(id).unwrap().kind, LinkKind::AggUp(0, _))));
        assert!(route
            .links
            .iter()
            .any(|&id| matches!(net.link(id).unwrap().kind, LinkKind::AggDown(3, _))));
    }

    #[test]
    fn local_flow_has_an_empty_route() {
        let net = network();
        let route = net
            .route(&Flow::new(NodeId(9), NodeId(9), Bytes(1.0)))
            .unwrap();
        assert_eq!(route.hops(), 0);
        assert_eq!(route.distance, NetworkDistance::SameNode);
    }

    #[test]
    fn ecmp_spreads_flows_over_planes() {
        let net = network();
        let mut seen = std::collections::BTreeSet::new();
        for dst in 4..32usize {
            seen.insert(net.ecmp_plane(&Flow::new(NodeId(0), NodeId(dst), Bytes(1.0))));
        }
        assert!(seen.len() > 1, "ECMP must use more than one plane");
        assert!(seen.iter().all(|&p| p < net.params().aggregation_planes));
    }

    #[test]
    fn oversubscription_shrinks_uplinks_only() {
        let base = NetworkParams::non_blocking(4, 4);
        let over = base.oversubscribed(2.0);
        assert_eq!(over.node_bandwidth, base.node_bandwidth);
        assert!((over.tor_uplink.value() - base.tor_uplink.value() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let fat_tree = FatTree::new(16, 4, 2).unwrap();
        let mut params = NetworkParams::non_blocking(4, 4);
        params.aggregation_planes = 0;
        assert!(DcnNetwork::new(fat_tree.clone(), params).is_err());
        let mut params = NetworkParams::non_blocking(4, 4);
        params.tor_uplink = GBps(0.0);
        assert!(DcnNetwork::new(fat_tree, params).is_err());
    }

    #[test]
    fn route_links_into_matches_route_exactly() {
        let net = network();
        let mut flat = Vec::new();
        // Same node, same ToR, same domain, cross-core — every distance class.
        for (src, dst) in [(9, 9), (0, 3), (0, 5), (0, 63)] {
            let flow = Flow::new(NodeId(src), NodeId(dst), Bytes(1.0));
            let route = net.route(&flow).unwrap();
            let before = flat.len();
            let distance = net.route_links_into(&flow, &mut flat).unwrap();
            assert_eq!(distance, route.distance);
            let appended: Vec<usize> = flat[before..].to_vec();
            let expected: Vec<usize> = route.links.iter().map(|l| l.index()).collect();
            assert_eq!(appended, expected);
        }
        // Errors leave the output buffer untouched.
        let len = flat.len();
        assert!(net
            .route_links_into(&Flow::new(NodeId(0), NodeId(99), Bytes(1.0)), &mut flat)
            .is_err());
        assert_eq!(flat.len(), len);
    }

    #[test]
    fn route_rejects_unknown_nodes() {
        let net = network();
        assert!(net
            .route(&Flow::new(NodeId(0), NodeId(99), Bytes(1.0)))
            .is_err());
    }
}
