//! Placing several concurrent jobs on one shared Fat-Tree.
//!
//! The orchestrator (§4.3) places **one** job against a fault set. Real
//! clusters run a *mix*: every placed job's nodes are unavailable to the next
//! one, so later jobs see an increasingly fragmented cluster — exactly the
//! regime where placement quality decides how much DP/PP traffic spills
//! across ToRs and collides with the neighbours. This module runs the
//! orchestrator sequentially over a job list, folding each placement into the
//! next job's exclusion set, and hands the resulting schemes to the traffic
//! lowering ([`crate::traffic::TrafficMatrix`]) and the replay engine
//! ([`crate::engine`]).

use hbd_types::Result;
use orchestrator::{greedy_placement, FatTreeOrchestrator, OrchestrationRequest, PlacementScheme};
use rand::Rng;
use serde::{Deserialize, Serialize};
use topology::FaultSet;

/// One job of the mix: a name plus its orchestration request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixJob {
    /// Job name (carried through lowering into the interference report).
    pub name: String,
    /// The job's placement request (scale, TP group size, K-hop reach).
    pub request: OrchestrationRequest,
}

impl MixJob {
    /// Creates a mix entry.
    pub fn new(name: impl Into<String>, request: OrchestrationRequest) -> Self {
        MixJob {
            name: name.into(),
            request,
        }
    }
}

/// A job successfully placed on the shared fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedJob {
    /// The job's name.
    pub name: String,
    /// Its TP groups, in DP-rank order.
    pub scheme: PlacementScheme,
}

/// Places every job of the mix in order, excluding faulty nodes and the nodes
/// already taken by earlier jobs. Fails if any job cannot be satisfied — the
/// mix is all-or-nothing, matching a gang-scheduled cluster.
///
/// `threads` fans the orchestrator's constraint search out; the resulting
/// placements are identical for every thread count (see
/// [`FatTreeOrchestrator::orchestrate_par`]).
pub fn place_mix(
    orchestrator: &FatTreeOrchestrator,
    jobs: &[MixJob],
    faults: &FaultSet,
    threads: usize,
) -> Result<Vec<PlacedJob>> {
    let mut excluded = faults.clone();
    let mut placed = Vec::with_capacity(jobs.len());
    for job in jobs {
        let scheme = orchestrator.orchestrate_par(&job.request, &excluded, threads)?;
        for group in &scheme.groups {
            for &node in &group.nodes {
                excluded.add(node);
            }
        }
        placed.push(PlacedJob {
            name: job.name.clone(),
            scheme,
        });
    }
    Ok(placed)
}

/// The greedy counterpart of [`place_mix`]: every job picks random healthy
/// nodes (the §6.4 baseline), and — like the optimized path — each placement
/// is folded into the next job's exclusion set. Jobs the shuffle cannot
/// satisfy keep whatever partial placement the node pool allowed, matching
/// [`greedy_placement`]'s semantics.
pub fn greedy_place_mix<R: Rng + ?Sized>(
    total_nodes: usize,
    jobs: &[MixJob],
    faults: &FaultSet,
    rng: &mut R,
) -> Vec<PlacedJob> {
    let mut excluded = faults.clone();
    let mut placed = Vec::with_capacity(jobs.len());
    for job in jobs {
        let scheme = greedy_placement(
            total_nodes,
            &excluded,
            job.request.nodes_per_group,
            job.request.job_nodes,
            rng,
        );
        for group in &scheme.groups {
            for &node in &group.nodes {
                excluded.add(node);
            }
        }
        placed.push(PlacedJob {
            name: job.name.clone(),
            scheme,
        });
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeId;
    use std::collections::BTreeSet;
    use topology::FatTree;

    fn orchestrator() -> FatTreeOrchestrator {
        FatTreeOrchestrator::new(FatTree::new(64, 4, 4).unwrap()).unwrap()
    }

    fn request(job_nodes: usize) -> OrchestrationRequest {
        OrchestrationRequest {
            job_nodes,
            nodes_per_group: 4,
            k: 2,
        }
    }

    #[test]
    fn jobs_get_disjoint_placements() {
        let orch = orchestrator();
        let jobs = vec![
            MixJob::new("a", request(16)),
            MixJob::new("b", request(16)),
            MixJob::new("c", request(8)),
        ];
        let placed = place_mix(&orch, &jobs, &FaultSet::new(), 1).unwrap();
        assert_eq!(placed.len(), 3);
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        for job in &placed {
            for group in &job.scheme.groups {
                for &node in &group.nodes {
                    assert!(seen.insert(node), "node {node} placed twice across jobs");
                }
            }
        }
        assert_eq!(placed[0].scheme.nodes_placed(), 16);
        assert_eq!(placed[2].scheme.nodes_placed(), 8);
    }

    #[test]
    fn faulty_nodes_are_never_placed() {
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..8).map(NodeId));
        let placed = place_mix(&orch, &[MixJob::new("a", request(16))], &faults, 1).unwrap();
        for group in &placed[0].scheme.groups {
            for &node in &group.nodes {
                assert!(!faults.is_faulty(node));
            }
        }
    }

    #[test]
    fn an_oversized_mix_is_rejected() {
        let orch = orchestrator();
        let jobs = vec![MixJob::new("a", request(48)), MixJob::new("b", request(32))];
        assert!(place_mix(&orch, &jobs, &FaultSet::new(), 1).is_err());
    }

    #[test]
    fn greedy_mix_placements_are_disjoint_and_exclude_faults() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let faults = FaultSet::from_nodes((0..4).map(NodeId));
        let jobs = vec![MixJob::new("a", request(16)), MixJob::new("b", request(16))];
        let placed = greedy_place_mix(64, &jobs, &faults, &mut StdRng::seed_from_u64(9));
        assert_eq!(placed.len(), 2);
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        for job in &placed {
            assert_eq!(job.scheme.nodes_placed(), 16);
            for group in &job.scheme.groups {
                for &node in &group.nodes {
                    assert!(!faults.is_faulty(node));
                    assert!(seen.insert(node), "node {node} placed twice across jobs");
                }
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_the_placements() {
        let orch = orchestrator();
        let jobs = vec![MixJob::new("a", request(24)), MixJob::new("b", request(16))];
        let one = place_mix(&orch, &jobs, &FaultSet::new(), 1).unwrap();
        let four = place_mix(&orch, &jobs, &FaultSet::new(), 4).unwrap();
        assert_eq!(one, four);
    }
}
