//! Placing several concurrent jobs on one shared Fat-Tree.
//!
//! The orchestrator (§4.3) places **one** job against a fault set. Real
//! clusters run a *mix*: every placed job's nodes are unavailable to the next
//! one, so later jobs see an increasingly fragmented cluster — exactly the
//! regime where placement quality decides how much DP/PP traffic spills
//! across ToRs and collides with the neighbours. This module runs the
//! orchestrator sequentially over a job list, folding each placement into the
//! next job's exclusion set, and hands the resulting schemes to the traffic
//! lowering ([`crate::traffic::TrafficMatrix`]) and the replay engine
//! ([`crate::engine`]).

use hbd_types::{NodeId, Result};
use orchestrator::{
    greedy_placement, FatTreeOrchestrator, OrchestrationRequest, PlacementScheme, SnapshotDelta,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use topology::FaultSet;

/// One job of the mix: a name plus its orchestration request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixJob {
    /// Job name (carried through lowering into the interference report).
    pub name: String,
    /// The job's placement request (scale, TP group size, K-hop reach).
    pub request: OrchestrationRequest,
}

impl MixJob {
    /// Creates a mix entry.
    pub fn new(name: impl Into<String>, request: OrchestrationRequest) -> Self {
        MixJob {
            name: name.into(),
            request,
        }
    }
}

/// A job successfully placed on the shared fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedJob {
    /// The job's name.
    pub name: String,
    /// Its TP groups, in DP-rank order.
    pub scheme: PlacementScheme,
}

/// Incrementally maintained exclusion state for an *online* job mix.
///
/// [`place_mix`] folds placements into an exclusion set once, in arrival
/// order, and throws the state away. A live cluster needs the same view
/// maintained incrementally — jobs depart, nodes fail and are repaired — so
/// the ledger tracks *why* each node is excluded (an active fault, an active
/// placement, or both) and mirrors the "any reason" union in a dense
/// [`FaultSet`] ready to hand to the orchestrator. All four transitions are
/// O(nodes touched); [`ExclusionLedger::excluded`] is O(1).
///
/// The invariant `excluded == faulty ∪ placed` is pinned bit-for-bit against
/// a rebuild-from-scratch oracle by the `jobmix_ledger_properties` proptest
/// suite.
///
/// The ledger also emits snapshot *deltas* natively: every transition that
/// flips a node in or out of the exclusion union records the net flip in a
/// pending [`SnapshotDelta`], and [`ExclusionLedger::publish_delta`] hands
/// exactly that delta to the store — so a publish costs the nodes that
/// changed since the last publish, never a clone of the whole union. Flips
/// that cancel (occupy then release between two publishes) leave no trace,
/// and an empty pending delta means the publish can be skipped outright.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExclusionLedger {
    faulty: FaultSet,
    placed: FaultSet,
    excluded: FaultSet,
    /// Net exclusion flips since the last publish. Invariant: a node is in
    /// at most one of the three sets, and `pending` applied to the last
    /// published state reproduces `excluded` exactly.
    pending: SnapshotDelta,
}

impl ExclusionLedger {
    /// An empty ledger: no faults, no placements.
    pub fn new() -> Self {
        Self::default()
    }

    /// A ledger seeded with an initial fault set. The seed counts as already
    /// published state only if the paired store was created with the same
    /// faults; otherwise call [`publish`](Self::publish) once to align.
    pub fn with_faults(faults: &FaultSet) -> Self {
        ExclusionLedger {
            faulty: faults.clone(),
            placed: FaultSet::new(),
            excluded: faults.clone(),
            pending: SnapshotDelta::new(),
        }
    }

    /// Records that `node` flipped *into* the exclusion union. A flip that
    /// merely undoes a pending release cancels instead of accumulating.
    fn flip_on(&mut self, node: NodeId, faulted: bool) {
        if !self.pending.released.remove(node) {
            if faulted {
                self.pending.faulted.add(node);
            } else {
                self.pending.occupied.add(node);
            }
        }
    }

    /// Records that `node` flipped *out of* the exclusion union, cancelling
    /// a not-yet-published exclusion of the same node if there is one.
    fn flip_off(&mut self, node: NodeId) {
        if !(self.pending.occupied.remove(node) || self.pending.faulted.remove(node)) {
            self.pending.released.add(node);
        }
    }

    /// Marks `node` faulty. Returns `true` if the node was healthy before.
    /// A node can be faulty and placed at the same time (a fault striking a
    /// running job); it stays excluded until *both* reasons are gone.
    pub fn fault(&mut self, node: NodeId) -> bool {
        if self.excluded.add(node) {
            self.flip_on(node, true);
        }
        self.faulty.add(node)
    }

    /// Marks `node` repaired. Returns `true` if the node was faulty before.
    /// The node becomes available again only if no placement still owns it.
    pub fn repair(&mut self, node: NodeId) -> bool {
        let was_faulty = self.faulty.remove(node);
        if was_faulty && !self.placed.is_faulty(node) && self.excluded.remove(node) {
            self.flip_off(node);
        }
        was_faulty
    }

    /// Applies a burst of availability edges — `(node, down)` pairs, `down ==
    /// true` meaning a fault and `false` a repair — and returns how many of
    /// them actually changed node state (a double fault or a repair of a
    /// healthy node is counted as absorbed, not an error). This is how
    /// correlated fault storms (`fault::storm`) enter the ledger: a whole
    /// blast-radius burst lands as one call, accumulates into one pending
    /// [`SnapshotDelta`], and the caller decides when to publish.
    pub fn apply_availability_burst<I>(&mut self, edges: I) -> usize
    where
        I: IntoIterator<Item = (NodeId, bool)>,
    {
        let mut changed = 0usize;
        for (node, down) in edges {
            let flipped = if down {
                self.fault(node)
            } else {
                self.repair(node)
            };
            changed += usize::from(flipped);
        }
        changed
    }

    /// Folds a placement into the exclusion set (the job starts running).
    /// The scheme's nodes must not already be placed — placements are
    /// disjoint by construction.
    pub fn place(&mut self, scheme: &PlacementScheme) {
        for group in &scheme.groups {
            for &node in &group.nodes {
                let newly = self.placed.add(node);
                debug_assert!(newly, "node {node} placed twice");
                if self.excluded.add(node) {
                    self.flip_on(node, false);
                }
            }
        }
    }

    /// Removes a placement from the exclusion set (the job departs or is
    /// migrated away). Nodes that are still faulty stay excluded.
    pub fn release(&mut self, scheme: &PlacementScheme) {
        for group in &scheme.groups {
            for &node in &group.nodes {
                let was = self.placed.remove(node);
                debug_assert!(was, "node {node} released but not placed");
                if !self.faulty.is_faulty(node) && self.excluded.remove(node) {
                    self.flip_off(node);
                }
            }
        }
    }

    /// The union of faulty and placed nodes — what the next orchestration
    /// must avoid.
    pub fn excluded(&self) -> &FaultSet {
        &self.excluded
    }

    /// The currently faulty nodes.
    pub fn faulty(&self) -> &FaultSet {
        &self.faulty
    }

    /// Number of nodes currently owned by placements.
    pub fn placed_nodes(&self) -> usize {
        self.placed.len()
    }

    /// Whether `node` is currently owned by a placement.
    pub fn is_placed(&self, node: NodeId) -> bool {
        self.placed.is_faulty(node)
    }

    /// The net exclusion flips accumulated since the last publish. Empty
    /// exactly when a publish would be a no-op.
    pub fn pending_delta(&self) -> &SnapshotDelta {
        &self.pending
    }

    /// Takes the pending delta out of the ledger (leaving it empty), for
    /// callers that schedule publishes themselves — e.g. a storm replay that
    /// hands each delta to a modeled-time session instead of publishing to a
    /// live store. The caller assumes responsibility for delivering the
    /// delta; dropping it desynchronises ledger and store exactly as a lost
    /// publish would.
    pub fn take_pending_delta(&mut self) -> SnapshotDelta {
        std::mem::take(&mut self.pending)
    }

    /// Publishes the current exclusion union *wholesale* as the next epoch of
    /// `store` — the cluster-sized fallback bridge from the ledger to the
    /// snapshot path. Drains the pending delta (the new snapshot equals
    /// `excluded()` exactly, so nothing is outstanding afterwards). Prefer
    /// [`publish_delta`](Self::publish_delta) on hot paths.
    pub fn publish(&mut self, store: &orchestrator::service::SnapshotStore) -> u64 {
        self.pending = SnapshotDelta::new();
        store.publish(self.excluded.clone())
    }

    /// Publishes the pending delta as the next epoch of `store` and drains
    /// it, making the publish cost proportional to the nodes that actually
    /// flipped since the last publish. Returns `None` — skipping the publish
    /// entirely — when nothing flipped (e.g. a queue-only transition, or
    /// flips that cancelled out). Requires the store's current snapshot to
    /// match the ledger's last published state, which holds whenever every
    /// publish of the store goes through this ledger.
    pub fn publish_delta(&mut self, store: &orchestrator::service::SnapshotStore) -> Option<u64> {
        if self.pending.is_empty() {
            return None;
        }
        let delta = std::mem::take(&mut self.pending);
        let epoch = store.publish_delta(&delta);
        debug_assert_eq!(
            store.load().value.faults(),
            &self.excluded,
            "delta publish must reproduce the ledger's exclusion union"
        );
        Some(epoch)
    }
}

/// Places every job of the mix in order, excluding faulty nodes and the nodes
/// already taken by earlier jobs. Fails if any job cannot be satisfied — the
/// mix is all-or-nothing, matching a gang-scheduled cluster.
///
/// `threads` fans the orchestrator's constraint search out; the resulting
/// placements are identical for every thread count (see
/// [`FatTreeOrchestrator::orchestrate_par`]).
pub fn place_mix(
    orchestrator: &FatTreeOrchestrator,
    jobs: &[MixJob],
    faults: &FaultSet,
    threads: usize,
) -> Result<Vec<PlacedJob>> {
    let mut ledger = ExclusionLedger::with_faults(faults);
    let mut placed = Vec::with_capacity(jobs.len());
    for job in jobs {
        let scheme = orchestrator.orchestrate_par(&job.request, ledger.excluded(), threads)?;
        ledger.place(&scheme);
        placed.push(PlacedJob {
            name: job.name.clone(),
            scheme,
        });
    }
    Ok(placed)
}

/// Splits a (possibly partial) mix placement into the jobs whose request was
/// fully satisfied and the count of jobs that fell short — the accounting the
/// interference experiments apply to [`greedy_place_mix`] output before
/// lowering traffic (a short TP group would otherwise produce degenerate
/// flows downstream).
pub fn satisfied_jobs(placed: Vec<PlacedJob>, jobs: &[MixJob]) -> (Vec<PlacedJob>, usize) {
    debug_assert_eq!(placed.len(), jobs.len());
    let mut satisfied = Vec::with_capacity(placed.len());
    let mut dropped = 0;
    for (job, placement) in jobs.iter().zip(placed) {
        if placement.scheme.satisfies(job.request.job_nodes) {
            satisfied.push(placement);
        } else {
            dropped += 1;
        }
    }
    (satisfied, dropped)
}

/// The greedy counterpart of [`place_mix`]: every job picks random healthy
/// nodes (the §6.4 baseline), and — like the optimized path — each placement
/// is folded into the next job's exclusion set. Jobs the shuffle cannot
/// satisfy keep whatever partial placement the node pool allowed, matching
/// [`greedy_placement`]'s semantics.
pub fn greedy_place_mix<R: Rng + ?Sized>(
    total_nodes: usize,
    jobs: &[MixJob],
    faults: &FaultSet,
    rng: &mut R,
) -> Vec<PlacedJob> {
    let mut ledger = ExclusionLedger::with_faults(faults);
    let mut placed = Vec::with_capacity(jobs.len());
    for job in jobs {
        let scheme = greedy_placement(
            total_nodes,
            ledger.excluded(),
            job.request.nodes_per_group,
            job.request.job_nodes,
            rng,
        );
        ledger.place(&scheme);
        placed.push(PlacedJob {
            name: job.name.clone(),
            scheme,
        });
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeId;
    use std::collections::BTreeSet;
    use topology::FatTree;

    fn orchestrator() -> FatTreeOrchestrator {
        FatTreeOrchestrator::new(FatTree::new(64, 4, 4).unwrap()).unwrap()
    }

    fn request(job_nodes: usize) -> OrchestrationRequest {
        OrchestrationRequest {
            job_nodes,
            nodes_per_group: 4,
            k: 2,
        }
    }

    #[test]
    fn jobs_get_disjoint_placements() {
        let orch = orchestrator();
        let jobs = vec![
            MixJob::new("a", request(16)),
            MixJob::new("b", request(16)),
            MixJob::new("c", request(8)),
        ];
        let placed = place_mix(&orch, &jobs, &FaultSet::new(), 1).unwrap();
        assert_eq!(placed.len(), 3);
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        for job in &placed {
            for group in &job.scheme.groups {
                for &node in &group.nodes {
                    assert!(seen.insert(node), "node {node} placed twice across jobs");
                }
            }
        }
        assert_eq!(placed[0].scheme.nodes_placed(), 16);
        assert_eq!(placed[2].scheme.nodes_placed(), 8);
    }

    #[test]
    fn faulty_nodes_are_never_placed() {
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..8).map(NodeId));
        let placed = place_mix(&orch, &[MixJob::new("a", request(16))], &faults, 1).unwrap();
        for group in &placed[0].scheme.groups {
            for &node in &group.nodes {
                assert!(!faults.is_faulty(node));
            }
        }
    }

    #[test]
    fn an_oversized_mix_is_rejected() {
        let orch = orchestrator();
        let jobs = vec![MixJob::new("a", request(48)), MixJob::new("b", request(32))];
        assert!(place_mix(&orch, &jobs, &FaultSet::new(), 1).is_err());
    }

    #[test]
    fn greedy_mix_placements_are_disjoint_and_exclude_faults() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let faults = FaultSet::from_nodes((0..4).map(NodeId));
        let jobs = vec![MixJob::new("a", request(16)), MixJob::new("b", request(16))];
        let placed = greedy_place_mix(64, &jobs, &faults, &mut StdRng::seed_from_u64(9));
        assert_eq!(placed.len(), 2);
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        for job in &placed {
            assert_eq!(job.scheme.nodes_placed(), 16);
            for group in &job.scheme.groups {
                for &node in &group.nodes {
                    assert!(!faults.is_faulty(node));
                    assert!(seen.insert(node), "node {node} placed twice across jobs");
                }
            }
        }
    }

    #[test]
    fn ledger_tracks_faults_and_placements_independently() {
        use orchestrator::TpGroup;
        let mut ledger = ExclusionLedger::new();
        assert!(ledger.fault(NodeId(3)));
        assert!(!ledger.fault(NodeId(3)), "double fault is idempotent");
        let scheme =
            PlacementScheme::from_groups(vec![TpGroup::new(vec![NodeId(3), NodeId(4), NodeId(5)])]);
        // Node 3 is faulty AND placed: it must survive either reason ending.
        ledger.place(&scheme);
        assert_eq!(ledger.placed_nodes(), 3);
        assert!(ledger.excluded().is_faulty(NodeId(3)));
        assert!(ledger.repair(NodeId(3)));
        assert!(
            ledger.excluded().is_faulty(NodeId(3)),
            "still placed, stays excluded after repair"
        );
        ledger.release(&scheme);
        assert_eq!(ledger.placed_nodes(), 0);
        assert_eq!(ledger.excluded().len(), 0);

        // The other order: released while faulty keeps the node excluded.
        ledger.fault(NodeId(4));
        ledger.place(&scheme);
        ledger.release(&scheme);
        assert!(ledger.excluded().is_faulty(NodeId(4)));
        assert_eq!(ledger.excluded().len(), 1);
        ledger.repair(NodeId(4));
        assert_eq!(ledger.excluded().len(), 0);
    }

    #[test]
    fn availability_bursts_land_as_one_pending_delta() {
        let mut ledger = ExclusionLedger::new();
        // A storm burst downs three nodes; the repeated edge is absorbed.
        let changed = ledger.apply_availability_burst([
            (NodeId(1), true),
            (NodeId(2), true),
            (NodeId(2), true),
            (NodeId(9), true),
        ]);
        assert_eq!(changed, 3);
        assert_eq!(ledger.faulty().len(), 3);
        assert_eq!(ledger.pending_delta().faulted.len(), 3);
        // The repair wave cancels the not-yet-published faults, so the
        // pending delta collapses instead of growing.
        let changed = ledger.apply_availability_burst([
            (NodeId(1), false),
            (NodeId(2), false),
            (NodeId(7), false),
        ]);
        assert_eq!(changed, 2, "repairing a healthy node is absorbed");
        assert_eq!(ledger.faulty().len(), 1);
        assert_eq!(ledger.pending_delta().faulted.len(), 1);
        assert!(ledger.pending_delta().released.is_empty());
    }

    /// Double-occupying a node breaks the placements-are-disjoint contract:
    /// debug builds must refuse loudly instead of silently corrupting the
    /// placed multiset (a `FaultSet` cannot count a node twice, so a second
    /// `place` would make the first `release` free a node another job owns).
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "placed twice")]
    fn double_occupy_panics_in_debug_builds() {
        use orchestrator::TpGroup;
        let mut ledger = ExclusionLedger::new();
        let scheme = PlacementScheme::from_groups(vec![TpGroup::new(vec![NodeId(7), NodeId(8)])]);
        ledger.place(&scheme);
        let overlapping = PlacementScheme::from_groups(vec![TpGroup::new(vec![NodeId(8)])]);
        ledger.place(&overlapping);
    }

    /// Releasing a job the ledger never saw placed is the matching bug on
    /// the departure path.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "released but not placed")]
    fn release_of_unknown_job_panics_in_debug_builds() {
        use orchestrator::TpGroup;
        let mut ledger = ExclusionLedger::new();
        let unknown = PlacementScheme::from_groups(vec![TpGroup::new(vec![NodeId(2)])]);
        ledger.release(&unknown);
    }

    #[test]
    fn ledger_publishes_its_exclusion_union_to_a_snapshot_store() {
        use orchestrator::service::SnapshotStore;
        use orchestrator::TpGroup;
        use std::sync::Arc;
        let orch = orchestrator();
        let store = SnapshotStore::new(Arc::new(orch), FaultSet::new());
        let mut ledger = ExclusionLedger::new();
        ledger.fault(NodeId(1));
        assert_eq!(ledger.publish(&store), 1);
        let scheme = PlacementScheme::from_groups(vec![TpGroup::new(vec![NodeId(4), NodeId(5)])]);
        ledger.place(&scheme);
        assert_eq!(ledger.publish(&store), 2);
        let snapshot = store.load();
        assert_eq!(snapshot.epoch, 2);
        assert_eq!(snapshot.value.faults(), ledger.excluded());
        assert_eq!(
            snapshot.value.faults(),
            &FaultSet::from_nodes([NodeId(1), NodeId(4), NodeId(5)])
        );
    }

    #[test]
    fn place_mix_through_the_ledger_matches_the_folded_exclusion_semantics() {
        // The ledger rewiring must not change what place_mix excludes: after
        // placing, the ledger's union equals faults ∪ placed nodes.
        let orch = orchestrator();
        let faults = FaultSet::from_nodes((0..4).map(NodeId));
        let jobs = vec![MixJob::new("a", request(16)), MixJob::new("b", request(8))];
        let placed = place_mix(&orch, &jobs, &faults, 1).unwrap();
        let mut expected = faults.clone();
        for job in &placed {
            for group in &job.scheme.groups {
                for &node in &group.nodes {
                    expected.add(node);
                }
            }
        }
        let mut ledger = ExclusionLedger::with_faults(&faults);
        for job in &placed {
            ledger.place(&job.scheme);
        }
        assert_eq!(*ledger.excluded(), expected);
    }

    #[test]
    fn satisfied_jobs_drops_short_placements() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // 10 healthy nodes cannot satisfy a 16-node job after an 8-node job.
        let jobs = vec![MixJob::new("a", request(8)), MixJob::new("b", request(16))];
        let placed = greedy_place_mix(12, &jobs, &FaultSet::new(), &mut StdRng::seed_from_u64(5));
        let (kept, dropped) = satisfied_jobs(placed, &jobs);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].name, "a");
        assert_eq!(dropped, 1);
    }

    #[test]
    fn thread_count_does_not_change_the_placements() {
        let orch = orchestrator();
        let jobs = vec![MixJob::new("a", request(24)), MixJob::new("b", request(16))];
        let one = place_mix(&orch, &jobs, &FaultSet::new(), 1).unwrap();
        let four = place_mix(&orch, &jobs, &FaultSet::new(), 4).unwrap();
        assert_eq!(one, four);
    }
}
