//! Flows and routes — the unit of traffic the DCN simulator reasons about.

use hbd_types::{Bytes, LinkId, NodeId};
use serde::{Deserialize, Serialize};
use topology::NetworkDistance;

/// A unidirectional transfer between two nodes' DCN NICs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload size.
    pub bytes: Bytes,
}

impl Flow {
    /// Creates a flow.
    pub fn new(src: NodeId, dst: NodeId, bytes: Bytes) -> Self {
        Flow { src, dst, bytes }
    }

    /// Whether source and destination are the same node (the flow never enters
    /// the DCN — e.g. two TP ranks of the same group on one node).
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

/// The links a flow traverses, in order, plus the topological distance class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Directed links traversed by the flow, in path order. Empty for local
    /// flows.
    pub links: Vec<LinkId>,
    /// Distance class of the path (same node, same ToR, same aggregation
    /// domain, cross-domain).
    pub distance: NetworkDistance,
}

impl Route {
    /// Number of links traversed.
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// Whether the route leaves its ToR (i.e. uses at least one ToR uplink).
    pub fn crosses_tor(&self) -> bool {
        self.hops() > 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_flow_detection() {
        assert!(Flow::new(NodeId(3), NodeId(3), Bytes(1.0)).is_local());
        assert!(!Flow::new(NodeId(3), NodeId(4), Bytes(1.0)).is_local());
    }

    #[test]
    fn route_hop_accounting() {
        let intra_tor = Route {
            links: vec![LinkId(0), LinkId(1)],
            distance: NetworkDistance::SameToR,
        };
        assert_eq!(intra_tor.hops(), 2);
        assert!(!intra_tor.crosses_tor());

        let cross_tor = Route {
            links: vec![LinkId(0), LinkId(5), LinkId(6), LinkId(1)],
            distance: NetworkDistance::SameAggregationDomain,
        };
        assert!(cross_tor.crosses_tor());
    }
}
