//! The multi-epoch, multi-job traffic engine.
//!
//! [`FlowSimulation`](crate::simulator::FlowSimulation) solves **one** flow
//! set with **one** max-min allocation; this module replays **several jobs'
//! epoch cycles concurrently** on the shared fabric. The replay is a
//! progressive-filling fluid simulation:
//!
//! 1. every job exposes the flows of its *current* epoch (a job advances to
//!    its next epoch only when all flows of the current one complete — the
//!    barrier semantics of collectives);
//! 2. the max-min fair allocation of all concurrently live flows is computed
//!    ([`crate::maxmin`]);
//! 3. time advances to the next flow completion, remaining volumes are
//!    debited, and the allocation is re-solved.
//!
//! Because rates are re-solved at every completion, a job's epochs stretch
//! exactly where — and only where — another job's traffic shares a link with
//! it. Comparing the shared replay against each job's isolated replay yields
//! the interference metrics of [`MixOutcome`]: per-job slowdown, p99 epoch
//! stretch, and the link hot-spot profile. This is the shared-fabric
//! contention regime the paper's placement algorithm is designed to avoid
//! (§4.3, §6.3): InfiniteHBD confines TP/EP inside the optical HBD, and the
//! engine quantifies what the *remaining* DP/PP/CP spill-over does to the
//! electrical DCN when several jobs land on it at once.
//!
//! # How the event loop stays fast
//!
//! The engine is built around the incremental
//! [`crate::maxmin::MaxMinSolver`] and avoids per-event work
//! wherever the fluid model provably cannot change:
//!
//! * **CSR route tables.** Every epoch *template* is routed once up front into
//!   a flattened offsets + links array ([`DcnNetwork::route_links_into`]);
//!   epoch instances borrow `&[usize]` slices out of it — no per-event route
//!   allocation.
//! * **Persistent live-flow set.** The live flow list (and its rates) is kept
//!   between events and compacted in place on completions; it is only rebuilt
//!   (in canonical job-then-flow order, preserving the exact float summation
//!   order of the utilisation pass) when an epoch barrier admits new flows.
//! * **Skipped re-solves.** When the flows completing at an event free only
//!   links that no surviving flow traverses, the max-min allocation of the
//!   survivors is unchanged (a link-disjoint component dropped out), so the
//!   engine reuses the previous rates instead of re-solving — bit-identical
//!   by the solver's progressive-filling structure. [`ReplayStats`] counts
//!   how often this fires.
//! * **Parallel isolated baselines.** The per-job isolated replays that
//!   [`replay_mix_par`] compares against are independent by construction and
//!   fan out over [`hbd_types::par`], byte-identical for any thread count.

use crate::maxmin::MaxMinSolver;
use crate::network::DcnNetwork;
use crate::traffic::JobTraffic;
use hbd_types::par::par_try_map;
use hbd_types::{GBps, Result, Seconds};
use serde::{Deserialize, Serialize};

/// Remaining volume below which a flow counts as complete (bytes). Epoch
/// volumes are gigabytes-scale, so this absorbs float rounding only.
const COMPLETE_EPS: f64 = 1e-6;

/// One job's share of a replayed mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobInterference {
    /// Job name (from [`JobTraffic`]).
    pub name: String,
    /// Time the job took in the shared replay.
    pub shared_time: Seconds,
    /// Time the same job takes alone on the same network.
    pub isolated_time: Seconds,
    /// `shared_time / isolated_time` — 1.0 means the mix did not slow this
    /// job down at all.
    pub slowdown: f64,
    /// Mean per-epoch stretch (shared epoch duration / isolated duration).
    pub mean_stretch: f64,
    /// 99th-percentile per-epoch stretch (nearest-rank over all epoch
    /// instances of the replay).
    pub p99_stretch: f64,
    /// Per-epoch-instance durations in the shared replay, in replay order.
    pub epoch_times: Vec<Seconds>,
}

/// Cost counters of one replay — the engine's own performance telemetry
/// (simulation-deterministic: identical inputs give identical counters).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ReplayStats {
    /// Completion events processed (each advances time to the next finishing
    /// flow).
    pub events: usize,
    /// Events that re-solved the max-min allocation.
    pub full_solves: usize,
    /// Events that reused the previous allocation because the completed flows
    /// freed only links no surviving flow traverses.
    pub skipped_solves: usize,
    /// Water-filling rounds summed over all full solves.
    pub solver_rounds: usize,
    /// Epoch instances replayed across all jobs (including zero-time
    /// local-only epochs).
    pub epoch_instances: usize,
}

impl ReplayStats {
    /// Mean water-filling rounds per completion event (0.0 for an empty
    /// replay) — the quantity the incremental solver keeps small.
    pub fn rounds_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.solver_rounds as f64 / self.events as f64
        }
    }
}

/// The outcome of replaying a job mix on a shared DCN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixOutcome {
    /// Per-job interference metrics, in input order.
    pub jobs: Vec<JobInterference>,
    /// Time until the last job finished.
    pub makespan: Seconds,
    /// Peak utilisation (allocated load / capacity) each link reached at any
    /// point of the shared replay, indexed by link id.
    pub link_peak_utilization: Vec<f64>,
    /// Cost counters of the shared replay (the isolated baselines are not
    /// included).
    pub stats: ReplayStats,
}

impl MixOutcome {
    /// Number of links whose peak utilisation reached `threshold` (e.g. 0.95
    /// for "ran essentially full at some point").
    pub fn hot_links(&self, threshold: f64) -> usize {
        self.link_peak_utilization
            .iter()
            .filter(|&&u| u >= threshold)
            .count()
    }

    /// Histogram of per-link peak utilisation over the given bucket `edges`.
    ///
    /// Boundary convention: buckets are **right-open** — a utilisation `u`
    /// lands in the first bucket whose edge `e` satisfies `u < e`, so a value
    /// exactly on an edge lands in the bucket *at or above* that edge, and
    /// the last bucket catches everything at or above the final edge. Links
    /// that never carried traffic (`u <= 0`) are excluded.
    ///
    /// The edges are sanitised before binning: non-finite edges are dropped,
    /// the rest are sorted and de-duplicated. The returned histogram always
    /// has `sanitised_edges + 1` buckets (a single catch-all bucket for empty
    /// or all-invalid `edges`) — unsorted or duplicate edges therefore change
    /// the *shape*, never silently mis-bin. The previous implementation
    /// scanned the edges in input order, so an unsorted list could bin a
    /// mid-range utilisation into the wrong bucket and a duplicate edge
    /// produced a phantom always-empty bucket.
    pub fn utilization_histogram(&self, edges: &[f64]) -> Vec<usize> {
        let mut edges: Vec<f64> = edges.iter().copied().filter(|e| e.is_finite()).collect();
        edges.sort_by(f64::total_cmp);
        edges.dedup();
        let mut counts = vec![0usize; edges.len() + 1];
        for &util in &self.link_peak_utilization {
            if util <= 0.0 {
                continue;
            }
            // Sorted edges: partition_point is the first bucket with util < e.
            let bucket = edges.partition_point(|&e| e <= util);
            counts[bucket] += 1;
        }
        counts
    }

    /// The worst per-job slowdown of the mix (1.0 for an empty mix).
    pub fn max_slowdown(&self) -> f64 {
        self.jobs.iter().map(|j| j.slowdown).fold(1.0, f64::max)
    }

    /// The mean per-job slowdown of the mix (1.0 for an empty mix).
    pub fn mean_slowdown(&self) -> f64 {
        if self.jobs.is_empty() {
            return 1.0;
        }
        self.jobs.iter().map(|j| j.slowdown).sum::<f64>() / self.jobs.len() as f64
    }
}

/// Raw timing of one replay (shared or isolated).
#[derive(Debug, Clone, PartialEq)]
struct ReplayTimeline {
    /// Per job: durations of every epoch instance, in replay order.
    epoch_times: Vec<Vec<Seconds>>,
    /// Per job: total active time (sum of its epoch durations).
    totals: Vec<Seconds>,
    /// Wall-clock until the last job finished.
    makespan: Seconds,
    /// Peak utilisation per link.
    link_peak_utilization: Vec<f64>,
    /// Cost counters of the event loop.
    stats: ReplayStats,
}

/// Flattened (CSR) routes of one epoch template: flow `f`'s links are
/// `links[offsets[f]..offsets[f + 1]]`.
struct EpochRoutes {
    offsets: Vec<usize>,
    links: Vec<usize>,
}

impl EpochRoutes {
    fn route(&self, f: usize) -> &[usize] {
        &self.links[self.offsets[f]..self.offsets[f + 1]]
    }
}

/// Per-job mutable state of the event loop.
struct JobState {
    /// Index of the current epoch instance (`0 .. iterations × epochs`).
    instance: usize,
    /// Remaining bytes of the current epoch's flows.
    remaining: Vec<f64>,
    /// Flows of the current epoch still above [`COMPLETE_EPS`].
    live: usize,
    /// When the current epoch started.
    epoch_start: f64,
    /// Completed epoch durations.
    durations: Vec<Seconds>,
    /// When the job finished all instances.
    finished_at: f64,
}

/// Replays several jobs' epoch cycles concurrently and reports per-job
/// interference against their isolated runs.
///
/// Deterministic: each replay is a pure fluid computation — identical inputs
/// give bit-identical outcomes regardless of thread count. Single-threaded
/// convenience wrapper over [`replay_mix_par`].
pub fn replay_mix(network: &DcnNetwork, jobs: &[JobTraffic]) -> Result<MixOutcome> {
    replay_mix_par(network, jobs, 1)
}

/// [`replay_mix`] with the per-job isolated baseline replays fanned out over
/// up to `threads` worker threads ([`hbd_types::par`]).
///
/// The isolated replays are independent by construction, so the outcome is
/// byte-identical for any thread count; only wall-clock changes.
pub fn replay_mix_par(
    network: &DcnNetwork,
    jobs: &[JobTraffic],
    threads: usize,
) -> Result<MixOutcome> {
    // One fan-out over N + 1 independent replays: the shared mix (the most
    // expensive one — every job's events interleaved) plus the N isolated
    // baselines, so the shared replay overlaps the baselines instead of
    // serialising in front of them.
    let mut replay_sets: Vec<&[JobTraffic]> = Vec::with_capacity(jobs.len() + 1);
    replay_sets.push(jobs);
    replay_sets.extend(jobs.iter().map(std::slice::from_ref));
    let mut timelines: Vec<ReplayTimeline> =
        par_try_map(threads, &replay_sets, |_, set| replay(network, set))?;
    let shared = timelines.remove(0);
    let isolated = timelines;
    let mut outcomes = Vec::with_capacity(jobs.len());
    // One scratch pair for all jobs: stretches in replay order (the mean must
    // sum in that order) and a sorted copy for the percentile.
    let mut stretches: Vec<f64> = Vec::new();
    let mut sorted: Vec<f64> = Vec::new();
    for (j, (job, isolated)) in jobs.iter().zip(&isolated).enumerate() {
        let shared_time = shared.totals[j];
        let isolated_time = isolated.totals[0];
        stretches.clear();
        stretches.extend(
            shared.epoch_times[j]
                .iter()
                .zip(&isolated.epoch_times[0])
                .map(|(s, i)| {
                    if i.value() > 0.0 {
                        s.value() / i.value()
                    } else {
                        1.0
                    }
                }),
        );
        let mean_stretch = if stretches.is_empty() {
            1.0
        } else {
            stretches.iter().sum::<f64>() / stretches.len() as f64
        };
        sorted.clear();
        sorted.extend_from_slice(&stretches);
        sorted.sort_by(f64::total_cmp);
        outcomes.push(JobInterference {
            name: job.name.clone(),
            shared_time,
            isolated_time,
            slowdown: if isolated_time.value() > 0.0 {
                shared_time.value() / isolated_time.value()
            } else {
                1.0
            },
            mean_stretch,
            p99_stretch: percentile_sorted(&sorted, 0.99),
            epoch_times: shared.epoch_times[j].clone(),
        });
    }
    Ok(MixOutcome {
        jobs: outcomes,
        makespan: shared.makespan,
        link_peak_utilization: shared.link_peak_utilization,
        stats: shared.stats,
    })
}

/// Nearest-rank percentile (`q` in `0..=1`) of an already **sorted** sample;
/// 1.0 for an empty sample (the neutral stretch). Callers keep one sorted
/// scratch buffer instead of cloning and sorting per call.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 1.0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1] || w[1].is_nan()));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Loads the next epoch instance of job `state`, completing instantly any
/// epoch whose flows are all local (they never touch the DCN), and registering
/// the links of the newly live flows in `live_users`.
fn activate(
    state: &mut JobState,
    job: &JobTraffic,
    routes: &[EpochRoutes],
    now: f64,
    live_users: &mut [usize],
) {
    while state.instance < job.total_instances() {
        let epoch = state.instance % job.epochs.len();
        let epoch_routes = &routes[epoch];
        state.remaining.clear();
        state.live = 0;
        for (f, flow) in job.epochs[epoch].flows.iter().enumerate() {
            let remaining = if epoch_routes.route(f).is_empty() {
                0.0 // local flow: completes instantly
            } else {
                flow.bytes.value()
            };
            if remaining > COMPLETE_EPS {
                state.live += 1;
                for &l in epoch_routes.route(f) {
                    live_users[l] += 1;
                }
            }
            state.remaining.push(remaining);
        }
        if state.live > 0 {
            state.epoch_start = now;
            return;
        }
        // Nothing reaches the DCN: the epoch takes zero time.
        state.durations.push(Seconds::ZERO);
        state.instance += 1;
    }
    state.finished_at = now;
}

/// The progressive-filling event loop.
fn replay(network: &DcnNetwork, jobs: &[JobTraffic]) -> Result<ReplayTimeline> {
    // Route every epoch template once into CSR tables; instances borrow the
    // routes as slices.
    let mut routes: Vec<Vec<EpochRoutes>> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let mut per_epoch = Vec::with_capacity(job.epochs.len());
        for epoch in &job.epochs {
            let mut csr = EpochRoutes {
                offsets: Vec::with_capacity(epoch.flows.len() + 1),
                links: Vec::new(),
            };
            csr.offsets.push(0);
            for flow in &epoch.flows {
                network.route_links_into(flow, &mut csr.links)?;
                csr.offsets.push(csr.links.len());
            }
            per_epoch.push(csr);
        }
        routes.push(per_epoch);
    }

    let capacities: Vec<GBps> = network.capacities();
    let n_links = capacities.len();
    let mut peak_util = vec![0.0f64; n_links];
    let mut now = 0.0f64;
    let mut stats = ReplayStats::default();

    let mut states: Vec<JobState> = jobs
        .iter()
        .map(|_| JobState {
            instance: 0,
            remaining: Vec::new(),
            live: 0,
            epoch_start: 0.0,
            durations: Vec::new(),
            finished_at: 0.0,
        })
        .collect();

    // Live flows of every link (for the skip-resolve check), the live-flow
    // scratch set (owner, route, rate — compacted in place on completions,
    // rebuilt in canonical job-then-flow order on epoch barriers), and the
    // reusable solver and load buffers.
    let mut live_users = vec![0usize; n_links];
    let mut flow_owner: Vec<(usize, usize)> = Vec::new();
    let mut flow_links: Vec<&[usize]> = Vec::new();
    let mut rates: Vec<f64> = Vec::new();
    let mut completed_routes: Vec<&[usize]> = Vec::new();
    let mut loads = vec![0.0f64; n_links];
    let mut solver = MaxMinSolver::new();

    for (j, job) in jobs.iter().enumerate() {
        activate(&mut states[j], job, &routes[j], now, &mut live_users);
    }

    let mut rebuild = true;
    let mut resolve = true;
    loop {
        if rebuild {
            flow_owner.clear();
            flow_links.clear();
            for (j, job) in jobs.iter().enumerate() {
                if states[j].instance >= job.total_instances() {
                    continue;
                }
                let epoch = states[j].instance % job.epochs.len();
                let epoch_routes = &routes[j][epoch];
                for (f, &remaining) in states[j].remaining.iter().enumerate() {
                    if remaining > COMPLETE_EPS {
                        flow_owner.push((j, f));
                        flow_links.push(epoch_routes.route(f));
                    }
                }
            }
            rebuild = false;
            resolve = true;
        }
        if flow_owner.is_empty() {
            break;
        }
        stats.events += 1;

        if resolve {
            let solved = solver.solve(&capacities, &flow_links);
            rates.clear();
            rates.extend_from_slice(solved);
            stats.full_solves += 1;
            stats.solver_rounds += solver.last_rounds();
            resolve = false;

            // Track peak link utilisation under the fresh allocation. Skipped
            // events leave every loaded link's utilisation unchanged (the
            // completed flows' links carry no survivors), so the pass only
            // runs here.
            for load in loads.iter_mut() {
                *load = 0.0;
            }
            for (links, rate) in flow_links.iter().zip(&rates) {
                for &l in *links {
                    loads[l] += *rate;
                }
            }
            for (l, load) in loads.iter().enumerate() {
                let util = load / capacities[l].value();
                if util > peak_util[l] {
                    peak_util[l] = util;
                }
            }
        } else {
            stats.skipped_solves += 1;
        }

        // Advance to the earliest completion (rates are bytes/s after the
        // GBps → bytes conversion).
        let mut dt = f64::INFINITY;
        for (i, &(j, f)) in flow_owner.iter().enumerate() {
            let rate = rates[i] * 1e9;
            if rate > 0.0 {
                dt = dt.min(states[j].remaining[f] / rate);
            }
        }
        debug_assert!(dt.is_finite(), "live flows must make progress");
        now += dt;

        // Debit volumes; compact completed flows out of the live set in
        // place and release their links.
        completed_routes.clear();
        let mut write = 0usize;
        for read in 0..flow_owner.len() {
            let (j, f) = flow_owner[read];
            let rate = rates[read] * 1e9;
            let left = states[j].remaining[f] - rate * dt;
            if left <= COMPLETE_EPS {
                states[j].remaining[f] = 0.0;
                states[j].live -= 1;
                for &l in flow_links[read] {
                    live_users[l] -= 1;
                }
                completed_routes.push(flow_links[read]);
            } else {
                states[j].remaining[f] = left;
                flow_owner[write] = (j, f);
                flow_links[write] = flow_links[read];
                rates[write] = rates[read];
                write += 1;
            }
        }
        flow_owner.truncate(write);
        flow_links.truncate(write);
        rates.truncate(write);

        // Epoch completions (barrier: the next epoch starts only when every
        // flow of the current one is done).
        let mut any_transition = false;
        for (j, job) in jobs.iter().enumerate() {
            if states[j].instance >= job.total_instances() {
                continue;
            }
            if states[j].live == 0 {
                let duration = now - states[j].epoch_start;
                states[j].durations.push(Seconds(duration));
                states[j].instance += 1;
                activate(&mut states[j], job, &routes[j], now, &mut live_users);
                any_transition = true;
            }
        }

        if any_transition {
            // New flows entered: rebuild the canonical live set and re-solve.
            rebuild = true;
        } else if completed_routes
            .iter()
            .any(|route| route.iter().any(|&l| live_users[l] > 0))
        {
            // A completed flow shared a link with a survivor: the survivors'
            // allocation can change, re-solve. Otherwise the completions
            // dropped a link-disjoint component and the previous rates remain
            // exact.
            resolve = true;
        }
    }

    stats.epoch_instances = states.iter().map(|s| s.durations.len()).sum();
    let epoch_times: Vec<Vec<Seconds>> = states.iter().map(|s| s.durations.clone()).collect();
    let totals: Vec<Seconds> = epoch_times
        .iter()
        .map(|times| Seconds(times.iter().map(|t| t.value()).sum()))
        .collect();
    let makespan = states.iter().map(|s| s.finished_at).fold(0.0f64, f64::max);
    Ok(ReplayTimeline {
        epoch_times,
        totals,
        makespan: Seconds(makespan),
        link_peak_utilization: peak_util,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;
    use crate::network::NetworkParams;
    use crate::simulator::FlowSimulation;
    use crate::traffic::{JobTraffic, TrafficEpoch};
    use hbd_types::{Bytes, NodeId};
    use topology::FatTree;

    fn network() -> DcnNetwork {
        let fat_tree = FatTree::new(32, 4, 4).unwrap();
        DcnNetwork::new(fat_tree, NetworkParams::non_blocking(4, 4)).unwrap()
    }

    fn job(name: &str, flows: Vec<Flow>, iterations: usize) -> JobTraffic {
        JobTraffic::new(name, vec![TrafficEpoch::new("sync", flows)], iterations)
    }

    #[test]
    fn single_job_single_epoch_matches_the_one_shot_simulation() {
        let net = network();
        // Uniform flows: no rate ever changes mid-transfer, so the one-shot
        // FlowSimulation and the progressive replay agree exactly.
        let flows = vec![
            Flow::new(NodeId(1), NodeId(0), Bytes::from_gib(1.0)),
            Flow::new(NodeId(2), NodeId(0), Bytes::from_gib(1.0)),
            Flow::new(NodeId(3), NodeId(0), Bytes::from_gib(1.0)),
        ];
        let sim = FlowSimulation::run(&net, flows.clone()).unwrap();
        let report = sim.report(&net);
        let outcome = replay_mix(&net, &[job("solo", flows, 1)]).unwrap();
        assert!((outcome.makespan.value() - report.max_completion.value()).abs() < 1e-9);
        assert!(
            (outcome.jobs[0].slowdown - 1.0).abs() < 1e-12,
            "alone = isolated"
        );
    }

    #[test]
    fn progressive_refill_speeds_up_survivors() {
        let net = network();
        // Two flows share node 0's down-link; one carries twice the volume.
        // After the small flow completes, the big one gets the full link, so
        // it finishes sooner than the one-shot model predicts.
        let flows = vec![
            Flow::new(NodeId(1), NodeId(0), Bytes::from_gib(2.0)),
            Flow::new(NodeId(2), NodeId(0), Bytes::from_gib(1.0)),
        ];
        let sim = FlowSimulation::run(&net, flows.clone()).unwrap();
        let one_shot = sim.report(&net).max_completion.value();
        let outcome = replay_mix(&net, &[job("refill", flows, 1)]).unwrap();
        assert!(
            outcome.makespan.value() < one_shot - 1e-9,
            "refill must beat the one-shot bound: {} vs {one_shot}",
            outcome.makespan.value()
        );
    }

    #[test]
    fn disjoint_jobs_do_not_interfere() {
        let net = network();
        let a = job(
            "a",
            vec![Flow::new(NodeId(0), NodeId(1), Bytes::from_gib(1.0))],
            2,
        );
        let b = job(
            "b",
            vec![Flow::new(NodeId(4), NodeId(5), Bytes::from_gib(4.0))],
            2,
        );
        let outcome = replay_mix(&net, &[a, b]).unwrap();
        for job in &outcome.jobs {
            assert!((job.slowdown - 1.0).abs() < 1e-9, "{job:?}");
            assert!((job.p99_stretch - 1.0).abs() < 1e-9);
        }
        assert_eq!(
            outcome.stats.events,
            outcome.stats.full_solves + outcome.stats.skipped_solves
        );
    }

    #[test]
    fn disjoint_completions_skip_the_re_solve() {
        let net = network();
        // One epoch, two link-disjoint flows of different volume: the small
        // flow's completion frees links the big one never touches, so the
        // second event reuses the first event's allocation.
        let traffic = job(
            "skip",
            vec![
                Flow::new(NodeId(0), NodeId(1), Bytes::from_gib(1.0)),
                Flow::new(NodeId(4), NodeId(5), Bytes::from_gib(4.0)),
            ],
            1,
        );
        let outcome = replay_mix(&net, &[traffic]).unwrap();
        assert_eq!(outcome.stats.events, 2, "{:?}", outcome.stats);
        assert_eq!(outcome.stats.full_solves, 1, "{:?}", outcome.stats);
        assert_eq!(outcome.stats.skipped_solves, 1, "{:?}", outcome.stats);
        // The skipped event still advanced the fluid model correctly.
        let node_bw = net.params().node_bandwidth.value() * 1e9;
        let expected = Bytes::from_gib(4.0).value() / node_bw;
        assert!((outcome.makespan.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn colliding_jobs_slow_each_other_down() {
        let net = network();
        // Both jobs hammer node 0's down-link.
        let a = job(
            "a",
            vec![Flow::new(NodeId(1), NodeId(0), Bytes::from_gib(1.0))],
            3,
        );
        let b = job(
            "b",
            vec![Flow::new(NodeId(2), NodeId(0), Bytes::from_gib(1.0))],
            3,
        );
        let outcome = replay_mix(&net, &[a, b]).unwrap();
        assert!(outcome.max_slowdown() > 1.5, "{outcome:?}");
        assert!(outcome.jobs.iter().all(|j| j.p99_stretch > 1.0));
        // The shared down-link saturated.
        assert!(outcome.hot_links(0.99) >= 1);
        let histogram = outcome.utilization_histogram(&[0.5, 0.95]);
        assert_eq!(histogram.len(), 3);
        assert!(histogram[2] >= 1);
    }

    #[test]
    fn epoch_barriers_are_respected() {
        let net = network();
        // Epoch 1 cannot start before epoch 0 finishes, so the two epochs of
        // one iteration never share the link even though they use the same
        // endpoints.
        let epochs = vec![
            TrafficEpoch::new(
                "steady",
                vec![Flow::new(NodeId(0), NodeId(1), Bytes::from_gib(1.0))],
            ),
            TrafficEpoch::new(
                "sync",
                vec![Flow::new(NodeId(0), NodeId(1), Bytes::from_gib(1.0))],
            ),
        ];
        let traffic = JobTraffic::new("barriers", epochs, 2);
        let outcome = replay_mix(&net, &[traffic]).unwrap();
        assert_eq!(outcome.jobs[0].epoch_times.len(), 4);
        let node_bw = net.params().node_bandwidth.value() * 1e9;
        let per_epoch = Bytes::from_gib(1.0).value() / node_bw;
        for time in &outcome.jobs[0].epoch_times {
            assert!((time.value() - per_epoch).abs() < 1e-9);
        }
        assert!((outcome.makespan.value() - 4.0 * per_epoch).abs() < 1e-9);
        assert_eq!(outcome.stats.epoch_instances, 4);
    }

    #[test]
    fn local_only_and_empty_jobs_complete_in_zero_time() {
        let net = network();
        let local = job(
            "local",
            vec![Flow::new(NodeId(3), NodeId(3), Bytes::from_gib(9.0))],
            2,
        );
        let empty = JobTraffic::new("empty", Vec::new(), 3);
        let outcome = replay_mix(&net, &[local, empty]).unwrap();
        assert_eq!(outcome.makespan, Seconds::ZERO);
        for job in &outcome.jobs {
            assert_eq!(job.shared_time, Seconds::ZERO);
            assert!((job.slowdown - 1.0).abs() < 1e-12);
        }
        assert_eq!(outcome.stats.events, 0);
        assert_eq!(outcome.stats.epoch_instances, 2);
    }

    #[test]
    fn parallel_isolated_baselines_are_thread_count_invariant() {
        let net = network();
        let jobs: Vec<JobTraffic> = (0..4)
            .map(|i| {
                job(
                    &format!("job{i}"),
                    vec![
                        Flow::new(NodeId(i), NodeId((i + 1) % 8), Bytes::from_gib(1.0)),
                        Flow::new(NodeId(i + 8), NodeId(0), Bytes::from_gib(2.0)),
                    ],
                    3,
                )
            })
            .collect();
        let single = replay_mix_par(&net, &jobs, 1).unwrap();
        let wide = replay_mix_par(&net, &jobs, 4).unwrap();
        let a = serde_json::to_string(&single).unwrap();
        let b = serde_json::to_string(&wide).unwrap();
        assert_eq!(a, b, "replay_mix_par must be thread-count invariant");
        assert_eq!(single, wide);
    }

    #[test]
    fn stats_account_for_every_event() {
        let net = network();
        let a = job(
            "a",
            vec![
                Flow::new(NodeId(1), NodeId(0), Bytes::from_gib(1.0)),
                Flow::new(NodeId(2), NodeId(0), Bytes::from_gib(2.0)),
            ],
            2,
        );
        let outcome = replay_mix(&net, &[a]).unwrap();
        let stats = outcome.stats;
        assert_eq!(stats.events, stats.full_solves + stats.skipped_solves);
        assert!(stats.full_solves >= 1);
        assert!(stats.solver_rounds >= stats.full_solves);
        assert!(stats.rounds_per_event() > 0.0);
        assert_eq!(stats.epoch_instances, 2);
    }

    #[test]
    fn an_empty_mix_replays_to_well_defined_stats() {
        // Zero jobs: no panic, no division by zero — the degenerate mix is a
        // legal input with neutral aggregates.
        let net = network();
        let outcome = replay_mix(&net, &[]).unwrap();
        assert!(outcome.jobs.is_empty());
        assert_eq!(outcome.makespan, Seconds::ZERO);
        assert_eq!(outcome.mean_slowdown(), 1.0);
        assert_eq!(outcome.max_slowdown(), 1.0);
        assert_eq!(outcome.stats.events, 0);
        assert_eq!(outcome.stats.rounds_per_event(), 0.0);
        assert_eq!(outcome.hot_links(0.5), 0);
        // Every histogram bucket of an empty mix is empty (links carried
        // nothing), including the degenerate no-edges histogram.
        assert_eq!(outcome.utilization_histogram(&[]), vec![0]);
        assert_eq!(outcome.utilization_histogram(&[0.5]), vec![0, 0]);
    }

    #[test]
    fn zero_flow_and_zero_byte_epochs_do_not_produce_nan_slowdowns() {
        let net = network();
        // A job alternating a real epoch with an empty one and a job whose
        // only flow carries zero bytes: both isolated baselines contain
        // zero-time epochs, so the slowdown/stretch math must guard the
        // division instead of emitting NaN/Inf.
        let mixed = JobTraffic::new(
            "mixed",
            vec![
                TrafficEpoch::new("empty", Vec::new()),
                TrafficEpoch::new(
                    "real",
                    vec![Flow::new(NodeId(1), NodeId(0), Bytes::from_gib(1.0))],
                ),
            ],
            2,
        );
        let zero_bytes = job(
            "zero-bytes",
            vec![Flow::new(NodeId(2), NodeId(0), Bytes(0.0))],
            2,
        );
        let outcome = replay_mix(&net, &[mixed, zero_bytes]).unwrap();
        for job in &outcome.jobs {
            assert!(job.slowdown.is_finite(), "{job:?}");
            assert!(job.mean_stretch.is_finite(), "{job:?}");
            assert!(job.p99_stretch.is_finite(), "{job:?}");
            assert!(job.slowdown >= 1.0 - 1e-12, "{job:?}");
        }
        // The zero-byte job never touches the DCN: no interference at all.
        assert!((outcome.jobs[1].slowdown - 1.0).abs() < 1e-12);
        assert!(outcome.mean_slowdown().is_finite());
        assert_eq!(outcome.stats.epoch_instances, 6);
    }

    fn outcome_with_peaks(peaks: &[f64]) -> MixOutcome {
        MixOutcome {
            jobs: Vec::new(),
            makespan: Seconds::ZERO,
            link_peak_utilization: peaks.to_vec(),
            stats: ReplayStats::default(),
        }
    }

    #[test]
    fn histogram_bins_are_right_open_with_on_edge_values_going_up() {
        let outcome = outcome_with_peaks(&[0.2, 0.5, 0.7, 0.95, 1.0]);
        // 0.5 sits exactly on an edge: right-open bins put it in the bucket
        // at or above the edge, and 0.95+ lands in the final catch-all.
        assert_eq!(
            outcome.utilization_histogram(&[0.5, 0.95]),
            vec![1, 2, 2],
            "[0, 0.5) [0.5, 0.95) [0.95, inf)"
        );
    }

    #[test]
    fn histogram_sanitises_unsorted_duplicate_and_non_finite_edges() {
        let outcome = outcome_with_peaks(&[0.2, 0.7, 1.0]);
        let sorted = outcome.utilization_histogram(&[0.5, 0.95]);
        // Unsorted edges used to bin mid-range values into the wrong bucket
        // (a linear scan in input order); now they sanitise to the same bins.
        assert_eq!(outcome.utilization_histogram(&[0.95, 0.5]), sorted);
        // Duplicate edges used to add a phantom always-empty bucket.
        assert_eq!(outcome.utilization_histogram(&[0.5, 0.5, 0.95]), sorted);
        // Non-finite edges are dropped rather than poisoning the comparison.
        assert_eq!(
            outcome.utilization_histogram(&[f64::NAN, 0.5, f64::INFINITY, 0.95]),
            sorted
        );
        // Empty (or all-invalid) edges collapse to one catch-all bucket.
        assert_eq!(outcome.utilization_histogram(&[]), vec![3]);
        assert_eq!(outcome.utilization_histogram(&[f64::NAN]), vec![3]);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile_sorted(&[], 0.99), 1.0);
        assert_eq!(percentile_sorted(&[2.0], 0.99), 2.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&v, 0.99), 99.0);
        assert_eq!(percentile_sorted(&v, 0.5), 50.0);
    }
}
