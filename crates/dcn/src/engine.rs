//! The multi-epoch, multi-job traffic engine.
//!
//! [`FlowSimulation`](crate::simulator::FlowSimulation) solves **one** flow
//! set with **one** max-min allocation; this module replays **several jobs'
//! epoch cycles concurrently** on the shared fabric. The replay is a
//! progressive-filling fluid simulation:
//!
//! 1. every job exposes the flows of its *current* epoch (a job advances to
//!    its next epoch only when all flows of the current one complete — the
//!    barrier semantics of collectives);
//! 2. the max-min fair allocation of all concurrently live flows is computed
//!    ([`crate::maxmin`]);
//! 3. time advances to the next flow completion, remaining volumes are
//!    debited, and the allocation is re-solved.
//!
//! Because rates are re-solved at every completion, a job's epochs stretch
//! exactly where — and only where — another job's traffic shares a link with
//! it. Comparing the shared replay against each job's isolated replay yields
//! the interference metrics of [`MixOutcome`]: per-job slowdown, p99 epoch
//! stretch, and the link hot-spot profile. This is the shared-fabric
//! contention regime the paper's placement algorithm is designed to avoid
//! (§4.3, §6.3): InfiniteHBD confines TP/EP inside the optical HBD, and the
//! engine quantifies what the *remaining* DP/PP/CP spill-over does to the
//! electrical DCN when several jobs land on it at once.

use crate::maxmin::max_min_rates;
use crate::network::DcnNetwork;
use crate::traffic::JobTraffic;
use hbd_types::{GBps, Result, Seconds};
use serde::{Deserialize, Serialize};

/// Remaining volume below which a flow counts as complete (bytes). Epoch
/// volumes are gigabytes-scale, so this absorbs float rounding only.
const COMPLETE_EPS: f64 = 1e-6;

/// One job's share of a replayed mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobInterference {
    /// Job name (from [`JobTraffic`]).
    pub name: String,
    /// Time the job took in the shared replay.
    pub shared_time: Seconds,
    /// Time the same job takes alone on the same network.
    pub isolated_time: Seconds,
    /// `shared_time / isolated_time` — 1.0 means the mix did not slow this
    /// job down at all.
    pub slowdown: f64,
    /// Mean per-epoch stretch (shared epoch duration / isolated duration).
    pub mean_stretch: f64,
    /// 99th-percentile per-epoch stretch (nearest-rank over all epoch
    /// instances of the replay).
    pub p99_stretch: f64,
    /// Per-epoch-instance durations in the shared replay, in replay order.
    pub epoch_times: Vec<Seconds>,
}

/// The outcome of replaying a job mix on a shared DCN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixOutcome {
    /// Per-job interference metrics, in input order.
    pub jobs: Vec<JobInterference>,
    /// Time until the last job finished.
    pub makespan: Seconds,
    /// Peak utilisation (allocated load / capacity) each link reached at any
    /// point of the shared replay, indexed by link id.
    pub link_peak_utilization: Vec<f64>,
}

impl MixOutcome {
    /// Number of links whose peak utilisation reached `threshold` (e.g. 0.95
    /// for "ran essentially full at some point").
    pub fn hot_links(&self, threshold: f64) -> usize {
        self.link_peak_utilization
            .iter()
            .filter(|&&u| u >= threshold)
            .count()
    }

    /// Histogram of per-link peak utilisation: `edges` are the right-open
    /// bucket boundaries, the last bucket catches everything at or above the
    /// final edge. Links that never carried traffic are excluded.
    pub fn utilization_histogram(&self, edges: &[f64]) -> Vec<usize> {
        let mut counts = vec![0usize; edges.len() + 1];
        for &util in &self.link_peak_utilization {
            if util <= 0.0 {
                continue;
            }
            let bucket = edges.iter().position(|&e| util < e).unwrap_or(edges.len());
            counts[bucket] += 1;
        }
        counts
    }

    /// The worst per-job slowdown of the mix (1.0 for an empty mix).
    pub fn max_slowdown(&self) -> f64 {
        self.jobs.iter().map(|j| j.slowdown).fold(1.0, f64::max)
    }

    /// The mean per-job slowdown of the mix (1.0 for an empty mix).
    pub fn mean_slowdown(&self) -> f64 {
        if self.jobs.is_empty() {
            return 1.0;
        }
        self.jobs.iter().map(|j| j.slowdown).sum::<f64>() / self.jobs.len() as f64
    }
}

/// Raw timing of one replay (shared or isolated).
#[derive(Debug, Clone, PartialEq)]
struct ReplayTimeline {
    /// Per job: durations of every epoch instance, in replay order.
    epoch_times: Vec<Vec<Seconds>>,
    /// Per job: total active time (sum of its epoch durations).
    totals: Vec<Seconds>,
    /// Wall-clock until the last job finished.
    makespan: Seconds,
    /// Peak utilisation per link.
    link_peak_utilization: Vec<f64>,
}

/// Per-job mutable state of the event loop.
struct JobState {
    /// Index of the current epoch instance (`0 .. iterations × epochs`).
    instance: usize,
    /// Remaining bytes of the current epoch's flows.
    remaining: Vec<f64>,
    /// When the current epoch started.
    epoch_start: f64,
    /// Completed epoch durations.
    durations: Vec<Seconds>,
    /// When the job finished all instances.
    finished_at: f64,
}

/// Replays several jobs' epoch cycles concurrently and reports per-job
/// interference against their isolated runs.
///
/// Deterministic: the replay is a pure, single-threaded fluid computation —
/// identical inputs give bit-identical outcomes regardless of thread count.
pub fn replay_mix(network: &DcnNetwork, jobs: &[JobTraffic]) -> Result<MixOutcome> {
    let shared = replay(network, jobs)?;
    let mut outcomes = Vec::with_capacity(jobs.len());
    for (j, job) in jobs.iter().enumerate() {
        let isolated = replay(network, std::slice::from_ref(job))?;
        let shared_time = shared.totals[j];
        let isolated_time = isolated.totals[0];
        let stretches: Vec<f64> = shared.epoch_times[j]
            .iter()
            .zip(&isolated.epoch_times[0])
            .map(|(s, i)| {
                if i.value() > 0.0 {
                    s.value() / i.value()
                } else {
                    1.0
                }
            })
            .collect();
        outcomes.push(JobInterference {
            name: job.name.clone(),
            shared_time,
            isolated_time,
            slowdown: if isolated_time.value() > 0.0 {
                shared_time.value() / isolated_time.value()
            } else {
                1.0
            },
            mean_stretch: if stretches.is_empty() {
                1.0
            } else {
                stretches.iter().sum::<f64>() / stretches.len() as f64
            },
            p99_stretch: percentile(&stretches, 0.99),
            epoch_times: shared.epoch_times[j].clone(),
        });
    }
    Ok(MixOutcome {
        jobs: outcomes,
        makespan: shared.makespan,
        link_peak_utilization: shared.link_peak_utilization,
    })
}

/// Nearest-rank percentile (`q` in `0..=1`) of an unsorted sample; 1.0 for an
/// empty sample (the neutral stretch).
fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The progressive-filling event loop.
fn replay(network: &DcnNetwork, jobs: &[JobTraffic]) -> Result<ReplayTimeline> {
    // Route every epoch template once; instances reuse the routes.
    let mut routes: Vec<Vec<Vec<Vec<usize>>>> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let mut per_epoch = Vec::with_capacity(job.epochs.len());
        for epoch in &job.epochs {
            let mut links = Vec::with_capacity(epoch.flows.len());
            for flow in &epoch.flows {
                let route = network.route(flow)?;
                links.push(route.links.iter().map(|l| l.index()).collect::<Vec<_>>());
            }
            per_epoch.push(links);
        }
        routes.push(per_epoch);
    }

    let capacities: Vec<GBps> = network.capacities();
    let mut peak_util = vec![0.0f64; capacities.len()];
    let mut now = 0.0f64;

    let mut states: Vec<JobState> = jobs
        .iter()
        .map(|_| JobState {
            instance: 0,
            remaining: Vec::new(),
            epoch_start: 0.0,
            durations: Vec::new(),
            finished_at: 0.0,
        })
        .collect();

    let total_instances = |job: &JobTraffic| -> usize { job.iterations * job.epochs.len() };

    // Loads the next epoch instance of job `j`, completing instantly any
    // epoch whose flows are all local (they never touch the DCN).
    let activate =
        |state: &mut JobState, job: &JobTraffic, routes: &[Vec<Vec<usize>>], now: f64| {
            while state.instance < total_instances(job) {
                let epoch = state.instance % job.epochs.len();
                state.remaining = job.epochs[epoch]
                    .flows
                    .iter()
                    .enumerate()
                    .map(|(f, flow)| {
                        if routes[epoch][f].is_empty() {
                            0.0 // local flow: completes instantly
                        } else {
                            flow.bytes.value()
                        }
                    })
                    .collect();
                if state.remaining.iter().any(|&r| r > COMPLETE_EPS) {
                    state.epoch_start = now;
                    return;
                }
                // Nothing reaches the DCN: the epoch takes zero time.
                state.durations.push(Seconds::ZERO);
                state.instance += 1;
            }
            state.finished_at = now;
        };

    for (j, job) in jobs.iter().enumerate() {
        activate(&mut states[j], job, &routes[j], now);
    }

    loop {
        // Collect the live flows of every active job (routes stay borrowed —
        // no per-event cloning in this hot loop).
        let mut flow_owner: Vec<(usize, usize)> = Vec::new();
        let mut flow_links: Vec<&[usize]> = Vec::new();
        for (j, job) in jobs.iter().enumerate() {
            if states[j].instance >= total_instances(job) {
                continue;
            }
            let epoch = states[j].instance % job.epochs.len();
            for (f, &remaining) in states[j].remaining.iter().enumerate() {
                if remaining > COMPLETE_EPS {
                    flow_owner.push((j, f));
                    flow_links.push(&routes[j][epoch][f]);
                }
            }
        }
        if flow_owner.is_empty() {
            break;
        }

        let rates = max_min_rates(&capacities, &flow_links);

        // Track peak link utilisation under this allocation.
        let mut loads = vec![0.0f64; capacities.len()];
        for (links, rate) in flow_links.iter().zip(&rates) {
            for &l in *links {
                loads[l] += rate.value();
            }
        }
        for (l, load) in loads.iter().enumerate() {
            let util = load / capacities[l].value();
            if util > peak_util[l] {
                peak_util[l] = util;
            }
        }

        // Advance to the earliest completion (rates are bytes/s after the
        // GBps → bytes conversion).
        let mut dt = f64::INFINITY;
        for (i, &(j, f)) in flow_owner.iter().enumerate() {
            let rate = rates[i].value() * 1e9;
            if rate > 0.0 {
                dt = dt.min(states[j].remaining[f] / rate);
            }
        }
        debug_assert!(dt.is_finite(), "live flows must make progress");
        now += dt;
        for (i, &(j, f)) in flow_owner.iter().enumerate() {
            let rate = rates[i].value() * 1e9;
            let left = states[j].remaining[f] - rate * dt;
            states[j].remaining[f] = if left <= COMPLETE_EPS { 0.0 } else { left };
        }

        // Epoch completions.
        for (j, job) in jobs.iter().enumerate() {
            if states[j].instance >= total_instances(job) {
                continue;
            }
            if states[j].remaining.iter().all(|&r| r <= COMPLETE_EPS) {
                let duration = now - states[j].epoch_start;
                states[j].durations.push(Seconds(duration));
                states[j].instance += 1;
                activate(&mut states[j], job, &routes[j], now);
            }
        }
    }

    let epoch_times: Vec<Vec<Seconds>> = states.iter().map(|s| s.durations.clone()).collect();
    let totals: Vec<Seconds> = epoch_times
        .iter()
        .map(|times| Seconds(times.iter().map(|t| t.value()).sum()))
        .collect();
    let makespan = states.iter().map(|s| s.finished_at).fold(0.0f64, f64::max);
    Ok(ReplayTimeline {
        epoch_times,
        totals,
        makespan: Seconds(makespan),
        link_peak_utilization: peak_util,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;
    use crate::network::NetworkParams;
    use crate::simulator::FlowSimulation;
    use crate::traffic::{JobTraffic, TrafficEpoch};
    use hbd_types::{Bytes, NodeId};
    use topology::FatTree;

    fn network() -> DcnNetwork {
        let fat_tree = FatTree::new(32, 4, 4).unwrap();
        DcnNetwork::new(fat_tree, NetworkParams::non_blocking(4, 4)).unwrap()
    }

    fn job(name: &str, flows: Vec<Flow>, iterations: usize) -> JobTraffic {
        JobTraffic::new(name, vec![TrafficEpoch::new("sync", flows)], iterations)
    }

    #[test]
    fn single_job_single_epoch_matches_the_one_shot_simulation() {
        let net = network();
        // Uniform flows: no rate ever changes mid-transfer, so the one-shot
        // FlowSimulation and the progressive replay agree exactly.
        let flows = vec![
            Flow::new(NodeId(1), NodeId(0), Bytes::from_gib(1.0)),
            Flow::new(NodeId(2), NodeId(0), Bytes::from_gib(1.0)),
            Flow::new(NodeId(3), NodeId(0), Bytes::from_gib(1.0)),
        ];
        let sim = FlowSimulation::run(&net, flows.clone()).unwrap();
        let report = sim.report(&net);
        let outcome = replay_mix(&net, &[job("solo", flows, 1)]).unwrap();
        assert!((outcome.makespan.value() - report.max_completion.value()).abs() < 1e-9);
        assert!(
            (outcome.jobs[0].slowdown - 1.0).abs() < 1e-12,
            "alone = isolated"
        );
    }

    #[test]
    fn progressive_refill_speeds_up_survivors() {
        let net = network();
        // Two flows share node 0's down-link; one carries twice the volume.
        // After the small flow completes, the big one gets the full link, so
        // it finishes sooner than the one-shot model predicts.
        let flows = vec![
            Flow::new(NodeId(1), NodeId(0), Bytes::from_gib(2.0)),
            Flow::new(NodeId(2), NodeId(0), Bytes::from_gib(1.0)),
        ];
        let sim = FlowSimulation::run(&net, flows.clone()).unwrap();
        let one_shot = sim.report(&net).max_completion.value();
        let outcome = replay_mix(&net, &[job("refill", flows, 1)]).unwrap();
        assert!(
            outcome.makespan.value() < one_shot - 1e-9,
            "refill must beat the one-shot bound: {} vs {one_shot}",
            outcome.makespan.value()
        );
    }

    #[test]
    fn disjoint_jobs_do_not_interfere() {
        let net = network();
        let a = job(
            "a",
            vec![Flow::new(NodeId(0), NodeId(1), Bytes::from_gib(1.0))],
            2,
        );
        let b = job(
            "b",
            vec![Flow::new(NodeId(4), NodeId(5), Bytes::from_gib(4.0))],
            2,
        );
        let outcome = replay_mix(&net, &[a, b]).unwrap();
        for job in &outcome.jobs {
            assert!((job.slowdown - 1.0).abs() < 1e-9, "{job:?}");
            assert!((job.p99_stretch - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn colliding_jobs_slow_each_other_down() {
        let net = network();
        // Both jobs hammer node 0's down-link.
        let a = job(
            "a",
            vec![Flow::new(NodeId(1), NodeId(0), Bytes::from_gib(1.0))],
            3,
        );
        let b = job(
            "b",
            vec![Flow::new(NodeId(2), NodeId(0), Bytes::from_gib(1.0))],
            3,
        );
        let outcome = replay_mix(&net, &[a, b]).unwrap();
        assert!(outcome.max_slowdown() > 1.5, "{outcome:?}");
        assert!(outcome.jobs.iter().all(|j| j.p99_stretch > 1.0));
        // The shared down-link saturated.
        assert!(outcome.hot_links(0.99) >= 1);
        let histogram = outcome.utilization_histogram(&[0.5, 0.95]);
        assert_eq!(histogram.len(), 3);
        assert!(histogram[2] >= 1);
    }

    #[test]
    fn epoch_barriers_are_respected() {
        let net = network();
        // Epoch 1 cannot start before epoch 0 finishes, so the two epochs of
        // one iteration never share the link even though they use the same
        // endpoints.
        let epochs = vec![
            TrafficEpoch::new(
                "steady",
                vec![Flow::new(NodeId(0), NodeId(1), Bytes::from_gib(1.0))],
            ),
            TrafficEpoch::new(
                "sync",
                vec![Flow::new(NodeId(0), NodeId(1), Bytes::from_gib(1.0))],
            ),
        ];
        let traffic = JobTraffic::new("barriers", epochs, 2);
        let outcome = replay_mix(&net, &[traffic]).unwrap();
        assert_eq!(outcome.jobs[0].epoch_times.len(), 4);
        let node_bw = net.params().node_bandwidth.value() * 1e9;
        let per_epoch = Bytes::from_gib(1.0).value() / node_bw;
        for time in &outcome.jobs[0].epoch_times {
            assert!((time.value() - per_epoch).abs() < 1e-9);
        }
        assert!((outcome.makespan.value() - 4.0 * per_epoch).abs() < 1e-9);
    }

    #[test]
    fn local_only_and_empty_jobs_complete_in_zero_time() {
        let net = network();
        let local = job(
            "local",
            vec![Flow::new(NodeId(3), NodeId(3), Bytes::from_gib(9.0))],
            2,
        );
        let empty = JobTraffic::new("empty", Vec::new(), 3);
        let outcome = replay_mix(&net, &[local, empty]).unwrap();
        assert_eq!(outcome.makespan, Seconds::ZERO);
        for job in &outcome.jobs {
            assert_eq!(job.shared_time, Seconds::ZERO);
            assert!((job.slowdown - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.99), 1.0);
        assert_eq!(percentile(&[2.0], 0.99), 2.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 0.5), 50.0);
    }
}
