//! A flow-level simulator of the **Datacenter Network (DCN)** that carries the
//! DP / CP / PP / SP traffic of LLM training jobs.
//!
//! §4.3 and §6.4 of the paper argue that the *placement* of TP groups inside
//! InfiniteHBD determines where the DP traffic lands in the DCN: a bad
//! placement forces DP pairs across ToR switches, the oversubscribed ToR
//! uplinks congest, and the exposed DP AllReduce time grows. The orchestrator
//! crate quantifies this with a traffic-counting metric (the cross-ToR rate of
//! Fig. 17); this crate goes one level deeper and simulates the traffic at flow
//! granularity:
//!
//! 1. [`network::DcnNetwork`] builds the two-tier Fat-Tree link plant
//!    (node↔ToR access links, ToR↔Aggregation uplinks with a configurable
//!    oversubscription ratio),
//! 2. [`traffic`] lowers placements into flows — from the single-epoch DP ring
//!    of [`traffic::dp_ring_flows`] up to the full [`traffic::TrafficMatrix`]
//!    lowering of an `llmsim` parallelism plan (DP + PP + CP/SP dimensions)
//!    into per-epoch flow sets,
//! 3. [`network::DcnNetwork::route`] picks ECMP paths (the replay engine uses
//!    the allocation-free [`network::DcnNetwork::route_links_into`] to build
//!    flattened CSR route tables),
//! 4. [`maxmin`] computes the max-min fair rate allocation of all concurrent
//!    flows — an incremental, route-class-aggregating solver
//!    ([`maxmin::MaxMinSolver`]) that is bit-identical to textbook
//!    progressive filling but re-solves thousands of allocations without
//!    per-call allocation,
//! 5. [`simulator::FlowSimulation`] reports completion times, link
//!    utilisation, and the slowdown relative to an uncongested network for a
//!    single flow set, and
//! 6. [`engine::replay_mix`] replays **several jobs' epoch cycles
//!    concurrently** (placed by [`jobmix::place_mix`]) and reports per-job
//!    interference — slowdown vs. the isolated run, p99 epoch stretch, and
//!    the link hot-spot profile — plus the engine's own cost counters
//!    ([`engine::ReplayStats`]); [`engine::replay_mix_par`] fans the
//!    independent isolated baselines out over `hbd_types::par`.
//!
//! The result is an end-to-end ablation path: orchestration quality → cross-ToR
//! flows → congestion → exposed DP time — now including the multi-job
//! shared-fabric contention the electrical DCN actually serves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod flow;
pub mod jobmix;
pub mod maxmin;
pub mod network;
pub mod simulator;
pub mod traffic;

pub use engine::{replay_mix, replay_mix_par, JobInterference, MixOutcome, ReplayStats};
pub use flow::{Flow, Route};
pub use jobmix::{greedy_place_mix, place_mix, MixJob, PlacedJob};
pub use maxmin::{max_min_rates, MaxMinSolver};
pub use network::{DcnLink, DcnNetwork, LinkKind, NetworkParams};
pub use simulator::{CongestionReport, FlowSimulation};
pub use traffic::{
    dp_ring_flows, JobTraffic, LogicalShape, TrafficEpoch, TrafficMatrix, TrafficProfile,
    TrafficSpec,
};
