//! A flow-level simulator of the **Datacenter Network (DCN)** that carries the
//! DP / CP / PP / SP traffic of an LLM training job.
//!
//! §4.3 and §6.4 of the paper argue that the *placement* of TP groups inside
//! InfiniteHBD determines where the DP traffic lands in the DCN: a bad
//! placement forces DP pairs across ToR switches, the oversubscribed ToR
//! uplinks congest, and the exposed DP AllReduce time grows. The orchestrator
//! crate quantifies this with a traffic-counting metric (the cross-ToR rate of
//! Fig. 17); this crate goes one level deeper and simulates the traffic at flow
//! granularity:
//!
//! 1. [`network::DcnNetwork`] builds the two-tier Fat-Tree link plant
//!    (node↔ToR access links, ToR↔Aggregation uplinks with a configurable
//!    oversubscription ratio),
//! 2. [`traffic`] expands a [`orchestrator::PlacementScheme`] into the DP-ring
//!    flows it induces,
//! 3. [`network::DcnNetwork::route`] picks ECMP paths,
//! 4. [`maxmin`] computes the max-min fair rate allocation of all concurrent
//!    flows, and
//! 5. [`simulator::FlowSimulation`] reports completion times, link
//!    utilisation, and the slowdown relative to an uncongested network.
//!
//! The result is an end-to-end ablation path: orchestration quality → cross-ToR
//! flows → congestion → exposed DP time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod maxmin;
pub mod network;
pub mod simulator;
pub mod traffic;

pub use flow::{Flow, Route};
pub use maxmin::max_min_rates;
pub use network::{DcnLink, DcnNetwork, LinkKind, NetworkParams};
pub use simulator::{CongestionReport, FlowSimulation};
pub use traffic::{dp_ring_flows, TrafficSpec};
