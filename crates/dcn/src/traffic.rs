//! Expanding a TP placement into the DCN flows it induces.
//!
//! The DP dimension forms a ring over TP groups: the node holding TP rank `r`
//! of group `g` exchanges its gradient shard with the node holding rank `r` of
//! groups `g − 1` and `g + 1` (§4.3, Figure 6). Each direction of each pair is
//! one flow; with Ring-AllReduce over `G` groups every pair moves
//! `2·(G−1)/G · shard` bytes per iteration, which the [`TrafficSpec`] folds
//! into a single per-pair volume.

use crate::flow::Flow;
use hbd_types::Bytes;
use orchestrator::PlacementScheme;
use serde::{Deserialize, Serialize};

/// How much each DP neighbour pair exchanges per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Bytes exchanged (per direction) between DP-adjacent nodes per iteration.
    pub bytes_per_dp_pair: Bytes,
    /// Whether the DP dimension wraps around (ring) or stops at the last group
    /// (line, as in the orchestrator's cross-ToR accounting).
    pub dp_ring_wraps: bool,
}

impl TrafficSpec {
    /// A DP-pair volume representative of a Llama-405B-scale job: each node
    /// holds ~3 GiB of gradient shard after TP/PP sharding, and Ring-AllReduce
    /// moves roughly twice that per neighbour per iteration.
    pub fn paper_dp_allreduce() -> Self {
        TrafficSpec {
            bytes_per_dp_pair: Bytes::from_gib(6.0),
            dp_ring_wraps: false,
        }
    }

    /// Uses an explicit per-pair volume.
    pub fn per_pair(bytes: Bytes) -> Self {
        TrafficSpec {
            bytes_per_dp_pair: bytes,
            dp_ring_wraps: false,
        }
    }

    /// Makes the DP dimension wrap into a full ring.
    pub fn with_wraparound(mut self) -> Self {
        self.dp_ring_wraps = true;
        self
    }
}

impl Default for TrafficSpec {
    fn default() -> Self {
        Self::paper_dp_allreduce()
    }
}

/// The DP flows induced by a placement: one flow per direction per DP-adjacent
/// node pair (matching ranks of adjacent TP groups).
pub fn dp_ring_flows(scheme: &PlacementScheme, spec: &TrafficSpec) -> Vec<Flow> {
    let groups = &scheme.groups;
    if groups.len() < 2 {
        return Vec::new();
    }
    let pairs = if spec.dp_ring_wraps {
        groups.len()
    } else {
        groups.len() - 1
    };
    let mut flows = Vec::new();
    for g in 0..pairs {
        let a = &groups[g];
        let b = &groups[(g + 1) % groups.len()];
        for rank in 0..a.len().min(b.len()) {
            let (na, nb) = (a.nodes[rank], b.nodes[rank]);
            flows.push(Flow::new(na, nb, spec.bytes_per_dp_pair));
            flows.push(Flow::new(nb, na, spec.bytes_per_dp_pair));
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeId;
    use orchestrator::TpGroup;

    fn scheme(groups: &[&[usize]]) -> PlacementScheme {
        PlacementScheme::from_groups(
            groups
                .iter()
                .map(|g| TpGroup::new(g.iter().map(|&n| NodeId(n)).collect()))
                .collect(),
        )
    }

    #[test]
    fn adjacent_groups_exchange_per_rank_flows_in_both_directions() {
        let scheme = scheme(&[&[0, 1], &[2, 3], &[4, 5]]);
        let flows = dp_ring_flows(&scheme, &TrafficSpec::per_pair(Bytes::from_gib(1.0)));
        // 2 group pairs x 2 ranks x 2 directions.
        assert_eq!(flows.len(), 8);
        assert!(flows.contains(&Flow::new(NodeId(0), NodeId(2), Bytes::from_gib(1.0))));
        assert!(flows.contains(&Flow::new(NodeId(2), NodeId(0), Bytes::from_gib(1.0))));
        assert!(flows.contains(&Flow::new(NodeId(3), NodeId(5), Bytes::from_gib(1.0))));
        // No wraparound by default.
        assert!(!flows.contains(&Flow::new(NodeId(4), NodeId(0), Bytes::from_gib(1.0))));
    }

    #[test]
    fn wraparound_adds_the_closing_pairs() {
        let scheme = scheme(&[&[0], &[1], &[2]]);
        let spec = TrafficSpec::per_pair(Bytes(1.0)).with_wraparound();
        let flows = dp_ring_flows(&scheme, &spec);
        assert_eq!(flows.len(), 6);
        assert!(flows.contains(&Flow::new(NodeId(2), NodeId(0), Bytes(1.0))));
    }

    #[test]
    fn single_group_or_empty_scheme_produces_no_flows() {
        assert!(dp_ring_flows(&scheme(&[&[0, 1]]), &TrafficSpec::default()).is_empty());
        assert!(dp_ring_flows(&PlacementScheme::new(), &TrafficSpec::default()).is_empty());
    }

    #[test]
    fn mismatched_group_sizes_pair_the_common_prefix() {
        let scheme = scheme(&[&[0, 1, 2], &[3, 4]]);
        let flows = dp_ring_flows(&scheme, &TrafficSpec::per_pair(Bytes(1.0)));
        assert_eq!(flows.len(), 4);
    }
}
