//! Lowering a placement into the DCN flows it induces.
//!
//! Two levels of fidelity live here:
//!
//! * [`dp_ring_flows`] — the original one-epoch DP-ring expansion: the node
//!   holding TP rank `r` of group `g` exchanges its gradient shard with the
//!   node holding rank `r` of groups `g − 1` and `g + 1` (§4.3, Figure 6).
//! * [`TrafficMatrix`] — the full lowering of an `llmsim` parallelism plan
//!   (DP + PP + CP/SP dimensions) into **per-epoch flow sets**: a *steady*
//!   epoch carrying the pipeline boundary activations and the Ring-Attention
//!   K/V exchange that flow while compute is running, and a *sync* epoch
//!   carrying the end-of-iteration gradient AllReduce. The epochs feed the
//!   multi-job replay engine in [`crate::engine`].
//!
//! A [`TrafficMatrix`] restricted to the DP dimension reproduces
//! [`dp_ring_flows`] flow-for-flow (asserted by the crate's property tests),
//! so the richer lowering is a strict superset of the original model.

use crate::flow::Flow;
use hbd_types::{Bytes, HbdError, Result};
use llmsim::{CommModel, ModelConfig, ParallelismStrategy};
use orchestrator::PlacementScheme;
use serde::{Deserialize, Serialize};

/// How much each DP neighbour pair exchanges per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Bytes exchanged (per direction) between DP-adjacent nodes per iteration.
    pub bytes_per_dp_pair: Bytes,
    /// Whether the DP dimension wraps around (ring) or stops at the last group
    /// (line, as in the orchestrator's cross-ToR accounting).
    pub dp_ring_wraps: bool,
}

impl TrafficSpec {
    /// A DP-pair volume representative of a Llama-405B-scale job: each node
    /// holds ~3 GiB of gradient shard after TP/PP sharding, and Ring-AllReduce
    /// moves roughly twice that per neighbour per iteration.
    pub fn paper_dp_allreduce() -> Self {
        TrafficSpec {
            bytes_per_dp_pair: Bytes::from_gib(6.0),
            dp_ring_wraps: false,
        }
    }

    /// Uses an explicit per-pair volume.
    pub fn per_pair(bytes: Bytes) -> Self {
        TrafficSpec {
            bytes_per_dp_pair: bytes,
            dp_ring_wraps: false,
        }
    }

    /// Makes the DP dimension wrap into a full ring.
    pub fn with_wraparound(mut self) -> Self {
        self.dp_ring_wraps = true;
        self
    }
}

impl Default for TrafficSpec {
    fn default() -> Self {
        Self::paper_dp_allreduce()
    }
}

/// The DP flows induced by a placement: one flow per direction per DP-adjacent
/// node pair (matching ranks of adjacent TP groups).
pub fn dp_ring_flows(scheme: &PlacementScheme, spec: &TrafficSpec) -> Vec<Flow> {
    let groups = &scheme.groups;
    if groups.len() < 2 {
        return Vec::new();
    }
    let pairs = if spec.dp_ring_wraps {
        groups.len()
    } else {
        groups.len() - 1
    };
    let mut flows = Vec::new();
    for g in 0..pairs {
        let a = &groups[g];
        let b = &groups[(g + 1) % groups.len()];
        for rank in 0..a.len().min(b.len()) {
            let (na, nb) = (a.nodes[rank], b.nodes[rank]);
            flows.push(Flow::new(na, nb, spec.bytes_per_dp_pair));
            flows.push(Flow::new(nb, na, spec.bytes_per_dp_pair));
        }
    }
    flows
}

/// How a placement's flat, DP-rank-ordered group list maps onto the logical
/// `PP × CP × DP` grid of a parallelism plan.
///
/// Group index `g` decomposes as `g = dp + shape.dp · (cp + shape.cp · pp)`:
/// DP is the fastest-varying dimension, so for `pp = cp = 1` the mapping
/// degenerates to the original "group order = DP rank" convention of
/// [`PlacementScheme`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogicalShape {
    /// Data-parallel extent (groups per CP rank per stage).
    pub dp: usize,
    /// Pipeline-parallel extent (stages).
    pub pp: usize,
    /// Context/sequence-parallel extent.
    pub cp: usize,
}

impl LogicalShape {
    /// A DP-only shape (the original single-dimension model).
    pub fn dp_only(dp: usize) -> Self {
        LogicalShape { dp, pp: 1, cp: 1 }
    }

    /// The shape of an `llmsim` plan (its DP/PP/CP extents; TP lives inside
    /// one group and never reaches the DCN).
    pub fn of_plan(strategy: &ParallelismStrategy) -> Self {
        LogicalShape {
            dp: strategy.dp,
            pp: strategy.pp,
            cp: strategy.cp,
        }
    }

    /// Total TP groups the shape addresses.
    pub fn groups(&self) -> usize {
        self.dp * self.pp * self.cp
    }

    /// Index of the group at logical coordinates `(pp, cp, dp)`.
    fn index(&self, pp: usize, cp: usize, dp: usize) -> usize {
        dp + self.dp * (cp + self.cp * pp)
    }

    fn validate(&self, scheme: &PlacementScheme) -> Result<()> {
        if self.dp == 0 || self.pp == 0 || self.cp == 0 {
            return Err(HbdError::invalid_config(
                "all logical-shape extents must be positive",
            ));
        }
        if self.groups() != scheme.len() {
            return Err(HbdError::invalid_config(format!(
                "logical shape addresses {} groups but the placement has {}",
                self.groups(),
                scheme.len()
            )));
        }
        Ok(())
    }
}

/// Per-pair volumes of each DCN-visible dimension, plus the ring/line choice.
///
/// The volumes are exactly [`llmsim::DcnPairVolumes`]; the extra flags choose
/// whether the DP and CP dimensions close into rings (Ring-AllReduce /
/// Ring-Attention proper) or stay open lines (the conservative accounting the
/// orchestrator's cross-ToR metric uses).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficProfile {
    /// Bytes per direction between DP-adjacent ranks per iteration.
    pub dp_pair_bytes: Bytes,
    /// Bytes per direction between PP-adjacent stages per iteration.
    pub pp_pair_bytes: Bytes,
    /// Bytes per direction between CP-adjacent ranks per iteration.
    pub cp_pair_bytes: Bytes,
    /// Gradient-sync bytes per direction between CP-adjacent ranks per
    /// iteration (CP replicates weights, so partial gradients ring over CP
    /// too — part of the *sync* epoch).
    pub cp_grad_pair_bytes: Bytes,
    /// Whether the DP dimension closes into a ring.
    pub dp_ring_wraps: bool,
    /// Whether the CP dimension closes into a ring.
    pub cp_ring_wraps: bool,
}

impl TrafficProfile {
    /// A DP-only profile equivalent to the given [`TrafficSpec`].
    pub fn from_spec(spec: &TrafficSpec) -> Self {
        TrafficProfile {
            dp_pair_bytes: spec.bytes_per_dp_pair,
            pp_pair_bytes: Bytes(0.0),
            cp_pair_bytes: Bytes(0.0),
            cp_grad_pair_bytes: Bytes(0.0),
            dp_ring_wraps: spec.dp_ring_wraps,
            cp_ring_wraps: false,
        }
    }

    /// Derives the profile of an `llmsim` plan from the analytic per-pair
    /// volumes of [`CommModel::dcn_pair_volumes`].
    pub fn of_plan(model: &ModelConfig, strategy: &ParallelismStrategy, comm: &CommModel) -> Self {
        let volumes = comm.dcn_pair_volumes(model, strategy);
        TrafficProfile {
            dp_pair_bytes: volumes.dp_pair_bytes,
            pp_pair_bytes: volumes.pp_pair_bytes,
            cp_pair_bytes: volumes.cp_pair_bytes,
            cp_grad_pair_bytes: volumes.cp_grad_pair_bytes,
            dp_ring_wraps: false,
            cp_ring_wraps: false,
        }
    }
}

/// One set of flows that are live on the DCN at the same time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficEpoch {
    /// Human-readable phase name (`"steady"` or `"sync"` for lowered plans).
    pub label: String,
    /// The concurrent flows of the epoch.
    pub flows: Vec<Flow>,
}

impl TrafficEpoch {
    /// Creates an epoch.
    pub fn new(label: impl Into<String>, flows: Vec<Flow>) -> Self {
        TrafficEpoch {
            label: label.into(),
            flows,
        }
    }

    /// Total payload of the epoch.
    pub fn total_bytes(&self) -> Bytes {
        Bytes(self.flows.iter().map(|f| f.bytes.value()).sum())
    }
}

/// One job's DCN traffic: a cycle of epochs replayed `iterations` times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTraffic {
    /// Job name (carried into the interference report).
    pub name: String,
    /// The epoch cycle of one training iteration, in replay order.
    pub epochs: Vec<TrafficEpoch>,
    /// How many iterations the replay engine runs.
    pub iterations: usize,
}

impl JobTraffic {
    /// Creates a job from its epoch cycle.
    pub fn new(name: impl Into<String>, epochs: Vec<TrafficEpoch>, iterations: usize) -> Self {
        JobTraffic {
            name: name.into(),
            epochs,
            iterations: iterations.max(1),
        }
    }

    /// Total payload of one iteration.
    pub fn bytes_per_iteration(&self) -> Bytes {
        Bytes(self.epochs.iter().map(|e| e.total_bytes().value()).sum())
    }

    /// Total epoch instances a replay of this job processes
    /// (`iterations × epochs`).
    pub fn total_instances(&self) -> usize {
        self.iterations * self.epochs.len()
    }
}

/// The `TrafficMatrix` builder: lowers a parallelism plan over a placement
/// into the per-epoch flow sets of one job.
///
/// The lowering walks the logical `PP × CP × DP` grid defined by
/// [`LogicalShape`] and emits, per adjacent pair of each dimension and per TP
/// rank, one flow in each direction, sized by the [`TrafficProfile`]:
///
/// * **steady epoch** — PP boundary flows (between matching ranks of
///   PP-adjacent groups) and CP K/V flows (ring/line over the CP dimension),
///   which overlap with compute in a real schedule;
/// * **sync epoch** — the end-of-iteration gradient burst: DP gradient flows
///   (ring/line over the DP dimension) plus the CP gradient reduction
///   (partial gradients over different sequence slices ring over CP too).
///
/// Epochs that lower to zero flows are omitted, so a DP-only matrix produces
/// the single epoch the original [`dp_ring_flows`] model simulated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    /// The logical grid the placement's groups are arranged into.
    pub shape: LogicalShape,
    /// Per-pair volumes of each dimension.
    pub profile: TrafficProfile,
}

impl TrafficMatrix {
    /// Creates a matrix from an explicit shape and profile.
    pub fn new(shape: LogicalShape, profile: TrafficProfile) -> Self {
        TrafficMatrix { shape, profile }
    }

    /// Derives shape and volumes from an `llmsim` plan.
    pub fn of_plan(model: &ModelConfig, strategy: &ParallelismStrategy, comm: &CommModel) -> Self {
        TrafficMatrix {
            shape: LogicalShape::of_plan(strategy),
            profile: TrafficProfile::of_plan(model, strategy, comm),
        }
    }

    /// The DP gradient-sync flows of the placement (part of the *sync*
    /// epoch). Errors if the shape does not match the placement.
    pub fn dp_flows(&self, scheme: &PlacementScheme) -> Result<Vec<Flow>> {
        self.shape.validate(scheme)?;
        Ok(self.dp_lanes(scheme))
    }

    /// The PP boundary-activation flows of the placement (part of the
    /// *steady* epoch). Errors if the shape does not match the placement.
    pub fn pp_flows(&self, scheme: &PlacementScheme) -> Result<Vec<Flow>> {
        self.shape.validate(scheme)?;
        Ok(self.pp_lanes(scheme))
    }

    /// The CP Ring-Attention K/V flows of the placement (part of the *steady*
    /// epoch). Errors if the shape does not match the placement.
    pub fn cp_flows(&self, scheme: &PlacementScheme) -> Result<Vec<Flow>> {
        self.shape.validate(scheme)?;
        Ok(self.cp_lanes(scheme, self.profile.cp_pair_bytes))
    }

    /// The CP gradient-reduction flows of the placement (part of the *sync*
    /// epoch). Errors if the shape does not match the placement.
    pub fn cp_grad_flows(&self, scheme: &PlacementScheme) -> Result<Vec<Flow>> {
        self.shape.validate(scheme)?;
        Ok(self.cp_lanes(scheme, self.profile.cp_grad_pair_bytes))
    }

    fn dp_lanes(&self, scheme: &PlacementScheme) -> Vec<Flow> {
        if self.shape.dp < 2 {
            return Vec::new();
        }
        let pairs = if self.profile.dp_ring_wraps {
            self.shape.dp
        } else {
            self.shape.dp - 1
        };
        self.pair_flows(scheme, self.profile.dp_pair_bytes, |flows| {
            for pp in 0..self.shape.pp {
                for cp in 0..self.shape.cp {
                    for dp in 0..pairs {
                        flows.push((
                            self.shape.index(pp, cp, dp),
                            self.shape.index(pp, cp, (dp + 1) % self.shape.dp),
                        ));
                    }
                }
            }
        })
    }

    fn pp_lanes(&self, scheme: &PlacementScheme) -> Vec<Flow> {
        if self.shape.pp < 2 {
            return Vec::new();
        }
        self.pair_flows(scheme, self.profile.pp_pair_bytes, |flows| {
            for pp in 0..self.shape.pp - 1 {
                for cp in 0..self.shape.cp {
                    for dp in 0..self.shape.dp {
                        flows.push((
                            self.shape.index(pp, cp, dp),
                            self.shape.index(pp + 1, cp, dp),
                        ));
                    }
                }
            }
        })
    }

    fn cp_lanes(&self, scheme: &PlacementScheme, bytes: Bytes) -> Vec<Flow> {
        if self.shape.cp < 2 {
            return Vec::new();
        }
        let pairs = if self.profile.cp_ring_wraps {
            self.shape.cp
        } else {
            self.shape.cp - 1
        };
        self.pair_flows(scheme, bytes, |flows| {
            for pp in 0..self.shape.pp {
                for cp in 0..pairs {
                    for dp in 0..self.shape.dp {
                        flows.push((
                            self.shape.index(pp, cp, dp),
                            self.shape.index(pp, (cp + 1) % self.shape.cp, dp),
                        ));
                    }
                }
            }
        })
    }

    /// Expands group-index pairs into per-rank bidirectional flows of `bytes`
    /// each; zero-volume dimensions lower to no flows.
    fn pair_flows(
        &self,
        scheme: &PlacementScheme,
        bytes: Bytes,
        emit_pairs: impl Fn(&mut Vec<(usize, usize)>),
    ) -> Vec<Flow> {
        if bytes.value() <= 0.0 {
            return Vec::new();
        }
        let mut pairs = Vec::new();
        emit_pairs(&mut pairs);
        let mut flows = Vec::new();
        for (ga, gb) in pairs {
            let (a, b) = (&scheme.groups[ga], &scheme.groups[gb]);
            for rank in 0..a.len().min(b.len()) {
                let (na, nb) = (a.nodes[rank], b.nodes[rank]);
                flows.push(Flow::new(na, nb, bytes));
                flows.push(Flow::new(nb, na, bytes));
            }
        }
        flows
    }

    /// Lowers the placement into a job's epoch cycle: a *steady* epoch (PP
    /// boundary + CP K/V flows) followed by a *sync* epoch (DP + CP gradient
    /// flows), skipping epochs that carry nothing.
    pub fn lower(
        &self,
        scheme: &PlacementScheme,
        name: impl Into<String>,
        iterations: usize,
    ) -> Result<JobTraffic> {
        self.shape.validate(scheme)?;
        let mut epochs = Vec::new();
        let mut steady = self.pp_lanes(scheme);
        steady.extend(self.cp_lanes(scheme, self.profile.cp_pair_bytes));
        if !steady.is_empty() {
            epochs.push(TrafficEpoch::new("steady", steady));
        }
        let mut sync = self.dp_lanes(scheme);
        sync.extend(self.cp_lanes(scheme, self.profile.cp_grad_pair_bytes));
        if !sync.is_empty() {
            epochs.push(TrafficEpoch::new("sync", sync));
        }
        Ok(JobTraffic::new(name, epochs, iterations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeId;
    use orchestrator::TpGroup;

    fn scheme(groups: &[&[usize]]) -> PlacementScheme {
        PlacementScheme::from_groups(
            groups
                .iter()
                .map(|g| TpGroup::new(g.iter().map(|&n| NodeId(n)).collect()))
                .collect(),
        )
    }

    fn grid_scheme(groups: usize, ranks: usize) -> PlacementScheme {
        PlacementScheme::from_groups(
            (0..groups)
                .map(|g| TpGroup::new((0..ranks).map(|r| NodeId(g * ranks + r)).collect()))
                .collect(),
        )
    }

    #[test]
    fn adjacent_groups_exchange_per_rank_flows_in_both_directions() {
        let scheme = scheme(&[&[0, 1], &[2, 3], &[4, 5]]);
        let flows = dp_ring_flows(&scheme, &TrafficSpec::per_pair(Bytes::from_gib(1.0)));
        // 2 group pairs x 2 ranks x 2 directions.
        assert_eq!(flows.len(), 8);
        assert!(flows.contains(&Flow::new(NodeId(0), NodeId(2), Bytes::from_gib(1.0))));
        assert!(flows.contains(&Flow::new(NodeId(2), NodeId(0), Bytes::from_gib(1.0))));
        assert!(flows.contains(&Flow::new(NodeId(3), NodeId(5), Bytes::from_gib(1.0))));
        // No wraparound by default.
        assert!(!flows.contains(&Flow::new(NodeId(4), NodeId(0), Bytes::from_gib(1.0))));
    }

    #[test]
    fn wraparound_adds_the_closing_pairs() {
        let scheme = scheme(&[&[0], &[1], &[2]]);
        let spec = TrafficSpec::per_pair(Bytes(1.0)).with_wraparound();
        let flows = dp_ring_flows(&scheme, &spec);
        assert_eq!(flows.len(), 6);
        assert!(flows.contains(&Flow::new(NodeId(2), NodeId(0), Bytes(1.0))));
    }

    #[test]
    fn single_group_or_empty_scheme_produces_no_flows() {
        assert!(dp_ring_flows(&scheme(&[&[0, 1]]), &TrafficSpec::default()).is_empty());
        assert!(dp_ring_flows(&PlacementScheme::new(), &TrafficSpec::default()).is_empty());
    }

    #[test]
    fn mismatched_group_sizes_pair_the_common_prefix() {
        let scheme = scheme(&[&[0, 1, 2], &[3, 4]]);
        let flows = dp_ring_flows(&scheme, &TrafficSpec::per_pair(Bytes(1.0)));
        assert_eq!(flows.len(), 4);
    }

    #[test]
    fn dp_only_matrix_reproduces_dp_ring_flows_exactly() {
        for wraps in [false, true] {
            let scheme = grid_scheme(5, 3);
            let mut spec = TrafficSpec::per_pair(Bytes::from_gib(2.0));
            spec.dp_ring_wraps = wraps;
            let matrix = TrafficMatrix::new(
                LogicalShape::dp_only(scheme.len()),
                TrafficProfile::from_spec(&spec),
            );
            assert_eq!(
                matrix.dp_flows(&scheme).unwrap(),
                dp_ring_flows(&scheme, &spec)
            );
            let job = matrix.lower(&scheme, "solo", 1).unwrap();
            assert_eq!(job.epochs.len(), 1);
            assert_eq!(job.epochs[0].label, "sync");
            assert_eq!(job.epochs[0].flows, dp_ring_flows(&scheme, &spec));
        }
    }

    #[test]
    fn full_grid_lowering_counts_pairs_per_dimension() {
        // dp = 3, pp = 2, cp = 2 → 12 groups of 2 ranks.
        let shape = LogicalShape {
            dp: 3,
            pp: 2,
            cp: 2,
        };
        let scheme = grid_scheme(shape.groups(), 2);
        let profile = TrafficProfile {
            dp_pair_bytes: Bytes(5.0),
            pp_pair_bytes: Bytes(7.0),
            cp_pair_bytes: Bytes(11.0),
            cp_grad_pair_bytes: Bytes(13.0),
            dp_ring_wraps: false,
            cp_ring_wraps: false,
        };
        let matrix = TrafficMatrix::new(shape, profile);
        // DP: (dp−1) pairs × pp × cp planes × 2 ranks × 2 directions.
        assert_eq!(matrix.dp_flows(&scheme).unwrap().len(), 2 * 2 * 2 * 2 * 2);
        // PP: (pp−1)=1 pair × cp × dp planes × 2 ranks × 2 directions.
        assert_eq!(matrix.pp_flows(&scheme).unwrap().len(), 2 * 3 * 2 * 2);
        // CP: (cp−1)=1 pair × pp × dp planes × 2 ranks × 2 directions.
        assert_eq!(matrix.cp_flows(&scheme).unwrap().len(), 2 * 3 * 2 * 2);
        // CP gradient sync mirrors the CP geometry with its own volume.
        assert_eq!(matrix.cp_grad_flows(&scheme).unwrap().len(), 2 * 3 * 2 * 2);

        let job = matrix.lower(&scheme, "grid", 4).unwrap();
        assert_eq!(job.epochs.len(), 2);
        assert_eq!(job.epochs[0].label, "steady");
        assert_eq!(job.epochs[1].label, "sync");
        assert_eq!(job.iterations, 4);
        let expected = 5.0 * 32.0 + 7.0 * 24.0 + 11.0 * 24.0 + 13.0 * 24.0;
        assert!((job.bytes_per_iteration().value() - expected).abs() < 1e-9);
        // The CP gradient flows land in the sync epoch, not the steady one.
        assert_eq!(job.epochs[1].flows.len(), 32 + 24);
    }

    #[test]
    fn lowering_rejects_mismatched_shapes() {
        let scheme = grid_scheme(6, 2);
        let matrix = TrafficMatrix::new(
            LogicalShape {
                dp: 2,
                pp: 2,
                cp: 2,
            },
            TrafficProfile::from_spec(&TrafficSpec::default()),
        );
        assert!(matrix.lower(&scheme, "bad", 1).is_err());
        let zero = TrafficMatrix::new(
            LogicalShape {
                dp: 0,
                pp: 1,
                cp: 1,
            },
            TrafficProfile::from_spec(&TrafficSpec::default()),
        );
        assert!(zero.lower(&scheme, "zero", 1).is_err());
    }

    #[test]
    fn plan_derived_matrix_uses_llmsim_volumes() {
        let model = ModelConfig::llama31_405b();
        let comm = CommModel::paper_defaults();
        let strategy = ParallelismStrategy::new(8, 2, 4).with_cp(2);
        let matrix = TrafficMatrix::of_plan(&model, &strategy, &comm);
        assert_eq!(
            matrix.shape,
            LogicalShape {
                dp: 4,
                pp: 2,
                cp: 2
            }
        );
        let volumes = comm.dcn_pair_volumes(&model, &strategy);
        assert_eq!(matrix.profile.dp_pair_bytes, volumes.dp_pair_bytes);
        assert_eq!(matrix.profile.pp_pair_bytes, volumes.pp_pair_bytes);
        assert_eq!(matrix.profile.cp_pair_bytes, volumes.cp_pair_bytes);
    }
}
