//! Max-min fair rate allocation (progressive filling / water-filling).
//!
//! Given a set of flows, each pinned to the links of its route, the allocation
//! repeatedly finds the most constrained link (smallest equal share for its
//! unfrozen flows), grants that share to every unfrozen flow through it, and
//! freezes them. The result is the classic max-min fair allocation that
//! flow-level models of TCP-like transport converge to, and it is what turns
//! "how many DP pairs cross a ToR" into "how slow does the DP AllReduce get".
//!
//! # The incremental, aggregation-aware solver
//!
//! The textbook progressive-filling loop recomputes per-link user counts from
//! scratch every round and scans every flow to find the ones crossing the
//! bottleneck — `O(rounds × flows × route_len)`, which dominates the replay
//! engine ([`crate::engine`]) where the allocation is re-solved at every flow
//! completion. [`MaxMinSolver`] keeps the same *exact* arithmetic but changes
//! the bookkeeping:
//!
//! * **Route classes.** Flows with identical link sequences provably receive
//!   identical max-min rates (they share every constraint, so they freeze in
//!   the same round at the same share). The solver groups them into weighted
//!   classes — e.g. the per-GPU NIC flows of one node pair, or a DP gradient
//!   ring replayed as several same-route flows — and water-fills over classes,
//!   expanding rates back per flow at the end.
//! * **CSR route storage and a link → class incidence index.** Routes are
//!   flattened into one offsets + links array pair, and a counting-sort pass
//!   inverts them into "which classes cross link `l`", so freezing the
//!   bottleneck touches exactly the flows through it instead of scanning all.
//! * **Incremental user counts and cached shares.** Per-link active weights
//!   and fair shares are maintained by debiting the links of newly frozen
//!   classes, and the bottleneck scan reads a block-min index (a cached
//!   `(min share, first argmin)` per 16-link block, patched on touch and
//!   rescanned per block only when its argmin is invalidated), turning the
//!   per-round cost into `O(links / BLOCK + frozen route entries)` — roughly
//!   `O(total route entries + rounds × bottleneck degree)` overall.
//!
//! The result is **bit-identical** to the naive reference (kept as a
//! `#[cfg(test)]` oracle below and pinned by proptests): the bottleneck choice
//! scans links in the same ascending order with the same strict-minimum rule,
//! the share is computed with the same expression, and capacity debits apply
//! the same `(x − share).max(0)` step once per frozen flow occurrence — a
//! composition that is order-independent within a round because every flow
//! frozen in a round receives the same share.

use hbd_types::GBps;

/// Sentinel class id for local (empty-route) flows, which stay unconstrained.
const NO_CLASS: usize = usize::MAX;

/// Sentinel for an unoccupied grouping-table slot.
const EMPTY_SLOT: u32 = u32::MAX;

/// Links per bottleneck-scan block. The scan keeps a cached
/// `(min share, first argmin)` per block so each water-filling round sweeps
/// `links / BLOCK` cached minima instead of every live link; blocks are
/// rescanned only when their argmin is invalidated.
const BLOCK: usize = 16;

/// Recomputes one block's cached minimum: the smallest share among links with
/// active users, ties resolved to the lowest link index (the naive solver's
/// ascending strict-minimum scan, restricted to the block).
fn rescan_block(
    users: &[usize],
    share: &[f64],
    block_min: &mut [f64],
    block_arg: &mut [usize],
    block: usize,
) {
    let start = block * BLOCK;
    let end = (start + BLOCK).min(users.len());
    let mut best = f64::INFINITY;
    let mut arg = usize::MAX;
    for l in start..end {
        if users[l] > 0 && share[l] < best {
            best = share[l];
            arg = l;
        }
    }
    block_min[block] = best;
    block_arg[block] = arg;
}

/// FxHash-style mix of a route's link indices. Deterministic (no per-process
/// seeding): the hash steers open-addressing probes only, so collisions can
/// never change the grouping — correctness rests on the slice-equality check.
fn hash_route(route: &[usize]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &l in route {
        h = (h ^ l as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
    h ^ (h >> 32)
}

/// A reusable incremental max-min solver.
///
/// All working storage (route classes, the link → class incidence index, the
/// per-link water-filling state) lives in the solver and is recycled between
/// calls, so hot callers like the replay engine solve thousands of allocations
/// without per-event allocation. One-shot callers can use the
/// [`max_min_rates`] convenience wrapper.
#[derive(Debug, Default)]
pub struct MaxMinSolver {
    /// Open-addressing table of class ids for route grouping (`EMPTY_SLOT`
    /// sentinel), sized to a power of two ≥ 2 × flows.
    table: Vec<u32>,
    /// Flow index of each class's first member (its route defines the class).
    class_seed: Vec<usize>,
    /// Flow → class map (`NO_CLASS` for local flows).
    class_of: Vec<usize>,
    /// CSR offsets of the class routes.
    class_offsets: Vec<usize>,
    /// CSR storage of the class routes (flattened link indices).
    class_links: Vec<usize>,
    /// Number of flows in each class.
    class_weight: Vec<usize>,
    /// Solved per-class rate.
    class_rate: Vec<f64>,
    /// Whether a class is frozen at its rate.
    class_frozen: Vec<bool>,
    /// Remaining capacity per link.
    remaining: Vec<f64>,
    /// Cached fair share `(remaining / users).max(0)` per live link,
    /// recomputed only when a freeze touches the link — the bottleneck scan
    /// is then comparison-only.
    share: Vec<f64>,
    /// Active (unfrozen) flow weight per link.
    users: Vec<usize>,
    /// Per block of [`BLOCK`] links: the smallest live share in the block.
    block_min: Vec<f64>,
    /// Per block: the lowest-indexed link achieving `block_min`
    /// (`usize::MAX` when the block has no live link).
    block_arg: Vec<usize>,
    /// CSR offsets of the link → class incidence index.
    incidence_offsets: Vec<usize>,
    /// Fill cursors for building the incidence index.
    incidence_cursor: Vec<usize>,
    /// CSR storage of the incidence index (class ids per link).
    incidence: Vec<usize>,
    /// Per-flow rates of the last solve.
    rates: Vec<f64>,
    /// Water-filling rounds of the last solve.
    rounds: usize,
}

impl MaxMinSolver {
    /// Creates an empty solver (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the max-min fair allocation of `flow_links` over
    /// `capacities`, returning one rate per flow in input order (local flows
    /// with an empty route are unconstrained and report `f64::INFINITY`).
    ///
    /// The returned slice aliases the solver's internal buffer and is valid
    /// until the next call; [`MaxMinSolver::rates`] re-borrows it.
    pub fn solve<L: AsRef<[usize]>>(&mut self, capacities: &[GBps], flow_links: &[L]) -> &[f64] {
        let links = capacities.len();
        let flows = flow_links.len();
        self.rounds = 0;

        // --- Route-class grouping via a deterministic open-addressing hash
        // table (no allocation beyond table growth, no sort). Class ids are
        // assigned in first-occurrence flow order; the hash function only
        // steers probing, never outcomes, so the grouping — and therefore the
        // solve — is bit-stable across runs and platforms.
        let capacity = (2 * flows.max(1)).next_power_of_two();
        self.table.clear();
        self.table.resize(capacity, EMPTY_SLOT);
        let mask = capacity - 1;
        self.class_of.clear();
        self.class_of.resize(flows, NO_CLASS);
        self.class_offsets.clear();
        self.class_offsets.push(0);
        self.class_links.clear();
        self.class_weight.clear();
        self.class_seed.clear();
        for f in 0..flows {
            let route = flow_links[f].as_ref();
            if route.is_empty() {
                continue;
            }
            let mut slot = (hash_route(route) as usize) & mask;
            loop {
                let entry = self.table[slot];
                if entry == EMPTY_SLOT {
                    let class = self.class_weight.len();
                    self.table[slot] = class as u32;
                    self.class_links.extend_from_slice(route);
                    self.class_offsets.push(self.class_links.len());
                    self.class_weight.push(1);
                    self.class_seed.push(f);
                    self.class_of[f] = class;
                    break;
                }
                let class = entry as usize;
                if flow_links[self.class_seed[class]].as_ref() == route {
                    self.class_weight[class] += 1;
                    self.class_of[f] = class;
                    break;
                }
                slot = (slot + 1) & mask;
            }
        }
        let classes = self.class_weight.len();
        self.class_rate.clear();
        self.class_rate.resize(classes, f64::INFINITY);
        self.class_frozen.clear();
        self.class_frozen.resize(classes, false);

        // --- Per-link active weight and the link → class incidence index
        // (counting sort over the flattened class routes).
        self.users.clear();
        self.users.resize(links, 0);
        self.incidence_offsets.clear();
        self.incidence_offsets.resize(links + 1, 0);
        for c in 0..classes {
            let weight = self.class_weight[c];
            for i in self.class_offsets[c]..self.class_offsets[c + 1] {
                let l = self.class_links[i];
                self.users[l] += weight;
                self.incidence_offsets[l + 1] += 1;
            }
        }
        for l in 0..links {
            self.incidence_offsets[l + 1] += self.incidence_offsets[l];
        }
        self.incidence_cursor.clear();
        self.incidence_cursor
            .extend_from_slice(&self.incidence_offsets[..links]);
        self.incidence.clear();
        self.incidence.resize(self.class_links.len(), 0);
        for c in 0..classes {
            for i in self.class_offsets[c]..self.class_offsets[c + 1] {
                let l = self.class_links[i];
                self.incidence[self.incidence_cursor[l]] = c;
                self.incidence_cursor[l] += 1;
            }
        }

        // --- Water-filling state. Shares are cached per link and refreshed
        // only when a freeze debits the link, with the exact expression the
        // naive solver evaluates per round — the bottleneck scan is then a
        // comparison-only sweep of the live links.
        self.remaining.clear();
        self.remaining.extend(capacities.iter().map(|c| c.value()));
        self.share.clear();
        self.share.resize(links, f64::INFINITY);
        for l in 0..links {
            if self.users[l] > 0 {
                self.share[l] = (self.remaining[l] / self.users[l] as f64).max(0.0);
            }
        }
        let blocks = links.div_ceil(BLOCK);
        self.block_min.clear();
        self.block_min.resize(blocks, f64::INFINITY);
        self.block_arg.clear();
        self.block_arg.resize(blocks, usize::MAX);
        for b in 0..blocks {
            rescan_block(
                &self.users,
                &self.share,
                &mut self.block_min,
                &mut self.block_arg,
                b,
            );
        }

        // --- Rounds: freeze the classes of the most constrained link, debit
        // their capacity, and maintain the touched blocks' cached minima.
        loop {
            // Bottleneck link: smallest cached block minimum, blocks scanned
            // in ascending order with a strict minimum. Composed with each
            // block's internal first-argmin rule this reproduces the naive
            // full scan exactly: the lowest-indexed link achieving the
            // smallest share among links with active users.
            let mut best = f64::INFINITY;
            let mut best_block = usize::MAX;
            for (b, &min) in self.block_min.iter().enumerate() {
                if min < best {
                    best = min;
                    best_block = b;
                }
            }
            if best_block == usize::MAX {
                break;
            }
            let (bottleneck_link, share) = (self.block_arg[best_block], best);
            self.rounds += 1;
            // Freeze every class through the bottleneck at the fair share and
            // debit its links once per member flow — the same per-flow
            // `(x − share).max(0)` steps the naive solver applies.
            let start = self.incidence_offsets[bottleneck_link];
            let end = self.incidence_offsets[bottleneck_link + 1];
            for i in start..end {
                let c = self.incidence[i];
                if self.class_frozen[c] {
                    continue;
                }
                self.class_frozen[c] = true;
                self.class_rate[c] = share;
                let weight = self.class_weight[c];
                for li in self.class_offsets[c]..self.class_offsets[c + 1] {
                    let l = self.class_links[li];
                    for _ in 0..weight {
                        self.remaining[l] = (self.remaining[l] - share).max(0.0);
                    }
                    self.users[l] -= weight;
                    let block = l / BLOCK;
                    if self.users[l] > 0 {
                        let updated = (self.remaining[l] / self.users[l] as f64).max(0.0);
                        self.share[l] = updated;
                        if updated < self.block_min[block]
                            || (updated == self.block_min[block] && l <= self.block_arg[block])
                        {
                            // The refreshed share is the block's new (or tied,
                            // lower-indexed) minimum: update in place.
                            self.block_min[block] = updated;
                            self.block_arg[block] = l;
                        } else if self.block_arg[block] == l {
                            // The block's argmin grew: rescan the block.
                            rescan_block(
                                &self.users,
                                &self.share,
                                &mut self.block_min,
                                &mut self.block_arg,
                                block,
                            );
                        }
                    } else if self.block_arg[block] == l {
                        // The block's argmin ran out of active flows.
                        rescan_block(
                            &self.users,
                            &self.share,
                            &mut self.block_min,
                            &mut self.block_arg,
                            block,
                        );
                    }
                }
            }
        }

        // --- Expand class rates back per flow.
        self.rates.clear();
        self.rates.resize(flows, f64::INFINITY);
        for f in 0..flows {
            let c = self.class_of[f];
            if c != NO_CLASS {
                self.rates[f] = self.class_rate[c];
            }
        }
        &self.rates
    }

    /// The per-flow rates of the last [`solve`](MaxMinSolver::solve), in the
    /// same order as its `flow_links` input.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Water-filling rounds the last solve took (one per bottleneck link).
    pub fn last_rounds(&self) -> usize {
        self.rounds
    }

    /// Route classes the last solve grouped its flows into.
    pub fn last_classes(&self) -> usize {
        self.class_weight.len()
    }
}

/// Computes max-min fair rates.
///
/// * `capacities[l]` — capacity of link `l`.
/// * `flow_links[f]` — the links flow `f` traverses (may be empty for local
///   flows, which are then unconstrained and reported as `f64::INFINITY`).
///   Generic over the route container so hot callers (the replay engine) can
///   pass borrowed `&[usize]` slices without cloning.
///
/// Returns one rate per flow, in the same order. One-shot convenience wrapper
/// over [`MaxMinSolver`]; callers solving in a loop should hold a solver and
/// reuse its buffers.
pub fn max_min_rates<L: AsRef<[usize]>>(capacities: &[GBps], flow_links: &[L]) -> Vec<GBps> {
    let mut solver = MaxMinSolver::new();
    solver.solve(capacities, flow_links);
    solver.rates().iter().copied().map(GBps).collect()
}

/// The naive progressive-filling reference the incremental solver must match
/// bit-for-bit — kept as the test oracle (this is the pre-refactor
/// implementation, verbatim).
#[cfg(test)]
pub(crate) fn naive_max_min_rates<L: AsRef<[usize]>>(
    capacities: &[GBps],
    flow_links: &[L],
) -> Vec<GBps> {
    let mut remaining: Vec<f64> = capacities.iter().map(|c| c.value()).collect();
    let mut rates = vec![f64::INFINITY; flow_links.len()];
    let mut frozen = vec![false; flow_links.len()];

    let mut active: Vec<usize> = flow_links
        .iter()
        .enumerate()
        .filter(|(_, links)| !links.as_ref().is_empty())
        .map(|(f, _)| f)
        .collect();

    while !active.is_empty() {
        let mut users = vec![0usize; remaining.len()];
        for &f in &active {
            for &l in flow_links[f].as_ref() {
                users[l] += 1;
            }
        }
        let mut bottleneck: Option<(usize, f64)> = None;
        for (l, &count) in users.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let share = (remaining[l] / count as f64).max(0.0);
            if bottleneck.map(|(_, s)| share < s).unwrap_or(true) {
                bottleneck = Some((l, share));
            }
        }
        let Some((bottleneck_link, share)) = bottleneck else {
            break;
        };
        let newly_frozen: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&f| flow_links[f].as_ref().contains(&bottleneck_link))
            .collect();
        for &f in &newly_frozen {
            rates[f] = share;
            frozen[f] = true;
            for &l in flow_links[f].as_ref() {
                remaining[l] = (remaining[l] - share).max(0.0);
            }
        }
        active.retain(|&f| !frozen[f]);
    }
    rates.into_iter().map(GBps).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gbps(values: &[f64]) -> Vec<GBps> {
        values.iter().copied().map(GBps).collect()
    }

    #[test]
    fn single_link_is_shared_equally() {
        let rates = max_min_rates(&gbps(&[100.0]), &[vec![0], vec![0], vec![0], vec![0]]);
        for r in rates {
            assert!((r.value() - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn flows_not_sharing_links_get_full_capacity() {
        let rates = max_min_rates(&gbps(&[100.0, 40.0]), &[vec![0], vec![1]]);
        assert!((rates[0].value() - 100.0).abs() < 1e-9);
        assert!((rates[1].value() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn classic_max_min_example() {
        // Three flows, two links of capacity 10:
        //   f0 uses both links, f1 uses link 0, f2 uses link 1.
        // Both links carry two flows, so everyone converges to the equal share
        // of 5 and both links end up exactly full.
        let rates = max_min_rates(&gbps(&[10.0, 10.0]), &[vec![0, 1], vec![0], vec![1]]);
        assert!((rates[0].value() - 5.0).abs() < 1e-9);
        assert!((rates[1].value() - 5.0).abs() < 1e-9);
        assert!((rates[2].value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_bottlenecks_fill_progressively() {
        // f0 shares link 0 (cap 10) with f1; f1 also crosses link 1 (cap 4).
        // Link 1 freezes f1 at 4 first, leaving 6 for f0 on link 0.
        let rates = max_min_rates(&gbps(&[10.0, 4.0]), &[vec![0], vec![0, 1]]);
        assert!((rates[1].value() - 4.0).abs() < 1e-9);
        assert!((rates[0].value() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn local_flows_are_unconstrained() {
        let rates = max_min_rates(&gbps(&[10.0]), &[vec![], vec![0]]);
        assert!(rates[0].value().is_infinite());
        assert!((rates[1].value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        assert!(max_min_rates::<Vec<usize>>(&[], &[]).is_empty());
    }

    #[test]
    fn allocation_never_exceeds_any_link_capacity() {
        // Randomised-ish structured check without a rand dependency.
        let capacities = gbps(&[7.0, 13.0, 5.0, 20.0]);
        let flows: Vec<Vec<usize>> = (0..12)
            .map(|f| (0..4).filter(|l| (f + l) % 3 != 0).collect())
            .collect();
        let rates = max_min_rates(&capacities, &flows);
        for (l, cap) in capacities.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(links, _)| links.contains(&l))
                .map(|(_, r)| r.value())
                .sum();
            assert!(load <= cap.value() + 1e-6, "link {l} overloaded: {load}");
        }
    }

    #[test]
    fn identical_routes_collapse_into_one_class() {
        let caps = gbps(&[10.0, 4.0]);
        let flows = vec![vec![0, 1], vec![0, 1], vec![0], vec![0, 1]];
        let mut solver = MaxMinSolver::new();
        solver.solve(&caps, &flows);
        assert_eq!(solver.last_classes(), 2);
        let rates = solver.rates();
        assert_eq!(rates[0].to_bits(), rates[1].to_bits());
        assert_eq!(rates[0].to_bits(), rates[3].to_bits());
    }

    #[test]
    fn solver_reuse_matches_fresh_solves() {
        // The same solver instance must fully reset its scratch between
        // solves — including shrinking inputs.
        let mut solver = MaxMinSolver::new();
        let scenarios: Vec<(Vec<GBps>, Vec<Vec<usize>>)> = vec![
            (gbps(&[10.0, 10.0]), vec![vec![0, 1], vec![0], vec![1]]),
            (gbps(&[7.0]), vec![vec![0], vec![0]]),
            (gbps(&[10.0, 4.0, 2.0]), vec![vec![0, 1], vec![2], vec![]]),
            (gbps(&[5.0]), vec![]),
            (gbps(&[10.0, 10.0]), vec![vec![0, 1], vec![0], vec![1]]),
        ];
        for (caps, flows) in &scenarios {
            let reused: Vec<f64> = solver.solve(caps, flows).to_vec();
            let fresh: Vec<f64> = MaxMinSolver::new().solve(caps, flows).to_vec();
            let naive = naive_max_min_rates(caps, flows);
            assert_eq!(reused.len(), fresh.len());
            for ((a, b), n) in reused.iter().zip(&fresh).zip(&naive) {
                assert_eq!(a.to_bits(), b.to_bits());
                assert_eq!(a.to_bits(), n.value().to_bits());
            }
        }
    }

    /// Random scenarios: up to 8 links, up to 24 flows over random non-empty
    /// link subsets, with a duplication factor so route classes actually form.
    fn arbitrary_scenario() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
        (1usize..8).prop_flat_map(|links| {
            let caps = proptest::collection::vec(1.0f64..1000.0, links);
            let flows = proptest::collection::vec(
                (
                    proptest::collection::btree_set(0usize..links, 1..=links),
                    1usize..4,
                ),
                1..24,
            )
            .prop_map(|sets| {
                let mut all: Vec<Vec<usize>> = Vec::new();
                for (set, copies) in sets {
                    let route: Vec<usize> = set.into_iter().collect();
                    for _ in 0..copies {
                        all.push(route.clone());
                    }
                }
                all
            });
            (caps, flows)
        })
    }

    proptest! {
        /// The incremental, class-aggregated solver is bit-identical to the
        /// naive progressive-filling oracle.
        #[test]
        fn incremental_solver_matches_naive_oracle_bitwise(
            (caps, flows) in arbitrary_scenario()
        ) {
            let caps: Vec<GBps> = caps.into_iter().map(GBps).collect();
            let fast = max_min_rates(&caps, &flows);
            let naive = naive_max_min_rates(&caps, &flows);
            prop_assert_eq!(fast.len(), naive.len());
            for (f, (a, b)) in fast.iter().zip(&naive).enumerate() {
                prop_assert_eq!(
                    a.value().to_bits(), b.value().to_bits(),
                    "flow {}: fast {} != naive {}", f, a.value(), b.value()
                );
            }
        }

        /// Local flows mixed into a scenario stay at infinity and do not
        /// perturb the constrained flows (still bitwise vs the oracle).
        #[test]
        fn local_flows_do_not_perturb_the_allocation(
            (caps, mut flows) in arbitrary_scenario(),
            locals in 1usize..4,
        ) {
            for _ in 0..locals {
                flows.insert(flows.len() / 2, Vec::new());
            }
            let caps: Vec<GBps> = caps.into_iter().map(GBps).collect();
            let fast = max_min_rates(&caps, &flows);
            let naive = naive_max_min_rates(&caps, &flows);
            for (a, b) in fast.iter().zip(&naive) {
                prop_assert_eq!(a.value().to_bits(), b.value().to_bits());
            }
        }

        /// A reused solver (buffers dirty from a previous, different solve)
        /// still matches the oracle bitwise.
        #[test]
        fn reused_solver_matches_oracle_bitwise(
            (caps_a, flows_a) in arbitrary_scenario(),
            (caps_b, flows_b) in arbitrary_scenario(),
        ) {
            let caps_a: Vec<GBps> = caps_a.into_iter().map(GBps).collect();
            let caps_b: Vec<GBps> = caps_b.into_iter().map(GBps).collect();
            let mut solver = MaxMinSolver::new();
            solver.solve(&caps_a, &flows_a);
            let second: Vec<f64> = solver.solve(&caps_b, &flows_b).to_vec();
            let naive = naive_max_min_rates(&caps_b, &flows_b);
            for (a, b) in second.iter().zip(&naive) {
                prop_assert_eq!(a.to_bits(), b.value().to_bits());
            }
        }
    }
}
