//! Max-min fair rate allocation (progressive filling / water-filling).
//!
//! Given a set of flows, each pinned to the links of its route, the allocation
//! repeatedly finds the most constrained link (smallest equal share for its
//! unfrozen flows), grants that share to every unfrozen flow through it, and
//! freezes them. The result is the classic max-min fair allocation that
//! flow-level models of TCP-like transport converge to, and it is what turns
//! "how many DP pairs cross a ToR" into "how slow does the DP AllReduce get".

use hbd_types::GBps;

/// Computes max-min fair rates.
///
/// * `capacities[l]` — capacity of link `l`.
/// * `flow_links[f]` — the links flow `f` traverses (may be empty for local
///   flows, which are then unconstrained and reported as `f64::INFINITY`).
///   Generic over the route container so hot callers (the replay engine) can
///   pass borrowed `&[usize]` slices without cloning.
///
/// Returns one rate per flow, in the same order.
pub fn max_min_rates<L: AsRef<[usize]>>(capacities: &[GBps], flow_links: &[L]) -> Vec<GBps> {
    let mut remaining: Vec<f64> = capacities.iter().map(|c| c.value()).collect();
    let mut rates = vec![f64::INFINITY; flow_links.len()];
    let mut frozen = vec![false; flow_links.len()];

    // Local flows (no links) stay at infinity; everything else starts active.
    let mut active: Vec<usize> = flow_links
        .iter()
        .enumerate()
        .filter(|(_, links)| !links.as_ref().is_empty())
        .map(|(f, _)| f)
        .collect();

    while !active.is_empty() {
        // Count active flows per link.
        let mut users = vec![0usize; remaining.len()];
        for &f in &active {
            for &l in flow_links[f].as_ref() {
                users[l] += 1;
            }
        }
        // Bottleneck link: smallest fair share among links with active users.
        let mut bottleneck: Option<(usize, f64)> = None;
        for (l, &count) in users.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let share = (remaining[l] / count as f64).max(0.0);
            if bottleneck.map(|(_, s)| share < s).unwrap_or(true) {
                bottleneck = Some((l, share));
            }
        }
        let Some((bottleneck_link, share)) = bottleneck else {
            break;
        };
        // Freeze every active flow through the bottleneck at the fair share and
        // debit its links.
        let newly_frozen: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&f| flow_links[f].as_ref().contains(&bottleneck_link))
            .collect();
        for &f in &newly_frozen {
            rates[f] = share;
            frozen[f] = true;
            for &l in flow_links[f].as_ref() {
                remaining[l] = (remaining[l] - share).max(0.0);
            }
        }
        active.retain(|&f| !frozen[f]);
    }
    rates.into_iter().map(GBps).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbps(values: &[f64]) -> Vec<GBps> {
        values.iter().copied().map(GBps).collect()
    }

    #[test]
    fn single_link_is_shared_equally() {
        let rates = max_min_rates(&gbps(&[100.0]), &[vec![0], vec![0], vec![0], vec![0]]);
        for r in rates {
            assert!((r.value() - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn flows_not_sharing_links_get_full_capacity() {
        let rates = max_min_rates(&gbps(&[100.0, 40.0]), &[vec![0], vec![1]]);
        assert!((rates[0].value() - 100.0).abs() < 1e-9);
        assert!((rates[1].value() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn classic_max_min_example() {
        // Three flows, two links of capacity 10:
        //   f0 uses both links, f1 uses link 0, f2 uses link 1.
        // Both links carry two flows, so everyone converges to the equal share
        // of 5 and both links end up exactly full.
        let rates = max_min_rates(&gbps(&[10.0, 10.0]), &[vec![0, 1], vec![0], vec![1]]);
        assert!((rates[0].value() - 5.0).abs() < 1e-9);
        assert!((rates[1].value() - 5.0).abs() < 1e-9);
        assert!((rates[2].value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_bottlenecks_fill_progressively() {
        // f0 shares link 0 (cap 10) with f1; f1 also crosses link 1 (cap 4).
        // Link 1 freezes f1 at 4 first, leaving 6 for f0 on link 0.
        let rates = max_min_rates(&gbps(&[10.0, 4.0]), &[vec![0], vec![0, 1]]);
        assert!((rates[1].value() - 4.0).abs() < 1e-9);
        assert!((rates[0].value() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn local_flows_are_unconstrained() {
        let rates = max_min_rates(&gbps(&[10.0]), &[vec![], vec![0]]);
        assert!(rates[0].value().is_infinite());
        assert!((rates[1].value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        assert!(max_min_rates::<Vec<usize>>(&[], &[]).is_empty());
    }

    #[test]
    fn allocation_never_exceeds_any_link_capacity() {
        // Randomised-ish structured check without a rand dependency.
        let capacities = gbps(&[7.0, 13.0, 5.0, 20.0]);
        let flows: Vec<Vec<usize>> = (0..12)
            .map(|f| (0..4).filter(|l| (f + l) % 3 != 0).collect())
            .collect();
        let rates = max_min_rates(&capacities, &flows);
        for (l, cap) in capacities.iter().enumerate() {
            let load: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(links, _)| links.contains(&l))
                .map(|(_, r)| r.value())
                .sum();
            assert!(load <= cap.value() + 1e-6, "link {l} overloaded: {load}");
        }
    }
}
