//! The flow-level simulation itself: routes, fair rates, completion times and
//! the congestion report.

use crate::flow::{Flow, Route};
use crate::maxmin::max_min_rates;
use crate::network::DcnNetwork;
use hbd_types::{Bytes, GBps, LinkId, Result, Seconds};
use serde::{Deserialize, Serialize};

/// A solved flow-level scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSimulation {
    flows: Vec<Flow>,
    routes: Vec<Route>,
    rates: Vec<GBps>,
    completion: Vec<Seconds>,
}

/// Aggregate congestion metrics of a solved scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestionReport {
    /// Total flows simulated (including local ones).
    pub flows: usize,
    /// Flows whose endpoints share a node (never enter the DCN).
    pub local_flows: usize,
    /// Flows whose route leaves the source ToR.
    pub cross_tor_flows: usize,
    /// Fraction of all transferred bytes that cross a ToR.
    pub cross_tor_byte_fraction: f64,
    /// Completion time of the slowest flow — the exposed DP communication time
    /// of the iteration.
    pub max_completion: Seconds,
    /// Mean completion time over non-local flows.
    pub mean_completion: Seconds,
    /// Slowest completion time if every flow ran alone at full access-link
    /// speed (the uncongested lower bound).
    pub ideal_completion: Seconds,
    /// `max_completion / ideal_completion` — 1.0 means congestion-free.
    pub slowdown: f64,
    /// Highest link utilisation (allocated rate / capacity) over all links.
    pub max_link_utilization: f64,
    /// Mean utilisation over links that carry at least one flow.
    pub mean_loaded_link_utilization: f64,
}

impl FlowSimulation {
    /// Routes every flow, computes the max-min fair allocation and the
    /// per-flow completion times.
    pub fn run(network: &DcnNetwork, flows: Vec<Flow>) -> Result<Self> {
        let routes: Vec<Route> = flows
            .iter()
            .map(|f| network.route(f))
            .collect::<Result<Vec<_>>>()?;
        let capacities = network.capacities();
        // Flatten the routes into CSR storage and hand the solver borrowed
        // slices — one arena instead of one Vec per flow.
        let mut flat: Vec<usize> = Vec::new();
        let mut offsets: Vec<usize> = Vec::with_capacity(routes.len() + 1);
        offsets.push(0);
        for route in &routes {
            flat.extend(route.links.iter().map(|l| l.index()));
            offsets.push(flat.len());
        }
        let flow_links: Vec<&[usize]> = offsets.windows(2).map(|w| &flat[w[0]..w[1]]).collect();
        let rates = max_min_rates(&capacities, &flow_links);
        let completion = flows
            .iter()
            .zip(&rates)
            .map(|(flow, rate)| transfer_time(flow.bytes, *rate))
            .collect();
        Ok(FlowSimulation {
            flows,
            routes,
            rates,
            completion,
        })
    }

    /// The simulated flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// The route of flow `i`.
    pub fn route(&self, i: usize) -> Option<&Route> {
        self.routes.get(i)
    }

    /// The max-min fair rate of flow `i`.
    pub fn rate(&self, i: usize) -> Option<GBps> {
        self.rates.get(i).copied()
    }

    /// The completion time of flow `i`.
    pub fn completion(&self, i: usize) -> Option<Seconds> {
        self.completion.get(i).copied()
    }

    /// Load (sum of allocated flow rates) on every link.
    pub fn link_loads(&self, network: &DcnNetwork) -> Vec<GBps> {
        let mut loads = vec![GBps::ZERO; network.links().len()];
        for (route, rate) in self.routes.iter().zip(&self.rates) {
            if !rate.value().is_finite() {
                continue;
            }
            for link in &route.links {
                loads[link.index()] += *rate;
            }
        }
        loads
    }

    /// The most loaded link and its utilisation, if any flow touches the DCN.
    pub fn bottleneck(&self, network: &DcnNetwork) -> Option<(LinkId, f64)> {
        self.link_loads(network)
            .iter()
            .enumerate()
            .map(|(i, load)| {
                (
                    LinkId(i),
                    load.value() / network.links()[i].capacity.value(),
                )
            })
            .filter(|(_, util)| *util > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Summarises the scenario.
    pub fn report(&self, network: &DcnNetwork) -> CongestionReport {
        let node_bw = network.params().node_bandwidth;
        let mut local_flows = 0usize;
        let mut cross_tor_flows = 0usize;
        let mut cross_bytes = 0.0f64;
        let mut total_bytes = 0.0f64;
        let mut ideal = Seconds::ZERO;
        let mut max_completion = Seconds::ZERO;
        let mut sum_completion = Seconds::ZERO;
        let mut dcn_flows = 0usize;
        for ((flow, route), completion) in self.flows.iter().zip(&self.routes).zip(&self.completion)
        {
            total_bytes += flow.bytes.value();
            if route.hops() == 0 {
                local_flows += 1;
                continue;
            }
            dcn_flows += 1;
            if route.crosses_tor() {
                cross_tor_flows += 1;
                cross_bytes += flow.bytes.value();
            }
            ideal = ideal.max(transfer_time(flow.bytes, node_bw));
            max_completion = max_completion.max(*completion);
            sum_completion += *completion;
        }
        let loads = self.link_loads(network);
        let mut max_util = 0.0f64;
        let mut util_sum = 0.0f64;
        let mut loaded = 0usize;
        for (load, link) in loads.iter().zip(network.links()) {
            let util = load.value() / link.capacity.value();
            if util > 0.0 {
                loaded += 1;
                util_sum += util;
            }
            max_util = max_util.max(util);
        }
        CongestionReport {
            flows: self.flows.len(),
            local_flows,
            cross_tor_flows,
            cross_tor_byte_fraction: if total_bytes > 0.0 {
                cross_bytes / total_bytes
            } else {
                0.0
            },
            max_completion,
            mean_completion: if dcn_flows > 0 {
                Seconds(sum_completion.value() / dcn_flows as f64)
            } else {
                Seconds::ZERO
            },
            ideal_completion: ideal,
            slowdown: if ideal.value() > 0.0 {
                max_completion.value() / ideal.value()
            } else {
                1.0
            },
            max_link_utilization: max_util,
            mean_loaded_link_utilization: if loaded > 0 {
                util_sum / loaded as f64
            } else {
                0.0
            },
        }
    }
}

fn transfer_time(bytes: Bytes, rate: GBps) -> Seconds {
    if rate.value().is_infinite() || bytes.value() == 0.0 {
        Seconds::ZERO
    } else {
        rate.transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkParams;
    use hbd_types::NodeId;
    use topology::FatTree;

    fn network() -> DcnNetwork {
        let fat_tree = FatTree::new(32, 4, 4).unwrap();
        DcnNetwork::new(fat_tree, NetworkParams::non_blocking(4, 4)).unwrap()
    }

    #[test]
    fn intra_tor_flows_run_at_full_access_speed() {
        let net = network();
        let bytes = Bytes::from_gib(1.0);
        let flows = vec![
            Flow::new(NodeId(0), NodeId(1), bytes),
            Flow::new(NodeId(2), NodeId(3), bytes),
        ];
        let sim = FlowSimulation::run(&net, flows).unwrap();
        let report = sim.report(&net);
        assert_eq!(report.cross_tor_flows, 0);
        assert!((report.slowdown - 1.0).abs() < 1e-9);
        assert_eq!(report.max_completion, report.ideal_completion);
        assert!(report.max_link_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn incast_on_one_access_link_shares_fairly() {
        let net = network();
        let bytes = Bytes::from_gib(1.0);
        // Three senders into one receiver: the receiver's down-link is the
        // bottleneck, each flow gets one third.
        let flows = vec![
            Flow::new(NodeId(1), NodeId(0), bytes),
            Flow::new(NodeId(2), NodeId(0), bytes),
            Flow::new(NodeId(3), NodeId(0), bytes),
        ];
        let sim = FlowSimulation::run(&net, flows).unwrap();
        let node_bw = net.params().node_bandwidth.value();
        for i in 0..3 {
            assert!((sim.rate(i).unwrap().value() - node_bw / 3.0).abs() < 1e-6);
        }
        let report = sim.report(&net);
        assert!((report.slowdown - 3.0).abs() < 1e-6);
    }

    #[test]
    fn oversubscribed_uplinks_slow_cross_tor_traffic_only() {
        let fat_tree = FatTree::new(32, 4, 4).unwrap();
        let params = NetworkParams::non_blocking(4, 4).oversubscribed(4.0);
        let net = DcnNetwork::new(fat_tree, params).unwrap();
        let bytes = Bytes::from_gib(1.0);
        // Every node of ToR 0 sends to its counterpart in ToR 1: all four flows
        // may hash onto distinct planes, so load the uplinks with four flows
        // from each source node to force contention.
        let mut flows = Vec::new();
        for src in 0..4usize {
            for dst in 4..8usize {
                flows.push(Flow::new(NodeId(src), NodeId(dst), bytes));
            }
        }
        let sim = FlowSimulation::run(&net, flows).unwrap();
        let report = sim.report(&net);
        assert_eq!(report.cross_tor_flows, 16);
        assert!(
            report.slowdown > 1.0,
            "oversubscription must bite: {report:?}"
        );
        assert!(report.max_link_utilization > 0.99);
        // The bottleneck is a ToR uplink, not an access link.
        let (link, _) = sim.bottleneck(&net).unwrap();
        assert!(net.link(link).unwrap().kind.is_tor_uplink());
    }

    #[test]
    fn local_flows_complete_instantly_and_do_not_congest() {
        let net = network();
        let flows = vec![
            Flow::new(NodeId(5), NodeId(5), Bytes::from_gib(4.0)),
            Flow::new(NodeId(0), NodeId(1), Bytes::from_gib(1.0)),
        ];
        let sim = FlowSimulation::run(&net, flows).unwrap();
        assert_eq!(sim.completion(0).unwrap(), Seconds::ZERO);
        let report = sim.report(&net);
        assert_eq!(report.local_flows, 1);
        assert_eq!(report.flows, 2);
    }

    #[test]
    fn empty_scenario_reports_zeroes() {
        let net = network();
        let sim = FlowSimulation::run(&net, Vec::new()).unwrap();
        let report = sim.report(&net);
        assert_eq!(report.flows, 0);
        assert_eq!(report.max_completion, Seconds::ZERO);
        assert!((report.slowdown - 1.0).abs() < 1e-12);
        assert!(sim.bottleneck(&net).is_none());
    }

    #[test]
    fn report_byte_fraction_tracks_cross_tor_volume() {
        let net = network();
        let flows = vec![
            Flow::new(NodeId(0), NodeId(1), Bytes::from_gib(3.0)),
            Flow::new(NodeId(0), NodeId(4), Bytes::from_gib(1.0)),
        ];
        let sim = FlowSimulation::run(&net, flows).unwrap();
        let report = sim.report(&net);
        assert!((report.cross_tor_byte_fraction - 0.25).abs() < 1e-9);
    }
}
