//! Communication volumes and timing of the parallelism dimensions.
//!
//! Table 3 of the paper gives the per-MoE-layer volumes:
//!
//! | Parallelism | Operation | Traffic |
//! |---|---|---|
//! | TP | AllReduce | `2·b·s·h·(n−1)/n` |
//! | EP | AllToAll  | `2·b·s·h·(n−1)/n · k/n` |
//!
//! (in activations per direction; we convert to bytes with 2-byte elements).
//! On top of those, a transformer layer runs **two** TP AllReduces in the
//! forward pass and two in the backward pass (attention output and FFN output),
//! DP runs one gradient AllReduce per iteration, and PP exchanges boundary
//! activations per micro-batch.

use crate::model::ModelConfig;
use crate::parallelism::ParallelismStrategy;
use collective::{AlphaBeta, RingAllReduce};
use hbd_types::Bytes;
use serde::{Deserialize, Serialize};

/// Bytes per activation / weight element (BF16).
pub const BYTES_PER_ELEMENT: f64 = 2.0;

/// Per-iteration, per-neighbour-pair DCN volumes of a parallelism plan — the
/// analytic quantities the `dcn` crate's traffic lowering turns into flows.
///
/// Every field is **bytes per direction between one adjacent rank pair per
/// iteration**; multiplying by the pair count and the two directions recovers
/// the total volume of the dimension (the invariant the lowering's property
/// tests assert).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcnPairVolumes {
    /// Gradient Ring-AllReduce volume between DP-adjacent ranks:
    /// `2·(dp−1)/dp` of the per-rank gradient shard.
    pub dp_pair_bytes: Bytes,
    /// Boundary activations (forward) / activation gradients (backward)
    /// between PP-adjacent stages, summed over the iteration's micro-batches.
    pub pp_pair_bytes: Bytes,
    /// Ring-Attention K/V exchange between CP-adjacent ranks (forward
    /// All-Gather plus backward Reduce-Scatter of the same volume), summed
    /// over the stage's layers and the iteration's micro-batches.
    pub cp_pair_bytes: Bytes,
    /// Gradient Ring-AllReduce volume between CP-adjacent ranks: CP ranks
    /// replicate the weights but compute partial gradients over different
    /// sequence slices, so the end-of-iteration sync also rings over CP
    /// (`2·(cp−1)/cp` of the per-rank gradient shard).
    pub cp_grad_pair_bytes: Bytes,
}

/// Communication-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommModel {
    /// The HBD link serving TP (and EP) traffic.
    pub hbd: AlphaBeta,
    /// The DCN link serving DP / PP traffic.
    pub dcn: AlphaBeta,
    /// Fraction of the DP gradient AllReduce that overlaps with the backward
    /// pass (gradient bucketing overlaps most of it in practice).
    pub dp_overlap: f64,
    /// Fraction of TP collectives hidden behind compute (async TP / sequence
    /// parallel tricks hide little for large TP, so the default is small).
    pub tp_overlap: f64,
}

impl CommModel {
    /// Defaults matching the paper's hardware: 800 GBps HBD per GPU, 50 GBps
    /// DCN per GPU, 90 % DP overlap, 20 % TP overlap.
    pub fn paper_defaults() -> Self {
        CommModel {
            hbd: AlphaBeta::hbd_default(),
            dcn: AlphaBeta::dcn_default(),
            dp_overlap: 0.9,
            tp_overlap: 0.2,
        }
    }

    /// Table-3 TP AllReduce volume for one collective on a micro-batch:
    /// `2·b·s·h·(n−1)/n` elements, converted to bytes.
    pub fn tp_allreduce_bytes(&self, model: &ModelConfig, strategy: &ParallelismStrategy) -> Bytes {
        if strategy.tp <= 1 {
            return Bytes(0.0);
        }
        let b = strategy.micro_batch as f64;
        let s = model.seq_len as f64;
        let h = model.hidden as f64;
        let n = strategy.tp as f64;
        Bytes(2.0 * b * s * h * (n - 1.0) / n * BYTES_PER_ELEMENT)
    }

    /// Table-3 EP AllToAll volume for one MoE layer on a micro-batch.
    pub fn ep_alltoall_bytes(&self, model: &ModelConfig, strategy: &ParallelismStrategy) -> Bytes {
        if strategy.ep <= 1 {
            return Bytes(0.0);
        }
        let b = strategy.micro_batch as f64;
        let s = model.seq_len as f64;
        let h = model.hidden as f64;
        let n = strategy.ep as f64;
        let k = model.top_k as f64;
        Bytes(2.0 * b * s * h * (n - 1.0) / n * (k / n) * BYTES_PER_ELEMENT)
    }

    /// Non-overlapped TP communication time per layer per micro-batch
    /// (forward + backward: 4 AllReduces).
    pub fn tp_time_per_layer(&self, model: &ModelConfig, strategy: &ParallelismStrategy) -> f64 {
        if strategy.tp <= 1 {
            return 0.0;
        }
        let ring = RingAllReduce::new(strategy.tp);
        // The AllReduce input is the activation tensor b·s·h; the ring moves
        // 2·(n−1)/n of it, which is exactly the Table-3 volume.
        let input = Bytes(
            strategy.micro_batch as f64
                * model.seq_len as f64
                * model.hidden as f64
                * BYTES_PER_ELEMENT,
        );
        let per_allreduce = ring.cost(input, &self.hbd).time.value();
        4.0 * per_allreduce * (1.0 - self.tp_overlap)
    }

    /// Non-overlapped EP communication time per MoE layer per micro-batch
    /// (forward + backward: 2 AllToAll pairs = 4 AllToAlls), assuming the
    /// AllToAll runs at the HBD line rate.
    pub fn ep_time_per_moe_layer(
        &self,
        model: &ModelConfig,
        strategy: &ParallelismStrategy,
    ) -> f64 {
        if strategy.ep <= 1 {
            return 0.0;
        }
        let volume = self.ep_alltoall_bytes(model, strategy);
        let per_alltoall = self.hbd.message_time(volume).value();
        4.0 * per_alltoall
    }

    /// Pipeline boundary-activation transfer time per micro-batch (forward +
    /// backward), over the DCN.
    pub fn pp_time_per_microbatch(
        &self,
        model: &ModelConfig,
        strategy: &ParallelismStrategy,
    ) -> f64 {
        if strategy.pp <= 1 {
            return 0.0;
        }
        let activation = Bytes(
            strategy.micro_batch as f64
                * model.seq_len as f64
                * model.hidden as f64
                * BYTES_PER_ELEMENT,
        );
        2.0 * self.dcn.message_time(activation).value()
    }

    /// Non-overlapped DP gradient-AllReduce time per iteration.
    pub fn dp_time_per_iteration(
        &self,
        model: &ModelConfig,
        strategy: &ParallelismStrategy,
    ) -> f64 {
        if strategy.dp <= 1 {
            return 0.0;
        }
        let ring = RingAllReduce::new(strategy.dp);
        let grad_bytes = Bytes(
            model.total_params() / (strategy.tp as f64 * strategy.pp as f64) * BYTES_PER_ELEMENT,
        );
        ring.cost(grad_bytes, &self.dcn).time.value() * (1.0 - self.dp_overlap)
    }

    /// Per-direction bytes each DP-adjacent rank pair carries per iteration:
    /// the Ring-AllReduce link volume `2·(dp−1)/dp · shard` of the per-rank
    /// gradient shard.
    pub fn dp_pair_bytes(&self, model: &ModelConfig, strategy: &ParallelismStrategy) -> Bytes {
        if strategy.dp <= 1 {
            return Bytes(0.0);
        }
        let n = strategy.dp as f64;
        Bytes(2.0 * (n - 1.0) / n * self.gradient_shard_bytes(model, strategy))
    }

    /// Per-direction bytes each CP-adjacent rank pair carries for the
    /// gradient sync per iteration. CP replicates the weights, which is
    /// exactly why the partial gradients (each rank saw only its sequence
    /// slice) must be reduced across CP too — a second Ring-AllReduce of the
    /// same shard, `2·(cp−1)/cp · shard` per link.
    pub fn cp_grad_pair_bytes(&self, model: &ModelConfig, strategy: &ParallelismStrategy) -> Bytes {
        if strategy.cp <= 1 {
            return Bytes(0.0);
        }
        let n = strategy.cp as f64;
        Bytes(2.0 * (n - 1.0) / n * self.gradient_shard_bytes(model, strategy))
    }

    /// The gradient shard one rank holds after TP/PP sharding (BF16).
    fn gradient_shard_bytes(&self, model: &ModelConfig, strategy: &ParallelismStrategy) -> f64 {
        model.total_params() / (strategy.tp as f64 * strategy.pp as f64) * BYTES_PER_ELEMENT
    }

    /// Per-direction bytes each PP-adjacent stage pair carries per iteration:
    /// one boundary activation per micro-batch forward (and the matching
    /// gradient backward, which is the opposite direction of the same size).
    /// CP splits the sequence dimension, so each CP rank ships `1/cp` of the
    /// boundary tensor.
    pub fn pp_pair_bytes(&self, model: &ModelConfig, strategy: &ParallelismStrategy) -> Bytes {
        if strategy.pp <= 1 {
            return Bytes(0.0);
        }
        let microbatches = strategy.microbatches_per_replica(model.global_batch) as f64;
        let activation = strategy.micro_batch as f64
            * model.seq_len as f64
            * model.hidden as f64
            * BYTES_PER_ELEMENT
            / strategy.cp as f64;
        Bytes(microbatches * activation)
    }

    /// Per-direction bytes each CP-adjacent rank pair carries per iteration:
    /// per layer and micro-batch, Ring-Attention All-Gathers the K/V shards
    /// (`(cp−1)` shard-sized steps per link) and Reduce-Scatters the matching
    /// gradients backward, over the `layers/pp` layers hosted by the stage.
    pub fn cp_pair_bytes(&self, model: &ModelConfig, strategy: &ParallelismStrategy) -> Bytes {
        if strategy.cp <= 1 {
            return Bytes(0.0);
        }
        let n = strategy.cp as f64;
        let microbatches = strategy.microbatches_per_replica(model.global_batch) as f64;
        let layers_per_stage = model.layers as f64 / strategy.pp as f64;
        // K and V shards of the sequence slice held by one CP rank.
        let kv_shard = 2.0
            * strategy.micro_batch as f64
            * (model.seq_len as f64 / n)
            * model.hidden as f64
            * BYTES_PER_ELEMENT;
        Bytes(microbatches * layers_per_stage * 2.0 * (n - 1.0) * kv_shard)
    }

    /// All three per-pair DCN volumes of the plan at once.
    pub fn dcn_pair_volumes(
        &self,
        model: &ModelConfig,
        strategy: &ParallelismStrategy,
    ) -> DcnPairVolumes {
        DcnPairVolumes {
            dp_pair_bytes: self.dp_pair_bytes(model, strategy),
            pp_pair_bytes: self.pp_pair_bytes(model, strategy),
            cp_pair_bytes: self.cp_pair_bytes(model, strategy),
            cp_grad_pair_bytes: self.cp_grad_pair_bytes(model, strategy),
        }
    }
}

impl Default for CommModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llama() -> ModelConfig {
        ModelConfig::llama31_405b()
    }

    #[test]
    fn table3_tp_volume_formula() {
        let comm = CommModel::paper_defaults();
        let strategy = ParallelismStrategy::new(16, 8, 8);
        let bytes = comm.tp_allreduce_bytes(&llama(), &strategy);
        let expected = 2.0 * 1.0 * 8192.0 * 16384.0 * 15.0 / 16.0 * 2.0;
        assert!((bytes.value() - expected).abs() < 1.0);
        // TP = 1 communicates nothing.
        assert_eq!(
            comm.tp_allreduce_bytes(&llama(), &ParallelismStrategy::new(1, 8, 128))
                .value(),
            0.0
        );
    }

    #[test]
    fn table3_ep_volume_is_tp_volume_scaled_by_k_over_n() {
        let comm = CommModel::paper_defaults();
        let moe = ModelConfig::gpt_moe_1t();
        let tp_strategy = ParallelismStrategy::new(8, 8, 16);
        let ep_strategy = ParallelismStrategy::new(1, 8, 128).with_ep(8);
        let tp_equiv = {
            // Evaluate the TP formula at n = 8 for comparison.
            let b = 1.0;
            let s = moe.seq_len as f64;
            let h = moe.hidden as f64;
            2.0 * b * s * h * 7.0 / 8.0 * 2.0
        };
        let ep = comm.ep_alltoall_bytes(&moe, &ep_strategy).value();
        assert!((ep - tp_equiv * 2.0 / 8.0).abs() < 1.0);
        // EP is cheaper than TP at the same degree when k < n (the paper's
        // observation motivating Table 3).
        let tp = comm.tp_allreduce_bytes(&moe, &tp_strategy).value();
        assert!(ep < tp);
    }

    #[test]
    fn tp_time_decreases_with_overlap_and_increases_with_tp() {
        let mut comm = CommModel::paper_defaults();
        let strategy16 = ParallelismStrategy::new(16, 8, 8);
        let strategy64 = ParallelismStrategy::new(64, 2, 8);
        let t16 = comm.tp_time_per_layer(&llama(), &strategy16);
        let t64 = comm.tp_time_per_layer(&llama(), &strategy64);
        assert!(t64 > t16 * 0.9, "larger TP should not be cheaper");
        comm.tp_overlap = 0.9;
        assert!(comm.tp_time_per_layer(&llama(), &strategy16) < t16);
        assert_eq!(
            comm.tp_time_per_layer(&llama(), &ParallelismStrategy::new(1, 1, 1024)),
            0.0
        );
    }

    #[test]
    fn dp_time_shrinks_with_model_parallel_sharding() {
        let comm = CommModel::paper_defaults();
        let narrow = ParallelismStrategy::new(8, 4, 32);
        let wide = ParallelismStrategy::new(64, 4, 4);
        let t_narrow = comm.dp_time_per_iteration(&llama(), &narrow);
        let t_wide = comm.dp_time_per_iteration(&llama(), &wide);
        assert!(t_wide < t_narrow);
        assert_eq!(
            comm.dp_time_per_iteration(&llama(), &ParallelismStrategy::new(64, 16, 1)),
            0.0
        );
    }

    #[test]
    fn dcn_pair_volumes_follow_the_dimension_formulas() {
        let comm = CommModel::paper_defaults();
        let model = llama();
        let strategy = ParallelismStrategy::new(16, 4, 8).with_cp(2);
        let volumes = comm.dcn_pair_volumes(&model, &strategy);

        // DP: 2·(dp−1)/dp of the gradient shard (params / (tp·pp), BF16).
        let shard = model.total_params() / (16.0 * 4.0) * BYTES_PER_ELEMENT;
        assert!((volumes.dp_pair_bytes.value() - 2.0 * 7.0 / 8.0 * shard).abs() < 1.0);

        // PP: microbatches × boundary activation, halved by CP = 2.
        let microbatches = (model.global_batch / 8) as f64;
        let activation = model.seq_len as f64 * model.hidden as f64 * BYTES_PER_ELEMENT / 2.0;
        assert!((volumes.pp_pair_bytes.value() - microbatches * activation).abs() < 1.0);

        // CP: microbatches × layers-per-stage × 2 passes × (cp−1) × K/V shard.
        let kv_shard = 2.0 * (model.seq_len as f64 / 2.0) * model.hidden as f64 * BYTES_PER_ELEMENT;
        let expected = microbatches * (model.layers as f64 / 4.0) * 2.0 * 1.0 * kv_shard;
        assert!((volumes.cp_pair_bytes.value() - expected).abs() < 1.0);

        // CP gradient sync: the same ring formula as DP, over the CP extent.
        assert!((volumes.cp_grad_pair_bytes.value() - 2.0 * 0.5 * shard).abs() < 1.0);

        // Degenerate dimensions communicate nothing.
        let flat = ParallelismStrategy::new(16, 1, 1).with_cp(1);
        let zero = comm.dcn_pair_volumes(&model, &flat);
        assert_eq!(zero.dp_pair_bytes.value(), 0.0);
        assert_eq!(zero.pp_pair_bytes.value(), 0.0);
        assert_eq!(zero.cp_pair_bytes.value(), 0.0);
        assert_eq!(zero.cp_grad_pair_bytes.value(), 0.0);

        // dp = 1 with cp > 1 still syncs gradients — over the CP ring.
        let cp_only = ParallelismStrategy::new(16, 4, 1).with_cp(2);
        let volumes = comm.dcn_pair_volumes(&model, &cp_only);
        assert_eq!(volumes.dp_pair_bytes.value(), 0.0);
        assert!(volumes.cp_grad_pair_bytes.value() > 0.0);
    }

    #[test]
    fn pp_time_is_zero_without_pipeline() {
        let comm = CommModel::paper_defaults();
        assert_eq!(
            comm.pp_time_per_microbatch(&llama(), &ParallelismStrategy::new(8, 1, 128)),
            0.0
        );
        assert!(comm.pp_time_per_microbatch(&llama(), &ParallelismStrategy::new(8, 16, 8)) > 0.0);
    }
}
