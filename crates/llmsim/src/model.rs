//! Transformer / Mixture-of-Experts model descriptions.
//!
//! Two presets match the models the paper evaluates:
//!
//! * **Llama 3.1-405B**, simplified from GQA to MHA as the paper does
//!   (footnote 5) so that attention shards cleanly across large TP groups;
//! * **GPT-MoE 1.1T**, the Appendix-B configuration (192 layers, hidden 12288,
//!   inner 49152, 8 experts, top-2, MoE on every second layer).

use serde::{Deserialize, Serialize};

/// Dense transformer or Mixture-of-Experts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Standard dense decoder-only transformer.
    Dense,
    /// Mixture-of-Experts: a fraction of layers replace the FFN with routed
    /// experts.
    MoE,
}

/// Architecture hyper-parameters of the trained model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name.
    pub name: String,
    /// Dense or MoE.
    pub kind: ModelKind,
    /// Number of transformer layers.
    pub layers: usize,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// FFN inner dimension.
    pub inner: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Training sequence length.
    pub seq_len: usize,
    /// Global batch size in sequences.
    pub global_batch: usize,
    /// Number of experts (1 for dense models).
    pub experts: usize,
    /// Top-K experts activated per token (0 for dense models).
    pub top_k: usize,
    /// Fraction of layers that are MoE layers (0.0 for dense models).
    pub moe_layer_ratio: f64,
    /// Weight matrices per FFN block: 2 for the classic GELU MLP (GPT-style),
    /// 3 for gated SwiGLU MLPs (Llama-style).
    pub ffn_matrices: usize,
}

impl ModelConfig {
    /// Llama 3.1-405B with the GQA→MHA simplification the paper applies, using
    /// the paper's simulation batch size of 2048 sequences of 8192 tokens.
    pub fn llama31_405b() -> Self {
        ModelConfig {
            name: "Llama 3.1-405B".to_string(),
            kind: ModelKind::Dense,
            layers: 126,
            hidden: 16384,
            inner: 53248,
            heads: 128,
            vocab: 128_256,
            seq_len: 8192,
            global_batch: 2048,
            experts: 1,
            top_k: 0,
            moe_layer_ratio: 0.0,
            ffn_matrices: 3,
        }
    }

    /// The GPT-MoE model of Appendix B (~1.1T parameters).
    pub fn gpt_moe_1t() -> Self {
        ModelConfig {
            name: "GPT-MoE 1.1T".to_string(),
            kind: ModelKind::MoE,
            layers: 192,
            hidden: 12288,
            inner: 49152,
            heads: 128,
            vocab: 64_000,
            seq_len: 2048,
            global_batch: 1536,
            experts: 8,
            top_k: 2,
            moe_layer_ratio: 0.5,
            ffn_matrices: 2,
        }
    }

    /// Attention parameters per layer: Q, K, V and output projections.
    pub fn attention_params_per_layer(&self) -> f64 {
        4.0 * (self.hidden as f64) * (self.hidden as f64)
    }

    /// FFN parameters per dense layer (`ffn_matrices` projections of
    /// `hidden × inner` each).
    pub fn ffn_params_per_layer(&self) -> f64 {
        self.ffn_matrices as f64 * (self.hidden as f64) * (self.inner as f64)
    }

    /// Number of MoE layers.
    pub fn moe_layers(&self) -> usize {
        (self.layers as f64 * self.moe_layer_ratio).round() as usize
    }

    /// Number of dense (non-MoE) layers.
    pub fn dense_layers(&self) -> usize {
        self.layers - self.moe_layers()
    }

    /// Total parameter count, counting every expert.
    pub fn total_params(&self) -> f64 {
        let attention = self.layers as f64 * self.attention_params_per_layer();
        let dense_ffn = self.dense_layers() as f64 * self.ffn_params_per_layer();
        let moe_ffn = self.moe_layers() as f64 * self.ffn_params_per_layer() * self.experts as f64;
        let embedding = 2.0 * (self.vocab as f64) * (self.hidden as f64);
        attention + dense_ffn + moe_ffn + embedding
    }

    /// Parameters *activated* per token (experts beyond the routed top-K do not
    /// contribute FLOPs).
    pub fn activated_params(&self) -> f64 {
        let attention = self.layers as f64 * self.attention_params_per_layer();
        let dense_ffn = self.dense_layers() as f64 * self.ffn_params_per_layer();
        let moe_ffn =
            self.moe_layers() as f64 * self.ffn_params_per_layer() * (self.top_k.max(1) as f64);
        let embedding = 2.0 * (self.vocab as f64) * (self.hidden as f64);
        attention + dense_ffn + moe_ffn + embedding
    }

    /// Tokens processed per training iteration.
    pub fn tokens_per_iteration(&self) -> f64 {
        (self.global_batch * self.seq_len) as f64
    }

    /// Model FLOPs per iteration: the standard `6 · N_activated · tokens`
    /// estimate (fwd + bwd) plus the attention-score term
    /// `12 · L · b · s² · h` that matters at long sequence lengths.
    pub fn flops_per_iteration(&self) -> f64 {
        let dense_term = 6.0 * self.activated_params() * self.tokens_per_iteration();
        let attn_scores = 12.0
            * self.layers as f64
            * self.global_batch as f64
            * (self.seq_len as f64)
            * (self.seq_len as f64)
            * self.hidden as f64;
        dense_term + attn_scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama_405b_has_roughly_405b_parameters() {
        // The paper simplifies GQA to MHA (footnote 5), which inflates the
        // attention parameters relative to the released 405B checkpoint, so we
        // accept a window around and slightly above 405B.
        let model = ModelConfig::llama31_405b();
        let params = model.total_params();
        assert!(
            params > 380e9 && params < 490e9,
            "expected ~405B (MHA-inflated) parameters, got {params:.3e}"
        );
        assert_eq!(model.kind, ModelKind::Dense);
        assert_eq!(model.moe_layers(), 0);
        assert_eq!(model.dense_layers(), 126);
        // Dense model: activated == total.
        assert_eq!(model.activated_params(), model.total_params());
    }

    #[test]
    fn gpt_moe_has_roughly_one_trillion_parameters() {
        let model = ModelConfig::gpt_moe_1t();
        let params = model.total_params();
        assert!(
            params > 0.9e12 && params < 1.4e12,
            "expected ~1.1T parameters, got {params:.3e}"
        );
        assert_eq!(model.moe_layers(), 96);
        assert_eq!(model.dense_layers(), 96);
        // Activated parameters are much smaller than total for top-2 of 8.
        assert!(model.activated_params() < 0.55 * params);
    }

    #[test]
    fn flops_per_iteration_scales_with_tokens() {
        let mut model = ModelConfig::llama31_405b();
        let f1 = model.flops_per_iteration();
        model.global_batch *= 2;
        let f2 = model.flops_per_iteration();
        assert!((f2 / f1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tokens_per_iteration() {
        let model = ModelConfig::gpt_moe_1t();
        assert_eq!(model.tokens_per_iteration(), (1536 * 2048) as f64);
    }

    #[test]
    fn attention_and_ffn_parameter_formulas() {
        let model = ModelConfig::llama31_405b();
        assert_eq!(model.attention_params_per_layer(), 4.0 * 16384.0 * 16384.0);
        assert_eq!(model.ffn_params_per_layer(), 3.0 * 16384.0 * 53248.0);
    }
}
