//! Exhaustive parallelism-strategy search under a TP-size cap.
//!
//! The paper's analysis (§2.3, §6.3) searches `TP ∈ {1, 2, 4, …, 128}`,
//! `PP ∈ {1, 2, 4, 8, 16}`, `DP ∈ {1, 2, 4, …, 1024}` (and `EP ∈ {1, 2, 4, 8}`
//! for MoE models) for the strategy maximising MFU, optionally with the TP size
//! capped at what the HBD can support — TP-8 for a conventional 8-GPU NVLink
//! node, effectively unbounded for InfiniteHBD. Table 2's `MFU_{TP-8}` column
//! and the headline "3.37× higher MFU than DGX" both come from comparing the
//! capped and uncapped optima.

use crate::mfu::{MfuEstimate, TrainingSimulator};
use crate::model::{ModelConfig, ModelKind};
use crate::parallelism::ParallelismStrategy;
use hbd_types::{HbdError, Result};
use serde::{Deserialize, Serialize};

/// The strategy grid to search.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Candidate TP sizes.
    pub tp: Vec<usize>,
    /// Candidate PP depths.
    pub pp: Vec<usize>,
    /// Maximum DP degree.
    pub max_dp: usize,
    /// Candidate EP sizes (only used for MoE models).
    pub ep: Vec<usize>,
    /// Candidate virtual-pipeline factors.
    pub vpp: Vec<usize>,
}

impl SearchSpace {
    /// The grid used by the paper's simulations (footnote 6). Virtual
    /// pipelining defaults to 1; the GPT-MoE runtime configuration of
    /// Appendix B (virtual pipeline = 3) can be expressed by overriding `vpp`.
    pub fn paper_grid() -> Self {
        SearchSpace {
            tp: vec![1, 2, 4, 8, 16, 32, 64, 128],
            pp: vec![1, 2, 4, 8, 16],
            max_dp: 1024,
            ep: vec![1, 2, 4, 8],
            vpp: vec![1],
        }
    }

    /// Restricts the TP candidates to at most `cap` GPUs (e.g. 8 for a DGX
    /// node, 72 for NVL-72).
    pub fn with_tp_cap(mut self, cap: usize) -> Self {
        self.tp.retain(|&tp| tp <= cap);
        self
    }
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self::paper_grid()
    }
}

/// The strategy search driver.
#[derive(Debug, Clone)]
pub struct StrategySearch {
    simulator: TrainingSimulator,
    space: SearchSpace,
}

impl StrategySearch {
    /// Creates a search over the given space.
    pub fn new(simulator: TrainingSimulator, space: SearchSpace) -> Self {
        StrategySearch { simulator, space }
    }

    /// Search with the paper's defaults.
    pub fn paper_defaults() -> Self {
        Self::new(
            TrainingSimulator::paper_defaults(),
            SearchSpace::paper_grid(),
        )
    }

    /// Enumerates every feasible strategy for `model` on `gpus` GPUs, together
    /// with its MFU estimate.
    pub fn enumerate(&self, model: &ModelConfig, gpus: usize) -> Vec<MfuEstimate> {
        let mut results = Vec::new();
        let ep_candidates: &[usize] = if model.kind == ModelKind::MoE {
            &self.space.ep
        } else {
            &[1]
        };
        for &tp in &self.space.tp {
            for &pp in &self.space.pp {
                if tp * pp > gpus || !gpus.is_multiple_of(tp * pp) {
                    continue;
                }
                let dp = gpus / (tp * pp);
                if dp > self.space.max_dp {
                    continue;
                }
                for &ep in ep_candidates {
                    for &vpp in &self.space.vpp {
                        let strategy = ParallelismStrategy::new(tp, pp, dp)
                            .with_ep(ep)
                            .with_vpp(vpp);
                        if strategy
                            .validate(gpus, model.layers, model.experts, model.global_batch)
                            .is_err()
                        {
                            continue;
                        }
                        if let Ok(estimate) = self.simulator.estimate(model, &strategy) {
                            results.push(estimate);
                        }
                    }
                }
            }
        }
        results
    }

    /// Finds the MFU-maximising strategy for `model` on `gpus` GPUs.
    pub fn optimal(&self, model: &ModelConfig, gpus: usize) -> Result<MfuEstimate> {
        self.enumerate(model, gpus)
            .into_iter()
            .max_by(|a, b| a.mfu.partial_cmp(&b.mfu).expect("MFU values are finite"))
            .ok_or_else(|| {
                HbdError::infeasible(format!(
                    "no feasible parallelism strategy for {} on {gpus} GPUs",
                    model.name
                ))
            })
    }

    /// Finds the optimum with TP capped at `cap` (the `MFU_{TP-8}` column of
    /// Table 2 uses `cap = 8`).
    pub fn optimal_with_tp_cap(
        &self,
        model: &ModelConfig,
        gpus: usize,
        cap: usize,
    ) -> Result<MfuEstimate> {
        let constrained = StrategySearch::new(self.simulator, self.space.clone().with_tp_cap(cap));
        constrained.optimal(model, gpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_contains_the_published_strategies() {
        let space = SearchSpace::paper_grid();
        assert!(space.tp.contains(&16) && space.tp.contains(&64));
        assert!(space.pp.contains(&16));
        assert_eq!(space.clone().with_tp_cap(8).tp, vec![1, 2, 4, 8]);
    }

    #[test]
    fn optimal_tp_grows_with_cluster_size() {
        let search = StrategySearch::paper_defaults();
        let model = ModelConfig::llama31_405b();
        let small = search.optimal(&model, 1024).unwrap();
        let large = search.optimal(&model, 32768).unwrap();
        assert!(
            large.strategy.tp >= small.strategy.tp,
            "optimal TP should not shrink as the cluster grows ({} -> {})",
            small.strategy.tp,
            large.strategy.tp
        );
        assert!(large.strategy.tp >= 16);
        // MFU decreases with scale at fixed global batch.
        assert!(large.mfu < small.mfu);
    }

    #[test]
    fn tp8_cap_hurts_more_at_larger_scale() {
        let search = StrategySearch::paper_defaults();
        let model = ModelConfig::llama31_405b();
        let gain_small = {
            let free = search.optimal(&model, 4096).unwrap().mfu;
            let capped = search.optimal_with_tp_cap(&model, 4096, 8).unwrap().mfu;
            free / capped
        };
        let gain_large = {
            let free = search.optimal(&model, 65536).unwrap().mfu;
            let capped = search.optimal_with_tp_cap(&model, 65536, 8).unwrap().mfu;
            free / capped
        };
        assert!(gain_small >= 0.99, "cap should never help: {gain_small}");
        assert!(
            gain_large > gain_small,
            "the TP cap should hurt more at 65k GPUs ({gain_large}) than at 4k ({gain_small})"
        );
        assert!(gain_large > 1.5);
    }

    #[test]
    fn moe_prefers_tp_over_ep_under_imbalance() {
        // Table 5: with the production 20% imbalance the optimal EP is 1.
        let search = StrategySearch::paper_defaults();
        let model = ModelConfig::gpt_moe_1t();
        let best = search.optimal(&model, 4096).unwrap();
        assert_eq!(
            best.strategy.ep, 1,
            "optimal strategy should avoid EP: {}",
            best.strategy
        );
        // The optimum uses a multi-node TP group (the exact size depends on the
        // analytical calibration; the growth-with-scale trend is asserted in
        // `optimal_tp_grows_with_cluster_size`).
        assert!(best.strategy.tp >= 8);
    }

    #[test]
    fn infeasible_cluster_returns_an_error() {
        let search = StrategySearch::paper_defaults();
        // 3 GPUs cannot host any strategy on the power-of-two grid with the
        // 405B model (nothing fits in memory).
        assert!(search.optimal(&ModelConfig::llama31_405b(), 3).is_err());
    }

    #[test]
    fn enumerate_only_returns_strategies_of_the_requested_size() {
        let search = StrategySearch::paper_defaults();
        let model = ModelConfig::llama31_405b();
        for estimate in search.enumerate(&model, 2048) {
            assert_eq!(estimate.strategy.gpus(), 2048);
        }
    }
}
