//! The parallelism-strategy space: (TP, PP, DP, CP, EP, virtual pipeline).

use hbd_types::{HbdError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One point of the parallelism search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelismStrategy {
    /// Tensor-parallel group size (GPUs per TP group).
    pub tp: usize,
    /// Pipeline-parallel stages.
    pub pp: usize,
    /// Data-parallel replicas.
    pub dp: usize,
    /// Context/sequence-parallel group size: ranks that split the sequence
    /// dimension of one replica (Ring-Attention style). `1` = no CP/SP.
    pub cp: usize,
    /// Expert-parallel group size (1 = experts are tensor-sharded instead).
    pub ep: usize,
    /// Virtual pipeline stages per physical stage (interleaved schedule).
    pub vpp: usize,
    /// Micro-batch size in sequences.
    pub micro_batch: usize,
}

impl ParallelismStrategy {
    /// Creates a strategy with virtual pipelining of 1 and micro-batch of 1
    /// (the paper's simulation settings unless stated otherwise).
    pub fn new(tp: usize, pp: usize, dp: usize) -> Self {
        ParallelismStrategy {
            tp,
            pp,
            dp,
            cp: 1,
            ep: 1,
            vpp: 1,
            micro_batch: 1,
        }
    }

    /// Adds an expert-parallel dimension.
    pub fn with_ep(mut self, ep: usize) -> Self {
        self.ep = ep;
        self
    }

    /// Adds a context/sequence-parallel dimension.
    pub fn with_cp(mut self, cp: usize) -> Self {
        self.cp = cp;
        self
    }

    /// Sets the virtual-pipeline factor.
    pub fn with_vpp(mut self, vpp: usize) -> Self {
        self.vpp = vpp;
        self
    }

    /// Total GPUs used by the strategy.
    pub fn gpus(&self) -> usize {
        self.tp * self.pp * self.dp * self.cp
    }

    /// Micro-batches each data-parallel replica pushes through the pipeline per
    /// iteration.
    pub fn microbatches_per_replica(&self, global_batch: usize) -> usize {
        (global_batch / self.dp / self.micro_batch).max(1)
    }

    /// Validates the strategy against a cluster of `gpus` GPUs, a model with
    /// `layers` layers and `experts` experts, and a global batch size.
    pub fn validate(
        &self,
        gpus: usize,
        layers: usize,
        experts: usize,
        global_batch: usize,
    ) -> Result<()> {
        if self.tp == 0
            || self.pp == 0
            || self.dp == 0
            || self.cp == 0
            || self.ep == 0
            || self.vpp == 0
        {
            return Err(HbdError::invalid_config(
                "all parallelism degrees must be positive",
            ));
        }
        if self.micro_batch == 0 {
            return Err(HbdError::invalid_config("micro-batch must be positive"));
        }
        if self.gpus() != gpus {
            return Err(HbdError::invalid_config(format!(
                "tp×pp×dp×cp = {} does not equal the cluster size {gpus}",
                self.gpus()
            )));
        }
        if layers < self.pp * self.vpp {
            return Err(HbdError::invalid_config(format!(
                "{layers} layers cannot fill {} pipeline chunks",
                self.pp * self.vpp
            )));
        }
        if !global_batch.is_multiple_of(self.dp * self.micro_batch) {
            return Err(HbdError::invalid_config(format!(
                "global batch {global_batch} is not divisible by dp×micro_batch = {}",
                self.dp * self.micro_batch
            )));
        }
        if self.ep > 1 {
            if !experts.is_multiple_of(self.ep) {
                return Err(HbdError::invalid_config(format!(
                    "{experts} experts cannot be split over EP = {}",
                    self.ep
                )));
            }
            if !self.dp.is_multiple_of(self.ep) {
                return Err(HbdError::invalid_config(format!(
                    "EP = {} must divide DP = {} (EP groups are carved out of the DP dimension)",
                    self.ep, self.dp
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ParallelismStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TP{} PP{} DP{} EP{}", self.tp, self.pp, self.dp, self.ep)?;
        if self.cp > 1 {
            write!(f, " CP{}", self.cp)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpus_is_the_product_of_the_3d_dimensions() {
        let strategy = ParallelismStrategy::new(16, 4, 16);
        assert_eq!(strategy.gpus(), 1024);
        assert_eq!(strategy.to_string(), "TP16 PP4 DP16 EP1");
    }

    #[test]
    fn microbatch_count_per_replica() {
        let strategy = ParallelismStrategy::new(16, 4, 16);
        assert_eq!(strategy.microbatches_per_replica(2048), 128);
        let strategy = ParallelismStrategy::new(8, 16, 1024);
        assert_eq!(strategy.microbatches_per_replica(2048), 2);
    }

    #[test]
    fn validation_checks_product_and_divisibility() {
        let strategy = ParallelismStrategy::new(16, 4, 16);
        assert!(strategy.validate(1024, 128, 1, 2048).is_ok());
        assert!(strategy.validate(2048, 128, 1, 2048).is_err());
        // Uneven layer counts are allowed (Llama's 126 layers over 4 stages),
        // but the pipeline cannot be deeper than the layer count.
        assert!(strategy.validate(1024, 126, 1, 2048).is_ok());
        assert!(strategy.validate(1024, 3, 1, 2048).is_err());
        // Global batch not divisible by dp.
        assert!(strategy.validate(1024, 128, 1, 100).is_err());
    }

    #[test]
    fn ep_must_divide_experts_and_dp() {
        let strategy = ParallelismStrategy::new(8, 4, 32).with_ep(8);
        assert!(strategy.validate(1024, 128, 8, 2048).is_ok());
        assert!(strategy.validate(1024, 128, 6, 2048).is_err());
        let strategy = ParallelismStrategy::new(8, 4, 32).with_ep(3);
        assert!(strategy.validate(1024, 128, 9, 2048).is_err());
    }

    #[test]
    fn zero_degrees_are_rejected() {
        let mut strategy = ParallelismStrategy::new(0, 1, 1024);
        assert!(strategy.validate(0, 128, 1, 2048).is_err());
        strategy = ParallelismStrategy::new(1, 1, 1024);
        strategy.micro_batch = 0;
        assert!(strategy.validate(1024, 128, 1, 2048).is_err());
    }

    #[test]
    fn builders_compose() {
        let strategy = ParallelismStrategy::new(32, 8, 4).with_ep(4).with_vpp(3);
        assert_eq!(strategy.ep, 4);
        assert_eq!(strategy.vpp, 3);
    }

    #[test]
    fn cp_scales_the_gpu_count_and_shows_in_display() {
        let strategy = ParallelismStrategy::new(16, 4, 8).with_cp(2);
        assert_eq!(strategy.gpus(), 1024);
        assert_eq!(strategy.to_string(), "TP16 PP4 DP8 EP1 CP2");
        assert!(strategy.validate(1024, 128, 1, 2048).is_ok());
        // cp = 0 is rejected like every other zero degree.
        let mut zero = ParallelismStrategy::new(16, 4, 16);
        zero.cp = 0;
        assert!(zero.validate(1024, 128, 1, 2048).is_err());
    }
}
