//! End-to-end iteration-time and MFU estimation.
//!
//! The simulator combines the compute, communication, pipeline and
//! expert-imbalance models into a per-iteration time estimate:
//!
//! ```text
//! t_microbatch = compute + TP comm + EP comm + PP comm      (per stage)
//! iteration    = m · t_microbatch · (1 + bubble) + DP comm
//! MFU          = model FLOPs / (GPUs · peak · iteration)
//! ```
//!
//! which is the structure of every analytical LLM-training model in the
//! literature and reproduces the qualitative behaviour of the paper's in-house
//! simulator (Tables 2, 4 and 5).

use crate::comm::CommModel;
use crate::compute::ComputeModel;
use crate::memory::MemoryModel;
use crate::model::{ModelConfig, ModelKind};
use crate::moe::ExpertImbalance;
use crate::parallelism::ParallelismStrategy;
use crate::pipeline::PipelineModel;
use hbd_types::{GpuSpec, HbdError, Result, Seconds};
use serde::{Deserialize, Serialize};

/// The result of simulating one (model, strategy) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MfuEstimate {
    /// The strategy that was simulated.
    pub strategy: ParallelismStrategy,
    /// Estimated wall-clock time of one training iteration.
    pub iteration_time: Seconds,
    /// Model FLOPs Utilization.
    pub mfu: f64,
    /// Per-micro-batch, per-stage compute time.
    pub compute_time: Seconds,
    /// Per-micro-batch, per-stage non-overlapped TP communication time.
    pub tp_comm_time: Seconds,
    /// Per-micro-batch, per-stage non-overlapped EP communication time.
    pub ep_comm_time: Seconds,
    /// Per-iteration non-overlapped DP communication time.
    pub dp_comm_time: Seconds,
    /// Pipeline bubble ratio (bubble / useful time).
    pub bubble_ratio: f64,
}

/// The analytical training simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingSimulator {
    /// GPU specification.
    pub gpu: GpuSpec,
    /// Compute model.
    pub compute: ComputeModel,
    /// Communication model.
    pub comm: CommModel,
    /// Memory model (used to reject infeasible strategies).
    pub memory: MemoryModel,
    /// Expert-imbalance model (only affects MoE models run with EP > 1).
    pub imbalance: ExpertImbalance,
}

impl TrainingSimulator {
    /// Simulator with the paper's hardware and calibration.
    pub fn paper_defaults() -> Self {
        TrainingSimulator {
            gpu: GpuSpec::h100(),
            compute: ComputeModel::paper_calibrated(),
            comm: CommModel::paper_defaults(),
            memory: MemoryModel::megatron_defaults(),
            imbalance: ExpertImbalance::paper_production(),
        }
    }

    /// Simulates `model` trained with `strategy` on a cluster of exactly
    /// `strategy.gpus()` GPUs. Returns an error when the strategy is invalid or
    /// does not fit in GPU memory.
    pub fn estimate(
        &self,
        model: &ModelConfig,
        strategy: &ParallelismStrategy,
    ) -> Result<MfuEstimate> {
        strategy.validate(
            strategy.gpus(),
            model.layers,
            model.experts,
            model.global_batch,
        )?;
        if strategy.cp > 1 {
            // The compute/comm/memory models below do not split the sequence
            // dimension, so a cp > 1 estimate would be internally
            // inconsistent (halved FLOPs per GPU but full-sequence AllReduce
            // and activation-memory charges). CP plans are supported by the
            // DCN traffic lowering (`CommModel::dcn_pair_volumes`), not the
            // MFU estimator.
            return Err(HbdError::invalid_config(
                "the MFU estimator does not model CP/SP; use cp = 1 here",
            ));
        }
        if !self.memory.fits(model, strategy, &self.gpu) {
            return Err(HbdError::infeasible(format!(
                "{strategy} does not fit in {} of HBM",
                self.gpu.memory
            )));
        }

        let gpus = strategy.gpus() as f64;
        let microbatches = strategy.microbatches_per_replica(model.global_batch);
        let total_flops = model.flops_per_iteration();

        // --- Compute ------------------------------------------------------
        // FLOPs executed by one GPU for one micro-batch of one stage.
        let flops_per_mb_stage_gpu = total_flops / (microbatches as f64 * gpus);
        let mut compute_time =
            self.compute
                .compute_time(flops_per_mb_stage_gpu, &self.gpu, strategy.tp);
        // Expert imbalance stretches the MoE FFN share of the compute when the
        // experts are EP-parallelised.
        if model.kind == ModelKind::MoE && strategy.ep > 1 {
            let moe_ffn_share = (model.moe_layers() as f64
                * model.ffn_params_per_layer()
                * model.top_k.max(1) as f64)
                / model.activated_params();
            let stretch = self.imbalance.compute_stretch(strategy.ep);
            compute_time *= 1.0 + moe_ffn_share * (stretch - 1.0);
        }

        // --- Communication --------------------------------------------------
        let layers_per_stage = model.layers as f64 / strategy.pp as f64;
        let moe_layers_per_stage = model.moe_layers() as f64 / strategy.pp as f64;
        let tp_comm = self.comm.tp_time_per_layer(model, strategy) * layers_per_stage;
        let ep_comm = self.comm.ep_time_per_moe_layer(model, strategy) * moe_layers_per_stage;
        let pp_comm = self.comm.pp_time_per_microbatch(model, strategy);
        let dp_comm = self.comm.dp_time_per_iteration(model, strategy);

        // --- Assembly --------------------------------------------------------
        let t_microbatch = compute_time + tp_comm + ep_comm + pp_comm;
        let bubble_ratio = PipelineModel::bubble_ratio(strategy, microbatches);
        let iteration = microbatches as f64 * t_microbatch * (1.0 + bubble_ratio) + dp_comm;

        let mfu = total_flops / (gpus * self.gpu.peak_tflops * 1e12 * iteration);

        Ok(MfuEstimate {
            strategy: *strategy,
            iteration_time: Seconds(iteration),
            mfu,
            compute_time: Seconds(compute_time),
            tp_comm_time: Seconds(tp_comm),
            ep_comm_time: Seconds(ep_comm),
            dp_comm_time: Seconds(dp_comm),
            bubble_ratio,
        })
    }
}

impl Default for TrainingSimulator {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulator() -> TrainingSimulator {
        TrainingSimulator::paper_defaults()
    }

    #[test]
    fn paper_1024_gpu_point_lands_near_published_mfu() {
        // Table 2, first row: 1,024 GPUs, TP16/PP4/DP16 -> MFU 0.5236.
        let estimate = simulator()
            .estimate(
                &ModelConfig::llama31_405b(),
                &ParallelismStrategy::new(16, 4, 16),
            )
            .unwrap();
        assert!(
            estimate.mfu > 0.40 && estimate.mfu < 0.62,
            "MFU {} should be near the published 0.52",
            estimate.mfu
        );
        assert!(estimate.iteration_time.value() > 0.0);
        assert!(estimate.bubble_ratio < 0.1);
    }

    #[test]
    fn mfu_is_bounded_by_one() {
        let estimate = simulator()
            .estimate(
                &ModelConfig::llama31_405b(),
                &ParallelismStrategy::new(16, 4, 16),
            )
            .unwrap();
        assert!(estimate.mfu > 0.0 && estimate.mfu < 1.0);
    }

    #[test]
    fn infeasible_memory_is_rejected() {
        let result = simulator().estimate(
            &ModelConfig::llama31_405b(),
            &ParallelismStrategy::new(1, 1, 1024),
        );
        assert!(matches!(result, Err(HbdError::Infeasible { .. })));
    }

    #[test]
    fn invalid_strategy_is_rejected() {
        // 126 layers cannot fill 16 x 16 = 256 pipeline chunks.
        let result = simulator().estimate(
            &ModelConfig::llama31_405b(),
            &ParallelismStrategy::new(4, 16, 16).with_vpp(16),
        );
        assert!(result.is_err());
    }

    #[test]
    fn cp_plans_are_rejected_until_the_models_split_the_sequence() {
        // The compute/comm/memory models do not thread CP through, so the
        // estimator refuses rather than returning inconsistent numbers.
        let result = simulator().estimate(
            &ModelConfig::llama31_405b(),
            &ParallelismStrategy::new(16, 4, 8).with_cp(2),
        );
        assert!(matches!(result, Err(HbdError::InvalidConfig { .. })));
    }

    #[test]
    fn small_tp_collapses_at_large_scale() {
        // 131,072 GPUs: the TP-8 strategy is crushed by the pipeline bubble
        // (only 2 micro-batches per replica), while TP-64 stays usable - the
        // core claim of Table 2 (3.37x).
        let sim = simulator();
        let model = ModelConfig::llama31_405b();
        let tp8 = sim
            .estimate(&model, &ParallelismStrategy::new(8, 16, 1024))
            .unwrap();
        let tp64 = sim
            .estimate(&model, &ParallelismStrategy::new(64, 16, 128))
            .unwrap();
        assert!(
            tp64.mfu > 2.0 * tp8.mfu,
            "TP-64 ({}) should be at least 2x TP-8 ({}) at 131k GPUs",
            tp64.mfu,
            tp8.mfu
        );
        assert!(tp8.bubble_ratio > 5.0);
    }

    #[test]
    fn moe_with_ep_suffers_from_imbalance() {
        let mut sim = simulator();
        let model = ModelConfig::gpt_moe_1t();
        let ep_strategy = ParallelismStrategy::new(8, 8, 16).with_ep(8);
        sim.imbalance = ExpertImbalance::balanced();
        let balanced = sim.estimate(&model, &ep_strategy).unwrap();
        sim.imbalance = ExpertImbalance::new(0.3);
        let skewed = sim.estimate(&model, &ep_strategy).unwrap();
        assert!(skewed.mfu < balanced.mfu);
        // TP sharding is immune to the imbalance.
        let tp_strategy = ParallelismStrategy::new(16, 8, 8);
        sim.imbalance = ExpertImbalance::balanced();
        let tp_balanced = sim.estimate(&model, &tp_strategy).unwrap();
        sim.imbalance = ExpertImbalance::new(0.3);
        let tp_skewed = sim.estimate(&model, &tp_strategy).unwrap();
        assert!((tp_balanced.mfu - tp_skewed.mfu).abs() < 1e-12);
    }

    #[test]
    fn estimate_breakdown_components_are_consistent() {
        let estimate = simulator()
            .estimate(
                &ModelConfig::llama31_405b(),
                &ParallelismStrategy::new(16, 4, 16),
            )
            .unwrap();
        assert!(estimate.compute_time.value() > 0.0);
        assert!(estimate.tp_comm_time.value() > 0.0);
        assert_eq!(estimate.ep_comm_time.value(), 0.0);
        assert!(estimate.dp_comm_time.value() >= 0.0);
    }
}
