//! Analytical LLM training simulator.
//!
//! The paper's §2.3 and §6.3 use an in-house simulator to ask: *given a model,
//! a cluster size and an HBD that supports a given maximum TP size, which
//! parallelism strategy maximises Model FLOPs Utilization (MFU)?* The answers
//! (Tables 2, 4 and 5) drive the whole design: optimal TP grows with cluster
//! size, so the HBD must support large and adaptable TP groups.
//!
//! This crate reproduces that simulator analytically:
//!
//! * [`model`] — transformer / MoE model descriptions with the paper's two
//!   presets (Llama 3.1-405B simplified to MHA, and the 1.1T GPT-MoE of
//!   Appendix B),
//! * [`parallelism`] — the (TP, PP, DP, EP, virtual-PP) strategy space,
//! * [`memory`] — a per-GPU memory estimate used to reject infeasible
//!   strategies,
//! * [`compute`] — FLOPs accounting and the GEMM-efficiency degradation that
//!   penalises very large TP (§6.3: "increasing parallelism splits GEMMs into
//!   smaller, less efficient tasks"),
//! * [`comm`] — TP/EP/DP/PP/CP communication volumes (Table 3) and their timing
//!   on the HBD / DCN links, plus the per-pair DCN volumes
//!   ([`comm::DcnPairVolumes`]) the `dcn` crate lowers into flow sets,
//! * [`pipeline`] — the pipeline-bubble model (with virtual pipeline stages),
//! * [`moe`] — the expert-imbalance straggler model (§2.3, Table 4),
//! * [`mfu`] — the end-to-end iteration-time and MFU estimate,
//! * [`search`] — exhaustive strategy search under a TP-size cap (the cap is
//!   what an HBD architecture does or does not provide).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod compute;
pub mod memory;
pub mod mfu;
pub mod model;
pub mod moe;
pub mod parallelism;
pub mod pipeline;
pub mod search;

pub use comm::{CommModel, DcnPairVolumes};
pub use compute::ComputeModel;
pub use memory::MemoryModel;
pub use mfu::{MfuEstimate, TrainingSimulator};
pub use model::{ModelConfig, ModelKind};
pub use moe::ExpertImbalance;
pub use parallelism::ParallelismStrategy;
pub use pipeline::PipelineModel;
pub use search::{SearchSpace, StrategySearch};
