//! The pipeline-bubble model.
//!
//! With the 1F1B schedule and `v` virtual pipeline stages per physical stage,
//! the classic bubble fraction is
//!
//! ```text
//! bubble / useful = (p − 1) / (v · m)
//! ```
//!
//! where `p` is the pipeline depth and `m` the number of micro-batches each
//! data-parallel replica pushes per iteration. This term is what eventually
//! punishes small-TP strategies at very large cluster sizes: with the global
//! batch fixed, growing DP shrinks `m`, and the only way to keep the bubble in
//! check is to grow TP instead of DP — the core argument of §2.3.

use crate::parallelism::ParallelismStrategy;
use serde::{Deserialize, Serialize};

/// Pipeline-schedule model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineModel;

impl PipelineModel {
    /// Ratio of bubble time to useful time for the strategy, given the number
    /// of micro-batches per replica.
    pub fn bubble_ratio(strategy: &ParallelismStrategy, microbatches: usize) -> f64 {
        if strategy.pp <= 1 {
            return 0.0;
        }
        let m = microbatches.max(1) as f64;
        (strategy.pp as f64 - 1.0) / (strategy.vpp as f64 * m)
    }

    /// Multiplier applied to the steady-state iteration time to account for the
    /// pipeline fill/drain bubble: `1 + bubble_ratio`.
    pub fn bubble_multiplier(strategy: &ParallelismStrategy, microbatches: usize) -> f64 {
        1.0 + Self::bubble_ratio(strategy, microbatches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_pipeline_means_no_bubble() {
        let strategy = ParallelismStrategy::new(16, 1, 64);
        assert_eq!(PipelineModel::bubble_ratio(&strategy, 32), 0.0);
        assert_eq!(PipelineModel::bubble_multiplier(&strategy, 32), 1.0);
    }

    #[test]
    fn bubble_grows_with_depth_and_shrinks_with_microbatches() {
        let deep = ParallelismStrategy::new(8, 16, 16);
        let shallow = ParallelismStrategy::new(8, 4, 64);
        assert!(PipelineModel::bubble_ratio(&deep, 16) > PipelineModel::bubble_ratio(&shallow, 16));
        assert!(PipelineModel::bubble_ratio(&deep, 128) < PipelineModel::bubble_ratio(&deep, 16));
    }

    #[test]
    fn virtual_pipeline_divides_the_bubble() {
        let plain = ParallelismStrategy::new(8, 16, 16);
        let interleaved = ParallelismStrategy::new(8, 16, 16).with_vpp(4);
        let m = 32;
        assert!(
            (PipelineModel::bubble_ratio(&plain, m)
                - 4.0 * PipelineModel::bubble_ratio(&interleaved, m))
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn classic_formula_values() {
        // p = 16, m = 2: bubble = 15/2 = 7.5 -> the catastrophic case that
        // makes TP-8 strategies collapse at 131k GPUs.
        let strategy = ParallelismStrategy::new(8, 16, 1024);
        assert!((PipelineModel::bubble_ratio(&strategy, 2) - 7.5).abs() < 1e-12);
        // p = 16, m = 16: bubble = 15/16.
        assert!((PipelineModel::bubble_ratio(&strategy, 16) - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn zero_microbatches_are_clamped() {
        let strategy = ParallelismStrategy::new(8, 4, 16);
        assert!(PipelineModel::bubble_ratio(&strategy, 0).is_finite());
    }
}
