//! Per-GPU memory estimate used to reject infeasible parallelism strategies.
//!
//! The estimate follows the standard Megatron-style accounting with
//! distributed-optimizer (ZeRO-1) sharding of the optimizer states over the DP
//! dimension:
//!
//! * weights + gradients in BF16: `4 bytes / parameter` on the TP×PP shard,
//! * optimizer states (FP32 master weights + two Adam moments):
//!   `12 bytes / parameter` sharded over DP as well,
//! * activations per micro-batch per layer: `~34 · s · b · h` bytes with
//!   selective recomputation, of which `1/tp` lives on each TP rank.

use crate::model::ModelConfig;
use crate::parallelism::ParallelismStrategy;
use hbd_types::{Bytes, GpuSpec};
use serde::{Deserialize, Serialize};

/// Memory model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Bytes per parameter held resident in BF16 (weights + gradients).
    pub bytes_per_param_resident: f64,
    /// Bytes per parameter of optimizer state, sharded over DP.
    pub bytes_per_param_optimizer: f64,
    /// Activation bytes per token per layer per hidden unit (the "34·s·b·h"
    /// coefficient with selective recomputation).
    pub activation_coefficient: f64,
    /// Fraction of HBM that must stay free for workspace / fragmentation.
    pub headroom: f64,
}

impl MemoryModel {
    /// Defaults matching Megatron-LM-style training with sequence parallelism,
    /// aggressive selective activation recomputation and a distributed
    /// optimizer. (The activation coefficient of 10 bytes per token per hidden
    /// unit sits between the selective-recompute value of ~34 and the
    /// full-recompute value of ~2 — the mix production 405B runs use.)
    pub fn megatron_defaults() -> Self {
        MemoryModel {
            bytes_per_param_resident: 4.0,
            bytes_per_param_optimizer: 12.0,
            activation_coefficient: 10.0,
            headroom: 0.10,
        }
    }

    /// Estimated per-GPU memory footprint of running `model` with `strategy`.
    ///
    /// MoE expert weights are additionally sharded over the EP dimension (each
    /// EP rank holds `experts / ep` experts).
    pub fn per_gpu_bytes(&self, model: &ModelConfig, strategy: &ParallelismStrategy) -> Bytes {
        let shard = strategy.tp as f64 * strategy.pp as f64;
        let expert_params =
            model.moe_layers() as f64 * model.ffn_params_per_layer() * model.experts as f64;
        let non_expert_params = model.total_params() - expert_params;
        let params_per_gpu = (non_expert_params + expert_params / strategy.ep as f64) / shard;
        let resident = params_per_gpu * self.bytes_per_param_resident;
        let optimizer = params_per_gpu * self.bytes_per_param_optimizer / strategy.dp as f64;

        // Activations: each pipeline stage holds up to `pp` in-flight
        // micro-batches worth of activations for its layers (1F1B schedule).
        let layers_per_stage = model.layers as f64 / strategy.pp as f64;
        let tokens_per_microbatch = (strategy.micro_batch * model.seq_len) as f64;
        let activation_per_layer =
            self.activation_coefficient * tokens_per_microbatch * model.hidden as f64
                / strategy.tp as f64;
        let in_flight = strategy
            .pp
            .min(strategy.microbatches_per_replica(model.global_batch));
        let activations = activation_per_layer * layers_per_stage * in_flight as f64;

        Bytes(resident + optimizer + activations)
    }

    /// Whether the strategy fits in the GPU's HBM with the configured headroom.
    pub fn fits(&self, model: &ModelConfig, strategy: &ParallelismStrategy, gpu: &GpuSpec) -> bool {
        let budget = gpu.memory.value() * (1.0 - self.headroom);
        self.per_gpu_bytes(model, strategy).value() <= budget
    }
}

impl Default for MemoryModel {
    fn default() -> Self {
        Self::megatron_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama_405b_does_not_fit_without_model_parallelism() {
        let memory = MemoryModel::megatron_defaults();
        let model = ModelConfig::llama31_405b();
        let gpu = GpuSpec::h100();
        // TP1 x PP1 would need >1.6 TB per GPU.
        let naive = ParallelismStrategy::new(1, 1, 1024);
        assert!(!memory.fits(&model, &naive, &gpu));
        // The paper's TP16 x PP8 point fits comfortably.
        let good = ParallelismStrategy::new(16, 8, 32);
        assert!(memory.fits(&model, &good, &gpu));
    }

    #[test]
    fn memory_decreases_with_model_parallelism() {
        let memory = MemoryModel::megatron_defaults();
        let model = ModelConfig::llama31_405b();
        let small = memory.per_gpu_bytes(&model, &ParallelismStrategy::new(8, 8, 16));
        let large = memory.per_gpu_bytes(&model, &ParallelismStrategy::new(32, 8, 4));
        assert!(large.value() < small.value());
    }

    #[test]
    fn optimizer_state_shrinks_with_dp() {
        let memory = MemoryModel::megatron_defaults();
        let model = ModelConfig::llama31_405b();
        let dp_small = memory.per_gpu_bytes(&model, &ParallelismStrategy::new(16, 8, 2));
        let dp_large = memory.per_gpu_bytes(&model, &ParallelismStrategy::new(16, 8, 64));
        assert!(dp_large.value() < dp_small.value());
    }

    #[test]
    fn moe_model_needs_more_model_parallelism_than_dense() {
        let memory = MemoryModel::megatron_defaults();
        let dense = ModelConfig::llama31_405b();
        let moe = ModelConfig::gpt_moe_1t();
        let strategy = ParallelismStrategy::new(16, 8, 8);
        assert!(
            memory.per_gpu_bytes(&moe, &strategy).value()
                > memory.per_gpu_bytes(&dense, &strategy).value()
        );
    }
}
