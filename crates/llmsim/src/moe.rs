//! The expert-imbalance straggler model (§2.3, Table 4).
//!
//! With expert parallelism and a no-token-left-behind router, experts receive
//! unequal token counts. The paper quantifies the skew with the *imbalance
//! coefficient* `c = (max − min) / max` over the per-expert token counts; the
//! EP group is only as fast as its most loaded member, so the MoE FFN compute
//! of every EP rank is stretched by `max / mean`.
//!
//! Assuming the per-expert load is spread symmetrically between `min` and
//! `max`, `mean = (max + min) / 2 = max · (1 − c/2)`, so the straggler
//! stretch is `1 / (1 − c/2)`. Tensor-sharding the experts (TP) instead of
//! EP sidesteps the problem entirely because every GPU holds an equal slice of
//! every expert — the key insight behind the paper's "TP is preferable for MoE"
//! finding.

use serde::{Deserialize, Serialize};

/// Expert-imbalance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpertImbalance {
    /// The imbalance coefficient `(max − min) / max`, in `[0, 1)`.
    pub coefficient: f64,
}

impl ExpertImbalance {
    /// Creates a model with the given coefficient.
    pub fn new(coefficient: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&coefficient),
            "imbalance coefficient must lie in [0, 1), got {coefficient}"
        );
        ExpertImbalance { coefficient }
    }

    /// Perfectly balanced experts.
    pub fn balanced() -> Self {
        Self::new(0.0)
    }

    /// The 20 % production setting used by the §6.3 simulations.
    pub fn paper_production() -> Self {
        Self::new(0.20)
    }

    /// Straggler stretch applied to MoE FFN compute when the experts are
    /// parallelised with EP (`ep > 1`). TP sharding (`ep == 1`) is immune.
    pub fn compute_stretch(&self, ep: usize) -> f64 {
        if ep <= 1 {
            1.0
        } else {
            1.0 / (1.0 - self.coefficient / 2.0)
        }
    }
}

impl Default for ExpertImbalance {
    fn default() -> Self {
        Self::balanced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_experts_have_no_stretch() {
        let imbalance = ExpertImbalance::balanced();
        assert_eq!(imbalance.compute_stretch(8), 1.0);
    }

    #[test]
    fn tp_sharding_is_immune_to_imbalance() {
        let imbalance = ExpertImbalance::new(0.3);
        assert_eq!(imbalance.compute_stretch(1), 1.0);
        assert!(imbalance.compute_stretch(8) > 1.0);
    }

    #[test]
    fn stretch_grows_with_the_coefficient() {
        let c10 = ExpertImbalance::new(0.1).compute_stretch(4);
        let c20 = ExpertImbalance::new(0.2).compute_stretch(4);
        let c30 = ExpertImbalance::new(0.3).compute_stretch(4);
        assert!(c10 < c20 && c20 < c30);
        // 1 / (1 - 0.15) ~ 1.176 for c = 0.3.
        assert!((c30 - 1.0 / 0.85).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "imbalance coefficient")]
    fn out_of_range_coefficient_is_rejected() {
        let _ = ExpertImbalance::new(1.0);
    }

    #[test]
    fn paper_production_setting_is_twenty_percent() {
        assert_eq!(ExpertImbalance::paper_production().coefficient, 0.20);
    }
}
