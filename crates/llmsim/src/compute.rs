//! Compute-time model: FLOPs accounting and GEMM-efficiency degradation.
//!
//! §6.3: "For TP, increasing parallelism splits GEMMs into smaller, less
//! efficient tasks, reducing hardware efficiency". We model the achievable
//! fraction of peak FLOPS as a base kernel efficiency multiplied by a penalty
//! that grows with the TP degree (each doubling of TP halves the GEMM `N`
//! dimension, pushing the kernels further from their roofline) and with very
//! small per-GPU workloads.

use hbd_types::GpuSpec;
use serde::{Deserialize, Serialize};

/// Compute-time model for one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Peak throughput actually reachable by dense transformer kernels on a
    /// healthy workload, as a fraction of the datasheet peak (flash-attention
    /// era kernels reach roughly 60 % end to end).
    pub base_efficiency: f64,
    /// Relative efficiency lost per doubling of the TP degree.
    pub tp_doubling_penalty: f64,
}

impl ComputeModel {
    /// Model calibrated so the Table-2 MFU values land in the published range
    /// (0.52 at 1k GPUs with TP-16 down to ~0.19 at 131k GPUs with TP-64).
    pub fn paper_calibrated() -> Self {
        ComputeModel {
            base_efficiency: 0.60,
            tp_doubling_penalty: 0.025,
        }
    }

    /// Fraction of peak FLOPS achieved by GEMMs sharded over a TP group of
    /// `tp` GPUs.
    pub fn gemm_efficiency(&self, tp: usize) -> f64 {
        assert!(tp >= 1, "TP degree must be at least 1");
        let doublings = (tp as f64).log2();
        (self.base_efficiency * (1.0 - self.tp_doubling_penalty * doublings)).max(0.05)
    }

    /// Time in seconds to execute `flops` floating-point operations on one GPU
    /// with the given TP degree.
    pub fn compute_time(&self, flops: f64, gpu: &GpuSpec, tp: usize) -> f64 {
        assert!(flops >= 0.0, "FLOPs cannot be negative");
        let effective = gpu.peak_tflops * 1e12 * self.gemm_efficiency(tp);
        flops / effective
    }
}

impl Default for ComputeModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_decreases_with_tp() {
        let model = ComputeModel::paper_calibrated();
        let e1 = model.gemm_efficiency(1);
        let e8 = model.gemm_efficiency(8);
        let e64 = model.gemm_efficiency(64);
        assert!(e1 > e8 && e8 > e64);
        assert!((e1 - 0.60).abs() < 1e-9);
        assert!(e64 > 0.4, "TP-64 should still be usable: {e64}");
    }

    #[test]
    fn efficiency_never_collapses_to_zero() {
        let model = ComputeModel {
            base_efficiency: 0.6,
            tp_doubling_penalty: 0.2,
        };
        assert!(model.gemm_efficiency(1 << 20) >= 0.05);
    }

    #[test]
    fn compute_time_is_flops_over_effective_rate() {
        let model = ComputeModel::paper_calibrated();
        let gpu = GpuSpec::h100();
        let t = model.compute_time(989.0e12, &gpu, 1);
        // At 60% efficiency, 989 TFLOP of work takes 1/0.6 seconds.
        assert!((t - 1.0 / 0.6).abs() < 1e-9);
        // Larger TP -> slower per-FLOP execution.
        assert!(model.compute_time(1e15, &gpu, 64) > model.compute_time(1e15, &gpu, 8));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_tp_is_rejected() {
        let _ = ComputeModel::paper_calibrated().gemm_efficiency(0);
    }
}
