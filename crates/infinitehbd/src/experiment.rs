//! High-level experiment facade: one entry point that wires a cluster, a fault
//! source and the comparison architectures together, for users who want the
//! paper's headline numbers without assembling the crates by hand.

use cluster::{fault_waiting_rate_par, max_job_over_trace_par, waste_over_trace_par};
use control::{ClusterManager, ControlLatencies};
use fault::{FaultTrace, GeneratorConfig, TraceGenerator};
use hbd_types::par::par_map;
use hbd_types::{ClusterConfig, HbdError, Microseconds, Result, Seconds};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use topology::{paper_architectures, HbdArchitecture, KHopRing};

/// A cluster-level fault-resilience study comparing every architecture the
/// paper evaluates on the same synthetic fault trace.
#[derive(Debug, Clone)]
pub struct ClusterStudy {
    config: ClusterConfig,
    tp_size: usize,
    trace: FaultTrace,
}

/// Per-architecture results of a [`ClusterStudy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyReport {
    /// Architecture name (figure legend string).
    pub architecture: String,
    /// Mean GPU waste ratio over the trace.
    pub mean_waste_ratio: f64,
    /// Maximum GPU waste ratio over the trace.
    pub max_waste_ratio: f64,
    /// Worst-case supported job scale (GPUs) over the trace.
    pub min_supported_job: usize,
    /// Fraction of the trace during which a 90%-of-cluster job must wait.
    pub fault_waiting_rate_90pct: f64,
}

impl ClusterStudy {
    /// Creates a study on the paper's 2,880-GPU cluster with a synthetic trace
    /// calibrated to the production statistics, for the given TP size.
    pub fn paper_cluster(tp_size: usize, seed: u64) -> Result<Self> {
        Self::new(
            ClusterConfig::paper_2880_gpu(),
            tp_size,
            Seconds::from_days(348.0),
            seed,
        )
    }

    /// Creates a study on an arbitrary cluster.
    pub fn new(
        config: ClusterConfig,
        tp_size: usize,
        duration: Seconds,
        seed: u64,
    ) -> Result<Self> {
        config.validate()?;
        if tp_size == 0 || !tp_size.is_multiple_of(config.node_size.gpus()) {
            return Err(HbdError::invalid_config(format!(
                "TP size {tp_size} must be a positive multiple of the node size {}",
                config.node_size.gpus()
            )));
        }
        // Generate a node-level trace calibrated to the production statistics,
        // converted to this cluster's node size via the Appendix-A derivation.
        let fault_ratio = match config.node_size.gpus() {
            8 => 0.0233,
            _ => 0.0117,
        };
        let generator = TraceGenerator::new(GeneratorConfig {
            nodes: config.nodes,
            duration,
            steady_state_fault_ratio: fault_ratio,
            mean_time_to_repair: Seconds::from_hours(12.0),
        })?;
        let trace = generator.generate(&mut StdRng::seed_from_u64(seed));
        Ok(ClusterStudy {
            config,
            tp_size,
            trace,
        })
    }

    /// The underlying fault trace.
    pub fn trace(&self) -> &FaultTrace {
        &self.trace
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Runs the study over every architecture of the paper's comparison, using
    /// `samples` evenly spaced instants of the trace.
    pub fn run(&self, samples: usize) -> Vec<StudyReport> {
        self.run_par(samples, 1)
    }

    /// [`run`](Self::run) with the per-architecture trace replays fanned out
    /// over up to `threads` scoped threads. The replay is deterministic (no
    /// RNG), so the reports are identical for every thread count.
    pub fn run_par(&self, samples: usize, threads: usize) -> Vec<StudyReport> {
        let archs = paper_architectures(
            self.config.nodes,
            self.config.node_size.gpus(),
            self.tp_size,
        );
        par_map(threads, &archs, |_, arch| {
            self.run_one(arch.as_ref(), samples)
        })
    }

    fn run_one(&self, arch: &dyn HbdArchitecture, samples: usize) -> StudyReport {
        let points = waste_over_trace_par(arch, &self.trace, self.tp_size, samples, 1);
        let mean = points.iter().map(|p| p.waste_ratio).sum::<f64>() / points.len() as f64;
        let max = points.iter().map(|p| p.waste_ratio).fold(0.0, f64::max);
        let min_job = max_job_over_trace_par(arch, &self.trace, self.tp_size, samples, 1);
        let job_90 = (self.config.total_gpus() * 9 / 10 / self.tp_size) * self.tp_size;
        StudyReport {
            architecture: arch.name().to_string(),
            mean_waste_ratio: mean,
            max_waste_ratio: max,
            min_supported_job: min_job,
            fault_waiting_rate_90pct: fault_waiting_rate_par(
                arch,
                &self.trace,
                self.tp_size,
                job_90,
                samples,
                1,
            ),
        }
    }
}

/// A control-plane study: replay a fault trace through the §5.2 cluster
/// manager and summarise what the control plane had to do.
///
/// Where [`ClusterStudy`] asks "how many GPUs stay usable", this asks "what
/// does keeping them usable cost the control plane": reconfiguration commands,
/// OCSTrx switching time, end-to-end recovery latency, and how often the ring
/// actually partitions.
#[derive(Debug, Clone)]
pub struct FailoverStudy {
    ring: KHopRing,
    latencies: ControlLatencies,
    trace: FaultTrace,
    tp_size: usize,
}

/// Aggregate control-plane cost of replaying one fault trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailoverSummary {
    /// Fault events replayed.
    pub faults_handled: usize,
    /// Repair events replayed.
    pub repairs_handled: usize,
    /// Total reconfiguration commands issued over the whole trace.
    pub total_commands: usize,
    /// Mean commands per fault/repair event.
    pub mean_commands_per_event: f64,
    /// Largest number of nodes reconfigured by a single event.
    pub max_nodes_reconfigured: usize,
    /// Cumulative OCSTrx switching time over the whole trace.
    pub total_switching_time: Microseconds,
    /// Mean end-to-end recovery time per event.
    pub mean_recovery: Seconds,
    /// Worst-case end-to-end recovery time.
    pub max_recovery: Seconds,
    /// Events after which the ring was left partitioned (more than one healthy
    /// segment).
    pub partition_events: usize,
    /// Smallest usable-GPU count observed right after any event, for the
    /// study's TP size.
    pub min_usable_gpus: usize,
}

impl FailoverStudy {
    /// Creates a study on the paper's 2,880-GPU cluster (720 × 4-GPU nodes)
    /// wired with the given `k`, replaying a synthetic production-calibrated
    /// trace of `days` days.
    pub fn paper_cluster(k: usize, tp_size: usize, days: f64, seed: u64) -> Result<Self> {
        let config = ClusterConfig::paper_2880_gpu();
        let ring = KHopRing::new(config.nodes, config.node_size.gpus(), k)?;
        let generator = TraceGenerator::new(GeneratorConfig {
            nodes: config.nodes,
            duration: Seconds::from_days(days),
            steady_state_fault_ratio: 0.0117,
            mean_time_to_repair: Seconds::from_hours(12.0),
        })?;
        let trace = generator.generate(&mut StdRng::seed_from_u64(seed));
        Self::new(
            ring,
            ControlLatencies::production_defaults(),
            trace,
            tp_size,
        )
    }

    /// Creates a study from explicit parts.
    pub fn new(
        ring: KHopRing,
        latencies: ControlLatencies,
        trace: FaultTrace,
        tp_size: usize,
    ) -> Result<Self> {
        if tp_size == 0 || !tp_size.is_multiple_of(ring.gpus_per_node()) {
            return Err(HbdError::invalid_config(format!(
                "TP size {tp_size} must be a positive multiple of the node size {}",
                ring.gpus_per_node()
            )));
        }
        Ok(FailoverStudy {
            ring,
            latencies,
            trace,
            tp_size,
        })
    }

    /// The fault trace being replayed.
    pub fn trace(&self) -> &FaultTrace {
        &self.trace
    }

    /// Replays the whole trace in event order and summarises the control-plane
    /// cost.
    pub fn run(&self) -> Result<FailoverSummary> {
        let mut manager = ClusterManager::new(self.ring.clone(), self.latencies)?;
        // Expand the trace into time-ordered fault/repair edges.
        let mut edges: Vec<(Seconds, usize, bool)> = Vec::new();
        for event in self.trace.events() {
            if event.node.index() >= self.ring.nodes() {
                continue;
            }
            edges.push((event.start, event.node.index(), true));
            edges.push((event.end, event.node.index(), false));
        }
        edges.sort_by(|a, b| a.0.value().total_cmp(&b.0.value()));

        let mut summary = FailoverSummary {
            faults_handled: 0,
            repairs_handled: 0,
            total_commands: 0,
            mean_commands_per_event: 0.0,
            max_nodes_reconfigured: 0,
            total_switching_time: Microseconds::ZERO,
            mean_recovery: Seconds::ZERO,
            max_recovery: Seconds::ZERO,
            partition_events: 0,
            min_usable_gpus: self.ring.total_gpus(),
        };
        let mut recovery_sum = Seconds::ZERO;
        let mut events = 0usize;
        for (at, node, is_fault) in edges {
            let node = hbd_types::NodeId(node);
            // Skip edges that would be redundant (overlapping events on the
            // same node in the generated trace).
            let already_faulty = manager.faults().is_faulty(node);
            if is_fault == already_faulty {
                continue;
            }
            let report = if is_fault {
                summary.faults_handled += 1;
                manager.inject_fault(node, at)?
            } else {
                summary.repairs_handled += 1;
                manager.repair_node(node, at)?
            };
            events += 1;
            summary.total_commands += report.commands;
            summary.max_nodes_reconfigured = summary
                .max_nodes_reconfigured
                .max(report.nodes_reconfigured);
            recovery_sum += report.total_recovery;
            summary.max_recovery = summary.max_recovery.max(report.total_recovery);
            if report.segments > 1 {
                summary.partition_events += 1;
            }
            summary.min_usable_gpus = summary
                .min_usable_gpus
                .min(manager.usable_gpus(self.tp_size));
        }
        summary.total_switching_time = manager.timeline().total_switching_time();
        if events > 0 {
            summary.mean_commands_per_event = summary.total_commands as f64 / events as f64;
            summary.mean_recovery = Seconds(recovery_sum.value() / events as f64);
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbd_types::NodeSize;

    #[test]
    fn study_rejects_mismatched_tp_sizes() {
        assert!(ClusterStudy::paper_cluster(0, 1).is_err());
        assert!(ClusterStudy::paper_cluster(30, 1).is_err());
        assert!(ClusterStudy::paper_cluster(32, 1).is_ok());
    }

    #[test]
    fn study_reports_every_architecture_once() {
        let study = ClusterStudy::new(
            ClusterConfig::new(180, NodeSize::Four, 16, 4).unwrap(),
            32,
            Seconds::from_days(20.0),
            7,
        )
        .unwrap();
        let reports = study.run(30);
        assert_eq!(reports.len(), 8);
        let infinite = reports
            .iter()
            .find(|r| r.architecture == "InfiniteHBD(K=3)")
            .unwrap();
        let sip = reports
            .iter()
            .find(|r| r.architecture == "SiP-Ring")
            .unwrap();
        assert!(infinite.mean_waste_ratio <= sip.mean_waste_ratio);
        assert!(infinite.min_supported_job >= sip.min_supported_job);
        for report in &reports {
            assert!(report.mean_waste_ratio >= 0.0 && report.mean_waste_ratio <= 1.0);
            assert!(
                report.fault_waiting_rate_90pct >= 0.0 && report.fault_waiting_rate_90pct <= 1.0
            );
        }
    }

    #[test]
    fn failover_study_replays_a_trace_and_stays_consistent() {
        let study = FailoverStudy::paper_cluster(3, 32, 30.0, 5).expect("valid study");
        let summary = study.run().expect("replay succeeds");
        // A 30-day window on a 720-node cluster sees plenty of events.
        assert!(summary.faults_handled > 10, "{summary:?}");
        // Every repair corresponds to an earlier fault (some faults may still
        // be open at the end of the window).
        assert!(summary.repairs_handled <= summary.faults_handled);
        // Node-level explosion radius: a single event never reconfigures more
        // than the fault's K-hop neighbourhood (2K neighbours plus the node
        // itself on a repair).
        assert!(summary.max_nodes_reconfigured <= 2 * 3 + 2, "{summary:?}");
        assert!(summary.mean_commands_per_event > 0.0);
        // K = 3 bypasses the ~1.17% steady-state fault ratio essentially
        // always, so the usable capacity never collapses.
        assert!(summary.min_usable_gpus > 2880 * 9 / 10, "{summary:?}");
        assert!(summary.total_switching_time > Microseconds::ZERO);
        assert!(summary.max_recovery >= summary.mean_recovery);
    }

    #[test]
    fn failover_study_is_deterministic_and_validates_tp() {
        assert!(FailoverStudy::paper_cluster(2, 30, 10.0, 1).is_err());
        let a = FailoverStudy::paper_cluster(2, 32, 10.0, 9)
            .unwrap()
            .run()
            .unwrap();
        let b = FailoverStudy::paper_cluster(2, 32, 10.0, 9)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hardware_only_latencies_bound_recovery_by_the_switch_window() {
        let ring = KHopRing::new(64, 4, 2).unwrap();
        let generator = TraceGenerator::new(GeneratorConfig {
            nodes: 64,
            duration: Seconds::from_days(5.0),
            steady_state_fault_ratio: 0.02,
            mean_time_to_repair: Seconds::from_hours(6.0),
        })
        .unwrap();
        let trace = generator.generate(&mut StdRng::seed_from_u64(2));
        let study = FailoverStudy::new(ring, ControlLatencies::hardware_only(), trace, 16).unwrap();
        let summary = study.run().unwrap();
        // With zero software latency every recovery is a single parallel OCSTrx
        // switch: at most 80 us.
        assert!(summary.max_recovery <= Seconds(80e-6), "{summary:?}");
    }

    #[test]
    fn parallel_study_matches_sequential() {
        let study = ClusterStudy::new(
            ClusterConfig::new(90, NodeSize::Four, 16, 4).unwrap(),
            16,
            Seconds::from_days(10.0),
            3,
        )
        .unwrap();
        assert_eq!(study.run(10), study.run_par(10, 4));
    }

    #[test]
    fn study_is_deterministic_for_a_seed() {
        let a = ClusterStudy::new(
            ClusterConfig::new(90, NodeSize::Four, 16, 4).unwrap(),
            16,
            Seconds::from_days(10.0),
            3,
        )
        .unwrap()
        .run(10);
        let b = ClusterStudy::new(
            ClusterConfig::new(90, NodeSize::Four, 16, 4).unwrap(),
            16,
            Seconds::from_days(10.0),
            3,
        )
        .unwrap()
        .run(10);
        assert_eq!(a, b);
    }
}
