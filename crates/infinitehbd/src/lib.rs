//! # InfiniteHBD
//!
//! A datacenter-scale High-Bandwidth Domain (HBD) built from optical
//! circuit-switching transceivers — a full simulation-based reproduction of
//! *"InfiniteHBD: Building Datacenter-Scale High-Bandwidth Domain for LLM with
//! Optical Circuit Switching Transceivers"* (SIGCOMM 2025).
//!
//! The workspace models every layer of the system:
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | Device | [`ocstrx`] | The SiPh OCS transceiver: MZI switch matrix, path state machine, 60–80 µs fast switch, insertion-loss / BER / power models |
//! | Topology | [`topology`] | The reconfigurable K-Hop Ring plus every baseline HBD (Big-Switch, NVL-36/72/576, TPUv4, SiP-Ring) and the Fat-Tree DCN |
//! | Faults | [`fault`] | Production-calibrated fault-trace generation, the 8→4 GPU node conversion, i.i.d. fault models |
//! | Collectives | [`collective`] | Ring-AllReduce and the AllToAll family (incl. Binary Exchange), with symbolic correctness checks and α–β costing |
//! | Training | [`llmsim`] | The analytical LLM training simulator (MFU, parallelism search) |
//! | Orchestration | [`orchestrator`] | Algorithms 1–5: DCN-free placement, deployment wiring, Fat-Tree placement with binary-searched constraints, the greedy baseline and cross-ToR accounting |
//! | Economics | [`cost`] | The Table-8 component catalogue, per-architecture BOMs, Table-6 normalisation and the Fig-17d aggregate cost |
//! | Control plane | [`control`] | The §5.2 node fabric manager, cluster manager and failover planner with end-to-end recovery latency accounting |
//! | DCN | [`dcn`] | A flow-level Fat-Tree simulator (ECMP + max-min fairness) turning placement quality into congestion and exposed DP time |
//! | Cluster | [`cluster`] | GPU waste ratio, maximum job scale, fault-waiting time, the Appendix-C bound |
//!
//! ## Quickstart
//!
//! ```
//! use infinitehbd::prelude::*;
//!
//! // A 2,880-GPU cluster of 4-GPU nodes wired as a 3-Hop Ring.
//! let ring = KHopRing::new(720, 4, 3).expect("valid topology");
//!
//! // Knock out a few nodes and see how much capacity survives for TP-32.
//! let faults = FaultSet::from_nodes([NodeId(10), NodeId(11), NodeId(400)]);
//! let report = ring.utilization(&faults, 32);
//! assert!(report.waste_ratio() < 0.01);
//! ```
//!
//! The `examples/` directory walks through the main workflows (fault
//! resilience, training MFU, orchestration, cost analysis) and the `bench`
//! crate regenerates every table and figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cluster;
pub use collective;
pub use control;
pub use cost;
pub use dcn;
pub use fault;
pub use hbd_types;
pub use llmsim;
pub use ocstrx;
pub use orchestrator;
pub use topology;

pub mod experiment;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::experiment::{ClusterStudy, FailoverStudy, FailoverSummary, StudyReport};
    pub use cluster::{
        fault_waiting_rate, fault_waiting_rate_par, max_job_over_trace_par, max_supported_job,
        waste_over_trace, waste_over_trace_par, waste_ratio, waste_vs_fault_ratio,
        waste_vs_fault_ratio_par,
    };
    pub use collective::{
        AllToAllAlgorithm, AlphaBeta, FastSwitchAllToAll, HierarchicalAllReduce, RingAllReduce,
        RingUtilization,
    };
    pub use control::{
        ClusterManager, ControlLatencies, FailoverPlanner, RecoveryReport, RingPlan,
    };
    pub use cost::{aggregate_cost, AggregateCostInput, ArchitectureBom, NormalizedCost};
    pub use dcn::{
        dp_ring_flows, greedy_place_mix, place_mix, replay_mix, replay_mix_par, CongestionReport,
        DcnNetwork, Flow, FlowSimulation, JobInterference, JobTraffic, LogicalShape, MaxMinSolver,
        MixJob, MixOutcome, NetworkParams, PlacedJob, ReplayStats, TrafficEpoch, TrafficMatrix,
        TrafficProfile, TrafficSpec,
    };
    pub use fault::{
        convert_8gpu_to_4gpu, FaultEvent, FaultTrace, GeneratorConfig, IidFaultModel,
        TraceGenerator, TraceStats,
    };
    pub use hbd_types::{
        Bytes, ClusterConfig, Dollars, GBps, Gbps, GpuId, GpuSpec, HbdError, Microseconds, NodeId,
        NodeSize, Result, Seconds, ToRId, Watts,
    };
    pub use llmsim::{
        CommModel, DcnPairVolumes, ModelConfig, ParallelismStrategy, SearchSpace, StrategySearch,
        TrainingSimulator,
    };
    pub use ocstrx::{Bundle, OcsTrx, PathId, TrxConfig};
    pub use orchestrator::{
        cross_tor_rate, greedy_placement, max_orchestratable_job, FatTreeOrchestrator,
        MaxJobReport, OrchestrationRequest, PlacementQuery, PlacementScheme, PlacementService,
        SnapshotDelta, SnapshotStore, TrafficModel,
    };
    pub use topology::{
        paper_architectures, BigSwitch, BinaryHopRing, DojoMesh, FatTree, FaultSet,
        HbdArchitecture, KHopRing, Nvl, NvlVariant, SipRing, TpuV4, UtilizationReport,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_end_to_end_path() {
        let ring = KHopRing::new(64, 4, 2).unwrap();
        let report = ring.utilization(&FaultSet::new(), 16);
        assert_eq!(report.usable_gpus, 256);
        let bom = ArchitectureBom::infinitehbd_k2();
        assert!(bom.cost_per_gpu().value() > 0.0);
    }
}
