//! Online cluster lifecycle simulator: jobs that arrive, fail, and leave.
//!
//! The paper evaluates InfiniteHBD on static, gang-scheduled job mixes; this
//! module layers *job dynamics* on the same deterministic substrate. A
//! discrete-event loop over [`hbd_types::sim`]'s clock and queue drives four
//! event kinds — job arrivals, job departures, node faults, node repairs —
//! through one shared piece of cluster state:
//!
//! * an admission queue (strict FIFO, or FIFO-with-backfill),
//! * the incremental exclusion ledger ([`dcn::jobmix::ExclusionLedger`]):
//!   faulty nodes ∪ nodes owned by running jobs, maintained across
//!   place/release/fault/repair transitions,
//! * the placement service ([`orchestrator::service::PlacementService`]):
//!   every ledger transition republishes the exclusion union as a snapshot
//!   epoch, and every admission, migration and defragmentation move queries
//!   the service — which answers bit-identically to calling
//!   [`FatTreeOrchestrator::orchestrate_par`] against the ledger directly
//!   (the pre-service path), while consecutive probes against an unchanged
//!   epoch reuse one memoized search scratch per request shape,
//! * `control`'s failover planner, which prices fault-triggered migrations in
//!   port directives on the job's own K-Hop ring.
//!
//! The simulator reports production SLOs: the queueing-delay distribution,
//! placement-latency percentiles, fragmentation over time and goodput.
//! Placement latency is *modeled* (a deterministic function of groups placed,
//! retries and failover commands), never wall-clock, so every derived table
//! is bit-stable in the seed and invariant in the thread count — `threads`
//! only fans out the constraint search, which returns identical placements
//! for every value.

use control::{FailoverPlanner, RingPlan};
use dcn::jobmix::ExclusionLedger;
use fault::sim_events::{NodeEvent, NodeEventKind};
use hbd_types::sim::{EventQueue, SimClock};
use hbd_types::{HbdError, NodeId, Result, Seconds};
use orchestrator::service::{PlacementService, SnapshotStore};
use orchestrator::{FatTreeOrchestrator, OrchestrationRequest, PlacementScheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use topology::KHopRing;

/// One job of the workload: what it asks the orchestrator for and how long it
/// runs once placed (isolated service time, excluding queueing and placement
/// latency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job name (carried into the per-job record).
    pub name: String,
    /// Placement request (scale, TP group size, K-hop reach).
    pub request: OrchestrationRequest,
    /// Service time: how long the job occupies its nodes.
    pub service: Seconds,
}

/// A job plus its arrival instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobArrival {
    /// When the job enters the admission queue.
    pub at: Seconds,
    /// The job itself.
    pub spec: JobSpec,
}

/// A job archetype for the seeded Poisson workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTemplate {
    /// Template name; arrivals are named `<template>-<index>`.
    pub name: String,
    /// Placement request drawn for every job of this template.
    pub request: OrchestrationRequest,
    /// Mean of the exponential service-time draw.
    pub mean_service: Seconds,
    /// Relative arrival weight (need not be normalised).
    pub weight: f64,
}

/// A time-ordered arrival schedule, either trace-driven or generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    arrivals: Vec<JobArrival>,
}

impl Workload {
    /// A trace-driven workload: sorts the arrivals by time (stable, so
    /// same-instant arrivals keep their input order).
    pub fn from_arrivals(mut arrivals: Vec<JobArrival>) -> Self {
        arrivals.sort_by(|a, b| a.at.value().total_cmp(&b.at.value()));
        Workload { arrivals }
    }

    /// A seeded Poisson workload: exponential interarrivals with the given
    /// mean until `horizon`, each arrival drawing a template by weight and an
    /// exponential service time from the template's mean (clamped to at least
    /// one second). Deterministic in `(templates, mean_interarrival, horizon,
    /// seed)`.
    pub fn poisson(
        templates: &[JobTemplate],
        mean_interarrival: Seconds,
        horizon: Seconds,
        seed: u64,
    ) -> Result<Self> {
        if templates.is_empty() {
            return Err(HbdError::invalid_config(
                "workload needs at least one job template",
            ));
        }
        if not_positive(mean_interarrival.value()) || not_positive(horizon.value()) {
            return Err(HbdError::invalid_config(
                "mean interarrival and horizon must be positive",
            ));
        }
        let total_weight: f64 = templates.iter().map(|t| t.weight).sum();
        if not_positive(total_weight) {
            return Err(HbdError::invalid_config(
                "template weights must sum to a positive value",
            ));
        }
        for template in templates {
            template.request.validate()?;
            if not_positive(template.mean_service.value()) {
                return Err(HbdError::invalid_config(
                    "mean service time must be positive",
                ));
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrivals = Vec::new();
        let mut t = 0.0;
        loop {
            t += exponential(&mut rng, mean_interarrival.value());
            if t >= horizon.value() {
                break;
            }
            let mut pick = rng.gen::<f64>() * total_weight;
            let template = templates
                .iter()
                .find(|tpl| {
                    pick -= tpl.weight;
                    pick < 0.0
                })
                .unwrap_or(templates.last().expect("templates are non-empty"));
            let service = exponential(&mut rng, template.mean_service.value()).max(1.0);
            arrivals.push(JobArrival {
                at: Seconds(t),
                spec: JobSpec {
                    name: format!("{}-{}", template.name, arrivals.len()),
                    request: template.request,
                    service: Seconds(service),
                },
            });
        }
        Ok(Workload { arrivals })
    }

    /// The arrivals, in time order.
    pub fn arrivals(&self) -> &[JobArrival] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

/// Rejects non-finite, zero and negative parameter values in one predicate
/// (NaN must fail validation, so a plain `<= 0.0` is not enough).
fn not_positive(value: f64) -> bool {
    !value.is_finite() || value <= 0.0
}

/// Inverse-CDF exponential draw with the given mean (`1 - u` keeps the
/// argument of `ln` strictly positive for `u ∈ [0, 1)`).
fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    -(1.0 - rng.gen::<f64>()).ln() * mean
}

/// Deterministic placement-latency model: how long a placement decision takes
/// to reach the fabric, as a function of what the control plane has to do —
/// never wall-clock, so simulated latencies are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementLatencyModel {
    /// Fixed scheduler overhead per successful placement.
    pub base: Seconds,
    /// OCS reconfiguration cost per TP group placed.
    pub per_group: Seconds,
    /// Backoff cost per failed admission attempt the job accumulated while
    /// queued.
    pub per_retry: Seconds,
    /// Cost per port directive the failover planner changes during a
    /// fault-triggered migration.
    pub per_command: Seconds,
}

impl Default for PlacementLatencyModel {
    fn default() -> Self {
        PlacementLatencyModel {
            base: Seconds(2.0),
            per_group: Seconds(0.5),
            per_retry: Seconds(0.5),
            per_command: Seconds(0.05),
        }
    }
}

/// Configuration of one lifecycle run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleConfig {
    /// Cluster size; must match the orchestrator's Fat-Tree.
    pub nodes: usize,
    /// GPUs per node (sizes the per-job failover rings).
    pub gpus_per_node: usize,
    /// `false` = strict FIFO: the head of the queue blocks everyone behind
    /// it. `true` = backfill: jobs behind a blocked head may be admitted if
    /// they fit right now.
    pub backfill: bool,
    /// Re-pack every running job when a departure leaves the queue head
    /// blocked despite enough free healthy nodes (defragmentation).
    pub defrag_on_exit: bool,
    /// The modeled placement-latency parameters.
    pub latency: PlacementLatencyModel,
    /// Simulation horizon; events after it are not processed.
    pub horizon: Seconds,
    /// Worker threads for the placement kernel's constraint search (results
    /// are identical for every value).
    pub threads: usize,
    /// TP group size of the fragmentation probe (the "reference job" whose
    /// placeability defines usable capacity).
    pub frag_probe_group: usize,
    /// K-hop reach of the fragmentation probe.
    pub frag_probe_k: usize,
    /// Deterministic backoff applied to fault-triggered re-queues: after its
    /// `n`-th fault-wait a job only becomes eligible for re-admission
    /// `backoff.delay(n-1, job_index)` after the fault (a seeded, capped
    /// exponential), instead of storming the scheduler on the very next
    /// event. `None` keeps the legacy immediate-requeue behaviour
    /// bit-for-bit. Initial admissions are never delayed, and an ineligible
    /// job is invisible to the FIFO scan (it does not block jobs behind it)
    /// until its retry instant.
    pub retry_backoff: Option<hbd_types::BackoffSchedule>,
}

/// What happened to one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Still waiting in the admission queue at the horizon.
    Queued,
    /// Running at the horizon.
    Running,
    /// Completed its full service.
    Completed,
}

/// Per-job accounting of one lifecycle run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job name.
    pub name: String,
    /// Arrival instant.
    pub arrived: Seconds,
    /// Instant of the first successful placement, if any.
    pub first_placed: Option<Seconds>,
    /// Completion instant, if the job finished before the horizon.
    pub completed: Option<Seconds>,
    /// Total time spent in the admission queue (initial wait plus every
    /// post-fault re-queue, up to the horizon).
    pub queue_wait: Seconds,
    /// Fault-triggered migrations that found a new placement immediately.
    pub migrations: usize,
    /// Faults that sent the job back to the queue (no capacity to migrate).
    pub fault_waits: usize,
    /// Times the defragmentation pass moved this job to new nodes.
    pub defrag_moves: usize,
    /// Final status at the horizon.
    pub status: JobStatus,
}

/// The SLO report of one lifecycle run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleOutcome {
    /// Per-job records, in arrival order.
    pub jobs: Vec<JobRecord>,
    /// Initial queueing delay (arrival → first placement) per admitted job,
    /// in admission order, seconds.
    pub queue_delays: Vec<f64>,
    /// Modeled latency of every successful placement operation (admissions,
    /// migrations, defrag moves), in operation order, seconds.
    pub placement_latencies: Vec<f64>,
    /// Time-weighted mean fragmentation over the run (see
    /// [`LifecycleOutcome::frag_final`] for the definition).
    pub frag_mean: f64,
    /// Peak fragmentation observed at any event instant.
    pub frag_max: f64,
    /// Fragmentation at the horizon: `1 - usable / free` where `usable` is
    /// what a fully relaxed placement probe can still organise into TP groups
    /// of the configured reference size and `free` counts non-excluded nodes
    /// (0.0 when the cluster is fully occupied).
    pub frag_final: f64,
    /// Productive node-seconds (service progress × job nodes) over
    /// `nodes × horizon`.
    pub goodput: f64,
    /// Placed node-seconds over `nodes × horizon` (includes placement-latency
    /// windows; `utilization - goodput` is capacity lost to churn).
    pub utilization: f64,
    /// Jobs that arrived.
    pub arrivals: usize,
    /// Jobs placed at least once.
    pub admitted: usize,
    /// Jobs that completed their full service.
    pub completed: usize,
    /// Jobs still queued at the horizon.
    pub left_queued: usize,
    /// Jobs still running at the horizon.
    pub left_running: usize,
    /// Total fault-triggered migrations.
    pub migrations: usize,
    /// Total fault-triggered re-queues.
    pub fault_waits: usize,
    /// Total defragmentation moves.
    pub defrag_moves: usize,
    /// Defragmentation passes triggered.
    pub defrag_passes: usize,
    /// Snapshot epochs actually published over the run: delta publishes that
    /// carried at least one net node flip of the exclusion set.
    pub epochs_published: usize,
    /// Republishes skipped because the transition left the exclusion set
    /// unchanged — e.g. a fault on an already-placed node, a repair of a node
    /// still owned by a job, or flips that cancelled before the publish.
    pub republish_skips: usize,
    /// Clock rewind attempts (0 for a well-ordered event stream; exposed so a
    /// mis-ordered schedule is detectable).
    pub clock_rewinds: u64,
}

impl LifecycleOutcome {
    /// Percentile of the initial queueing delays (0.0 when no job was
    /// admitted).
    pub fn queue_delay_percentile(&self, q: f64) -> f64 {
        percentile_of(&self.queue_delays, q)
    }

    /// Percentile of the modeled placement latencies (0.0 when no placement
    /// succeeded).
    pub fn placement_latency_percentile(&self, q: f64) -> f64 {
        percentile_of(&self.placement_latencies, q)
    }
}

fn percentile_of(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    fault::stats::percentile(&sorted, q)
}

/// The discrete events of the lifecycle loop.
enum Event {
    Arrival(usize),
    Departure {
        job: usize,
        generation: u64,
    },
    NodeDown(NodeId),
    NodeUp(NodeId),
    /// A backoff wake-up: the named job's re-admission hold has expired. The
    /// event itself carries no state change — the admission scan at the loop
    /// bottom picks the job up now that it is eligible again.
    Retry(usize),
}

/// Per-job mutable state.
struct JobState {
    spec: JobSpec,
    record: JobRecord,
    /// Remaining service time.
    remaining: f64,
    /// When the current service segment starts (placement instant + modeled
    /// placement latency); meaningful only while running.
    service_start: f64,
    /// Bumped on every placement change; a departure event whose generation
    /// does not match is stale and ignored.
    generation: u64,
    /// Current placement while running.
    placement: Option<PlacementScheme>,
    /// When the job last entered the queue; meaningful only while queued.
    queued_since: f64,
    /// Failed admission attempts accumulated while queued.
    attempts: usize,
    /// Earliest instant the admission scan may consider this job again
    /// (backoff hold after a fault-triggered re-queue); 0.0 = no hold.
    eligible_at: f64,
}

/// Per-ring-shape failover planner cache: the migration price of a fault on a
/// job's K-Hop ring depends only on (ring length, K), both bounded by the
/// template set, so each planner and its healthy-ring plan are built once.
struct PlannerCache {
    gpus_per_node: usize,
    planners: BTreeMap<(usize, usize), Option<(FailoverPlanner, RingPlan)>>,
}

impl PlannerCache {
    fn new(gpus_per_node: usize) -> Self {
        PlannerCache {
            gpus_per_node,
            planners: BTreeMap::new(),
        }
    }

    /// Port directives that must change to route around the faulty positions
    /// of a job-local line ring. Falls back to one directive per ring node if
    /// the ring cannot be built or planned (e.g. K exceeding the GPU count).
    fn migration_commands(
        &mut self,
        ring_nodes: usize,
        k: usize,
        faulty_positions: &[usize],
    ) -> usize {
        let gpus = self.gpus_per_node;
        let entry = self.planners.entry((ring_nodes, k)).or_insert_with(|| {
            let ring = KHopRing::line(ring_nodes, gpus, k).ok()?;
            let planner = FailoverPlanner::new(ring).ok()?;
            let healthy = planner.plan(&topology::FaultSet::new()).ok()?;
            Some((planner, healthy))
        });
        let Some((planner, healthy)) = entry else {
            return ring_nodes;
        };
        let faults = topology::FaultSet::from_nodes(faulty_positions.iter().map(|&p| NodeId(p)));
        match planner.plan(&faults) {
            Ok(plan) => healthy.diff(&plan).len(),
            Err(_) => ring_nodes,
        }
    }
}

/// Everything the event handlers share.
struct SimState<'a> {
    orchestrator: &'a FatTreeOrchestrator,
    config: &'a LifecycleConfig,
    ledger: ExclusionLedger,
    /// The snapshot-backed placement path: the ledger's exclusion union is
    /// republished as a new epoch after every transition, and all placement
    /// probes go through the service (answers are pinned bit-for-bit to
    /// `orchestrate_par` against the ledger, so this is a pure plumbing
    /// change — plus scratch reuse across probes of one epoch).
    service: PlacementService,
    /// Which running job owns each node.
    owner: Vec<Option<usize>>,
    /// Queued job indices; ascending order is arrival (FIFO) order because
    /// arrivals are scheduled in time order.
    pending: BTreeSet<usize>,
    jobs: Vec<JobState>,
    queue: EventQueue<Event>,
    planners: PlannerCache,
    // SLO collectors.
    queue_delays: Vec<f64>,
    placement_latencies: Vec<f64>,
    productive_node_seconds: f64,
    defrag_passes: usize,
    // Publish accounting (see the fields of the same name on the outcome).
    epochs_published: usize,
    republish_skips: usize,
    // Fragmentation / utilisation time integrals.
    last_t: f64,
    frag_current: f64,
    frag_integral: f64,
    frag_max: f64,
    placed_integral: f64,
}

impl SimState<'_> {
    /// Publishes the ledger's *pending delta* as the next snapshot epoch.
    /// Called after every ledger transition so the service always answers
    /// against exactly the live exclusion state; transitions whose flips
    /// cancelled out (or never touched the exclusion union) skip the publish
    /// entirely, so queue-only churn costs no epoch.
    fn sync_snapshot(&mut self) {
        match self.ledger.publish_delta(self.service.store()) {
            Some(_) => self.epochs_published += 1,
            None => self.republish_skips += 1,
        }
    }

    /// One placement probe against the live snapshot, via the service.
    fn probe_placement(&self, request: &OrchestrationRequest) -> Result<PlacementScheme> {
        debug_assert_eq!(
            self.service.store().load().value.faults(),
            self.ledger.excluded(),
            "snapshot fell behind the ledger: a transition skipped sync_snapshot"
        );
        self.service.place(request, self.config.threads)
    }

    /// Closes the time integral segment `[last_t, t)`.
    fn advance_integrals(&mut self, t: f64) {
        let dt = t - self.last_t;
        if dt > 0.0 {
            self.frag_integral += self.frag_current * dt;
            self.placed_integral += self.ledger.placed_nodes() as f64 * dt;
            self.last_t = t;
        }
    }

    /// Fragmentation right now: `1 - usable / free`, where `usable` is the
    /// capacity a fully relaxed placement probe (0 constraints, reference
    /// group size) can still organise and `free` counts non-excluded nodes.
    /// 0.0 when the cluster has no free node at all.
    fn fragmentation(&self) -> f64 {
        let free = self.config.nodes - self.ledger.excluded().len();
        if free == 0 {
            return 0.0;
        }
        let probe = OrchestrationRequest {
            job_nodes: self.config.frag_probe_group,
            nodes_per_group: self.config.frag_probe_group,
            k: self.config.frag_probe_k,
        };
        let usable = self
            .orchestrator
            .placement_with_constraints(&probe, self.ledger.excluded(), 0)
            .nodes_placed();
        (1.0 - usable as f64 / free as f64).max(0.0)
    }

    fn refresh_fragmentation(&mut self) {
        self.frag_current = self.fragmentation();
        self.frag_max = self.frag_max.max(self.frag_current);
    }

    /// Accrues the running job's service progress up to `now` and returns the
    /// nodes it occupies (progress is zero while still inside the placement
    /// latency window).
    fn accrue_progress(&mut self, job: usize, now: f64) {
        let nodes = self.jobs[job]
            .placement
            .as_ref()
            .map(|p| p.nodes_placed())
            .unwrap_or(0);
        let state = &mut self.jobs[job];
        let progress = (now - state.service_start).max(0.0).min(state.remaining);
        state.remaining -= progress;
        self.productive_node_seconds += progress * nodes as f64;
    }

    /// Installs `scheme` as `job`'s placement: ledger, ownership map, service
    /// segment and departure event.
    fn start_service(&mut self, job: usize, scheme: PlacementScheme, now: f64, latency: f64) {
        for group in &scheme.groups {
            for &node in &group.nodes {
                self.owner[node.index()] = Some(job);
            }
        }
        self.ledger.place(&scheme);
        self.sync_snapshot();
        self.placement_latencies.push(latency);
        let state = &mut self.jobs[job];
        state.generation += 1;
        state.service_start = now + latency;
        state.placement = Some(scheme);
        if state.record.first_placed.is_none() {
            state.record.first_placed = Some(Seconds(now));
        }
        self.queue.push(
            Seconds(state.service_start + state.remaining),
            Event::Departure {
                job,
                generation: state.generation,
            },
        );
    }

    /// Removes `job`'s placement from the ledger and ownership map.
    fn release_placement(&mut self, job: usize) -> Option<PlacementScheme> {
        let scheme = self.jobs[job].placement.take()?;
        for group in &scheme.groups {
            for &node in &group.nodes {
                self.owner[node.index()] = None;
            }
        }
        self.ledger.release(&scheme);
        self.sync_snapshot();
        Some(scheme)
    }

    /// Scans the admission queue in FIFO order. Strict FIFO stops at the
    /// first job that does not fit; backfill keeps scanning.
    fn try_admit(&mut self, now: f64) {
        let candidates: Vec<usize> = self.pending.iter().copied().collect();
        for job in candidates {
            if self.jobs[job].eligible_at > now {
                // Still inside its backoff hold: invisible to the scan (it
                // neither probes nor blocks FIFO), woken by its Retry event.
                continue;
            }
            let request = self.jobs[job].spec.request;
            match self.probe_placement(&request) {
                Ok(scheme) => {
                    self.pending.remove(&job);
                    let state = &mut self.jobs[job];
                    let waited = now - state.queued_since;
                    state.record.queue_wait = Seconds(state.record.queue_wait.value() + waited);
                    if state.record.first_placed.is_none() {
                        self.queue_delays.push(now - state.record.arrived.value());
                    }
                    state.record.status = JobStatus::Running;
                    let latency = self.config.latency.base.value()
                        + self.config.latency.per_group.value() * scheme.groups.len() as f64
                        + self.config.latency.per_retry.value() * state.attempts as f64;
                    self.start_service(job, scheme, now, latency);
                }
                Err(_) => {
                    self.jobs[job].attempts += 1;
                    if !self.config.backfill {
                        break;
                    }
                }
            }
        }
    }

    /// A fault hit a running job: price the failover plan, release the
    /// placement and either migrate immediately or send the job back to the
    /// queue (keeping its arrival priority).
    fn handle_fault_on_job(&mut self, job: usize, now: f64) {
        self.accrue_progress(job, now);
        let scheme = self.release_placement(job).expect("running job is placed");
        // Faulty positions on the job-local ring: the flattened placement
        // (group order, node order) is the ring's deployment order.
        let flat: Vec<NodeId> = scheme
            .groups
            .iter()
            .flat_map(|g| g.nodes.iter().copied())
            .collect();
        let faulty_positions: Vec<usize> = flat
            .iter()
            .enumerate()
            .filter(|(_, n)| self.ledger.faulty().is_faulty(**n))
            .map(|(p, _)| p)
            .collect();
        let k = self.jobs[job].spec.request.k;
        let commands = self
            .planners
            .migration_commands(flat.len(), k, &faulty_positions);
        self.jobs[job].generation += 1; // invalidate the scheduled departure
        let request = self.jobs[job].spec.request;
        match self.probe_placement(&request) {
            Ok(new_scheme) => {
                self.jobs[job].record.migrations += 1;
                let latency = self.config.latency.base.value()
                    + self.config.latency.per_group.value() * new_scheme.groups.len() as f64
                    + self.config.latency.per_command.value() * commands as f64;
                self.start_service(job, new_scheme, now, latency);
            }
            Err(_) => {
                let state = &mut self.jobs[job];
                state.record.fault_waits += 1;
                state.record.status = JobStatus::Queued;
                state.queued_since = now;
                if let Some(backoff) = &self.config.retry_backoff {
                    // The n-th fault-wait backs off with attempt index n-1,
                    // keyed by the job index — deterministic and per-job
                    // de-synchronised, so a storm's victims do not re-storm
                    // the scheduler in lockstep.
                    let hold = backoff
                        .delay(state.record.fault_waits as u32 - 1, job as u64)
                        .value();
                    state.eligible_at = now + hold;
                    self.queue.push(Seconds(now + hold), Event::Retry(job));
                }
                self.pending.insert(job);
            }
        }
    }

    /// Defragmentation: when the queue head is blocked despite enough free
    /// healthy nodes, re-pack every running job through the orchestrator (in
    /// arrival order). Each job's own nodes are free during its re-placement,
    /// so the move can only tighten the packing; jobs that actually move pay
    /// a placement latency, jobs re-placed onto the same nodes pay nothing.
    fn defragment(&mut self, now: f64) {
        self.defrag_passes += 1;
        let running: Vec<usize> = (0..self.jobs.len())
            .filter(|&j| self.jobs[j].record.status == JobStatus::Running)
            .collect();
        for job in running {
            self.accrue_progress(job, now);
            let old = self.release_placement(job).expect("running job is placed");
            self.jobs[job].generation += 1;
            let request = self.jobs[job].spec.request;
            match self.probe_placement(&request) {
                Ok(new_scheme) => {
                    let moved = node_set(&new_scheme) != node_set(&old);
                    let latency = if moved {
                        self.jobs[job].record.defrag_moves += 1;
                        self.config.latency.base.value()
                            + self.config.latency.per_group.value() * new_scheme.groups.len() as f64
                    } else {
                        0.0
                    };
                    self.start_service(job, new_scheme, now, latency);
                }
                Err(_) => {
                    // Cannot happen (the job's old nodes are free again), but
                    // degrade gracefully: put the old placement back.
                    self.start_service(job, old, now, 0.0);
                }
            }
        }
    }
}

fn node_set(scheme: &PlacementScheme) -> BTreeSet<NodeId> {
    scheme
        .groups
        .iter()
        .flat_map(|g| g.nodes.iter().copied())
        .collect()
}

/// Runs the lifecycle simulation: `workload` arrivals and `fault_events`
/// (from [`fault::sim_events`]) against one shared Fat-Tree cluster.
///
/// Deterministic in `(orchestrator, workload, fault_events, config)` and
/// invariant in `config.threads`.
pub fn simulate(
    orchestrator: &FatTreeOrchestrator,
    workload: &Workload,
    fault_events: &[NodeEvent],
    config: &LifecycleConfig,
) -> Result<LifecycleOutcome> {
    if config.nodes != orchestrator.fat_tree().nodes() {
        return Err(HbdError::invalid_config(format!(
            "config.nodes = {} but the orchestrator's Fat-Tree has {} nodes",
            config.nodes,
            orchestrator.fat_tree().nodes()
        )));
    }
    if not_positive(config.horizon.value()) {
        return Err(HbdError::invalid_config("horizon must be positive"));
    }
    if config.threads == 0 || config.frag_probe_group == 0 || config.frag_probe_k == 0 {
        return Err(HbdError::invalid_config(
            "threads, frag_probe_group and frag_probe_k must be positive",
        ));
    }
    let horizon = config.horizon.value();

    // The snapshot store shares the orchestrator by `Arc` across all epochs
    // of the run; epoch 0 is the empty exclusion state of the fresh ledger.
    let store = Arc::new(SnapshotStore::new(
        Arc::new(orchestrator.clone()),
        topology::FaultSet::new(),
    ));
    let mut state = SimState {
        orchestrator,
        config,
        ledger: ExclusionLedger::new(),
        service: PlacementService::new(store),
        owner: vec![None; config.nodes],
        pending: BTreeSet::new(),
        jobs: Vec::with_capacity(workload.len()),
        queue: EventQueue::new(),
        planners: PlannerCache::new(config.gpus_per_node),
        queue_delays: Vec::new(),
        placement_latencies: Vec::new(),
        productive_node_seconds: 0.0,
        defrag_passes: 0,
        epochs_published: 0,
        republish_skips: 0,
        last_t: 0.0,
        frag_current: 0.0,
        frag_integral: 0.0,
        frag_max: 0.0,
        placed_integral: 0.0,
    };

    // Availability edges are scheduled before arrivals so that a fault and an
    // arrival at the same instant resolve as "node state first, admission
    // second" (the queue breaks timestamp ties by insertion order).
    for edge in fault_events {
        if edge.at.value() <= horizon {
            let event = match edge.kind {
                NodeEventKind::Fault => Event::NodeDown(edge.node),
                NodeEventKind::Repair => Event::NodeUp(edge.node),
            };
            state.queue.push(edge.at, event);
        }
    }
    for (index, arrival) in workload.arrivals().iter().enumerate() {
        arrival.spec.request.validate()?;
        if not_positive(arrival.spec.service.value()) {
            return Err(HbdError::invalid_config(format!(
                "job '{}' has a non-positive service time",
                arrival.spec.name
            )));
        }
        state.jobs.push(JobState {
            record: JobRecord {
                name: arrival.spec.name.clone(),
                arrived: arrival.at,
                first_placed: None,
                completed: None,
                queue_wait: Seconds::ZERO,
                migrations: 0,
                fault_waits: 0,
                defrag_moves: 0,
                status: JobStatus::Queued,
            },
            spec: arrival.spec.clone(),
            remaining: arrival.spec.service.value(),
            service_start: 0.0,
            generation: 0,
            placement: None,
            queued_since: arrival.at.value(),
            attempts: 0,
            eligible_at: 0.0,
        });
        if arrival.at.value() <= horizon {
            state.queue.push(arrival.at, Event::Arrival(index));
        }
    }

    state.refresh_fragmentation();
    state.frag_integral = 0.0;
    let mut clock = SimClock::new();

    while let Some((at, event)) = state.queue.pop() {
        if at.value() > horizon {
            break; // pops are time-ordered: everything left is beyond the horizon
        }
        state.advance_integrals(at.value());
        let now = clock.advance_to(at).value();
        match event {
            Event::Arrival(job) => {
                state.jobs[job].queued_since = now;
                state.pending.insert(job);
            }
            Event::Departure { job, generation } => {
                if state.jobs[job].generation != generation
                    || state.jobs[job].record.status != JobStatus::Running
                {
                    continue; // stale: the job migrated or re-queued since
                }
                state.accrue_progress(job, now);
                state.release_placement(job);
                let record = &mut state.jobs[job].record;
                record.status = JobStatus::Completed;
                record.completed = Some(Seconds(now));
                if state.config.defrag_on_exit {
                    if let Some(&head) = state.pending.iter().next() {
                        let request = state.jobs[head].spec.request;
                        let free = state.config.nodes - state.ledger.excluded().len();
                        let blocked = state.probe_placement(&request).is_err();
                        if blocked && free >= request.job_nodes {
                            state.defragment(now);
                        }
                    }
                }
            }
            Event::NodeDown(node) => {
                state.ledger.fault(node);
                state.sync_snapshot();
                if let Some(job) = state.owner[node.index()] {
                    state.handle_fault_on_job(job, now);
                }
            }
            Event::NodeUp(node) => {
                state.ledger.repair(node);
                state.sync_snapshot();
            }
            // A pure wake-up: the job's backoff hold has expired, and the
            // admission scan below will now consider it again.
            Event::Retry(job) => {
                debug_assert!(
                    state.jobs[job].eligible_at <= now,
                    "a Retry event fired before its job's hold expired"
                );
            }
        }
        state.try_admit(now);
        state.refresh_fragmentation();
    }

    // Close the run at the horizon: integrate the final segment and accrue
    // the still-running jobs' progress (without completing them).
    state.advance_integrals(horizon);
    for job in 0..state.jobs.len() {
        match state.jobs[job].record.status {
            JobStatus::Running => state.accrue_progress(job, horizon),
            JobStatus::Queued => {
                let state_job = &mut state.jobs[job];
                let waited = (horizon - state_job.queued_since).max(0.0);
                state_job.record.queue_wait = Seconds(state_job.record.queue_wait.value() + waited);
            }
            JobStatus::Completed => {}
        }
    }

    let jobs: Vec<JobRecord> = state.jobs.iter().map(|j| j.record.clone()).collect();
    let denominator = config.nodes as f64 * horizon;
    Ok(LifecycleOutcome {
        arrivals: jobs.len(),
        admitted: jobs.iter().filter(|j| j.first_placed.is_some()).count(),
        completed: jobs
            .iter()
            .filter(|j| j.status == JobStatus::Completed)
            .count(),
        left_queued: jobs
            .iter()
            .filter(|j| j.status == JobStatus::Queued)
            .count(),
        left_running: jobs
            .iter()
            .filter(|j| j.status == JobStatus::Running)
            .count(),
        migrations: jobs.iter().map(|j| j.migrations).sum(),
        fault_waits: jobs.iter().map(|j| j.fault_waits).sum(),
        defrag_moves: jobs.iter().map(|j| j.defrag_moves).sum(),
        defrag_passes: state.defrag_passes,
        epochs_published: state.epochs_published,
        republish_skips: state.republish_skips,
        frag_mean: state.frag_integral / horizon,
        frag_max: state.frag_max,
        frag_final: state.frag_current,
        goodput: state.productive_node_seconds / denominator,
        utilization: state.placed_integral / denominator,
        queue_delays: state.queue_delays,
        placement_latencies: state.placement_latencies,
        clock_rewinds: clock.rewinds_clamped(),
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault::sim_events::generate_events;
    use fault::GeneratorConfig;
    use topology::FatTree;

    fn orchestrator(nodes: usize) -> FatTreeOrchestrator {
        FatTreeOrchestrator::new(FatTree::new(nodes, 4, 4).unwrap()).unwrap()
    }

    fn config(nodes: usize) -> LifecycleConfig {
        LifecycleConfig {
            nodes,
            gpus_per_node: 8,
            backfill: false,
            defrag_on_exit: false,
            latency: PlacementLatencyModel::default(),
            horizon: Seconds(10_000.0),
            threads: 1,
            frag_probe_group: 4,
            frag_probe_k: 2,
            retry_backoff: None,
        }
    }

    fn request(job_nodes: usize) -> OrchestrationRequest {
        OrchestrationRequest {
            job_nodes,
            nodes_per_group: 4,
            k: 2,
        }
    }

    fn arrival(name: &str, at: f64, job_nodes: usize, service: f64) -> JobArrival {
        JobArrival {
            at: Seconds(at),
            spec: JobSpec {
                name: name.to_string(),
                request: request(job_nodes),
                service: Seconds(service),
            },
        }
    }

    #[test]
    fn a_single_job_completes_on_schedule() {
        let orch = orchestrator(32);
        let workload = Workload::from_arrivals(vec![arrival("solo", 10.0, 8, 500.0)]);
        let outcome = simulate(&orch, &workload, &[], &config(32)).unwrap();
        assert_eq!(outcome.completed, 1);
        assert_eq!(outcome.clock_rewinds, 0);
        let job = &outcome.jobs[0];
        // Admitted instantly: placement latency = base + per_group × 2 groups.
        let latency = 2.0 + 0.5 * 2.0;
        assert_eq!(job.first_placed, Some(Seconds(10.0)));
        assert_eq!(job.completed, Some(Seconds(10.0 + latency + 500.0)));
        assert_eq!(job.queue_wait, Seconds::ZERO);
        assert_eq!(outcome.queue_delays, vec![0.0]);
        assert_eq!(outcome.placement_latencies, vec![latency]);
        // Goodput counts only the service segment.
        let expected_goodput = 500.0 * 8.0 / (32.0 * 10_000.0);
        assert!((outcome.goodput - expected_goodput).abs() < 1e-12);
        assert!(outcome.utilization > outcome.goodput);
    }

    #[test]
    fn fifo_blocks_behind_an_oversized_head_but_backfill_does_not() {
        let orch = orchestrator(32);
        // Head job fills the cluster; a small job arrives behind it, then a
        // job that can never fit arrives and blocks FIFO admission.
        let workload = Workload::from_arrivals(vec![
            arrival("big", 0.0, 32, 1000.0),
            arrival("never", 1.0, 64, 100.0),
            arrival("small", 2.0, 8, 100.0),
        ]);
        let fifo = simulate(&orch, &workload, &[], &config(32)).unwrap();
        // FIFO: "never" blocks "small" for the whole run.
        assert_eq!(fifo.jobs[2].status, JobStatus::Queued);
        assert_eq!(fifo.left_queued, 2);

        let mut backfill_config = config(32);
        backfill_config.backfill = true;
        let backfill = simulate(&orch, &workload, &[], &backfill_config).unwrap();
        // Backfill: "small" is admitted once "big" departs.
        assert_eq!(backfill.jobs[2].status, JobStatus::Completed);
        assert_eq!(backfill.left_queued, 1);
        let small = &backfill.jobs[2];
        let big_done = backfill.jobs[0].completed.unwrap().value();
        assert_eq!(small.first_placed, Some(Seconds(big_done)));
        assert!((small.queue_wait.value() - (big_done - 2.0)).abs() < 1e-9);
    }

    #[test]
    fn a_fault_on_a_running_job_migrates_it_when_capacity_allows() {
        let orch = orchestrator(32);
        let workload = Workload::from_arrivals(vec![arrival("victim", 0.0, 8, 1000.0)]);
        // One fault at t=100 on a node the job owns (it is admitted at t=0,
        // so it holds nodes from the deployment order's head). Find an owned
        // node by running once without faults.
        let dry = simulate(&orch, &workload, &[], &config(32)).unwrap();
        assert_eq!(dry.migrations, 0);
        let placed_node = {
            let outcome = simulate(&orch, &workload, &[], &config(32)).unwrap();
            assert_eq!(outcome.completed, 1);
            // Re-derive the placement: admit the same request on an empty
            // cluster — deterministic, so the first node matches the sim's.
            let scheme = orch
                .orchestrate_par(&request(8), &topology::FaultSet::new(), 1)
                .unwrap();
            scheme.groups[0].nodes[0]
        };
        let events = vec![
            NodeEvent {
                at: Seconds(100.0),
                node: placed_node,
                kind: NodeEventKind::Fault,
            },
            NodeEvent {
                at: Seconds(200.0),
                node: placed_node,
                kind: NodeEventKind::Repair,
            },
        ];
        let outcome = simulate(&orch, &workload, &events, &config(32)).unwrap();
        assert_eq!(outcome.migrations, 1);
        assert_eq!(outcome.fault_waits, 0);
        assert_eq!(outcome.completed, 1);
        // The migration pauses service, so completion slips past the
        // fault-free completion instant.
        assert!(outcome.jobs[0].completed.unwrap() > dry.jobs[0].completed.unwrap());
        // Two successful placements: the admission and the migration.
        assert_eq!(outcome.placement_latencies.len(), 2);
    }

    #[test]
    fn a_fault_with_no_spare_capacity_requeues_the_job_until_repair() {
        let orch = orchestrator(32);
        // The job owns the whole cluster: a fault leaves nowhere to migrate.
        let workload = Workload::from_arrivals(vec![arrival("full", 0.0, 32, 1000.0)]);
        let victim = {
            let scheme = orch
                .orchestrate_par(&request(32), &topology::FaultSet::new(), 1)
                .unwrap();
            scheme.groups[0].nodes[0]
        };
        let events = vec![
            NodeEvent {
                at: Seconds(100.0),
                node: victim,
                kind: NodeEventKind::Fault,
            },
            NodeEvent {
                at: Seconds(400.0),
                node: victim,
                kind: NodeEventKind::Repair,
            },
        ];
        let outcome = simulate(&orch, &workload, &events, &config(32)).unwrap();
        assert_eq!(outcome.fault_waits, 1);
        assert_eq!(outcome.migrations, 0);
        assert_eq!(outcome.completed, 1);
        let job = &outcome.jobs[0];
        // Re-queued at t=100, re-admitted at the repair instant t=400.
        assert!((job.queue_wait.value() - 300.0).abs() < 1e-9);
        assert_eq!(job.fault_waits, 1);
    }

    #[test]
    fn requeue_backoff_follows_the_exact_deterministic_timeline() {
        let orch = orchestrator(32);
        // The job owns the whole cluster, so each fault forces a re-queue
        // (nowhere to migrate). Two fault/repair rounds on a node it owns.
        let workload = Workload::from_arrivals(vec![arrival("full", 0.0, 32, 1000.0)]);
        let victim = {
            let scheme = orch
                .orchestrate_par(&request(32), &topology::FaultSet::new(), 1)
                .unwrap();
            scheme.groups[0].nodes[0]
        };
        let round = |fault_at: f64, repair_at: f64| {
            vec![
                NodeEvent {
                    at: Seconds(fault_at),
                    node: victim,
                    kind: NodeEventKind::Fault,
                },
                NodeEvent {
                    at: Seconds(repair_at),
                    node: victim,
                    kind: NodeEventKind::Repair,
                },
            ]
        };
        let events: Vec<NodeEvent> = [round(100.0, 110.0), round(300.0, 310.0)].concat();

        // Legacy behaviour: re-admitted at the repair instants.
        let legacy = simulate(&orch, &workload, &events, &config(32)).unwrap();
        assert!((legacy.jobs[0].queue_wait.value() - 20.0).abs() < 1e-9);

        // Jitter 0 makes the capped exponential exact: holds of 64 s then
        // 128 s. The repair (110 / 310) arrives *inside* each hold, so the
        // re-admission waits for the Retry wake-up, not the repair.
        let mut cfg = config(32);
        cfg.retry_backoff = Some(hbd_types::BackoffSchedule {
            base: Seconds(64.0),
            factor: 2.0,
            cap: Seconds(1000.0),
            jitter: 0.0,
            seed: 9,
        });
        let outcome = simulate(&orch, &workload, &events, &cfg).unwrap();
        let job = &outcome.jobs[0];
        assert_eq!(job.fault_waits, 2);
        assert_eq!(outcome.migrations, 0);
        // Exact timeline: placed at 0, service starts at 6 (base 2 +
        // 8 groups x 0.5); fault 1 at 100 (94 s of progress) holds until
        // 164; service resumes at 170; fault 2 at 300 (130 s more) holds
        // 128 s until 428; service resumes at 434 and the remaining
        // 1000 - 94 - 130 = 776 s complete at 1210.
        assert_eq!(job.first_placed, Some(Seconds(0.0)));
        assert!((job.queue_wait.value() - (64.0 + 128.0)).abs() < 1e-9);
        assert_eq!(job.completed, Some(Seconds(1210.0)));
        assert_eq!(outcome.placement_latencies, vec![6.0, 6.0, 6.0]);
        assert_eq!(outcome.completed, 1);
        assert_eq!(outcome.clock_rewinds, 0);

        // Same inputs, same schedule: the backoff path is deterministic too.
        let again = simulate(&orch, &workload, &events, &cfg).unwrap();
        assert_eq!(outcome, again);
    }

    #[test]
    fn defragmentation_unblocks_a_job_the_fragmented_cluster_rejects() {
        let orch = orchestrator(16);
        // Four subline-sized jobs (npg = 4) tile the four sublines of the
        // 16-node deployment order. The short jobs on sublines 0 and 2
        // depart, leaving the long ones on sublines 1 and 3 — the two free
        // sublines are not adjacent in the deployment order, so "wide"
        // (one aligned group of 8 = two adjacent sublines) stays blocked
        // even though 8 healthy nodes are free. The defrag pass slides the
        // two long jobs down to sublines 0 and 1, freeing the adjacent pair
        // (2, 3) and unblocking "wide".
        let subline = |name: &str, at: f64, service: f64| JobArrival {
            at: Seconds(at),
            spec: JobSpec {
                name: name.to_string(),
                request: OrchestrationRequest {
                    job_nodes: 4,
                    nodes_per_group: 4,
                    k: 2,
                },
                service: Seconds(service),
            },
        };
        let wide = JobArrival {
            at: Seconds(10.0),
            spec: JobSpec {
                name: "wide".to_string(),
                request: OrchestrationRequest {
                    job_nodes: 8,
                    nodes_per_group: 8,
                    k: 2,
                },
                service: Seconds(100.0),
            },
        };
        let workload = Workload::from_arrivals(vec![
            subline("short-0", 0.0, 500.0),
            subline("long-1", 1.0, 5000.0),
            subline("short-2", 2.0, 600.0),
            subline("long-3", 3.0, 5000.0),
            wide,
        ]);
        // Horizon shorter than the long jobs' services: without
        // defragmentation the cluster never reaches a layout that admits
        // "wide" before the run ends.
        let mut plain = config(16);
        plain.frag_probe_group = 8;
        plain.horizon = Seconds(2000.0);
        let without = simulate(&orch, &workload, &[], &plain).unwrap();
        assert_eq!(
            without.jobs[4].status,
            JobStatus::Queued,
            "the fragmented layout must block the wide job: {without:?}"
        );
        assert_eq!(without.defrag_passes, 0);
        assert_eq!(without.defrag_moves, 0);

        let mut defrag = plain.clone();
        defrag.defrag_on_exit = true;
        let with = simulate(&orch, &workload, &[], &defrag).unwrap();
        // The pass fires at "short-2"'s exit (the first instant with enough
        // free nodes), moves both long jobs and admits "wide" immediately.
        assert_eq!(with.jobs[4].status, JobStatus::Completed, "{with:?}");
        assert_eq!(with.defrag_passes, 1);
        assert_eq!(with.defrag_moves, 2);
        let placed = with.jobs[4].first_placed.expect("wide was admitted");
        let unblocked_at = with.jobs[2].completed.expect("short-2 completed");
        assert_eq!(placed, unblocked_at, "admitted at the defrag instant");
        // The moved jobs keep running: no extra completions, no requeues.
        assert_eq!(with.jobs[1].status, JobStatus::Running);
        assert_eq!(with.jobs[3].status, JobStatus::Running);
        assert_eq!(with.fault_waits, 0);
    }

    #[test]
    fn transitions_that_do_not_change_the_exclusion_set_skip_the_republish() {
        let orch = orchestrator(32);
        let workload = Workload::from_arrivals(vec![arrival("solo", 0.0, 8, 9000.0)]);
        let events = vec![
            NodeEvent {
                at: Seconds(100.0),
                node: NodeId(30),
                kind: NodeEventKind::Fault,
            },
            // The same sensor fires again: the node is already excluded, so
            // the transition is a no-op and the republish is skipped.
            NodeEvent {
                at: Seconds(200.0),
                node: NodeId(30),
                kind: NodeEventKind::Fault,
            },
            // Repairing a node that was never down is a no-op too.
            NodeEvent {
                at: Seconds(300.0),
                node: NodeId(31),
                kind: NodeEventKind::Repair,
            },
        ];
        let outcome = simulate(&orch, &workload, &events, &config(32)).unwrap();
        assert_eq!(outcome.completed, 1);
        // Three real exclusion changes publish (admission, the first fault,
        // the departure's release); the two no-op transitions skip.
        assert_eq!(outcome.epochs_published, 3);
        assert_eq!(outcome.republish_skips, 2);
    }

    #[test]
    fn simulation_is_deterministic_and_thread_count_invariant() {
        let orch = orchestrator(64);
        let templates = vec![
            JobTemplate {
                name: "large".to_string(),
                request: request(16),
                mean_service: Seconds(800.0),
                weight: 1.0,
            },
            JobTemplate {
                name: "small".to_string(),
                request: request(8),
                mean_service: Seconds(300.0),
                weight: 3.0,
            },
        ];
        let workload = Workload::poisson(&templates, Seconds(150.0), Seconds(8000.0), 7).unwrap();
        assert!(!workload.is_empty());
        let events = generate_events(
            &GeneratorConfig {
                nodes: 64,
                duration: Seconds(10_000.0),
                steady_state_fault_ratio: 0.08,
                mean_time_to_repair: Seconds(900.0),
            },
            11,
        )
        .unwrap();
        let mut cfg = config(64);
        cfg.backfill = true;
        cfg.defrag_on_exit = true;
        let one = simulate(&orch, &workload, &events, &cfg).unwrap();
        let again = simulate(&orch, &workload, &events, &cfg).unwrap();
        let mut cfg4 = cfg.clone();
        cfg4.threads = 4;
        let four = simulate(&orch, &workload, &events, &cfg4).unwrap();
        assert_eq!(one, again, "same inputs must reproduce bit-for-bit");
        assert_eq!(
            serde_json::to_string(&one).unwrap(),
            serde_json::to_string(&four).unwrap(),
            "thread count must not change the outcome"
        );
        assert_eq!(outcome_invariants(&one), Ok(()));
        assert_eq!(one.clock_rewinds, 0);
    }

    #[test]
    fn poisson_workloads_are_seeded_and_validated() {
        let template = JobTemplate {
            name: "t".to_string(),
            request: request(8),
            mean_service: Seconds(100.0),
            weight: 1.0,
        };
        let a = Workload::poisson(
            std::slice::from_ref(&template),
            Seconds(50.0),
            Seconds(5000.0),
            3,
        )
        .unwrap();
        let b = Workload::poisson(
            std::slice::from_ref(&template),
            Seconds(50.0),
            Seconds(5000.0),
            3,
        )
        .unwrap();
        let c = Workload::poisson(
            std::slice::from_ref(&template),
            Seconds(50.0),
            Seconds(5000.0),
            4,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.arrivals().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(Workload::poisson(&[], Seconds(50.0), Seconds(100.0), 0).is_err());
        assert!(Workload::poisson(&[template], Seconds(0.0), Seconds(100.0), 0).is_err());
    }

    /// Structural invariants every outcome must satisfy.
    fn outcome_invariants(outcome: &LifecycleOutcome) -> std::result::Result<(), String> {
        let check = |ok: bool, what: &str| if ok { Ok(()) } else { Err(what.to_string()) };
        check(
            outcome.arrivals == outcome.completed + outcome.left_running + outcome.left_queued,
            "status partition",
        )?;
        check(
            outcome.admitted >= outcome.completed,
            "admitted >= completed",
        )?;
        check(
            outcome.queue_delays.len() == outcome.admitted,
            "one delay per admitted job",
        )?;
        check(
            (0.0..=1.0).contains(&outcome.goodput) && (0.0..=1.0).contains(&outcome.utilization),
            "goodput/utilization in [0,1]",
        )?;
        check(
            outcome.goodput <= outcome.utilization + 1e-12,
            "goodput <= utilization",
        )?;
        check(
            (0.0..=1.0).contains(&outcome.frag_mean)
                && (0.0..=1.0).contains(&outcome.frag_max)
                && outcome.frag_mean <= outcome.frag_max + 1e-12,
            "fragmentation in range",
        )?;
        check(
            outcome
                .placement_latencies
                .iter()
                .all(|l| l.is_finite() && *l >= 0.0),
            "placement latencies finite",
        )?;
        check(
            outcome
                .queue_delays
                .iter()
                .all(|d| d.is_finite() && *d >= 0.0),
            "queue delays finite",
        )
    }
}
