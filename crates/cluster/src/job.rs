//! Job-level metrics: maximum supported job scale (Fig 15) and job
//! fault-waiting rate (Figs 16 / 23).

use fault::FaultTrace;
use hbd_types::par::par_map;
use hbd_types::{NodeId, Seconds};
use topology::{FaultSet, HbdArchitecture};

/// The largest job (in GPUs, a multiple of the TP size) that the architecture
/// can still run under the given fault set.
pub fn max_supported_job(arch: &dyn HbdArchitecture, faults: &FaultSet, tp_size: usize) -> usize {
    arch.utilization(faults, tp_size).tp_groups(tp_size) * tp_size
}

/// The worst-case (minimum) job scale supported at any sampled instant of a
/// fault trace — the quantity plotted in Fig 15 ("maximal job scale supported").
pub fn max_job_over_trace(
    arch: &dyn HbdArchitecture,
    trace: &FaultTrace,
    tp_size: usize,
    samples: usize,
) -> usize {
    max_job_over_trace_par(arch, trace, tp_size, samples, 1)
}

/// Parallel version of [`max_job_over_trace`]: sampled instants are
/// independent, so they fan out over up to `threads` scoped threads with a
/// result identical for any thread count.
pub fn max_job_over_trace_par(
    arch: &dyn HbdArchitecture,
    trace: &FaultTrace,
    tp_size: usize,
    samples: usize,
    threads: usize,
) -> usize {
    let instants: Vec<(Seconds, Vec<NodeId>)> = trace.sample(samples);
    par_map(threads, &instants, |_, (_, faulty)| {
        let faults = FaultSet::from_nodes_clamped(arch.nodes(), faulty.iter().copied());
        max_supported_job(arch, &faults, tp_size)
    })
    .into_iter()
    .min()
    .unwrap_or(0)
}

/// Fraction of the trace during which a job of `job_gpus` GPUs cannot run
/// because the usable capacity has dropped below the job size — the
/// fault-waiting rate of Fig 16.
pub fn fault_waiting_rate(
    arch: &dyn HbdArchitecture,
    trace: &FaultTrace,
    tp_size: usize,
    job_gpus: usize,
    samples: usize,
) -> f64 {
    fault_waiting_rate_par(arch, trace, tp_size, job_gpus, samples, 1)
}

/// Parallel version of [`fault_waiting_rate`], fanning the sampled instants
/// out over up to `threads` scoped threads.
pub fn fault_waiting_rate_par(
    arch: &dyn HbdArchitecture,
    trace: &FaultTrace,
    tp_size: usize,
    job_gpus: usize,
    samples: usize,
    threads: usize,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let instants: Vec<(Seconds, Vec<NodeId>)> = trace.sample(samples);
    let waiting = par_map(threads, &instants, |_, (_, faulty)| {
        let faults = FaultSet::from_nodes_clamped(arch.nodes(), faulty.iter().copied());
        max_supported_job(arch, &faults, tp_size) < job_gpus
    })
    .into_iter()
    .filter(|&waits| waits)
    .count();
    waiting as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault::{FaultEvent, GeneratorConfig, TraceGenerator};
    use hbd_types::{NodeId, Seconds};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topology::{KHopRing, Nvl, NvlVariant, SipRing};

    fn trace_720() -> FaultTrace {
        let generator = TraceGenerator::new(GeneratorConfig {
            nodes: 720,
            duration: Seconds::from_days(60.0),
            steady_state_fault_ratio: 0.0117,
            mean_time_to_repair: Seconds::from_hours(12.0),
        })
        .unwrap();
        generator.generate(&mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn healthy_cluster_supports_the_full_job() {
        let ring = KHopRing::new(720, 4, 3).unwrap();
        assert_eq!(max_supported_job(&ring, &FaultSet::new(), 32), 2880);
        let nvl36 = Nvl::new(720, 4, NvlVariant::Nvl36);
        // NVL-36 fragments at TP-32: 1 group of 32 per 36-GPU domain.
        assert_eq!(max_supported_job(&nvl36, &FaultSet::new(), 32), 80 * 32);
    }

    #[test]
    fn max_job_over_trace_reflects_the_worst_instant() {
        let trace = trace_720();
        let ring = KHopRing::new(720, 4, 3).unwrap();
        let worst = max_job_over_trace(&ring, &trace, 32, 100);
        assert!(worst <= 2880);
        assert!(
            worst >= 2880 - 64 * 4,
            "InfiniteHBD should lose little capacity: {worst}"
        );
        let sip = SipRing::new(720, 4, 32).unwrap();
        let sip_worst = max_job_over_trace(&sip, &trace, 32, 100);
        assert!(sip_worst < worst);
    }

    #[test]
    fn fault_waiting_rate_grows_with_job_size() {
        let trace = trace_720();
        let ring = KHopRing::new(720, 4, 2).unwrap();
        let small = fault_waiting_rate(&ring, &trace, 32, 2048, 200);
        let large = fault_waiting_rate(&ring, &trace, 32, 2880, 200);
        assert!(small <= large);
        assert!(
            small < 0.05,
            "a 2,048-GPU job should almost never wait: {small}"
        );
    }

    #[test]
    fn weaker_architectures_wait_longer() {
        let trace = trace_720();
        let job = 2688; // 84 groups of TP-32.
        let ring = KHopRing::new(720, 4, 3).unwrap();
        let sip = SipRing::new(720, 4, 32).unwrap();
        let ring_wait = fault_waiting_rate(&ring, &trace, 32, job, 150);
        let sip_wait = fault_waiting_rate(&sip, &trace, 32, job, 150);
        assert!(ring_wait <= sip_wait);
    }

    #[test]
    fn parallel_job_metrics_match_sequential() {
        let trace = trace_720();
        let ring = KHopRing::new(720, 4, 2).unwrap();
        assert_eq!(
            max_job_over_trace(&ring, &trace, 32, 80),
            max_job_over_trace_par(&ring, &trace, 32, 80, 4)
        );
        assert_eq!(
            fault_waiting_rate(&ring, &trace, 32, 2688, 80),
            fault_waiting_rate_par(&ring, &trace, 32, 2688, 80, 4)
        );
        // And the parallel path is invariant in the thread count itself.
        assert_eq!(
            max_job_over_trace_par(&ring, &trace, 32, 80, 1),
            max_job_over_trace_par(&ring, &trace, 32, 80, 8)
        );
    }

    #[test]
    fn fully_faulty_interval_counts_as_waiting() {
        let trace = FaultTrace::new(
            4,
            Seconds(100.0),
            (0..4)
                .map(|n| FaultEvent::new(NodeId(n), Seconds(0.0), Seconds(100.0)))
                .collect(),
        )
        .unwrap();
        let ring = KHopRing::new(4, 4, 2).unwrap();
        assert_eq!(fault_waiting_rate(&ring, &trace, 8, 8, 10), 1.0);
    }
}
