//! The Appendix-C closed-form bound on InfiniteHBD's expected GPU waste ratio
//! (Table 7).
//!
//! For a K-Hop topology with `R` GPUs per node, a TP group size of `N_t` GPUs
//! and an i.i.d. node failure probability `P_s`, the appendix derives
//!
//! ```text
//! E[waste ratio] ≤ 2 · (N_t − R) · P_s^K
//! ```
//!
//! — waste requires a *break point* (K or more consecutive failures), whose
//! probability decays exponentially in `K`, and each break point wastes at most
//! one in-progress TP group.

use serde::{Deserialize, Serialize};

/// Parameters of the Appendix-C bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WasteBoundInput {
    /// GPUs per node (`R`).
    pub gpus_per_node: usize,
    /// OCSTrx bundles per node (`K`).
    pub k: u32,
    /// TP group size in GPUs (`N_t`).
    pub tp_size: usize,
    /// Node failure probability (`P_s`).
    pub node_failure_probability: f64,
}

/// Evaluates the Appendix-C upper bound `2 (N_t − R) P_s^K`.
pub fn waste_ratio_upper_bound(input: &WasteBoundInput) -> f64 {
    assert!(
        (0.0..=1.0).contains(&input.node_failure_probability),
        "failure probability must lie in [0, 1]"
    );
    assert!(
        input.tp_size >= input.gpus_per_node,
        "TP group must span at least one node"
    );
    2.0 * (input.tp_size - input.gpus_per_node) as f64
        * input.node_failure_probability.powi(input.k as i32)
}

/// The node failure probabilities the paper plugs into Table 7: the p99 value
/// of the 8-GPU-node trace (7.22 %) and the Appendix-A-derived 4-GPU-node
/// equivalent (3.67 %).
pub fn paper_node_failure_probability(gpus_per_node: usize) -> f64 {
    match gpus_per_node {
        8 => 0.0722,
        4 => 0.0367,
        other => {
            // Derive from the per-GPU failure probability of 0.93% (Appendix C).
            1.0 - (1.0 - 0.0093_f64).powi(other as i32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bound(r: usize, k: u32) -> f64 {
        waste_ratio_upper_bound(&WasteBoundInput {
            gpus_per_node: r,
            k,
            tp_size: 32,
            node_failure_probability: paper_node_failure_probability(r),
        })
    }

    #[test]
    fn table7_values_are_reproduced() {
        // Table 7 (TP-32): R=4 row: 7.54%, 0.28%, 1.02e-4; R=8 row: 25.02%,
        // 1.81%, 0.13%.
        assert!(
            (bound(4, 2) - 0.0754).abs() < 0.002,
            "R=4, K=2: {}",
            bound(4, 2)
        );
        assert!(
            (bound(4, 3) - 0.0028).abs() < 0.0002,
            "R=4, K=3: {}",
            bound(4, 3)
        );
        assert!(
            (bound(4, 4) - 1.02e-4).abs() < 2e-5,
            "R=4, K=4: {}",
            bound(4, 4)
        );
        assert!(
            (bound(8, 2) - 0.2502).abs() < 0.005,
            "R=8, K=2: {}",
            bound(8, 2)
        );
        assert!(
            (bound(8, 3) - 0.0181).abs() < 0.001,
            "R=8, K=3: {}",
            bound(8, 3)
        );
        assert!(
            (bound(8, 4) - 0.0013).abs() < 0.0002,
            "R=8, K=4: {}",
            bound(8, 4)
        );
    }

    #[test]
    fn bound_decays_exponentially_with_k() {
        let p = paper_node_failure_probability(4);
        assert!(bound(4, 3) / bound(4, 2) - p < 1e-9);
        assert!(bound(4, 4) < bound(4, 3));
    }

    #[test]
    fn paper_probabilities_match_appendix_a() {
        assert_eq!(paper_node_failure_probability(8), 0.0722);
        assert_eq!(paper_node_failure_probability(4), 0.0367);
        // Derived value for an unusual node size stays consistent with the
        // per-GPU rate.
        let p2 = paper_node_failure_probability(2);
        assert!(p2 > 0.018 && p2 < 0.019);
    }

    #[test]
    #[should_panic(expected = "failure probability")]
    fn invalid_probability_is_rejected() {
        let _ = waste_ratio_upper_bound(&WasteBoundInput {
            gpus_per_node: 4,
            k: 2,
            tp_size: 32,
            node_failure_probability: 1.5,
        });
    }

    #[test]
    #[should_panic(expected = "span at least one node")]
    fn tiny_tp_group_is_rejected() {
        let _ = waste_ratio_upper_bound(&WasteBoundInput {
            gpus_per_node: 8,
            k: 2,
            tp_size: 4,
            node_failure_probability: 0.05,
        });
    }
}
