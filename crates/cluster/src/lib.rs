//! Cluster-level fault-resilience simulation (§6.2 and Appendix E).
//!
//! This crate ties the topology models, the fault traces and the fault models
//! together into the quantities the paper's evaluation plots:
//!
//! * [`waste`] — GPU waste ratio of every architecture under a fault set, a
//!   fault-ratio sweep (Figs 14 / 22) or a trace replay (Figs 13 / 20 / 21),
//! * [`job`] — maximum supported job scale (Fig 15) and job fault-waiting rate
//!   (Figs 16 / 23),
//! * [`theory`] — the Appendix-C closed-form upper bound on InfiniteHBD's
//!   expected waste ratio (Table 7),
//! * [`lifecycle`] — an online discrete-event simulator of job arrivals,
//!   departures, faults and migrations sharing one cluster (beyond the
//!   paper's static mixes: queueing delay, placement latency, fragmentation
//!   and goodput SLOs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod lifecycle;
pub mod theory;
pub mod waste;

pub use job::{
    fault_waiting_rate, fault_waiting_rate_par, max_job_over_trace, max_job_over_trace_par,
    max_supported_job,
};
pub use lifecycle::{
    simulate, JobArrival, JobRecord, JobSpec, JobStatus, JobTemplate, LifecycleConfig,
    LifecycleOutcome, PlacementLatencyModel, Workload,
};
pub use theory::waste_ratio_upper_bound;
pub use waste::{
    waste_over_trace, waste_over_trace_par, waste_ratio, waste_vs_fault_ratio,
    waste_vs_fault_ratio_par, WastePoint,
};
